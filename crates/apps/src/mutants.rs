//! Deliberately-racy mutants of the application protocols, used to prove
//! the happens-before sanitizer (`ckd-race`) catches real lifecycle races.
//!
//! Each mutant reproduces a bug class the paper's unsynchronized put model
//! makes possible when the application skips its side of the contract:
//!
//! * [`MutantKind::SkipReadyJacobi`] — a halo-exchange-style ring where the
//!   receiver "forgets" one `CkDirect_ready` re-arm, so the next put finds
//!   the landing window still holding unconsumed data;
//! * [`MutantKind::EarlyReadPingpong`] — a pingpong where the receiver reads
//!   the landing window on a hint message, *before* the completion callback
//!   says the payload finished landing;
//! * [`MutantKind::DoublePutMatmul`] — a matmul-style producer that issues
//!   two back-to-back puts on the same channel without waiting for the
//!   first to complete.
//! * [`MutantKind::SchedDependentPingpong`] — a referee/racer protocol
//!   whose channel re-arm rides on the reply the developer *assumed* would
//!   always finish each round. The canonical schedule honors that
//!   assumption, so the single-seed sanitizer sees a clean run; only
//!   schedule exploration (`ckd-check`) surfaces the interleaving where
//!   the replies swap and the re-arm is silently skipped.
//!
//! The mutants intentionally swallow the runtime's rejections (the bug is
//! that the app *ignores* the contract), so each carries `ckd-lint` allow
//! markers where the static lint would otherwise flag the misuse.

use ckd_charm::{ArrayId, Chare, ChareRef, Ctx, EntryId, Machine, Msg};
use ckd_race::SanitizerConfig;
use ckd_topo::{Dims, Idx, Mapper};
use ckdirect::{HandleId, Region};

use crate::common::{Platform, OOB_PATTERN};

const EP_START: EntryId = EntryId(0);
const EP_HANDSHAKE: EntryId = EntryId(1);
const EP_HINT: EntryId = EntryId(2);
const EP_KICK: EntryId = EntryId(3);
const EP_REPLY: EntryId = EntryId(4);
const EP_ARMED: EntryId = EntryId(5);
const EP_GO: EntryId = EntryId(6);

/// Which deliberately-broken protocol to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutantKind {
    /// Receiver skips one `ready` re-arm; the next put overwrites an
    /// unconsumed buffer.
    SkipReadyJacobi,
    /// Receiver reads the landing window before the completion callback.
    EarlyReadPingpong,
    /// Sender issues a second put while the first is still in flight.
    DoublePutMatmul,
    /// The re-arm rides on message arrival order; only a reordered
    /// schedule exposes the missing `ready`.
    SchedDependentPingpong,
}

impl MutantKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MutantKind::SkipReadyJacobi => "skip-ready-jacobi",
            MutantKind::EarlyReadPingpong => "early-read-pingpong",
            MutantKind::DoublePutMatmul => "double-put-matmul",
            MutantKind::SchedDependentPingpong => "schedule_dependent_pingpong",
        }
    }
}

/// One endpoint of a bidirectional CkDirect exchange, with the mutant's
/// specific misbehavior switched in by `kind`.
struct MutantPeer {
    kind: MutantKind,
    peer: Option<ChareRef>,
    initiator: bool,
    iters: u32,
    bounces: u32,
    recv_region: Region,
    send_region: Region,
    recv_handle: Option<HandleId>,
    send_handle: Option<HandleId>,
}

impl MutantPeer {
    fn new(kind: MutantKind, bytes: usize, iters: u32, initiator: bool) -> MutantPeer {
        let len = bytes.max(8);
        let send_region = Region::alloc(len);
        send_region.set_last_word(0x5AA5_5AA5_5AA5_5AA5);
        MutantPeer {
            kind,
            peer: None,
            initiator,
            iters,
            bounces: 0,
            recv_region: Region::alloc(len),
            send_region,
            recv_handle: None,
            send_handle: None,
        }
    }

    /// Put toward the peer, deliberately ignoring a rejection — the mutant
    /// models an app that does not check the runtime's verdict.
    fn serve(&mut self, ctx: &mut Ctx<'_>) {
        let h = self.send_handle.expect("handshake done");
        if self.kind == MutantKind::EarlyReadPingpong {
            // hint the peer that data is on the way *before* the put
            // completes — the peer will read the window on this hint
            ctx.send(self.peer.unwrap(), Msg::signal(EP_HINT));
        }
        // ckd-lint: allow(swallowed-direct-error) ckd-lint: allow(ignored-put-outcome)
        let _ = ctx.direct_put(h); // bug under test: rejection ignored
        if self.kind == MutantKind::DoublePutMatmul && self.bounces == 0 {
            // second put without waiting for the first completion
            // ckd-lint: allow(swallowed-direct-error) ckd-lint: allow(double-put-same-handle) ckd-lint: allow(ignored-put-outcome)
            let _ = ctx.direct_put(h);
        }
    }
}

impl Chare for MutantPeer {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                self.peer = Some(*msg.payload.downcast::<ChareRef>().unwrap());
                let h = ctx
                    .direct_create_handle(self.recv_region.clone(), OOB_PATTERN, 0)
                    .expect("create");
                self.recv_handle = Some(h);
                ctx.send(self.peer.unwrap(), Msg::value(EP_HANDSHAKE, h, 16));
            }
            EP_HANDSHAKE => {
                let h = *msg.payload.downcast::<HandleId>().unwrap();
                ctx.direct_assoc_local(h, self.send_region.clone())
                    .expect("assoc");
                self.send_handle = Some(h);
                if self.initiator {
                    self.serve(ctx);
                }
            }
            EP_HINT => {
                // bug under test: peek at the landing window before the
                // completion callback has fired
                let h = self.recv_handle.expect("created");
                // ckd-lint: allow(recv-read-outside-callback)
                let r = ctx.direct_recv_region(h).expect("region");
                let _ = r.len();
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, handle: HandleId) {
        self.bounces += 1;
        let skip = self.kind == MutantKind::SkipReadyJacobi
            && !self.initiator
            && self.bounces == self.iters / 2;
        if skip {
            // bug under test: this iteration's re-arm is forgotten, so the
            // initiator's next put lands on an unconsumed window
        } else {
            ctx.direct_ready(handle).expect("ready");
        }
        if self.bounces < self.iters {
            self.serve(ctx);
        }
    }
}

/// Rounds the schedule-dependent mutant plays.
const SCHED_ROUNDS: u32 = 4;

/// Which part a [`SchedPinger`] element plays.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SchedRole {
    /// Kicks both racers each round, tallies their replies, re-arms the
    /// channel, and tells the left racer to put.
    Referee,
    /// Replies to kicks; `0` (left) additionally owns the put channel.
    Racer(u8),
    /// Unused array slot (keeps element index == home PE).
    Idle,
}

/// The schedule-dependent mutant: a referee on PE 0 races two workers on
/// PEs 2 and 3 (equidistant, cross-node) every round. The referee's
/// channel re-arm lives on the code path that handles the *round-closing*
/// reply, and the developer assumed the right racer always closes the
/// round (its kick is sent second, so canonically its reply lands second).
/// Swap the two replies — legal for any PDES window that covers their
/// few-ns arrival gap — and the left racer's reply closes the round
/// instead: no re-arm, and the next put lands on an unconsumed window.
struct SchedPinger {
    role: SchedRole,
    referee: Option<ChareRef>,
    left: Option<ChareRef>,
    right: Option<ChareRef>,
    /// Rounds completed (a put delivered per round).
    rounds: u32,
    /// Rounds the *right* racer's reply arrived first — always 0 on the
    /// canonical schedule.
    right_first: u32,
    got: [bool; 2],
    recv_region: Region,
    send_region: Region,
    recv_handle: Option<HandleId>,
    send_handle: Option<HandleId>,
}

impl SchedPinger {
    fn new(role: SchedRole) -> SchedPinger {
        let send_region = Region::alloc(256);
        send_region.set_last_word(0x5AA5_5AA5_5AA5_5AA5);
        SchedPinger {
            role,
            referee: None,
            left: None,
            right: None,
            rounds: 0,
            right_first: 0,
            got: [false; 2],
            recv_region: Region::alloc(256),
            send_region,
            recv_handle: None,
            send_handle: None,
        }
    }

    /// Start a round: kick the left racer, then the right one. The two
    /// sends leave back-to-back, so the replies arrive left-first by a
    /// few nanoseconds on the canonical schedule.
    fn kick(&mut self, ctx: &mut Ctx<'_>) {
        self.got = [false; 2];
        ctx.send(self.left.unwrap(), Msg::signal(EP_KICK));
        ctx.send(self.right.unwrap(), Msg::signal(EP_KICK));
    }
}

impl Chare for SchedPinger {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                let h = ctx
                    .direct_create_handle(self.recv_region.clone(), OOB_PATTERN, 0)
                    .expect("create");
                self.recv_handle = Some(h);
                ctx.send(self.left.unwrap(), Msg::value(EP_HANDSHAKE, h, 16));
            }
            EP_HANDSHAKE => {
                let h = *msg.payload.downcast::<HandleId>().unwrap();
                ctx.direct_assoc_local(h, self.send_region.clone())
                    .expect("assoc");
                self.send_handle = Some(h);
                ctx.send(self.referee.unwrap(), Msg::signal(EP_ARMED));
            }
            EP_ARMED => self.kick(ctx),
            EP_KICK => {
                let SchedRole::Racer(id) = self.role else {
                    panic!("kick sent to a non-racer");
                };
                ctx.send(self.referee.unwrap(), Msg::value(EP_REPLY, id, 8));
            }
            EP_REPLY => {
                let id = *msg.payload.downcast::<u8>().unwrap() as usize;
                let first = !self.got[0] && !self.got[1];
                if first && id == 1 {
                    self.right_first += 1;
                }
                self.got[id] = true;
                if self.got[0] && self.got[1] {
                    if id == 1 {
                        // the right racer closed the round, as the
                        // developer assumed it always would
                        if self.rounds > 0 {
                            ctx.direct_ready(self.recv_handle.unwrap()).expect("ready");
                        }
                    } else {
                        // bug under test: the round closed on the *left*
                        // reply and this path forgets the re-arm — it is
                        // unreachable on the canonical schedule
                    }
                    ctx.send(self.left.unwrap(), Msg::signal(EP_GO));
                }
            }
            EP_GO => {
                // ckd-lint: allow(swallowed-direct-error) ckd-lint: allow(ignored-put-outcome)
                let _ = ctx.direct_put(self.send_handle.unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, _handle: HandleId) {
        // the re-arm is deliberately deferred to the reply path of the
        // next round (that deferral is the mutant's bug surface)
        self.rounds += 1;
        if self.rounds < SCHED_ROUNDS {
            self.kick(ctx);
        }
    }
}

/// The platform every mutant runs on (4 PEs, 2 cores per node — so PEs 2
/// and 3 sit together on the far node).
pub fn mutant_platform() -> Platform {
    Platform::IbAbe { cores_per_node: 2 }
}

/// Seed and run `kind` on a caller-built machine (sanitizer and, for
/// `ckd-check`, a reorder policy already installed via the builder).
pub fn run_mutant_on(m: &mut Machine, kind: MutantKind) {
    if kind == MutantKind::SchedDependentPingpong {
        let arr = m.create_array("sched", Dims::d1(4), Mapper::Block, |idx| {
            let role = match idx.at(0) {
                0 => SchedRole::Referee,
                2 => SchedRole::Racer(0),
                3 => SchedRole::Racer(1),
                _ => SchedRole::Idle,
            };
            Box::new(SchedPinger::new(role)) as Box<dyn Chare>
        });
        let r = m.element(arr, Idx::i1(0));
        let l = m.element(arr, Idx::i1(2));
        let rt = m.element(arr, Idx::i1(3));
        m.with_chare_mut::<SchedPinger>(r, |c| {
            c.left = Some(l);
            c.right = Some(rt);
        });
        for racer in [l, rt] {
            m.with_chare_mut::<SchedPinger>(racer, |c| c.referee = Some(r));
        }
        m.seed(r, Msg::signal(EP_START));
        m.run();
        return;
    }
    let (iters, bytes) = match kind {
        // large payloads so the hint message outruns the landing put
        MutantKind::EarlyReadPingpong => (4, 100_000),
        _ => (6, 1_000),
    };
    let npes = m.npes();
    let arr = m.create_array("mutant", Dims::d1(npes), Mapper::Block, |idx| {
        Box::new(MutantPeer::new(kind, bytes, iters, idx.at(0) == 0)) as Box<dyn Chare>
    });
    let a = m.element(arr, Idx::i1(0));
    let b = m.element(arr, Idx::i1(1));
    m.seed(a, Msg::value(EP_START, b, 8));
    m.seed(b, Msg::value(EP_START, a, 8));
    m.run();
}

/// Application-level observation for schedule-equivalence checking: the
/// protocol counters that must not depend on delivery order (chare state
/// the `MachineStats` digest cannot see).
pub fn mutant_digest(m: &Machine, kind: MutantKind) -> String {
    let arr = ArrayId(0);
    if kind == MutantKind::SchedDependentPingpong {
        let r: &SchedPinger = m.chare(m.element(arr, Idx::i1(0))).expect("referee exists");
        return format!("rounds={} right_first={}", r.rounds, r.right_first);
    }
    let a: &MutantPeer = m.chare(m.element(arr, Idx::i1(0))).expect("peer exists");
    let b: &MutantPeer = m.chare(m.element(arr, Idx::i1(1))).expect("peer exists");
    format!("bounces={}/{}", a.bounces, b.bounces)
}

/// Build, run, and return the machine for `kind` with the sanitizer on.
/// The caller inspects `machine.sanitizer()` for the diagnostics the race
/// produced.
pub fn run_mutant(kind: MutantKind) -> Machine {
    let mut m = mutant_platform()
        .builder(4)
        .with_sanitizer(SanitizerConfig::default())
        .build();
    run_mutant_on(&mut m, kind);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckd_race::RaceKind;

    fn kinds(m: &Machine) -> Vec<RaceKind> {
        m.sanitizer().diagnostics().iter().map(|d| d.kind).collect()
    }

    #[test]
    fn skip_ready_is_caught_as_overwrite() {
        let m = run_mutant(MutantKind::SkipReadyJacobi);
        assert!(
            kinds(&m).contains(&RaceKind::OverwriteUnconsumed),
            "got {:?}",
            kinds(&m)
        );
    }

    #[test]
    fn early_read_is_caught() {
        let m = run_mutant(MutantKind::EarlyReadPingpong);
        assert!(
            kinds(&m).contains(&RaceKind::ReadBeforeCompletion),
            "got {:?}",
            kinds(&m)
        );
    }

    #[test]
    fn schedule_dependent_mutant_is_clean_on_the_canonical_schedule() {
        // The whole point of this mutant: the single-seed sanitizer run is
        // spotless and the protocol completes every round — only schedule
        // exploration (ckd-check) exposes the missing re-arm.
        let m = run_mutant(MutantKind::SchedDependentPingpong);
        assert!(m.sanitizer().is_clean(), "{}", m.sanitizer().report());
        assert_eq!(
            mutant_digest(&m, MutantKind::SchedDependentPingpong),
            format!("rounds={SCHED_ROUNDS} right_first=0")
        );
    }

    #[test]
    fn double_put_is_caught_as_in_flight() {
        let m = run_mutant(MutantKind::DoublePutMatmul);
        assert!(
            kinds(&m).contains(&RaceKind::PutWhileInFlight),
            "got {:?}",
            kinds(&m)
        );
    }
}
