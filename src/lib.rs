//! Re-exports for examples and integration tests.
pub use ckd_apps as apps;
pub use ckd_charm as charm;
pub use ckd_mpi as mpi;
pub use ckd_net as net;
pub use ckd_sim as sim;
pub use ckd_topo as topo;
pub use ckdirect as direct;
