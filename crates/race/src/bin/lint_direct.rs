//! `lint_direct` — static CkDirect protocol-lifecycle lint.
//!
//! Usage: `lint_direct <path> [<path> …]`
//!
//! Recursively scans every `.rs` file under the given paths for lifecycle
//! misuse patterns (see `ckd_race::lint`) and prints one finding per line
//! in `file:line: [rule] message` form. Exits non-zero when anything is
//! found, so it can gate CI (`scripts/check.sh`). Suppress a finding in
//! source with `// ckd-lint: allow(<rule>)`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if paths.is_empty() {
        eprintln!("usage: lint_direct <path> [<path> …]");
        eprintln!("rules: {}", ckd_race::RULES.join(", "));
        return ExitCode::from(2);
    }
    match ckd_race::lint_paths(&paths) {
        Ok(findings) if findings.is_empty() => {
            println!("lint_direct: clean ({} path(s) scanned)", paths.len());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("lint_direct: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint_direct: {e}");
            ExitCode::from(2)
        }
    }
}
