#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
#
# The development environment has no network access, so every cargo call
# runs with --offline; the workspace is std-only (plus the vendored
# crates/bytes) and needs nothing from a registry.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test --offline --workspace -q

if cargo fmt --version >/dev/null 2>&1; then
    run cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format check"
fi

if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lints"
fi

echo "All checks passed."
