//! A user-written [`RuntimeLayer`]: an event-count histogram.
//!
//! The runtime's own observers — tracer, race sanitizer, learner — all sit
//! behind the same five-hook interposition interface, and so can yours:
//! implement [`RuntimeLayer`] on any type, hand it to
//! [`MachineBuilder::with_layer`](ckd_charm::MachineBuilder::with_layer),
//! and the scheduler reports every hot-path event to it without perturbing
//! virtual time.
//!
//! This one tallies what actually happens on each PE during a CkDirect
//! jacobi3d run — messages arrived, puts issued, landings, handler
//! deliveries — and prints the histogram when the run finishes. Shared
//! ownership (`Rc<RefCell<_>>`) lets the program read the counts back out
//! after `run()` returns, since the machine owns the layer itself.
//!
//! ```console
//! $ cargo run --release --example custom_layer
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use ckd_apps::jacobi3d::{run_jacobi_on, JacobiCfg};
use ckd_apps::{Platform, Variant};
use ckd_charm::{
    DeliverInfo, Delivery, EventInfo, EventKind, LandingInfo, MachineStats, PutIssueInfo,
    RuntimeLayer,
};

/// Per-PE tallies of everything the hooks report.
#[derive(Clone, Copy, Debug, Default)]
struct PeCounts {
    msg_arrivals: u64,
    loop_iters: u64,
    reduce_legs: u64,
    bcast_legs: u64,
    put_issues: u64,
    put_bytes: u64,
    landings: u64,
    msg_handlers: u64,
    callbacks: u64,
}

/// The histogram layer. The machine owns the layer; the program keeps the
/// other end of the `Rc` to read results after the run.
struct Histogram {
    counts: Rc<RefCell<Vec<PeCounts>>>,
}

impl RuntimeLayer for Histogram {
    fn name(&self) -> &'static str {
        "histogram"
    }

    fn on_event(&mut self, ev: &EventInfo) {
        let mut counts = self.counts.borrow_mut();
        let c = &mut counts[ev.pe];
        match ev.kind {
            EventKind::MsgArrive { .. } => c.msg_arrivals += 1,
            EventKind::PeLoop { .. } => c.loop_iters += 1,
            EventKind::ReduceUp { .. } => c.reduce_legs += 1,
            EventKind::BcastDown { .. } => c.bcast_legs += 1,
        }
    }

    fn on_put_issue(&mut self, put: &PutIssueInfo) {
        let mut counts = self.counts.borrow_mut();
        counts[put.pe].put_issues += 1;
        counts[put.pe].put_bytes += put.bytes;
    }

    fn on_landing(&mut self, landing: &LandingInfo) {
        self.counts.borrow_mut()[landing.pe].landings += 1;
    }

    fn on_deliver(&mut self, deliver: &DeliverInfo) {
        let mut counts = self.counts.borrow_mut();
        match deliver.what {
            Delivery::Message { .. } => counts[deliver.pe].msg_handlers += 1,
            Delivery::Callback { .. } => counts[deliver.pe].callbacks += 1,
        }
    }

    fn epilogue(&mut self, stats: &MachineStats) {
        let counts = self.counts.borrow();
        let puts: u64 = counts.iter().map(|c| c.put_issues).sum();
        println!(
            "[histogram] run over: {} puts observed, machine counted {}",
            puts, stats.puts
        );
    }
}

fn main() {
    let pes = 8;
    let counts = Rc::new(RefCell::new(vec![PeCounts::default(); pes]));

    let mut m = Platform::IbAbe { cores_per_node: 8 }
        .builder(pes)
        .with_layer(Histogram {
            counts: Rc::clone(&counts),
        })
        .build();

    let res = run_jacobi_on(
        &mut m,
        JacobiCfg {
            domain: [48, 48, 48],
            chares: [4, 2, 2],
            iters: 12,
            variant: Variant::Ckd,
            real_compute: true,
        },
    );

    println!(
        "jacobi3d finished: {} iters, residual {:.3e}",
        res.iters, res.residual
    );
    println!();
    println!(
        "{:<4} {:>9} {:>9} {:>8} {:>8} {:>7} {:>10} {:>9} {:>9} {:>9}",
        "pe",
        "arrivals",
        "loops",
        "red-up",
        "bcast",
        "puts",
        "put-bytes",
        "landings",
        "handlers",
        "cbacks"
    );
    let counts = counts.borrow();
    for (pe, c) in counts.iter().enumerate() {
        println!(
            "{:<4} {:>9} {:>9} {:>8} {:>8} {:>7} {:>10} {:>9} {:>9} {:>9}",
            pe,
            c.msg_arrivals,
            c.loop_iters,
            c.reduce_legs,
            c.bcast_legs,
            c.put_issues,
            c.put_bytes,
            c.landings,
            c.msg_handlers,
            c.callbacks
        );
    }

    // the layer saw the same traffic the machine accounted
    let puts: u64 = counts.iter().map(|c| c.put_issues).sum();
    let landings: u64 = counts.iter().map(|c| c.landings).sum();
    let callbacks: u64 = counts.iter().map(|c| c.callbacks).sum();
    assert_eq!(puts, m.stats().puts, "layer missed put issues");
    assert_eq!(landings, m.stats().puts, "layer missed landings");
    assert!(callbacks > 0, "CkDirect runs deliver by callback");
    println!();
    println!("cross-check vs MachineStats: {puts} puts, {landings} landings — consistent");
}
