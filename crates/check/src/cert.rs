//! The machine-readable commutativity certificate.
//!
//! `ckd-check certify` writes one JSON document per invocation: the
//! schema tag, the fabric/window/budget the exploration ran under, and
//! one line per case with its verdict and the exploration counters. A
//! counterexample (present only on `"violation"` verdicts) carries the
//! replayable prescription and both observations.
//!
//! [`validate_certificate_json`] is the parser-free structural validator
//! (same idiom as `ckd-bench`'s sweep validator): schema prefix, balanced
//! delimiters, and exact per-case key counts — enough to catch truncated
//! or hand-mangled files without pulling in a JSON parser.

use crate::explore::Exploration;

/// Schema tag of the current certificate format.
pub const SCHEMA: &str = "ckd-check/v1";

/// One certified (or refuted) case, ready for serialization.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// Case name (`pingpong`, `jacobi3d`, …).
    pub app: String,
    /// Fabric label the machine was built on.
    pub fabric: String,
    /// PEs the case ran on.
    pub pes: usize,
    /// Commutation window the reorder policy used.
    pub window_ps: u64,
    /// Run budget the explorer was given.
    pub budget: u64,
    /// The exploration result.
    pub exploration: Exploration,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render the certificate document.
pub fn certificate_json(cases: &[CaseReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"cases\": [\n"
    ));
    for (i, c) in cases.iter().enumerate() {
        let st = &c.exploration.stats;
        let verdict = if c.exploration.certified() {
            "certified"
        } else {
            "violation"
        };
        let cx = match &c.exploration.counterexample {
            None => "null".to_owned(),
            Some(cx) => {
                let presc: Vec<String> = cx
                    .prescription
                    .iter()
                    .map(|(d, j)| format!("[{d}, {j}]"))
                    .collect();
                format!(
                    "{{\"prescription\": [{}], \"swapped\": \"{}\", \"canonical_digest\": \"{}\", \"divergent_digest\": \"{}\", \"canonical_clean\": {}, \"divergent_clean\": {}}}",
                    presc.join(", "),
                    esc(&cx.swapped),
                    esc(&cx.canonical.digest),
                    esc(&cx.divergent.digest),
                    cx.canonical.clean,
                    cx.divergent.clean,
                )
            }
        };
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"fabric\": \"{}\", \"pes\": {}, \"window_ps\": {}, \"budget\": {}, \"verdict\": \"{}\", \"explored\": {}, \"naive\": {}, \"pruned_commuting\": {}, \"pruned_sleep\": {}, \"excluded\": {}, \"budget_exhausted\": {}, \"counterexample\": {}}}{}\n",
            esc(&c.app),
            esc(&c.fabric),
            c.pes,
            c.window_ps,
            c.budget,
            verdict,
            st.explored,
            st.naive,
            st.pruned_commuting,
            st.pruned_sleep,
            st.excluded,
            st.budget_exhausted,
            cx,
            if i + 1 < cases.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Per-case keys every entry must carry exactly once.
const CASE_KEYS: [&str; 12] = [
    "\"app\": ",
    "\"fabric\": ",
    "\"pes\": ",
    "\"window_ps\": ",
    "\"budget\": ",
    "\"verdict\": ",
    "\"explored\": ",
    "\"naive\": ",
    "\"pruned_commuting\": ",
    "\"pruned_sleep\": ",
    "\"excluded\": ",
    "\"budget_exhausted\": ",
];

/// Structurally validate a certificate document without a JSON parser.
pub fn validate_certificate_json(s: &str) -> Result<(), String> {
    if !s.starts_with(&format!("{{\n  \"schema\": \"{SCHEMA}\"")) {
        return Err(format!("missing schema tag ({SCHEMA:?})"));
    }
    if !s.contains("\"cases\": [") {
        return Err("missing cases".into());
    }
    if s.matches('{').count() != s.matches('}').count()
        || s.matches('[').count() != s.matches(']').count()
    {
        return Err("unbalanced delimiters".into());
    }
    let cases = s
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"app\""))
        .count();
    if cases == 0 {
        return Err("no cases".into());
    }
    for key in CASE_KEYS {
        let n = s.matches(key).count();
        if n != cases {
            return Err(format!("{SCHEMA}: missing key {key} ({n}/{cases} cases)"));
        }
    }
    let n = s.matches("\"counterexample\": ").count();
    if n != cases {
        return Err(format!(
            "{SCHEMA}: missing key \"counterexample\" ({n}/{cases} cases)"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Counterexample, ExploreStats, Outcome};
    use crate::policy::Prescription;

    fn case(app: &str, cx: Option<Counterexample>) -> CaseReport {
        CaseReport {
            app: app.to_owned(),
            fabric: "ib_abe".to_owned(),
            pes: 8,
            window_ps: 0,
            budget: 48,
            exploration: Exploration {
                stats: ExploreStats {
                    explored: 3,
                    naive: 24,
                    pruned_commuting: 5,
                    pruned_sleep: 1,
                    excluded: 2,
                    budget_exhausted: false,
                },
                counterexample: cx,
            },
        }
    }

    fn sample_cx() -> Counterexample {
        let mk = |d: &str, clean| Outcome {
            digest: d.to_owned(),
            clean,
            report: String::new(),
        };
        Counterexample {
            prescription: Prescription::from([(3, 1)]),
            swapped: "head [seq=7] <-> alt#1 [seq=9]".to_owned(),
            canonical: mk("a", true),
            divergent: mk("b", false),
        }
    }

    #[test]
    fn certificate_round_trips_the_validator() {
        let doc = certificate_json(&[case("pingpong", None), case("mutant", Some(sample_cx()))]);
        validate_certificate_json(&doc).unwrap();
        assert!(doc.contains("\"verdict\": \"certified\""));
        assert!(doc.contains("\"verdict\": \"violation\""));
        assert!(doc.contains("\"prescription\": [[3, 1]]"));
    }

    #[test]
    fn validator_rejects_mangled_documents() {
        let doc = certificate_json(&[case("pingpong", None)]);
        assert!(validate_certificate_json(&doc.replace("ckd-check/v1", "v0")).is_err());
        assert!(validate_certificate_json(&doc.replace("\"naive\"", "\"n\"")).is_err());
        assert!(validate_certificate_json(&doc.replace('}', "")).is_err());
        assert!(validate_certificate_json("{\n}").is_err());
    }
}
