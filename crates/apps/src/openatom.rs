//! §5 — mini-OpenAtom: the GSpace → PairCalculator phase structure of the
//! Car–Parrinello orthonormalization step (Figs 4–5).
//!
//! Chare arrays:
//!
//! * `GS(s, p)` — `nstates × nplanes` GSpace chares, each holding `pts`
//!   complex coefficients of state `s` on plane `p`;
//! * `PC(bi, bj, p)` — `g × g × nplanes` PairCalculators (`g = nstates /
//!   grain`): `PC(bi, bj, p)` forms the overlap tiles of state blocks `bi ×
//!   bj` on plane `p`.
//!
//! One time step:
//!
//! 1. **other phases** (skipped in PC-only runs): a compute lump plus a
//!    transpose-partner message per GS chare — the FFT and density phases
//!    that surround orthonormalization;
//! 2. **forward path**: every `GS(s,p)` streams its points to the `2g`
//!    PairCalculators that need state `s` (as a left or right member) —
//!    this is *the* communication the paper optimizes with CkDirect;
//! 3. each PC, upon its `2·grain`-th arrival (counted in the CkDirect
//!    completion callback, a plain function call), runs DGEMM on the
//!    accumulated tiles;
//! 4. **backward path**: results return to the left-member GS chares as
//!    ordinary messages (both variants), and a barrier ends the step.
//!
//! The §5.2 pathology is reproduced faithfully: with thousands of channels,
//! naive `ready` keeps every PC handle in the polling queue through all
//! phases, taxing every scheduler iteration. The `ready_split` mode issues
//! `ReadyMark` right after the DGEMM and `ReadyPollQ` only when the step
//! broadcast announces the forward path is imminent.

use ckd_charm::{ArrayId, Chare, Ctx, EntryId, Msg, PutOutcome, RedOp, RedTarget, RedVal};
use ckd_linalg::gemm_flops;
use ckd_sim::Time;
use ckd_topo::{Dims, Idx, Mapper};
use ckdirect::{HandleId, Region};

use crate::common::{Platform, Variant, OOB_PATTERN};

const EP_SETUP: EntryId = EntryId(0);
const EP_HANDLE: EntryId = EntryId(1);
const EP_STEP: EntryId = EntryId(2);
const EP_TRANSPOSE: EntryId = EntryId(3);
const EP_POINTS: EntryId = EntryId(4);
const EP_RESULT: EntryId = EntryId(5);
const EP_STEP_DONE: EntryId = EntryId(6);
const EP_DGEMM: EntryId = EntryId(7);

/// Configuration of one mini-OpenAtom run.
#[derive(Clone, Copy, Debug)]
pub struct OpenAtomCfg {
    /// Electronic states (1024 in the paper's 256-water benchmark; scaled
    /// down here).
    pub nstates: usize,
    /// Planes per state.
    pub nplanes: usize,
    /// States per PairCalculator block.
    pub grain: usize,
    /// Doubles streamed from each GS to each of its PCs.
    pub pts: usize,
    /// Time steps.
    pub steps: u32,
    /// Transport for the forward path.
    pub variant: Variant,
    /// "PC" runs: disable the other phases, keep all PC communication.
    pub pc_only: bool,
    /// Use `ReadyMark`+`ReadyPollQ` instead of plain `ready` (the paper's
    /// fix; meaningful on the polling backend only).
    pub ready_split: bool,
}

impl OpenAtomCfg {
    fn g(&self) -> usize {
        self.nstates / self.grain
    }

    fn points_bytes(&self) -> usize {
        self.pts * 8
    }
}

/// Result of one run.
#[derive(Clone, Copy, Debug)]
pub struct OpenAtomResult {
    /// Average wall time per step.
    pub time_per_step: Time,
    /// Virtual time at completion.
    pub total: Time,
    /// Steps executed.
    pub steps: u32,
    /// Total sentinel checks performed by poll sweeps (polling-cost
    /// evidence for the §5.2 ablation).
    pub poll_checks: u64,
    /// Puts the runtime reported retried or degraded, summed over GS chares
    /// (always 0 without fault injection).
    pub lossy_puts: u64,
}

/// Handle-shipping payload: `(slot, handle)` where slot identifies which of
/// the sender's outbound channels this is.
#[derive(Clone, Copy)]
struct HandleMsg {
    handle: HandleId,
}

// ---------------------------------------------------------------- GSpace

struct GsChare {
    cfg: OpenAtomCfg,
    s: usize,
    p: usize,
    /// Outbound handles (CKD): 2g channels to the PCs that need state `s`.
    out_handles: Vec<HandleId>,
    send_region: Option<Region>,
    setup_acks: usize,
    // per-step state
    step: u32,
    transpose_in: bool,
    results_in: usize,
    phase1_done: bool,
    lossy_puts: u64,
    t_first: Option<Time>,
    t_done: Time,
}

impl GsChare {
    /// PCs fed by this GS: `(bi = s/grain, bj = 0..g)` as the left member
    /// and `(bi = 0..g, bj = s/grain)` as the right member.
    fn my_pcs(&self) -> Vec<(usize, usize, bool)> {
        let g = self.cfg.g();
        let b = self.s / self.cfg.grain;
        let mut v = Vec::with_capacity(2 * g);
        for bj in 0..g {
            v.push((b, bj, true));
        }
        for bi in 0..g {
            v.push((bi, b, false));
        }
        v
    }

    fn expected_results(&self) -> usize {
        // one result message from each PC in this state's row
        self.cfg.g()
    }

    fn send_points(&mut self, ctx: &mut Ctx<'_>, pc_array: ArrayId) {
        let wire = self.cfg.points_bytes();
        match self.cfg.variant {
            Variant::Msg => {
                for (bi, bj, left) in self.my_pcs() {
                    let target = ctx.element(pc_array, Idx::i3(bi, bj, self.p));
                    // payload: (state, left?) so the PC can count arrivals
                    ctx.send(
                        target,
                        Msg::value(EP_POINTS, (self.s, left, self.step), wire),
                    );
                }
            }
            Variant::Ckd => {
                let region = self.send_region.as_ref().expect("setup done");
                region.write_f64s(0, &[self.step as f64 + 1.0]);
                let outs = self.out_handles.clone();
                for h in outs {
                    match ctx.direct_put(h).expect("put points") {
                        PutOutcome::Sent => {}
                        PutOutcome::Retried { .. } | PutOutcome::Degraded => self.lossy_puts += 1,
                    }
                }
            }
        }
    }

    fn maybe_phase2(&mut self, ctx: &mut Ctx<'_>, pc_array: ArrayId) {
        let need_transpose = !self.cfg.pc_only;
        if self.phase1_done && (!need_transpose || self.transpose_in) {
            self.phase1_done = false;
            self.transpose_in = false;
            self.send_points(ctx, pc_array);
        }
    }
}

// ----------------------------------------------------------- PairCalculator

struct PcChare {
    cfg: OpenAtomCfg,
    /// Inbound channels (CKD): 2·grain, in creation order.
    in_handles: Vec<HandleId>,
    in_regions: Vec<Region>,
    points_in: usize,
    dgemms: u32,
    t_last_dgemm: Time,
}

impl PcChare {
    fn expected_points(&self) -> usize {
        2 * self.cfg.grain
    }

    /// Count one arrival; when the set is complete, schedule the multiply.
    ///
    /// Following §5.1 exactly: in the CkDirect variant the completion
    /// callback only counts ("accumulation ... without incurring entry
    /// method scheduling overhead") and the DGEMM runs as an enqueued
    /// entry method, so queued work on this PE is not starved by a long
    /// multiply inside a callback. The message variant multiplies inline at
    /// the last point message, as the paper's default implementation does.
    fn on_points(&mut self, ctx: &mut Ctx<'_>, gs_array: ArrayId, me: Idx) {
        self.points_in += 1;
        if self.points_in < self.expected_points() {
            return;
        }
        self.points_in = 0;
        if self.cfg.variant == Variant::Ckd {
            let myself = ctx.me();
            ctx.send_local(myself, Msg::signal(EP_DGEMM));
            return;
        }
        self.run_dgemm(ctx, gs_array, me);
    }

    /// DGEMM over the accumulated tiles: S = Lᵀ · R,
    /// (grain × pts) · (pts × grain).
    fn run_dgemm(&mut self, ctx: &mut Ctx<'_>, gs_array: ArrayId, me: Idx) {
        let (grain, pts) = (self.cfg.grain, self.cfg.pts);
        ctx.charge_flops(gemm_flops(grain, grain, pts));
        self.dgemms += 1;
        self.t_last_dgemm = ctx.now();
        if self.cfg.variant == Variant::Ckd {
            for i in 0..self.in_handles.len() {
                let h = self.in_handles[i];
                if self.cfg.ready_split {
                    // release now; poll again only when the next forward
                    // phase is announced (EP_STEP)
                    ctx.direct_ready_mark(h).expect("mark");
                } else {
                    ctx.direct_ready(h).expect("ready");
                }
            }
        }
        // backward path: results to the left-member GS chares (messages in
        // both variants, as in the paper)
        let bi = me.at(0);
        let p = me.at(2);
        let wire = self.cfg.points_bytes();
        for k in 0..self.cfg.grain {
            let s = bi * self.cfg.grain + k;
            let gs = ctx.element(gs_array, Idx::i2(s, p));
            ctx.send(gs, Msg::value(EP_RESULT, (), wire));
        }
    }
}

// -------------------------------------------------------------- controller

/// Single chare coordinating steps: collects the end-of-step barrier and
/// broadcasts the next step to both arrays.
struct Controller {
    cfg: OpenAtomCfg,
    gs_array: Option<ArrayId>,
    pc_array: Option<ArrayId>,
    step: u32,
}

impl Chare for Controller {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_STEP_DONE => {
                self.step += 1;
                if self.step <= self.cfg.steps {
                    ctx.broadcast(self.gs_array.unwrap(), Msg::signal(EP_STEP));
                    ctx.broadcast(self.pc_array.unwrap(), Msg::signal(EP_STEP));
                }
            }
            other => panic!("controller: unexpected {other:?}"),
        }
    }
}

// A wrapper so GS/PC chares can reach the array ids and controller
// reference; they are fixed after machine construction.
struct Wiring {
    gs_array: ArrayId,
    pc_array: ArrayId,
    controller: ckd_charm::ChareRef,
}

struct Gs {
    inner: GsChare,
    wiring: Option<Wiring>,
}

struct Pc {
    inner: PcChare,
    wiring: Option<Wiring>,
}

impl Chare for Gs {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let w = self.wiring.as_ref().expect("wired");
        let (pc_array, controller) = (w.pc_array, w.controller);
        match msg.ep {
            EP_SETUP => match self.inner.cfg.variant {
                Variant::Msg => {
                    ctx.contribute(
                        RedVal::Unit,
                        RedOp::Barrier,
                        RedTarget::Single(controller, EP_STEP_DONE),
                    );
                }
                Variant::Ckd => {
                    // one send region shared by all 2g channels (no-copy
                    // multicast); ship a handle request to each PC instead:
                    // the *receiver* creates handles, so GS asks each PC by
                    // message and the PC replies with EP_HANDLE
                    let region = Region::alloc(self.inner.cfg.points_bytes().clamp(16, 64));
                    region.set_last_word(0x5AA5_5AA5_5AA5_5AA5);
                    self.inner.send_region = Some(region);
                    for (bi, bj, left) in self.inner.my_pcs() {
                        let target = ctx.element(pc_array, Idx::i3(bi, bj, self.inner.p));
                        ctx.send(
                            target,
                            Msg::value(EP_SETUP, (ctx.me(), self.inner.s, left), 24),
                        );
                    }
                }
            },
            EP_HANDLE => {
                let hm = *msg.payload.downcast::<HandleMsg>().unwrap();
                ctx.direct_assoc_local(hm.handle, self.inner.send_region.clone().unwrap())
                    .expect("assoc");
                self.inner.out_handles.push(hm.handle);
                self.inner.setup_acks += 1;
                if self.inner.setup_acks == 2 * self.inner.cfg.g() {
                    ctx.contribute(
                        RedVal::Unit,
                        RedOp::Barrier,
                        RedTarget::Single(controller, EP_STEP_DONE),
                    );
                }
            }
            EP_STEP => {
                if self.inner.t_first.is_none() {
                    self.inner.t_first = Some(ctx.now());
                }
                self.inner.step += 1;
                if self.inner.cfg.pc_only {
                    // other phases disabled: go straight to the forward path
                    self.inner.phase1_done = true;
                    self.inner.maybe_phase2(ctx, pc_array);
                } else {
                    // phase 1: the surrounding computation (FFTs, density),
                    // modeled as a compute lump + one transpose message
                    // FFTs + density phases: the bulk of a real step
                    let lump = 1500.0 * self.inner.cfg.pts as f64;
                    ctx.charge_flops(lump);
                    let partner_s = (self.inner.s + 1) % self.inner.cfg.nstates;
                    let gs_arr = self.wiring.as_ref().unwrap().gs_array;
                    let partner = ctx.element(gs_arr, Idx::i2(partner_s, self.inner.p));
                    ctx.send(
                        partner,
                        Msg::value(EP_TRANSPOSE, (), self.inner.cfg.points_bytes()),
                    );
                    self.inner.phase1_done = true;
                    self.inner.maybe_phase2(ctx, pc_array);
                }
            }
            EP_TRANSPOSE => {
                self.inner.transpose_in = true;
                self.inner.maybe_phase2(ctx, pc_array);
            }
            EP_RESULT => {
                self.inner.results_in += 1;
                if self.inner.results_in == self.inner.expected_results() {
                    self.inner.results_in = 0;
                    self.inner.t_done = ctx.now();
                    // small update applying the orthonormalization result
                    ctx.charge_flops(4.0 * self.inner.cfg.pts as f64);
                    ctx.contribute(
                        RedVal::Unit,
                        RedOp::Barrier,
                        RedTarget::Single(controller, EP_STEP_DONE),
                    );
                }
            }
            other => panic!("GS: unexpected {other:?}"),
        }
    }
}

impl Chare for Pc {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let w = self.wiring.as_ref().expect("wired");
        let gs_array = w.gs_array;
        let me = ctx.my_index();
        match msg.ep {
            EP_SETUP => {
                // a GS asked for a channel: create the inbound window and
                // return the handle
                let (gs_ref, _s, _left) = *msg
                    .payload
                    .downcast::<(ckd_charm::ChareRef, usize, bool)>()
                    .unwrap();
                let len = self.inner.cfg.points_bytes().clamp(16, 64);
                let region = Region::alloc(len);
                let h = ctx
                    .direct_create_handle_wire(
                        region.clone(),
                        OOB_PATTERN,
                        self.inner.in_handles.len() as u32,
                        self.inner.cfg.points_bytes(),
                    )
                    .expect("create");
                self.inner.in_regions.push(region);
                self.inner.in_handles.push(h);
                ctx.send(gs_ref, Msg::value(EP_HANDLE, HandleMsg { handle: h }, 16));
            }
            EP_STEP => {
                // phase boundary: with the split protocol, this is where
                // polling resumes — right before the forward path
                if self.inner.cfg.variant == Variant::Ckd && self.inner.cfg.ready_split {
                    for i in 0..self.inner.in_handles.len() {
                        let h = self.inner.in_handles[i];
                        ctx.direct_ready_poll_q(h).expect("pollq");
                    }
                }
            }
            EP_POINTS => {
                debug_assert_eq!(self.inner.cfg.variant, Variant::Msg);
                self.inner.on_points(ctx, gs_array, me);
            }
            EP_DGEMM => {
                self.inner.run_dgemm(ctx, gs_array, me);
            }
            other => panic!("PC: unexpected {other:?}"),
        }
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, _handle: HandleId) {
        let w = self.wiring.as_ref().expect("wired");
        let gs_array = w.gs_array;
        let me = ctx.my_index();
        self.inner.on_points(ctx, gs_array, me);
    }
}

/// Run the mini-OpenAtom benchmark.
pub fn run_openatom(platform: Platform, pes: usize, cfg: OpenAtomCfg) -> OpenAtomResult {
    let mut m = platform.machine(pes);
    run_openatom_on(&mut m, cfg)
}

/// [`run_openatom`] on a caller-built machine — used by the sanitizer suite
/// to run with race checking enabled and inspect the diagnostics after.
pub fn run_openatom_on(m: &mut ckd_charm::Machine, cfg: OpenAtomCfg) -> OpenAtomResult {
    assert_eq!(cfg.nstates % cfg.grain, 0, "grain must divide nstates");
    assert!(cfg.pts * 8 >= 16, "points buffer too small");
    let g = cfg.g();

    let gs_dims = Dims::d2(cfg.nstates, cfg.nplanes);
    let gs_array = m.create_array("GS", gs_dims, Mapper::Block, |idx| {
        Box::new(Gs {
            inner: GsChare {
                cfg,
                s: idx.at(0),
                p: idx.at(1),
                out_handles: Vec::new(),
                send_region: None,
                setup_acks: 0,
                step: 0,
                transpose_in: false,
                results_in: 0,
                phase1_done: false,
                lossy_puts: 0,
                t_first: None,
                t_done: Time::ZERO,
            },
            wiring: None,
        })
    });
    let pc_dims = Dims::d3(g, g, cfg.nplanes);
    let pc_array = m.create_array("PC", pc_dims, Mapper::Block, |_| {
        Box::new(Pc {
            inner: PcChare {
                cfg,
                in_handles: Vec::new(),
                in_regions: Vec::new(),
                points_in: 0,
                dgemms: 0,
                t_last_dgemm: Time::ZERO,
            },
            wiring: None,
        })
    });
    let ctl_array = m.create_array("ctl", Dims::d1(1), Mapper::Block, |_| {
        Box::new(Controller {
            cfg,
            gs_array: None,
            pc_array: None,
            step: 0,
        })
    });
    let controller = m.element(ctl_array, Idx::i1(0));
    m.with_chare_mut::<Controller>(controller, |c| {
        c.gs_array = Some(gs_array);
        c.pc_array = Some(pc_array);
    });
    let wiring = || Wiring {
        gs_array,
        pc_array,
        controller,
    };
    for lin in 0..gs_dims.len() {
        m.with_chare_mut::<Gs>(
            ckd_charm::ChareRef {
                array: gs_array,
                lin: lin as u32,
            },
            |c| c.wiring = Some(wiring()),
        );
    }
    for lin in 0..pc_dims.len() {
        m.with_chare_mut::<Pc>(
            ckd_charm::ChareRef {
                array: pc_array,
                lin: lin as u32,
            },
            |c| c.wiring = Some(wiring()),
        );
    }

    m.seed_broadcast(gs_array, Msg::signal(EP_SETUP));
    let total = m.run();

    // timing: steps measured at GS(0,0) from first EP_STEP to last result
    let gs0 = m.element(gs_array, Idx::i2(0, 0));
    let c0 = m.chare::<Gs>(gs0).unwrap();
    assert_eq!(c0.inner.step, cfg.steps, "incomplete run");
    let t0 = c0.inner.t_first.expect("stepped");
    let mut t1 = Time::ZERO;
    let mut lossy_puts = 0u64;
    for lin in 0..gs_dims.len() {
        let c = m
            .chare::<Gs>(ckd_charm::ChareRef {
                array: gs_array,
                lin: lin as u32,
            })
            .unwrap();
        assert_eq!(c.inner.step, cfg.steps, "GS {lin} incomplete");
        t1 = t1.max(c.inner.t_done);
        lossy_puts += c.inner.lossy_puts;
    }
    for lin in 0..pc_dims.len() {
        let c = m
            .chare::<Pc>(ckd_charm::ChareRef {
                array: pc_array,
                lin: lin as u32,
            })
            .unwrap();
        assert_eq!(c.inner.dgemms, cfg.steps, "PC {lin} incomplete");
    }
    let poll_checks = m.direct_counters().poll_checks;
    OpenAtomResult {
        time_per_step: (t1 - t0) / cfg.steps as u64,
        total,
        steps: cfg.steps,
        poll_checks,
        lossy_puts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ABE2: Platform = Platform::IbAbe { cores_per_node: 2 };

    fn cfg(variant: Variant, ready_split: bool, pc_only: bool) -> OpenAtomCfg {
        OpenAtomCfg {
            nstates: 16,
            nplanes: 4,
            grain: 4,
            pts: 32,
            steps: 3,
            variant,
            pc_only,
            ready_split,
        }
    }

    #[test]
    fn msg_variant_completes() {
        let r = run_openatom(ABE2, 8, cfg(Variant::Msg, false, false));
        assert_eq!(r.steps, 3);
        assert!(r.time_per_step > Time::ZERO);
        assert_eq!(r.poll_checks, 0, "MSG run never polls");
    }

    #[test]
    fn ckd_variant_completes_and_polls() {
        let r = run_openatom(ABE2, 8, cfg(Variant::Ckd, false, false));
        assert_eq!(r.steps, 3);
        assert!(r.poll_checks > 0);
    }

    #[test]
    fn ckd_works_on_bgp() {
        let r = run_openatom(Platform::Bgp, 8, cfg(Variant::Ckd, false, false));
        assert_eq!(r.steps, 3);
        assert_eq!(r.poll_checks, 0, "BG/P backend delivers via callbacks");
    }

    #[test]
    fn ready_split_reduces_poll_checks() {
        // §5.2: bounding the polling window must strictly reduce the number
        // of sentinel checks the schedulers perform.
        let naive = run_openatom(ABE2, 8, cfg(Variant::Ckd, false, false));
        let split = run_openatom(ABE2, 8, cfg(Variant::Ckd, true, false));
        assert!(
            split.poll_checks < naive.poll_checks,
            "split {} !< naive {}",
            split.poll_checks,
            naive.poll_checks
        );
    }

    #[test]
    fn ready_split_is_faster_with_many_channels() {
        // the paper's experience: with enough channels per PE, naive
        // polling makes CkDirect slower; the split restores the win
        let big = OpenAtomCfg {
            nstates: 32,
            nplanes: 4,
            grain: 4,
            pts: 32,
            steps: 3,
            variant: Variant::Ckd,
            pc_only: false,
            ready_split: false,
        };
        let naive = run_openatom(ABE2, 4, big);
        let split = run_openatom(
            ABE2,
            4,
            OpenAtomCfg {
                ready_split: true,
                ..big
            },
        );
        assert!(
            split.time_per_step <= naive.time_per_step,
            "split {} > naive {}",
            split.time_per_step,
            naive.time_per_step
        );
    }

    #[test]
    fn pc_only_is_faster_than_full_step() {
        let full = run_openatom(ABE2, 8, cfg(Variant::Ckd, true, false));
        let pc = run_openatom(ABE2, 8, cfg(Variant::Ckd, true, true));
        assert!(pc.time_per_step < full.time_per_step);
    }

    #[test]
    fn ckd_with_split_beats_msg() {
        let msg = run_openatom(ABE2, 8, cfg(Variant::Msg, false, false));
        let ckd = run_openatom(ABE2, 8, cfg(Variant::Ckd, true, false));
        assert!(
            ckd.time_per_step < msg.time_per_step,
            "ckd {} !< msg {}",
            ckd.time_per_step,
            msg.time_per_step
        );
    }
}
