//! Runtime-software cost parameters (the overheads CkDirect removes).

use ckd_sim::Time;

/// Converts application work into virtual time.
#[derive(Clone, Copy, Debug)]
pub struct ComputeParams {
    /// Sustained floating-point rate of one PE, flops/second.
    pub flops_per_sec: f64,
    /// Sustained memory streaming cost, ps per byte touched.
    pub mem_ps_per_byte: u64,
}

impl ComputeParams {
    /// Virtual time for `flops` floating-point operations.
    pub fn flops(&self, flops: f64) -> Time {
        Time::from_secs_f64(flops / self.flops_per_sec)
    }

    /// Virtual time for streaming `bytes` through memory.
    pub fn bytes(&self, bytes: u64) -> Time {
        Time::from_ps(self.mem_ps_per_byte * bytes)
    }
}

/// Costs of the message-driven runtime itself, per machine.
///
/// These are exactly the terms the paper's §3 analysis decomposes the
/// Default-vs-CkDirect gap into: envelope bytes, message allocation,
/// scheduling overhead, and (for the polling backend) the per-handle poll
/// cost and detection gap.
#[derive(Clone, Copy, Debug)]
pub struct RtsConfig {
    /// Envelope prepended to every Charm++ message (~80 B in the paper).
    pub env_bytes: usize,
    /// Message allocation + header setup on the sender.
    pub alloc: Time,
    /// Size-dependent part of allocation/buffer management, ps/B (the
    /// slowly-growing copy term observed on BG/P).
    pub alloc_ps_per_byte: u64,
    /// Scheduler cost per delivered message: dequeue, envelope decode,
    /// entry-method dispatch.
    pub sched: Time,
    /// Cost of checking one CkDirect handle's sentinel during a poll sweep.
    pub poll_per_handle: Time,
    /// Cost of invoking a CkDirect completion callback (a plain function
    /// call — this is what replaces `sched`).
    pub callback_cost: Time,
    /// Gap between an RDMA put landing on an *idle* PE and the polling loop
    /// noticing it.
    pub idle_poll_gap: Time,
    /// Default Charm++ eager→rendezvous switch point in bytes (the paper
    /// observes the switch between 20 KB and 30 KB on Abe).
    pub eager_max: usize,
    /// Compute-time conversion for application kernels.
    pub compute: ComputeParams,
}

impl RtsConfig {
    /// Charm++ software costs on the Abe Infiniband cluster, fitted to the
    /// Default-vs-CkDirect gaps of Table 1 (≈ 5.3 µs at 100 B: envelope
    /// wire time + allocation + envelope processing + scheduling).
    pub fn ib_abe() -> RtsConfig {
        RtsConfig {
            env_bytes: 80,
            alloc: Time::from_ns(700),
            alloc_ps_per_byte: 0,
            sched: Time::from_ns(2500),
            poll_per_handle: Time::from_ns(50),
            callback_cost: Time::from_ns(200),
            idle_poll_gap: Time::from_ns(150),
            eager_max: 20 * 1024,
            compute: ComputeParams {
                // 2.33 GHz Clovertown core, memory-bound stencil codes see
                // well under peak; 2 Gflop/s effective.
                flops_per_sec: 2.0e9,
                mem_ps_per_byte: 350,
            },
        }
    }

    /// Charm++ software costs on Blue Gene/P, fitted to the ≈ 4.7 µs
    /// one-way gap of Table 2 (slower 850 MHz cores make the software
    /// terms larger even though the network is leaner).
    pub fn bgp() -> RtsConfig {
        RtsConfig {
            env_bytes: 80,
            alloc: Time::from_ns(1500),
            alloc_ps_per_byte: 6,
            sched: Time::from_ns(3000),
            poll_per_handle: Time::from_ns(120),
            callback_cost: Time::from_ns(250),
            idle_poll_gap: Time::from_ns(200),
            // no RDMA rendezvous was installed on Surveyor: the eager path
            // is used at every size (threshold effectively infinite)
            eager_max: usize::MAX,
            compute: ComputeParams {
                flops_per_sec: 0.85e9,
                mem_ps_per_byte: 700,
            },
        }
    }

    /// Charm++-style software costs on a modern Slingshot-class system:
    /// faster cores shrink every software term relative to Abe, and the
    /// notified backend never polls, so `poll_per_handle` only matters if
    /// the user forces the sentinel backend onto this fabric.
    pub fn slingshot() -> RtsConfig {
        RtsConfig {
            env_bytes: 80,
            alloc: Time::from_ns(400),
            alloc_ps_per_byte: 0,
            sched: Time::from_ns(1500),
            poll_per_handle: Time::from_ns(30),
            callback_cost: Time::from_ns(120),
            idle_poll_gap: Time::from_ns(100),
            eager_max: 16 * 1024,
            compute: ComputeParams {
                // modern server core, memory-bound stencil codes; 8 Gflop/s
                // effective.
                flops_per_sec: 8.0e9,
                mem_ps_per_byte: 120,
            },
        }
    }

    /// Small, round numbers for unit tests.
    pub fn test() -> RtsConfig {
        RtsConfig {
            env_bytes: 64,
            alloc: Time::from_ns(500),
            alloc_ps_per_byte: 0,
            sched: Time::from_ns(2000),
            poll_per_handle: Time::from_ns(100),
            callback_cost: Time::from_ns(200),
            idle_poll_gap: Time::from_ns(100),
            eager_max: 16 * 1024,
            compute: ComputeParams {
                flops_per_sec: 1.0e9,
                mem_ps_per_byte: 500,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_conversion() {
        let c = RtsConfig::test().compute;
        assert_eq!(c.flops(1e9), Time::from_secs_f64(1.0));
        assert_eq!(c.flops(0.0), Time::ZERO);
    }

    #[test]
    fn bytes_conversion() {
        let c = RtsConfig::test().compute;
        assert_eq!(c.bytes(1000), Time::from_ns(500));
    }

    #[test]
    fn presets_are_sane() {
        for cfg in [
            RtsConfig::ib_abe(),
            RtsConfig::bgp(),
            RtsConfig::slingshot(),
        ] {
            assert!(cfg.env_bytes >= 64);
            assert!(cfg.sched > cfg.callback_cost, "callback must beat sched");
            assert!(cfg.poll_per_handle < Time::from_us(1));
        }
        // BG/P never switches to rendezvous
        assert_eq!(RtsConfig::bgp().eager_max, usize::MAX);
    }
}
