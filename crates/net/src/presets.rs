//! Calibrated parameter presets for the paper's two testbeds.
//!
//! Constants are fitted to Tables 1–2 of the paper (one-way time = reported
//! round trip / 2). We fit the CkDirect rows first — they expose the bare
//! wire (`put(n) ≈ issue + latency + β·n`) — then back out the software
//! overheads from the gaps to the other rows. See `EXPERIMENTS.md` for the
//! resulting fit of every cell.

use ckd_sim::Time;
use ckd_topo::Machine;

use crate::model::NetModel;
use crate::params::{
    CqParams, DcmfParams, FabricParams, IbParams, SharedMemParams, SlingshotParams, WireParams,
};

/// Infiniband parameters fitted to the Abe rows of Table 1.
///
/// Derivation from the table (one-way µs):
/// * CkDirect slope 100 KB→500 KB: (647.2 − 137.7)/400 000 B ≈ **1.27 ns/B**;
///   we use 1.28 ns/B (≈ 780 MB/s, a credible 2008 SDR/DDR verbs rate).
/// * CkDirect at 100 B is 6.19 µs ⇒ `rdma_issue + latency ≈ 6.06 µs`; with
///   a 3-hop fat-tree path: `0.30 + 4.55 + 3×0.35 = 5.90`, the remainder is
///   the receiver's poll-detection gap charged by the runtime.
/// * Default Charm++ eager slope exceeds the wire by ≈ 0.45 ns/B — the
///   receiver-side copy out of the bounce buffers.
/// * The default-vs-CkDirect gap jumps by ≈ 30 µs between 20 KB and 30 KB —
///   the eager→rendezvous switch: an RTS/CTS round trip (≈ 2×6 µs) plus an
///   uncached memory registration (`reg_base ≈ 15 µs` + 0.04 ns/B pinning).
pub fn ib_abe_params() -> IbParams {
    IbParams {
        wire: WireParams {
            base_latency: Time::from_ns(4550),
            per_hop: Time::from_ns(350),
            ps_per_byte: 1280,
            per_packet: Time::from_ns(300),
            packet_bytes: 4096,
        },
        shmem: SharedMemParams {
            latency: Time::from_ns(600),
            ps_per_byte: 250,
        },
        o_send: Time::from_ns(800),
        o_recv: Time::from_ns(1200),
        eager_copy_ps_per_byte: 450,
        rdma_issue: Time::from_ns(300),
        reg_base: Time::from_us(15),
        reg_ps_per_byte: 40,
        control_bytes: 32,
    }
}

/// Blue Gene/P (Surveyor) parameters fitted to Table 2.
///
/// Derivation:
/// * CkDirect slope 100 KB→500 KB: (1338.5 − 271.8)/400 000 B ≈ **2.67 ns/B**
///   (≈ 375 MB/s, consistent with BG/P's 425 MB/s links).
/// * CkDirect at 100 B is 2.57 µs one-way, bracketing the 1.9 µs DCMF
///   latency the paper cites from its reference \[8\]: `o_send 0.30 + base 1.20 + hop 0.05 +
///   serialize ≈ 0.35 + o_recv 0.30 + short copy ≈ 0.03 + runtime callback`.
/// * The torus moves 240 B packets; the per-packet cost is small but gives
///   packetised sends their slightly super-linear mid-range growth.
/// * No RDMA: "the supporting rendezvous protocol was not installed on
///   Surveyor", so the model exposes no one-sided path at all.
pub fn bgp_surveyor_params() -> DcmfParams {
    DcmfParams {
        wire: WireParams {
            base_latency: Time::from_ns(1200),
            per_hop: Time::from_ns(50),
            ps_per_byte: 2640,
            per_packet: Time::from_ns(5),
            packet_bytes: 240,
        },
        shmem: SharedMemParams {
            latency: Time::from_ns(900),
            ps_per_byte: 400,
        },
        o_send: Time::from_ns(300),
        o_recv: Time::from_ns(300),
        short_max: 224,
        short_copy_ps_per_byte: 300,
        info_bytes: 32,
        control_bytes: 16,
    }
}

/// HPE Slingshot-class parameters (the RAMC/UNR testbed generation).
///
/// Not fitted to the paper (which predates Slingshot); constants follow the
/// published characteristics of a 200 Gb/s Slingshot-11 fabric:
/// * ≈ 1.8 µs base one-way latency, ≈ 0.22 µs per switch hop (dragonfly).
/// * 200 Gb/s ⇒ 25 GB/s ⇒ 0.04 ns/B; we charge 45 ps/B for protocol slack.
/// * Light registration (`reg_base` 2 µs, 5 ps/B): libfabric memory
///   registration over Cassini is far cheaper than 2008-era verbs pinning.
/// * The notified put deposits a 16 B record in the target CQ; draining
///   costs a 200 ns doorbell read per pass plus 120 ns per record, up to 8
///   records per pass, against a 1024-deep modeled CQ.
pub fn slingshot_params() -> SlingshotParams {
    SlingshotParams {
        rdma: IbParams {
            wire: WireParams {
                base_latency: Time::from_ns(1800),
                per_hop: Time::from_ns(220),
                ps_per_byte: 45,
                per_packet: Time::from_ns(40),
                packet_bytes: 4096,
            },
            shmem: SharedMemParams {
                latency: Time::from_ns(250),
                ps_per_byte: 60,
            },
            o_send: Time::from_ns(250),
            o_recv: Time::from_ns(400),
            eager_copy_ps_per_byte: 120,
            rdma_issue: Time::from_ns(120),
            reg_base: Time::from_us(2),
            reg_ps_per_byte: 5,
            control_bytes: 32,
        },
        cq: CqParams {
            notify_bytes: 16,
            drain_per_notification: Time::from_ns(120),
            drain_base: Time::from_ns(200),
            drain_batch: 8,
            depth: 1024,
        },
    }
}

/// A ready-to-use model of the Abe Infiniband cluster.
pub fn ib_abe(machine: Machine) -> NetModel {
    NetModel::new(machine, FabricParams::IbVerbs(ib_abe_params()))
}

/// A ready-to-use model of a Slingshot-class notified-RMA machine.
pub fn slingshot(machine: Machine) -> NetModel {
    NetModel::new(machine, FabricParams::Slingshot(slingshot_params()))
}

/// A ready-to-use model of the Surveyor Blue Gene/P.
pub fn bgp_surveyor(machine: Machine) -> NetModel {
    NetModel::new(machine, FabricParams::Dcmf(bgp_surveyor_params()))
}

/// An idealised fabric for unit tests: crossbar wiring, round constants.
pub fn test_fabric(machine: Machine) -> NetModel {
    NetModel::new(
        machine,
        FabricParams::IbVerbs(IbParams {
            wire: WireParams {
                base_latency: Time::from_us(1),
                per_hop: Time::from_ns(100),
                ps_per_byte: 1000,
                per_packet: Time::from_ns(100),
                packet_bytes: 4096,
            },
            shmem: SharedMemParams {
                latency: Time::from_ns(500),
                ps_per_byte: 250,
            },
            o_send: Time::from_ns(500),
            o_recv: Time::from_ns(500),
            eager_copy_ps_per_byte: 400,
            rdma_issue: Time::from_ns(200),
            reg_base: Time::from_us(10),
            reg_ps_per_byte: 40,
            control_bytes: 32,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckd_topo::Pe;

    /// Raw-wire sanity: the CkDirect put path alone must land within ~1 µs of
    /// the paper's one-way value minus runtime costs (tight calibration of
    /// the *full* path happens in the pingpong app tests).
    #[test]
    fn ib_put_100b_near_table1() {
        let m = ib_abe(Machine::ib_cluster(256, 8));
        // choose PEs on different leaf switches: 3 hops, the common case
        let t = m.put(Pe(0), Pe(200), 100);
        let us = t.delay.as_us_f64();
        assert!((5.0..6.4).contains(&us), "got {us}");
    }

    #[test]
    fn ib_put_500kb_near_table1() {
        let m = ib_abe(Machine::ib_cluster(256, 8));
        let t = m.put(Pe(0), Pe(200), 500_000);
        let us = t.delay.as_us_f64();
        // paper: 647 µs one-way including runtime detection
        assert!((620.0..660.0).contains(&us), "got {us}");
    }

    #[test]
    fn bgp_put_100b_near_table2() {
        let m = bgp_surveyor(Machine::bgp_partition(8));
        let t = m.put(Pe(0), Pe(4), 100);
        let total = (t.delay + t.recv_cpu).as_us_f64();
        // paper: 2.57 µs one-way including runtime callback cost
        assert!((1.8..2.6).contains(&total), "got {total}");
    }

    #[test]
    fn bgp_put_500kb_near_table2() {
        let m = bgp_surveyor(Machine::bgp_partition(8));
        let t = m.put(Pe(0), Pe(4), 500_000);
        let total = (t.delay + t.recv_cpu).as_us_f64();
        // paper: 1338 µs one-way
        assert!((1280.0..1400.0).contains(&total), "got {total}");
    }

    #[test]
    fn slingshot_put_is_a_generation_faster_than_abe() {
        let ss = slingshot(Machine::ib_cluster(256, 8));
        let abe = ib_abe(Machine::ib_cluster(256, 8));
        for bytes in [100usize, 100_000, 500_000] {
            let a = ss.put(Pe(0), Pe(200), bytes);
            let b = abe.put(Pe(0), Pe(200), bytes);
            assert!(
                a.delay < b.delay,
                "{bytes}B: slingshot {:?} !< abe {:?}",
                a.delay,
                b.delay
            );
        }
        // 200 Gb/s class: a 500 KB put clears in well under 100 µs one-way.
        assert!(ss.put(Pe(0), Pe(200), 500_000).delay < Time::from_us(100));
    }

    #[test]
    fn slingshot_puts_stay_one_sided_and_carry_the_notification() {
        let ss = slingshot(Machine::ib_cluster(16, 4));
        let t = ss.put(Pe(0), Pe(8), 4096);
        assert_eq!(t.recv_cpu, Time::ZERO, "drain cost is charged at the CQ");
        // the 16 B notification record adds wire time over a bare RDMA put
        let bare = crate::model::NetModel::new(
            Machine::ib_cluster(16, 4),
            FabricParams::IbVerbs(slingshot_params().rdma),
        );
        assert!(t.delay > bare.put(Pe(0), Pe(8), 4096).delay);
    }

    #[test]
    fn slingshot_registration_is_light() {
        let ss = slingshot(Machine::ib_cluster(16, 4));
        let abe = ib_abe(Machine::ib_cluster(16, 4));
        assert!(ss.reg_cost(1 << 20) < abe.reg_cost(1 << 20));
        assert!(ss.reg_cost(4096) > Time::ZERO);
    }
}
