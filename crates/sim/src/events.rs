//! The event queue: a priority queue over `(Time, sequence)` keys.
//!
//! The queue is generic over the event payload so that each layer of the
//! stack (network, runtime, MPI model) can define its own event enum and pay
//! no boxing cost. FIFO order among same-timestamp events is guaranteed by a
//! monotonically increasing sequence number, which is what makes the whole
//! simulation deterministic.
//!
//! # Representation
//!
//! The hot path of the simulator is push/pop on this queue, and event
//! payloads are large (message payloads, byte buffers). A naive
//! `BinaryHeap<(Time, u64, E)>` moves whole payloads on every sift. Instead
//! the heap holds 24-byte entries — a packed `u128` key
//! (`time_ps << 64 | seq`, unique because `seq` is monotone) plus a `u32`
//! slot index — while payloads sit still in a slab recycled through a
//! freelist. One integer compare per sift step, no payload moves, no
//! per-event allocation once the slab has warmed up. The pop order is
//! exactly the `(Time, seq)` lexicographic order of the old representation:
//! the packed key compares identically and every key is unique, so ties
//! cannot arise.

use crate::time::Time;

/// Heap entry: packed `(time, seq)` key plus the payload's slab slot.
#[derive(Clone, Copy)]
struct Entry {
    key: u128,
    slot: u32,
}

#[inline]
fn pack(at: Time, seq: u64) -> u128 {
    ((at.as_ps() as u128) << 64) | seq as u128
}

#[inline]
fn key_time(key: u128) -> Time {
    Time::from_ps((key >> 64) as u64)
}

/// A deterministic min-priority queue of timed events.
pub struct EventQueue<E> {
    /// Hand-rolled min-heap over packed keys (smallest key at index 0).
    heap: Vec<Entry>,
    /// Payload slab; `None` slots are free and listed in `free`.
    slots: Vec<Option<E>>,
    free: Vec<u32>,
    seq: u64,
    /// The timestamp of the most recently popped event. Pushing an event
    /// earlier than this is a causality violation and panics in debug builds.
    horizon: Time,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the horizon at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            horizon: Time::ZERO,
            popped: 0,
        }
    }

    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            seq: 0,
            horizon: Time::ZERO,
            popped: 0,
        }
    }

    /// Schedule `ev` to fire at absolute time `at`.
    ///
    /// `at` may equal the current horizon (same-timestamp events run in FIFO
    /// push order) but must not precede it.
    #[inline]
    pub fn push(&mut self, at: Time, ev: E) {
        debug_assert!(
            at >= self.horizon,
            "causality violation: scheduling at {at} behind horizon {}",
            self.horizon
        );
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(ev);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Some(ev));
                s
            }
        };
        self.heap.push(Entry {
            key: pack(at, seq),
            slot,
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Remove and return the earliest event, advancing the horizon to its
    /// timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let root = *self.heap.first()?;
        self.remove_root();
        Some(self.take(root))
    }

    /// [`EventQueue::pop`], but only if the earliest event fires at or
    /// before `limit` — the scheduler-loop fast path (one heap access
    /// instead of a peek followed by a pop).
    #[inline]
    pub fn pop_before(&mut self, limit: Time) -> Option<(Time, E)> {
        let root = *self.heap.first()?;
        if key_time(root.key) > limit {
            return None;
        }
        self.remove_root();
        Some(self.take(root))
    }

    /// Timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.first().map(|e| key_time(e.key))
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The virtual time of the most recently popped event.
    #[inline]
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Total number of events ever popped (a cheap progress metric).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Slab slots currently allocated (capacity watermark, not pending
    /// count) — lets tests assert the freelist actually recycles.
    pub fn slab_slots(&self) -> usize {
        self.slots.len()
    }

    // ---- internals --------------------------------------------------------

    /// Drop the root entry out of the heap, restoring the heap property.
    #[inline]
    fn remove_root(&mut self) {
        let last = self.heap.pop().expect("caller checked non-empty");
        if let Some(first) = self.heap.first_mut() {
            *first = last;
            self.sift_down(0);
        }
    }

    /// Extract the payload of a removed entry and account the pop.
    #[inline]
    fn take(&mut self, e: Entry) -> (Time, E) {
        let ev = self.slots[e.slot as usize]
            .take()
            .expect("heap entry points at a live slot");
        self.free.push(e.slot);
        let at = key_time(e.key);
        debug_assert!(at >= self.horizon);
        self.horizon = at;
        self.popped += 1;
        (at, ev)
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].key <= entry.key {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = entry;
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let entry = self.heap[i];
        loop {
            let mut child = 2 * i + 1;
            if child >= len {
                break;
            }
            let right = child + 1;
            if right < len && self.heap[right].key < self.heap[child].key {
                child = right;
            }
            if entry.key <= self.heap[child].key {
                break;
            }
            self.heap[i] = self.heap[child];
            i = child;
        }
        self.heap[i] = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), "c");
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_advances() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(7), ());
        assert_eq!(q.horizon(), Time::ZERO);
        q.pop();
        assert_eq!(q.horizon(), Time::from_ns(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    #[cfg(debug_assertions)]
    fn rejects_events_behind_horizon() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), ());
        q.pop();
        q.push(Time::from_ns(5), ());
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(40), 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Time::from_ns(20), 2);
        q.push(Time::from_ns(30), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(3), "x");
        assert_eq!(q.peek_time(), Some(Time::from_ns(3)));
        assert_eq!(q.len(), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_ns(3));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_before_respects_the_limit() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), "early");
        q.push(Time::from_ns(30), "late");
        assert_eq!(q.pop_before(Time::from_ns(5)), None);
        assert_eq!(
            q.pop_before(Time::from_ns(10)),
            Some((Time::from_ns(10), "early"))
        );
        assert_eq!(q.pop_before(Time::from_ns(20)), None);
        assert_eq!(q.pop_before(Time::MAX), Some((Time::from_ns(30), "late")));
        assert_eq!(q.pop_before(Time::MAX), None);
        assert_eq!(q.horizon(), Time::from_ns(30));
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    fn freelist_recycles_slab_slots() {
        let mut q = EventQueue::new();
        // Steady-state ping-pong: one pending event at a time should never
        // grow the slab beyond the high-water mark of concurrent events.
        q.push(Time::from_ns(1), 0u64);
        for i in 1..1000u64 {
            let (t, _) = q.pop().unwrap();
            q.push(t + Time::from_ns(1), i);
        }
        assert!(q.slab_slots() <= 2, "slab grew to {}", q.slab_slots());
    }
}
