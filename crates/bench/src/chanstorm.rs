//! The channel-storm trajectory (`BENCH_channels.json`): host-cost
//! evidence that poll sweeps no longer scale with the registered-channel
//! count.
//!
//! The file has two sections, split the same way every other `BENCH_*`
//! file is:
//!
//! * a **deterministic** `points` array — virtual time, event counts,
//!   puts/deliveries/poll-checks per registered-herd size. Pure functions
//!   of the run: `scripts/bench_gate.sh` byte-compares this section
//!   against the committed baseline;
//! * a **host** object (always last, so the gate's "everything before
//!   `"host"`" split works) — wall-clock nanoseconds spent inside poll
//!   sweeps at each herd size, and the flatness ratio between the largest
//!   and smallest herd. Host-dependent; gated self-relatively only.
//!
//! The claim under test: with a fixed active window, per-sweep host cost
//! is O(active), so growing the herd 1k→100k (100×) must leave
//! nanoseconds-per-sweep roughly flat. The linear-scan poll plane this PR
//! replaced would show ~100× growth here.

use ckd_apps::chanstorm::{run_chanstorm_on, ChanstormCfg, ChanstormResult};
use ckd_apps::Platform;
use ckd_charm::{Phase, ProfConfig};

/// Schema tag of `BENCH_channels.json`.
pub const CHANNELS_SCHEMA: &str = "ckd-chanstorm/v1";

/// Fixed active window across every herd size.
pub const STORM_ACTIVE: usize = 64;

/// Iterations (waves) per point.
pub const STORM_ITERS: u32 = 20;

/// The registered-herd axis: 1k → 100k channels on one PE.
pub const STORM_REGISTERED: [usize; 3] = [1_000, 10_000, 100_000];

/// One measured point of the trajectory.
pub struct StormPoint {
    /// The run's deterministic outcome.
    pub result: ChanstormResult,
    /// `{:#?}` machine stats (byte-compared across engines).
    pub stats_debug: String,
    /// Poll sweeps executed (host profiler span count).
    pub sweeps: u64,
    /// Wall nanoseconds inside poll sweeps (host-dependent).
    pub poll_ns: u64,
}

impl StormPoint {
    /// Wall nanoseconds per sweep (0.0 before any sweep ran).
    pub fn ns_per_sweep(&self) -> f64 {
        if self.sweeps == 0 {
            0.0
        } else {
            self.poll_ns as f64 / self.sweeps as f64
        }
    }
}

/// Run one channel-storm point on a profiled 2-PE Infiniband machine
/// (`shards > 1` selects the PDES engine, byte-identical by contract).
pub fn run_storm_point(registered: usize, shards: usize) -> StormPoint {
    let mut m = Platform::IbAbe { cores_per_node: 2 }
        .builder(2)
        .with_profiling(ProfConfig { snapshot_every: 0 })
        .with_shards(shards)
        .build();
    let result = run_chanstorm_on(
        &mut m,
        ChanstormCfg {
            registered,
            active: STORM_ACTIVE,
            iters: STORM_ITERS,
        },
    );
    let stats_debug = format!("{:#?}\n", m.stats());
    let poll = m.profiler().shard().expect("profiled run").phases[Phase::Poll.index()];
    StormPoint {
        result,
        stats_debug,
        sweeps: poll.count,
        poll_ns: poll.total_ns,
    }
}

/// The deterministic JSON line of one point (everything in it is a pure
/// function of the run).
pub fn det_line(r: &ChanstormResult) -> String {
    format!(
        "{{\"registered\": {}, \"t_ps\": {}, \"events\": {}, \"puts\": {}, \
         \"deliveries\": {}, \"poll_checks\": {}, \"destroyed\": {}}}",
        r.registered,
        r.total.as_ps(),
        r.events,
        r.puts,
        r.deliveries,
        r.poll_checks,
        r.destroyed,
    )
}

/// Render the full `BENCH_channels.json` text: deterministic `points`
/// first, `host` object last.
pub fn channels_json(points: &[StormPoint], cores: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{CHANNELS_SCHEMA}\",\n"));
    out.push_str(&format!("  \"active\": {STORM_ACTIVE},\n"));
    out.push_str(&format!("  \"iters\": {STORM_ITERS},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            det_line(&p.result),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"host\": {\n");
    out.push_str(&format!("    \"cores\": {cores},\n"));
    out.push_str("    \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"registered\": {}, \"sweeps\": {}, \"poll_ns\": {}, \
             \"ns_per_sweep\": {:.0}}}{}\n",
            p.result.registered,
            p.sweeps,
            p.poll_ns,
            p.ns_per_sweep(),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("    ],\n");
    let (first, last) = (points.first(), points.last());
    let ratio = match (first, last) {
        (Some(f), Some(l)) if f.ns_per_sweep() > 0.0 => l.ns_per_sweep() / f.ns_per_sweep(),
        _ => 0.0,
    };
    out.push_str(&format!("    \"flat_ratio\": {ratio:.2}\n"));
    out.push_str("  }\n}\n");
    out
}

/// Per-point keys of the deterministic section.
const POINT_KEYS: [&str; 7] = [
    "\"registered\"",
    "\"t_ps\"",
    "\"events\"",
    "\"puts\"",
    "\"deliveries\"",
    "\"poll_checks\"",
    "\"destroyed\"",
];

/// Structural check of a `BENCH_channels.json` file: schema tag, balanced
/// delimiters, per-point keys, a strictly growing registered axis, and an
/// exactly-once delivery invariant on every point. Parser-free like
/// `validate_sweep_json` (the workspace is std-only).
pub fn validate_channels_json(s: &str) -> Result<(), String> {
    if !s.starts_with(&format!("{{\n  \"schema\": \"{CHANNELS_SCHEMA}\"")) {
        return Err(format!("missing schema tag {CHANNELS_SCHEMA:?}"));
    }
    if s.matches('{').count() != s.matches('}').count()
        || s.matches('[').count() != s.matches(']').count()
    {
        return Err("unbalanced delimiters".into());
    }
    if !s.contains("  \"host\": {") {
        return Err("missing host object".into());
    }
    let det = s.split("  \"host\": {").next().unwrap();
    let field = |line: &str, key: &str| -> Result<u64, String> {
        let pat = format!("{key}: ");
        let at = line
            .find(&pat)
            .ok_or_else(|| format!("point missing {key}: {line}"))?;
        line[at + pat.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .map_err(|_| format!("non-integer {key}: {line}"))
    };
    let mut points = 0usize;
    let mut last_registered = 0u64;
    for line in det.lines().filter(|l| l.starts_with("    {\"registered\"")) {
        for key in POINT_KEYS {
            if line.matches(key).count() != 1 {
                return Err(format!("point missing key {key}: {line}"));
            }
        }
        let registered = field(line, "\"registered\"")?;
        if registered <= last_registered {
            return Err(format!(
                "registered axis not increasing ({registered} after {last_registered})"
            ));
        }
        last_registered = registered;
        let puts = field(line, "\"puts\"")?;
        if field(line, "\"deliveries\"")? != puts {
            return Err(format!("deliveries != puts: {line}"));
        }
        if field(line, "\"destroyed\"")? != registered {
            return Err(format!("teardown incomplete: {line}"));
        }
        if field(line, "\"poll_checks\"")? < registered {
            return Err(format!("poll_checks below one full sweep: {line}"));
        }
        points += 1;
    }
    if points == 0 {
        return Err("no points".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckd_sim::Time;

    fn fake_point(registered: usize, ns: u64) -> StormPoint {
        StormPoint {
            result: ChanstormResult {
                registered,
                active: STORM_ACTIVE,
                iters: STORM_ITERS,
                total: Time::from_ps(1000),
                puts: 1280,
                deliveries: 1280,
                poll_checks: registered as u64 * 10,
                events: 500,
                destroyed: registered as u64,
            },
            stats_debug: String::new(),
            sweeps: 10,
            poll_ns: ns,
        }
    }

    #[test]
    fn emitted_json_validates() {
        let points = [fake_point(1000, 10_000), fake_point(100_000, 12_000)];
        let json = channels_json(&points, 4);
        validate_channels_json(&json).unwrap();
        // the host object is last, so the bench gate's sed split works
        let det = json.split("  \"host\": {").next().unwrap();
        assert!(det.contains("\"points\": ["));
        assert!(!det.contains("ns_per_sweep"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn validator_rejects_mangled_files() {
        let points = [fake_point(1000, 10_000), fake_point(100_000, 12_000)];
        let good = channels_json(&points, 4);
        assert!(validate_channels_json("").is_err());
        assert!(validate_channels_json("{}\n").is_err());
        let e = validate_channels_json(&good.replace("\"deliveries\": 1280", "\"deliveries\": 7"))
            .unwrap_err();
        assert!(e.contains("deliveries"), "{e}");
        let e = validate_channels_json(&good.replace("\"destroyed\": 1000", "\"destroyed\": 3"))
            .unwrap_err();
        assert!(e.contains("teardown"), "{e}");
        // a shuffled axis is a wrong baseline, not host noise
        let backwards = [fake_point(100_000, 10_000), fake_point(1000, 12_000)];
        assert!(validate_channels_json(&channels_json(&backwards, 4)).is_err());
    }

    #[test]
    fn one_real_point_round_trips() {
        // smallest real run: deterministic line is reproducible and the
        // profiler saw every sweep
        let a = run_storm_point(200, 1);
        let b = run_storm_point(200, 1);
        assert_eq!(det_line(&a.result), det_line(&b.result));
        assert_eq!(a.stats_debug, b.stats_debug);
        assert!(a.sweeps > 0);
        assert_eq!(a.result.destroyed, 200);
    }
}
