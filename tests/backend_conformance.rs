//! Cross-backend differential conformance: the same application, run on
//! every put-completion backend the runtime models — Infiniband sentinel
//! polling, BG/P DCMF callbacks, Slingshot notified puts, and the
//! shared-memory flag backend — must deliver exactly the same data and
//! fire exactly the same completion callbacks. The backends may only
//! disagree about *when* things complete and *what the completion costs*:
//! polling pays sentinel checks, notified RMA pays CQ drains, callbacks
//! and flags pay neither.
//!
//! The suite drives the four apps through `ckd_bench::backends_grid()`
//! (the grid behind `BENCH_backends.json`), so what CI proves here is
//! exactly what the committed trajectory file records.

use std::sync::OnceLock;

use ckd_apps::jacobi3d::{run_jacobi_on, JacobiCfg};
use ckd_apps::{Platform, Variant};
use ckd_bench::{backends_grid, run_sweep, sweep_json, validate_sweep_json, RunRecord};
use ckd_charm::ProgressConfig;

/// Execute the 16-point backend grid once and share the records across
/// the whole suite (each test inspects a different invariant).
fn records() -> &'static [RunRecord] {
    static RECORDS: OnceLock<Vec<RunRecord>> = OnceLock::new();
    RECORDS.get_or_init(|| run_sweep(&backends_grid(), 4))
}

/// The grid groups four backend points per app, in a fixed order.
fn by_app() -> Vec<&'static [RunRecord]> {
    records().chunks(4).collect()
}

#[test]
fn grid_exercises_all_four_backends() {
    for group in by_app() {
        let names: Vec<&str> = group.iter().map(|r| r.backend).collect();
        assert_eq!(
            names,
            [
                "ib-sentinel-poll",
                "dcmf-callback",
                "notified-put",
                "shared-mem"
            ],
            "each app must run once per completion backend"
        );
    }
}

#[test]
fn every_backend_delivers_identical_data() {
    for group in by_app() {
        let base = &group[0];
        let app = base.spec.app.label();
        for r in &group[1..] {
            assert_eq!(
                r.stats.puts, base.stats.puts,
                "{app}: {} issued a different number of puts than {}",
                r.backend, base.backend
            );
            assert_eq!(
                r.stats.put_bytes, base.stats.put_bytes,
                "{app}: {} delivered different bytes than {}",
                r.backend, base.backend
            );
            assert_eq!(
                r.callbacks, base.callbacks,
                "{app}: {} fired a different number of completion callbacks",
                r.backend
            );
            assert_eq!(
                r.stats.reductions, base.stats.reductions,
                "{app}: {} saw a different reduction history",
                r.backend
            );
        }
    }
}

#[test]
fn clean_runs_never_retry_or_degrade() {
    for r in records() {
        assert_eq!(r.lossy_puts, 0, "{}: clean run degraded a put", r.backend);
        assert_eq!(
            r.stats.rel.retries, 0,
            "{}: clean run retried a packet",
            r.backend
        );
    }
}

/// Each completion strategy has a distinctive cost signature — the core
/// claim of the backend abstraction. Sentinel polling is the only backend
/// that examines handles; notified puts are the only backend that drains
/// a completion queue; DCMF callbacks and shared-memory flags do neither.
#[test]
fn backends_have_their_cost_signatures() {
    for r in records() {
        let app = r.spec.app.label();
        match r.backend {
            "ib-sentinel-poll" => {
                assert!(r.poll_checks > 0, "{app}: polling backend never polled");
                assert_eq!(r.cq_drains, 0, "{app}: polling backend drained a CQ");
            }
            "notified-put" => {
                assert!(r.cq_drains > 0, "{app}: notified backend never drained");
                assert_eq!(r.poll_checks, 0, "{app}: notified backend examined handles");
            }
            "dcmf-callback" | "shared-mem" => {
                assert_eq!(r.poll_checks, 0, "{app}: {} polled", r.backend);
                assert_eq!(r.cq_drains, 0, "{app}: {} drained a CQ", r.backend);
            }
            other => panic!("unexpected backend {other:?} in the grid"),
        }
    }
}

/// Every notification that lands must eventually be drained: the CQ-drain
/// count of a completed notified-put run equals its completion-callback
/// count (each drained record delivers exactly one callback).
#[test]
fn notified_runs_drain_exactly_once_per_callback() {
    for r in records().iter().filter(|r| r.backend == "notified-put") {
        assert_eq!(
            r.cq_drains,
            r.callbacks,
            "{}: drained notifications != delivered callbacks",
            r.spec.app.label()
        );
    }
}

#[test]
fn backend_grid_json_round_trips_the_schema() {
    let json = sweep_json("backends", records(), None);
    validate_sweep_json(&json).unwrap();
    assert_eq!(json.matches("\"backend\": \"notified-put\"").count(), 4);
    assert_eq!(json.matches("\"platform\": \"slingshot\"").count(), 4);
}

/// The async progress engine only moves *when* CQ drains happen; the
/// application-visible outcome — numeric result, callback count, data
/// volume — is untouched. This is the conformance-suite view of the
/// transparency property `tests/proptest_invariants.rs` proves over
/// arbitrary interleavings.
#[test]
fn progress_engine_is_transparent_to_the_application() {
    let cfg = JacobiCfg {
        domain: [32, 32, 32],
        chares: [4, 2, 2],
        iters: 12,
        variant: Variant::Ckd,
        real_compute: false,
    };
    let run = |progress: bool| {
        let mut b = Platform::Slingshot.builder(8);
        if progress {
            b = b.with_progress(ProgressConfig::default());
        }
        let mut m = b.build();
        let r = run_jacobi_on(&mut m, cfg);
        (r, m.stats().clone(), m.callback_total())
    };
    let (r0, s0, cb0) = run(false);
    let (r1, s1, cb1) = run(true);
    assert_eq!(r0.iters, r1.iters);
    assert_eq!(r0.residual.to_bits(), r1.residual.to_bits());
    assert_eq!(r0.lossy_puts, r1.lossy_puts);
    assert_eq!(cb0, cb1, "progress engine changed the callback count");
    assert_eq!(s0.puts, s1.puts);
    assert_eq!(s0.put_bytes, s1.put_bytes);
    assert_eq!(s0.cq_drains, s1.cq_drains, "every notification drains once");
    assert_eq!(s0.progress_ticks, 0, "engine off must never tick");
    assert!(
        s1.progress_ticks > 0,
        "engine on never ticked — the cadence is inert"
    );
}
