//! Static communication-graph extraction with cycle detection.
//!
//! For each application source file the extractor recovers the entry-point
//! graph: every `match msg.ep { EP_X => … }` arm becomes a node, and every
//! `EP_Y` mentioned inside an arm (a `Msg::signal(EP_Y)` / `Msg::value(EP_Y,
//! …)` send) becomes an edge `EP_X → EP_Y`. The one-sided plane is folded
//! in through two synthetic nodes: an arm or callback that issues a
//! `direct_put` gets an edge to `<put>`, the `direct_callback` body is the
//! `<callback>` node with edges to whatever it sends, and `<put>` →
//! `<callback>` closes the loop (a put completes by firing the receiver's
//! callback).
//!
//! A cycle through `<put>` is a **ready-wait loop**: a round trip that only
//! makes progress if every participant re-arms its receive window each time
//! around. The report is informational — steady-state application loops
//! (pingpong's bounce, jacobi's halo exchange) are legitimate cycles — but
//! each reported loop names exactly the paths the typestate `skip-ready`
//! rule and the dynamic explorer probe.

use std::collections::{BTreeMap, BTreeSet};

/// The communication graph of one source file.
#[derive(Clone, Debug, Default)]
pub struct CommGraph {
    /// File label the graph was extracted from.
    pub file: String,
    /// Directed edges (from-node, to-node), deduplicated and sorted.
    pub edges: Vec<(String, String)>,
    /// Simple cycles found by DFS (each is the node sequence, first node
    /// repeated at the end).
    pub cycles: Vec<Vec<String>>,
}

impl CommGraph {
    /// Cycles that pass through the one-sided plane (`<put>`): the
    /// ready-wait loops.
    pub fn ready_wait_loops(&self) -> Vec<&Vec<String>> {
        self.cycles
            .iter()
            .filter(|c| c.iter().any(|n| n == "<put>"))
            .collect()
    }

    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!("{}: {} edge(s)\n", self.file, self.edges.len());
        for (a, b) in &self.edges {
            out.push_str(&format!("  {a} -> {b}\n"));
        }
        if self.cycles.is_empty() {
            out.push_str("  no cycles\n");
        }
        for c in &self.cycles {
            let tag = if c.iter().any(|n| n == "<put>") {
                "ready-wait loop"
            } else {
                "message cycle"
            };
            out.push_str(&format!("  {tag}: {}\n", c.join(" -> ")));
        }
        out
    }
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn matching_brace(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        if c == b'{' {
            depth += 1;
        } else if c == b'}' {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    b.len()
}

/// Every `EP_*` identifier in `text`, in order of appearance.
fn ep_idents(text: &str) -> Vec<String> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = text[from..].find("EP_") {
        let at = from + p;
        if at > 0 && is_ident(b[at - 1]) {
            from = at + 3;
            continue;
        }
        let name: String = text[at..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        from = at + name.len();
        out.push(name);
    }
    out
}

/// Split a `match` body into `(arm pattern, arm body)` pairs by scanning
/// for depth-0 `=>`.
fn match_arms(body: &str) -> Vec<(String, String)> {
    let b = body.as_bytes();
    let mut arms = Vec::new();
    let mut i = 0;
    let mut pat_start = 0;
    let mut depth = 0usize;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' => {
                depth += 1;
                i += 1;
            }
            b')' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b'{' => {
                i = matching_brace(b, i) + 1;
            }
            b'=' if depth == 0 && i + 1 < b.len() && b[i + 1] == b'>' => {
                let pat = body[pat_start..i].trim().to_owned();
                let mut j = i + 2;
                while j < b.len() && (b[j] as char).is_whitespace() {
                    j += 1;
                }
                let (arm_body, next) = if j < b.len() && b[j] == b'{' {
                    let close = matching_brace(b, j);
                    (body[j + 1..close].to_owned(), close + 1)
                } else {
                    let mut k = j;
                    let mut d = 0usize;
                    while k < b.len() {
                        match b[k] {
                            b'(' | b'[' => d += 1,
                            b')' | b']' => d = d.saturating_sub(1),
                            b'{' => k = matching_brace(b, k),
                            b',' if d == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    (body[j..k].to_owned(), k + 1)
                };
                arms.push((pat, arm_body));
                i = next;
                pat_start = next;
            }
            _ => i += 1,
        }
    }
    arms
}

/// Extract the communication graph of one source file.
pub fn extract(file: &str, src: &str) -> CommGraph {
    let b = src.as_bytes();
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();

    // entry-point dispatch: match msg.ep { EP_X => … }
    let mut from = 0;
    while let Some(p) = src[from..].find("match msg.ep") {
        let at = from + p;
        from = at + 1;
        let Some(rel_open) = src[at..].find('{') else {
            continue;
        };
        let open = at + rel_open;
        let close = matching_brace(b, open);
        for (pat, body) in match_arms(&src[open + 1..close]) {
            let Some(node) = ep_idents(&pat).into_iter().next() else {
                continue;
            };
            for target in ep_idents(&body) {
                if target != node {
                    edges.insert((node.clone(), target));
                }
            }
            if body.contains("direct_put(") {
                edges.insert((node.clone(), "<put>".to_owned()));
            }
        }
    }

    // the one-sided completion plane
    let mut from = 0;
    while let Some(p) = src[from..].find("fn direct_callback") {
        let at = from + p;
        from = at + 1;
        let Some(rel_open) = src[at..].find('{') else {
            continue;
        };
        let open = at + rel_open;
        let close = matching_brace(b, open);
        let body = &src[open + 1..close];
        for target in ep_idents(body) {
            edges.insert(("<callback>".to_owned(), target));
        }
        if body.contains("direct_put(") {
            edges.insert(("<callback>".to_owned(), "<put>".to_owned()));
        }
        edges.insert(("<put>".to_owned(), "<callback>".to_owned()));
    }

    let edges: Vec<(String, String)> = edges.into_iter().collect();
    let cycles = find_cycles(&edges);
    CommGraph {
        file: file.to_owned(),
        edges,
        cycles,
    }
}

/// DFS cycle detection: one cycle reported per back edge.
fn find_cycles(edges: &[(String, String)]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, b) in edges {
        adj.entry(a).or_default().push(b);
        nodes.insert(a);
        nodes.insert(b);
    }
    let mut cycles = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &root in &nodes {
        if done.contains(root) {
            continue;
        }
        // iterative DFS with an explicit path stack
        let mut path: Vec<&str> = Vec::new();
        let mut stack: Vec<(&str, usize)> = vec![(root, 0)];
        while let Some((node, next)) = stack.pop() {
            if next == 0 {
                path.push(node);
            }
            let succ = adj.get(node).map_or(&[][..], Vec::as_slice);
            if next < succ.len() {
                stack.push((node, next + 1));
                let t = succ[next];
                if let Some(pos) = path.iter().position(|&n| n == t) {
                    let mut cyc: Vec<String> =
                        path[pos..].iter().map(|s| (*s).to_owned()).collect();
                    cyc.push(t.to_owned());
                    if !cycles.contains(&cyc) {
                        cycles.push(cyc);
                    }
                } else if !done.contains(t) {
                    stack.push((t, 0));
                }
            } else {
                path.pop();
                done.insert(node);
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pingpong_shape_yields_a_ready_wait_loop() {
        let src = r#"
impl Pinger {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                ctx.send(peer, Msg::signal(EP_HANDSHAKE));
            }
            EP_HANDSHAKE => {
                let _ = ctx.direct_put(h);
            }
            other => panic!("unexpected ep"),
        }
    }
    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, _h: HandleId) {
        let _ = ctx.direct_put(self.send_handle);
    }
}
"#;
        let g = extract("pp.rs", src);
        assert!(g
            .edges
            .contains(&("EP_START".into(), "EP_HANDSHAKE".into())));
        assert!(g.edges.contains(&("EP_HANDSHAKE".into(), "<put>".into())));
        assert!(g.edges.contains(&("<callback>".into(), "<put>".into())));
        assert!(g.edges.contains(&("<put>".into(), "<callback>".into())));
        let loops = g.ready_wait_loops();
        assert_eq!(loops.len(), 1, "{:?}", g.cycles);
        assert!(loops[0].contains(&"<callback>".to_owned()));
    }

    #[test]
    fn acyclic_dispatch_reports_no_cycles() {
        let src = r#"
fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
    match msg.ep {
        EP_A => ctx.send(peer, Msg::signal(EP_B)),
        EP_B => ctx.send(peer, Msg::signal(EP_C)),
        EP_C => {}
        other => panic!("unexpected"),
    }
}
"#;
        let g = extract("x.rs", src);
        assert!(g.cycles.is_empty(), "{:?}", g.cycles);
        assert!(g.ready_wait_loops().is_empty());
    }
}
