//! Tunable parameter sets for the fabric models.
//!
//! All durations are [`Time`] values; per-byte costs are expressed in
//! picoseconds per byte (`u64`) so the arithmetic stays integral and
//! deterministic.

use ckd_sim::Time;

/// Wire-level parameters shared by both fabrics.
#[derive(Clone, Copy, Debug)]
pub struct WireParams {
    /// Base one-way latency of a minimal message, excluding hops.
    pub base_latency: Time,
    /// Additional latency per router/switch hop.
    pub per_hop: Time,
    /// Serialization cost per payload byte (inverse bandwidth), ps/B.
    pub ps_per_byte: u64,
    /// Cost per wire packet for packetised (non-RDMA) transfers.
    pub per_packet: Time,
    /// Wire packet size in bytes for packetised transfers.
    pub packet_bytes: usize,
}

impl WireParams {
    /// Pure serialization time for `bytes` of payload.
    #[inline]
    pub fn serialize(&self, bytes: usize) -> Time {
        Time::from_ps(self.ps_per_byte * bytes as u64)
    }

    /// Number of wire packets a packetised transfer of `bytes` needs
    /// (at least one, even for empty payloads: the header packet).
    #[inline]
    pub fn packets(&self, bytes: usize) -> u64 {
        (bytes.max(1)).div_ceil(self.packet_bytes) as u64
    }

    /// Latency of a minimal message over `hops` hops.
    #[inline]
    pub fn latency(&self, hops: u32) -> Time {
        self.base_latency + self.per_hop * hops as u64
    }
}

/// Intra-node (shared-memory) transfer parameters.
#[derive(Clone, Copy, Debug)]
pub struct SharedMemParams {
    /// Base latency of handing a message to a PE on the same node.
    pub latency: Time,
    /// Copy cost through shared memory, ps/B.
    pub ps_per_byte: u64,
}

/// Infiniband verbs parameters (Abe-like clusters).
#[derive(Clone, Copy, Debug)]
pub struct IbParams {
    /// Wire characteristics.
    pub wire: WireParams,
    /// Intra-node path.
    pub shmem: SharedMemParams,
    /// Sender CPU: software send overhead (build descriptor, post send).
    pub o_send: Time,
    /// Receiver CPU: minimal arrival processing for a two-sided message.
    pub o_recv: Time,
    /// Receiver copy cost out of the eager bounce buffers, ps/B.
    pub eager_copy_ps_per_byte: u64,
    /// Sender CPU to issue one RDMA descriptor (used by puts and the data
    /// phase of rendezvous).
    pub rdma_issue: Time,
    /// Fixed cost of registering a memory region with the HCA.
    ///
    /// Rendezvous pays this per transfer (the paper's "memory component" of
    /// the rendezvous cost); CkDirect pays it once at channel setup.
    pub reg_base: Time,
    /// Per-byte part of memory registration (page pinning), ps/B.
    pub reg_ps_per_byte: u64,
    /// Size of the control messages used for RTS/CTS and sync.
    pub control_bytes: usize,
}

/// DCMF parameters (Blue Gene/P).
#[derive(Clone, Copy, Debug)]
pub struct DcmfParams {
    /// Wire characteristics (torus links).
    pub wire: WireParams,
    /// Intra-node path.
    pub shmem: SharedMemParams,
    /// Sender CPU: `DCMF_Send` injection overhead.
    pub o_send: Time,
    /// Receiver CPU: header-handler dispatch for a normal message.
    pub o_recv: Time,
    /// Messages strictly below this size use the *short* handler, which
    /// copies the payload itself (the paper's 224 B threshold).
    pub short_max: usize,
    /// Copy cost in the short-message handler, ps/B.
    pub short_copy_ps_per_byte: u64,
    /// Bytes of Info header accompanying every send (quad-words); CkDirect
    /// uses two quad-words (32 B) to carry the DCMF context.
    pub info_bytes: usize,
    /// Size of control messages (sync, acks).
    pub control_bytes: usize,
}

/// Completion-queue model for notified-RMA fabrics: a notified put deposits
/// a small record into a bounded per-PE completion queue, and the receiver
/// *drains* the queue instead of polling per-handle sentinels.
#[derive(Clone, Copy, Debug)]
pub struct CqParams {
    /// Wire bytes of the notification record riding with each put.
    pub notify_bytes: usize,
    /// Receiver CPU consumed per notification record drained.
    pub drain_per_notification: Time,
    /// Fixed receiver CPU per drain pass (CQ doorbell read, batch setup).
    pub drain_base: Time,
    /// Notifications consumed per drain pass.
    pub drain_batch: usize,
    /// Modeled CQ depth per PE; a put that would overflow it is held back
    /// (backpressure) until the receiver drains.
    pub depth: usize,
}

/// HPE Slingshot-style parameters: a verbs-like RDMA engine (libfabric cost
/// shapes reuse [`IbParams`]) plus the notified-put completion-queue model.
#[derive(Clone, Copy, Debug)]
pub struct SlingshotParams {
    /// RDMA/eager/rendezvous cost shapes of the underlying NIC.
    pub rdma: IbParams,
    /// Notified-put completion-queue model.
    pub cq: CqParams,
}

/// Which fabric a machine uses, with its parameters.
#[derive(Clone, Copy, Debug)]
pub enum FabricParams {
    /// Infiniband verbs (eager / rendezvous / RDMA put).
    IbVerbs(IbParams),
    /// Blue Gene/P DCMF (two-sided active messages only).
    Dcmf(DcmfParams),
    /// HPE Slingshot-style notified RMA (RDMA put + completion queue).
    Slingshot(SlingshotParams),
}

impl FabricParams {
    /// The wire parameters of whichever fabric this is.
    pub fn wire(&self) -> &WireParams {
        match self {
            FabricParams::IbVerbs(p) => &p.wire,
            FabricParams::Dcmf(p) => &p.wire,
            FabricParams::Slingshot(p) => &p.rdma.wire,
        }
    }

    /// The shared-memory parameters of whichever fabric this is.
    pub fn shmem(&self) -> &SharedMemParams {
        match self {
            FabricParams::IbVerbs(p) => &p.shmem,
            FabricParams::Dcmf(p) => &p.shmem,
            FabricParams::Slingshot(p) => &p.rdma.shmem,
        }
    }

    /// True for fabrics with a genuine one-sided RDMA path.
    pub fn has_rdma(&self) -> bool {
        matches!(self, FabricParams::IbVerbs(_) | FabricParams::Slingshot(_))
    }

    /// The completion-queue model a notified-put backend should use on this
    /// fabric. Native on Slingshot; other fabrics get conservative software
    /// defaults so `NotifiedPut` can still be forced onto them in tests.
    pub fn cq(&self) -> CqParams {
        match self {
            FabricParams::Slingshot(p) => p.cq,
            FabricParams::IbVerbs(_) | FabricParams::Dcmf(_) => CqParams {
                notify_bytes: 16,
                drain_per_notification: Time::from_ns(250),
                drain_base: Time::from_ns(400),
                drain_batch: 4,
                depth: 256,
            },
        }
    }

    /// Infimum of the cross-node latency this fabric can exhibit: with
    /// `latency(hops) = base_latency + per_hop * hops` and `per_hop >= 0`,
    /// no internode message — whatever its route — arrives in less than
    /// `base_latency`.
    pub fn min_remote_latency(&self) -> Time {
        self.wire().base_latency
    }

    /// The conservative PDES lookahead this fabric supports: as long as
    /// shards are node-aligned, every cross-shard event pays at least
    /// [`FabricParams::min_remote_latency`], so that latency bounds the
    /// safe window of `ckd_sim::pdes::ShardedEngine`.
    pub fn lookahead(&self) -> ckd_sim::pdes::Lookahead {
        ckd_sim::pdes::Lookahead::new(self.min_remote_latency())
    }

    /// Map a requested protocol onto one this fabric actually implements —
    /// the single normalization point for mismatched protocol/fabric pairs.
    ///
    /// * DCMF has no RDMA: eager, rendezvous, and one-sided puts all
    ///   degenerate to a `DCMF_Send`, exactly as in the paper's BG/P
    ///   implementation.
    /// * Infiniband and Slingshot have no DCMF engine: an active-message
    ///   request falls back to the packetised eager path.
    /// * Control packets are native on every fabric.
    ///
    /// Normalization is idempotent: a protocol the fabric implements maps
    /// to itself.
    pub fn normalize(&self, proto: crate::Protocol) -> crate::Protocol {
        use crate::Protocol;
        match (self, proto) {
            (FabricParams::Dcmf(_), Protocol::Control) => Protocol::Control,
            (FabricParams::Dcmf(_), _) => Protocol::Dcmf,
            (FabricParams::IbVerbs(_) | FabricParams::Slingshot(_), Protocol::Dcmf) => {
                Protocol::Eager
            }
            (FabricParams::IbVerbs(_) | FabricParams::Slingshot(_), p) => p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire() -> WireParams {
        WireParams {
            base_latency: Time::from_ns(4700),
            per_hop: Time::from_ns(350),
            ps_per_byte: 1300,
            per_packet: Time::from_ns(300),
            packet_bytes: 4096,
        }
    }

    #[test]
    fn serialize_scales_linearly() {
        let w = wire();
        assert_eq!(w.serialize(0), Time::ZERO);
        assert_eq!(w.serialize(1000), Time::from_ns(1300));
        assert_eq!(w.serialize(2000), w.serialize(1000) * 2);
    }

    #[test]
    fn packet_count() {
        let w = wire();
        assert_eq!(w.packets(0), 1, "empty payload still sends one packet");
        assert_eq!(w.packets(1), 1);
        assert_eq!(w.packets(4096), 1);
        assert_eq!(w.packets(4097), 2);
        assert_eq!(w.packets(500_000), 123);
    }

    #[test]
    fn latency_adds_hops() {
        let w = wire();
        assert_eq!(w.latency(0), Time::from_ns(4700));
        assert_eq!(w.latency(3), Time::from_ns(4700 + 3 * 350));
    }

    #[test]
    fn lookahead_is_the_zero_hop_latency() {
        for fabric in [
            FabricParams::IbVerbs(crate::presets::ib_abe_params()),
            FabricParams::Dcmf(crate::presets::bgp_surveyor_params()),
            FabricParams::Slingshot(crate::presets::slingshot_params()),
        ] {
            assert_eq!(fabric.min_remote_latency(), fabric.wire().base_latency);
            assert_eq!(fabric.lookahead().safe_window(), fabric.wire().latency(0));
            assert!(fabric.min_remote_latency() > Time::ZERO);
        }
    }

    #[test]
    fn every_fabric_exposes_a_usable_cq_model() {
        for fabric in [
            FabricParams::IbVerbs(crate::presets::ib_abe_params()),
            FabricParams::Dcmf(crate::presets::bgp_surveyor_params()),
            FabricParams::Slingshot(crate::presets::slingshot_params()),
        ] {
            let cq = fabric.cq();
            assert!(cq.depth > 0, "CQ depth must be positive");
            assert!(cq.drain_batch > 0, "drain batch must be positive");
            assert!(cq.notify_bytes > 0, "notification record has wire bytes");
            assert!(cq.drain_per_notification > Time::ZERO);
        }
        // Slingshot serves its own constants, not the software fallback.
        let ss = FabricParams::Slingshot(crate::presets::slingshot_params());
        assert_eq!(ss.cq().depth, crate::presets::slingshot_params().cq.depth);
        assert_eq!(
            ss.cq().drain_batch,
            crate::presets::slingshot_params().cq.drain_batch
        );
    }
}
