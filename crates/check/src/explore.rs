//! The stateless schedule-space explorer with DPOR-style pruning.
//!
//! The explorer drives a deterministic *runner* — a closure that executes
//! one full simulation under a given [`Prescription`] and reports the
//! run's [`Outcome`] plus the [`Decision`] list the scripted policy
//! recorded. Exploration is a depth-first walk over prescriptions:
//!
//! 1. run the canonical schedule (empty prescription, every decision
//!    takes the min-heap head);
//! 2. at every decision, consider swapping the head `c0` with each
//!    alternative candidate `cj`. The swap is **pruned** when the two
//!    events' footprints commute (different PEs, different channels — the
//!    happens-before structure `ckd-race` models says the orders are
//!    equivalent), **excluded** when either event is not an arrival (or
//!    carries an unknown footprint: local scheduler ticks and fault-plane
//!    bookkeeping are not application-visible reorderings) or when `cj`
//!    conflicts with a candidate between it and the head, and **branched**
//!    otherwise;
//! 3. a branched child re-runs with the swap prescribed and explores only
//!    decisions *after* the branch point (sleep-set discipline: earlier
//!    alternatives were already expanded by an ancestor and are counted as
//!    `pruned_sleep`).
//!
//! Every explored schedule must produce the same observation — the same
//! deterministic-counter digest and the same sanitizer cleanliness — as
//! the canonical run. The first divergence stops exploration and becomes
//! a replayable [`Counterexample`].

use ckd_race::{commutes, Footprint};
use ckd_sim::EventMeta;

use crate::policy::{Decision, Prescription};

/// What one run observed: everything that must be schedule-independent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Deterministic digest of the machine counters and the application's
    /// own integral results (virtual times excluded — a lookahead window
    /// legitimately shifts timing).
    pub digest: String,
    /// Whether the happens-before sanitizer finished with no diagnostics.
    pub clean: bool,
    /// The sanitizer's report (empty when clean).
    pub report: String,
}

/// One runner invocation: execute the simulation steered by the
/// prescription, return its outcome and recorded decisions.
pub type Runner<'a> = dyn FnMut(&Prescription) -> (Outcome, Vec<Decision>) + 'a;

/// Exploration counters — the evidence behind a certificate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Schedules actually executed (including the canonical one).
    pub explored: u64,
    /// Saturating product of candidate-set sizes along the canonical run:
    /// the schedule count a naive enumerator would face.
    pub naive: u64,
    /// Alternatives skipped because the candidates' footprints commute.
    pub pruned_commuting: u64,
    /// Alternatives skipped by the sleep-set discipline (already expanded
    /// by an ancestor run).
    pub pruned_sleep: u64,
    /// Alternatives outside the independence model (non-arrival or
    /// unknown-footprint events, or blocked by an intermediate conflict).
    pub excluded: u64,
    /// The run budget stopped exploration before the frontier emptied.
    pub budget_exhausted: bool,
}

impl ExploreStats {
    /// Pruning ratio: naive schedule count per schedule actually run.
    pub fn ratio(&self) -> u64 {
        self.naive / self.explored.max(1)
    }
}

/// A schedule whose observation diverged from the canonical run.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The prescription that reproduces the divergence (replay it through
    /// the same runner to get the same trace, byte for byte).
    pub prescription: Prescription,
    /// Human-readable description of the decision that was swapped last.
    pub swapped: String,
    /// The canonical observation.
    pub canonical: Outcome,
    /// The divergent observation.
    pub divergent: Outcome,
}

/// The result of exploring one case.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// The counters.
    pub stats: ExploreStats,
    /// The first divergence found, if any.
    pub counterexample: Option<Counterexample>,
}

impl Exploration {
    /// `true` when no divergence was found within the budget.
    pub fn certified(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// How one alternative candidate relates to the canonical head.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Alt {
    /// Not an application-visible reordering (non-arrival or unknown
    /// footprint), or blocked by a conflicting intermediate candidate.
    Excluded,
    /// Commutes with the head: the swapped schedule is Mazurkiewicz-
    /// equivalent, no need to run it.
    Commuting,
    /// A real racing pair: run the swapped schedule.
    Branch,
}

fn classify(cands: &[EventMeta], j: usize) -> Alt {
    let c0 = Footprint::from_tag(cands[0].tag);
    let cj = Footprint::from_tag(cands[j].tag);
    if !c0.is_arrival() || !cj.is_arrival() {
        return Alt::Excluded;
    }
    if commutes(c0, cj) {
        return Alt::Commuting;
    }
    // Jumping cj to the head also reorders it past every candidate in
    // between; only a conflict-free jump is a pure c0/cj swap.
    if (1..j).any(|i| !commutes(Footprint::from_tag(cands[i].tag), cj)) {
        return Alt::Excluded;
    }
    Alt::Branch
}

fn describe(d: &Decision, j: usize) -> String {
    let fmt = |m: &EventMeta| {
        let f = Footprint::from_tag(m.tag);
        format!(
            "seq={} t={}ps pe={:?} ch={:?}",
            m.seq,
            m.at.as_ps(),
            f.pe(),
            f.resource()
        )
    };
    format!(
        "head [{}] <-> alt#{j} [{}]",
        fmt(&d.cands[0]),
        fmt(&d.cands[j])
    )
}

fn naive_of(decs: &[Decision]) -> u64 {
    decs.iter()
        .fold(1u64, |n, d| n.saturating_mul(d.cands.len() as u64))
}

/// Explore the runner's schedule space, executing at most `budget` runs.
///
/// Stops at the first divergence. A result with no counterexample and
/// `budget_exhausted == false` means the whole reduced schedule space was
/// covered; with `budget_exhausted == true` it means no divergence was
/// found in the schedules the budget allowed.
pub fn explore(run: &mut Runner<'_>, budget: u64) -> Exploration {
    let base = Prescription::new();
    let (canon, decs0) = run(&base);
    let mut stats = ExploreStats {
        explored: 1,
        naive: naive_of(&decs0),
        ..ExploreStats::default()
    };
    // (prescription that produced the run, first decision index this run
    // may branch at, the run's recorded decisions)
    let mut stack: Vec<(Prescription, usize, Vec<Decision>)> = vec![(base, 0, decs0)];
    while let Some((presc, from_d, decs)) = stack.pop() {
        for (d, dec) in decs.iter().enumerate() {
            for j in 1..dec.cands.len() {
                match classify(&dec.cands, j) {
                    Alt::Excluded => stats.excluded += 1,
                    Alt::Commuting => stats.pruned_commuting += 1,
                    Alt::Branch if d < from_d => stats.pruned_sleep += 1,
                    Alt::Branch => {
                        if stats.explored >= budget {
                            stats.budget_exhausted = true;
                            continue;
                        }
                        let mut child = presc.clone();
                        child.insert(d, j);
                        let (out, cdecs) = run(&child);
                        stats.explored += 1;
                        if out.digest != canon.digest || out.clean != canon.clean {
                            return Exploration {
                                stats,
                                counterexample: Some(Counterexample {
                                    prescription: child,
                                    swapped: describe(dec, j),
                                    canonical: canon,
                                    divergent: out,
                                }),
                            };
                        }
                        stack.push((child, d + 1, cdecs));
                    }
                }
            }
        }
    }
    Exploration {
        stats,
        counterexample: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckd_sim::Time;

    fn arr(seq: u64, pe: usize) -> EventMeta {
        EventMeta {
            seq,
            at: Time::ZERO,
            tag: Footprint::arrival(pe).tag(),
        }
    }

    fn local(seq: u64, pe: usize) -> EventMeta {
        EventMeta {
            seq,
            at: Time::ZERO,
            tag: Footprint::local(pe).tag(),
        }
    }

    /// A toy system: two same-PE arrivals race, the outcome is which one
    /// lands first. Everything else commutes or is local.
    fn toy_runner(order_sensitive: bool) -> impl FnMut(&Prescription) -> (Outcome, Vec<Decision>) {
        move |presc: &Prescription| {
            let decisions = vec![
                Decision {
                    cands: vec![arr(0, 0), arr(1, 1)], // different PEs: commute
                },
                Decision {
                    cands: vec![arr(2, 2), arr(3, 2)], // same PE: race
                },
                Decision {
                    cands: vec![local(4, 0), arr(5, 0)], // local head: excluded
                },
            ];
            let swapped = presc.get(&1).copied().unwrap_or(0) == 1;
            let digest = if order_sensitive && swapped {
                "swapped".to_owned()
            } else {
                "canonical".to_owned()
            };
            (
                Outcome {
                    digest,
                    clean: true,
                    report: String::new(),
                },
                decisions,
            )
        }
    }

    #[test]
    fn order_independent_toy_certifies_with_pruning() {
        let mut run = toy_runner(false);
        let ex = explore(&mut run, 16);
        assert!(ex.certified());
        assert_eq!(ex.stats.naive, 2 * 2 * 2);
        assert_eq!(ex.stats.explored, 2); // canonical + the one real race
        assert!(ex.stats.ratio() >= 2);
        assert_eq!(ex.stats.pruned_commuting, 2); // decision 0, both runs
        assert!(!ex.stats.budget_exhausted);
    }

    #[test]
    fn order_sensitive_toy_yields_a_counterexample() {
        let mut run = toy_runner(true);
        let ex = explore(&mut run, 16);
        let cx = ex.counterexample.expect("divergence found");
        assert_eq!(cx.prescription, Prescription::from([(1, 1)]));
        assert_eq!(cx.canonical.digest, "canonical");
        assert_eq!(cx.divergent.digest, "swapped");
        // replaying the prescription reproduces the divergent outcome
        let (out, _) = toy_runner(true)(&cx.prescription);
        assert_eq!(out.digest, cx.divergent.digest);
    }

    #[test]
    fn budget_stops_exploration_honestly() {
        let mut run = toy_runner(false);
        let ex = explore(&mut run, 1);
        assert!(ex.certified());
        assert_eq!(ex.stats.explored, 1);
        assert!(ex.stats.budget_exhausted);
    }
}
