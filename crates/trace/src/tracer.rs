//! The `Tracer` handle the runtime instruments against.
//!
//! A disabled tracer is a single `Option` discriminant check per
//! instrumentation point — no allocation, no ring, no metrics — so hot paths
//! can call it unconditionally. An enabled tracer owns one [`EventRing`] per
//! PE plus the shared [`Metrics`] registry and an outstanding-put table used
//! to measure issue→callback latency.

use std::collections::BTreeMap;

use ckd_sim::Time;

use crate::event::{BusyKind, ProtoClass, Record, TraceEvent};
use crate::metrics::Metrics;
use crate::ring::EventRing;

/// Tracing configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Per-PE ring capacity in records.
    pub ring_capacity: usize,
    /// Whether to sample scheduler queue depth at event boundaries. Sampling
    /// emits one counter record per scheduler trip; disable to keep rings
    /// focused on communication records.
    pub sample_queue_depth: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 1 << 16,
            sample_queue_depth: true,
        }
    }
}

/// Everything an enabled tracer owns; boxed so the disabled state stays one
/// word inside the machine.
#[derive(Debug)]
pub struct TraceInner {
    cfg: TraceConfig,
    rings: Vec<EventRing>,
    /// The aggregated metrics registry.
    pub metrics: Metrics,
    /// Put issue times awaiting their callback, keyed by handle.
    outstanding: BTreeMap<u32, Time>,
}

/// Zero-cost-when-disabled tracing handle.
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Option<Box<TraceInner>>,
}

impl Tracer {
    /// A tracer that records nothing and costs one branch per call.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer for `pes` processors.
    pub fn enabled(cfg: TraceConfig, pes: usize) -> Tracer {
        Tracer {
            inner: Some(Box::new(TraceInner {
                cfg,
                rings: (0..pes)
                    .map(|_| EventRing::new(cfg.ring_capacity))
                    .collect(),
                metrics: Metrics::new(),
                outstanding: BTreeMap::new(),
            })),
        }
    }

    /// True when records are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.inner.as_ref().map(|i| &i.metrics)
    }

    /// Per-PE rings oldest-first, when enabled.
    pub fn rings(&self) -> Option<&[EventRing]> {
        self.inner.as_deref().map(|i| i.rings.as_slice())
    }

    /// Total records evicted across all PE rings.
    pub fn dropped_total(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.rings.iter().map(|r| r.dropped()).sum())
    }

    #[inline]
    fn push(inner: &mut TraceInner, pe: usize, at: Time, ev: TraceEvent) {
        if let Some(ring) = inner.rings.get_mut(pe) {
            ring.push(Record { at, ev });
        }
    }

    /// A two-sided message left `pe` for `dst`; `delay` is the modeled
    /// end-to-end latency the protocol charged.
    #[inline]
    #[allow(clippy::too_many_arguments)] // flat scalar instrumentation call
    pub fn msg_send(
        &mut self,
        pe: usize,
        at: Time,
        dst: u32,
        ep: u32,
        bytes: u64,
        proto: ProtoClass,
        delay: Time,
    ) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.metrics.record_transfer(proto, bytes, delay);
        Self::push(
            inner,
            pe,
            at,
            TraceEvent::MsgSend {
                dst,
                ep,
                bytes,
                proto,
            },
        );
    }

    /// A message's entry method is about to run on `pe`.
    #[inline]
    pub fn msg_deliver(&mut self, pe: usize, at: Time, ep: u32, bytes: u64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        Self::push(inner, pe, at, TraceEvent::MsgDeliver { ep, bytes });
    }

    /// A CkDirect put was issued on `pe`; starts the issue→callback clock.
    #[inline]
    #[allow(clippy::too_many_arguments)] // flat scalar instrumentation call
    pub fn put_issue(
        &mut self,
        pe: usize,
        at: Time,
        dst: u32,
        handle: u32,
        bytes: u64,
        proto: ProtoClass,
        delay: Time,
    ) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.metrics.record_transfer(proto, bytes, delay);
        let ch = inner.metrics.channels.entry(handle).or_default();
        ch.puts += 1;
        ch.bytes += bytes;
        inner.outstanding.insert(handle, at);
        Self::push(
            inner,
            pe,
            at,
            TraceEvent::PutIssue {
                dst,
                handle,
                bytes,
                proto,
            },
        );
    }

    /// A put payload landed in `pe`'s receive buffer.
    #[inline]
    pub fn put_land(&mut self, pe: usize, at: Time, handle: u32, bytes: u64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.metrics.channels.entry(handle).or_default().deliveries += 1;
        Self::push(inner, pe, at, TraceEvent::PutLand { handle, bytes });
    }

    /// The completion callback for `handle` ran on `pe`; closes the
    /// issue→callback clock if a matching issue was seen.
    #[inline]
    pub fn callback_fire(&mut self, pe: usize, at: Time, handle: u32) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        if let Some(issued) = inner.outstanding.remove(&handle) {
            inner
                .metrics
                .record_put_latency(handle, at.saturating_sub(issued));
        }
        Self::push(inner, pe, at, TraceEvent::CallbackFire { handle });
    }

    /// One polling sweep over ready handles on `pe`, spanning
    /// `start..end`.
    #[inline]
    pub fn poll_sweep(&mut self, pe: usize, start: Time, end: Time, checked: u32, delivered: u32) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.metrics.poll_checked.record(checked as u64);
        inner.metrics.poll_delivered.record(delivered as u64);
        Self::push(
            inner,
            pe,
            end,
            TraceEvent::PollSweep {
                start,
                checked,
                delivered,
            },
        );
    }

    /// A control packet was charged (reduction hop, broadcast forwarding,
    /// handle shipping). Metrics-only: control traffic is too chatty to
    /// ring-buffer individually but still belongs in the per-protocol table.
    #[inline]
    pub fn control_transfer(&mut self, bytes: u64, delay: Time) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner
            .metrics
            .record_transfer(ProtoClass::Control, bytes, delay);
    }

    /// Rendezvous RTS issued from `pe` toward `dst`.
    #[inline]
    pub fn rts(&mut self, pe: usize, at: Time, dst: u32, bytes: u64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.metrics.rts += 1;
        Self::push(inner, pe, at, TraceEvent::RendezvousRts { dst, bytes });
    }

    /// Rendezvous CTS / payload acceptance observed on `pe` for a transfer
    /// from `src`.
    #[inline]
    pub fn cts(&mut self, pe: usize, at: Time, src: u32) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.metrics.cts += 1;
        Self::push(inner, pe, at, TraceEvent::RendezvousCts { src });
    }

    /// `pe` contributed to reduction `red`.
    #[inline]
    pub fn reduce_contribute(&mut self, pe: usize, at: Time, red: u32) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.metrics.reduce_contribs += 1;
        Self::push(inner, pe, at, TraceEvent::ReduceContribute { red });
    }

    /// Reduction `red` completed at root `pe`.
    #[inline]
    pub fn reduce_complete(&mut self, pe: usize, at: Time, red: u32) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.metrics.reduce_completes += 1;
        Self::push(inner, pe, at, TraceEvent::ReduceComplete { red });
    }

    /// `pe` was busy from `start` to `end` doing `kind`.
    #[inline]
    pub fn busy(&mut self, pe: usize, start: Time, end: Time, kind: BusyKind) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        if end > start {
            Self::push(inner, pe, end, TraceEvent::Busy { start, kind });
        }
    }

    /// The fault plane dropped a packet leaving `pe` for `dst`. Called only
    /// when an injected fault actually fires, so fault-free runs carry zero
    /// reliability records.
    #[inline]
    pub fn rel_drop(&mut self, pe: usize, at: Time, dst: u32) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.metrics.drops += 1;
        Self::push(inner, pe, at, TraceEvent::FaultDrop { dst });
    }

    /// The reliability layer on `pe` retransmitted an unacked packet;
    /// `backoff` is the timeout armed for this attempt.
    #[inline]
    pub fn rel_retry(&mut self, pe: usize, at: Time, attempt: u32, backoff: Time) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.metrics.retries += 1;
        inner.metrics.backoff_ns.record(backoff.as_ps() / 1_000);
        Self::push(inner, pe, at, TraceEvent::Retransmit { attempt, backoff });
    }

    /// Sample `pe`'s scheduler queue depth at an event boundary.
    #[inline]
    pub fn queue_depth(&mut self, pe: usize, at: Time, depth: u32) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.metrics.queue_depth.record(depth as u64);
        if inner.cfg.sample_queue_depth {
            Self::push(inner, pe, at, TraceEvent::QueueDepth { depth });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.msg_send(
            0,
            Time::from_us(1),
            1,
            0,
            64,
            ProtoClass::Eager,
            Time::from_us(2),
        );
        t.put_issue(
            0,
            Time::from_us(1),
            1,
            3,
            64,
            ProtoClass::RdmaPut,
            Time::from_us(2),
        );
        assert!(!t.is_enabled());
        assert!(t.metrics().is_none());
        assert!(t.rings().is_none());
        assert_eq!(t.dropped_total(), 0);
    }

    #[test]
    fn put_issue_to_callback_latency() {
        let mut t = Tracer::enabled(TraceConfig::default(), 2);
        t.put_issue(
            0,
            Time::from_us(10),
            1,
            5,
            1024,
            ProtoClass::RdmaPut,
            Time::from_us(4),
        );
        t.put_land(1, Time::from_us(14), 5, 1024);
        t.callback_fire(1, Time::from_us(15), 5);
        let m = t.metrics().unwrap();
        assert_eq!(m.put_to_callback_ns.count(), 1);
        // 5 µs = 5000 ns falls in the [4096, 8192) bucket
        assert_eq!(m.put_to_callback_ns.bucket_for(5_000), 1);
        assert_eq!(m.channels[&5].puts, 1);
        assert_eq!(m.channels[&5].deliveries, 1);
        assert_eq!(m.channels[&5].bytes, 1024);
    }

    #[test]
    fn callback_without_issue_is_harmless() {
        let mut t = Tracer::enabled(TraceConfig::default(), 1);
        t.callback_fire(0, Time::from_us(3), 42);
        assert_eq!(t.metrics().unwrap().put_to_callback_ns.count(), 0);
        assert_eq!(t.rings().unwrap()[0].len(), 1);
    }

    #[test]
    fn ring_saturation_is_counted() {
        let cfg = TraceConfig {
            ring_capacity: 8,
            sample_queue_depth: true,
        };
        let mut t = Tracer::enabled(cfg, 1);
        for i in 0..100u64 {
            t.queue_depth(0, Time::from_ns(i), i as u32);
        }
        assert_eq!(t.rings().unwrap()[0].len(), 8);
        assert_eq!(t.dropped_total(), 92);
        // the histogram still saw every sample
        assert_eq!(t.metrics().unwrap().queue_depth.count(), 100);
    }

    #[test]
    fn out_of_range_pe_is_ignored() {
        let mut t = Tracer::enabled(TraceConfig::default(), 1);
        t.msg_deliver(7, Time::from_us(1), 0, 8);
        assert_eq!(t.rings().unwrap()[0].len(), 0);
    }
}
