//! Deliberately-racy mutants of the application protocols, used to prove
//! the happens-before sanitizer (`ckd-race`) catches real lifecycle races.
//!
//! Each mutant reproduces a bug class the paper's unsynchronized put model
//! makes possible when the application skips its side of the contract:
//!
//! * [`MutantKind::SkipReadyJacobi`] — a halo-exchange-style ring where the
//!   receiver "forgets" one `CkDirect_ready` re-arm, so the next put finds
//!   the landing window still holding unconsumed data;
//! * [`MutantKind::EarlyReadPingpong`] — a pingpong where the receiver reads
//!   the landing window on a hint message, *before* the completion callback
//!   says the payload finished landing;
//! * [`MutantKind::DoublePutMatmul`] — a matmul-style producer that issues
//!   two back-to-back puts on the same channel without waiting for the
//!   first to complete.
//!
//! The mutants intentionally swallow the runtime's rejections (the bug is
//! that the app *ignores* the contract), so each carries `ckd-lint` allow
//! markers where the static lint would otherwise flag the misuse.

use ckd_charm::{Chare, ChareRef, Ctx, EntryId, Machine, Msg};
use ckd_race::SanitizerConfig;
use ckd_topo::{Dims, Idx, Mapper};
use ckdirect::{HandleId, Region};

use crate::common::{Platform, OOB_PATTERN};

const EP_START: EntryId = EntryId(0);
const EP_HANDSHAKE: EntryId = EntryId(1);
const EP_HINT: EntryId = EntryId(2);

/// Which deliberately-broken protocol to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutantKind {
    /// Receiver skips one `ready` re-arm; the next put overwrites an
    /// unconsumed buffer.
    SkipReadyJacobi,
    /// Receiver reads the landing window before the completion callback.
    EarlyReadPingpong,
    /// Sender issues a second put while the first is still in flight.
    DoublePutMatmul,
}

impl MutantKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MutantKind::SkipReadyJacobi => "skip-ready-jacobi",
            MutantKind::EarlyReadPingpong => "early-read-pingpong",
            MutantKind::DoublePutMatmul => "double-put-matmul",
        }
    }
}

/// One endpoint of a bidirectional CkDirect exchange, with the mutant's
/// specific misbehavior switched in by `kind`.
struct MutantPeer {
    kind: MutantKind,
    peer: Option<ChareRef>,
    initiator: bool,
    iters: u32,
    bounces: u32,
    recv_region: Region,
    send_region: Region,
    recv_handle: Option<HandleId>,
    send_handle: Option<HandleId>,
}

impl MutantPeer {
    fn new(kind: MutantKind, bytes: usize, iters: u32, initiator: bool) -> MutantPeer {
        let len = bytes.max(8);
        let send_region = Region::alloc(len);
        send_region.set_last_word(0x5AA5_5AA5_5AA5_5AA5);
        MutantPeer {
            kind,
            peer: None,
            initiator,
            iters,
            bounces: 0,
            recv_region: Region::alloc(len),
            send_region,
            recv_handle: None,
            send_handle: None,
        }
    }

    /// Put toward the peer, deliberately ignoring a rejection — the mutant
    /// models an app that does not check the runtime's verdict.
    fn serve(&mut self, ctx: &mut Ctx<'_>) {
        let h = self.send_handle.expect("handshake done");
        if self.kind == MutantKind::EarlyReadPingpong {
            // hint the peer that data is on the way *before* the put
            // completes — the peer will read the window on this hint
            ctx.send(self.peer.unwrap(), Msg::signal(EP_HINT));
        }
        // ckd-lint: allow(swallowed-direct-error) ckd-lint: allow(ignored-put-outcome)
        let _ = ctx.direct_put(h); // bug under test: rejection ignored
        if self.kind == MutantKind::DoublePutMatmul && self.bounces == 0 {
            // second put without waiting for the first completion
            // ckd-lint: allow(swallowed-direct-error) ckd-lint: allow(double-put-same-handle) ckd-lint: allow(ignored-put-outcome)
            let _ = ctx.direct_put(h);
        }
    }
}

impl Chare for MutantPeer {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                self.peer = Some(*msg.payload.downcast::<ChareRef>().unwrap());
                let h = ctx
                    .direct_create_handle(self.recv_region.clone(), OOB_PATTERN, 0)
                    .expect("create");
                self.recv_handle = Some(h);
                ctx.send(self.peer.unwrap(), Msg::value(EP_HANDSHAKE, h, 16));
            }
            EP_HANDSHAKE => {
                let h = *msg.payload.downcast::<HandleId>().unwrap();
                ctx.direct_assoc_local(h, self.send_region.clone())
                    .expect("assoc");
                self.send_handle = Some(h);
                if self.initiator {
                    self.serve(ctx);
                }
            }
            EP_HINT => {
                // bug under test: peek at the landing window before the
                // completion callback has fired
                let h = self.recv_handle.expect("created");
                // ckd-lint: allow(recv-read-outside-callback)
                let r = ctx.direct_recv_region(h).expect("region");
                let _ = r.len();
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, handle: HandleId) {
        self.bounces += 1;
        let skip = self.kind == MutantKind::SkipReadyJacobi
            && !self.initiator
            && self.bounces == self.iters / 2;
        if skip {
            // bug under test: this iteration's re-arm is forgotten, so the
            // initiator's next put lands on an unconsumed window
        } else {
            ctx.direct_ready(handle).expect("ready");
        }
        if self.bounces < self.iters {
            self.serve(ctx);
        }
    }
}

/// Build, run, and return the machine for `kind` with the sanitizer on.
/// The caller inspects `machine.sanitizer()` for the diagnostics the race
/// produced.
pub fn run_mutant(kind: MutantKind) -> Machine {
    let platform = Platform::IbAbe { cores_per_node: 2 };
    let mut m = platform
        .builder(4)
        .with_sanitizer(SanitizerConfig::default())
        .build();
    let (iters, bytes) = match kind {
        // large payloads so the hint message outruns the landing put
        MutantKind::EarlyReadPingpong => (4, 100_000),
        _ => (6, 1_000),
    };
    let npes = m.npes();
    let arr = m.create_array("mutant", Dims::d1(npes), Mapper::Block, |idx| {
        Box::new(MutantPeer::new(kind, bytes, iters, idx.at(0) == 0)) as Box<dyn Chare>
    });
    let a = m.element(arr, Idx::i1(0));
    let b = m.element(arr, Idx::i1(1));
    m.seed(a, Msg::value(EP_START, b, 8));
    m.seed(b, Msg::value(EP_START, a, 8));
    m.run();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckd_race::RaceKind;

    fn kinds(m: &Machine) -> Vec<RaceKind> {
        m.sanitizer().diagnostics().iter().map(|d| d.kind).collect()
    }

    #[test]
    fn skip_ready_is_caught_as_overwrite() {
        let m = run_mutant(MutantKind::SkipReadyJacobi);
        assert!(
            kinds(&m).contains(&RaceKind::OverwriteUnconsumed),
            "got {:?}",
            kinds(&m)
        );
    }

    #[test]
    fn early_read_is_caught() {
        let m = run_mutant(MutantKind::EarlyReadPingpong);
        assert!(
            kinds(&m).contains(&RaceKind::ReadBeforeCompletion),
            "got {:?}",
            kinds(&m)
        );
    }

    #[test]
    fn double_put_is_caught_as_in_flight() {
        let m = run_mutant(MutantKind::DoublePutMatmul);
        assert!(
            kinds(&m).contains(&RaceKind::PutWhileInFlight),
            "got {:?}",
            kinds(&m)
        );
    }
}
