//! One injected drop, end to end: detection → backoff → retransmit →
//! clean completion.
//!
//! Runs a CkDirect pingpong with a fault plan holding a single one-shot
//! trigger — the first put submitted to the fabric at or after 50 µs is
//! dropped — then replays the reliability records from the trace rings as
//! a timeline and shows that the application result is untouched: same
//! iteration count, same per-put accounting, only the round-trip average
//! pays for the retransmission latency.
//!
//! ```console
//! $ cargo run --release --example fault_timeline
//! ```

use ckd_apps::pingpong::charm_pingpong_on;
use ckd_apps::{Platform, Variant};
use ckd_charm::{FaultKind, FaultOp, FaultPlan, TraceConfig};
use ckd_sim::Time;
use ckd_trace::TraceEvent;

const BYTES: usize = 4096;
const ITERS: u32 = 40;

fn main() {
    let platform = Platform::IbAbe { cores_per_node: 4 };

    // the fault-free control run
    let mut clean = platform.machine(8);
    let base = charm_pingpong_on(&mut clean, Variant::Ckd, BYTES, ITERS);

    // same program, one put killed in flight at t >= 50us
    let plan = FaultPlan::new(1).with_trigger(
        Time::from_us(50),
        None,
        Some(FaultOp::Put),
        FaultKind::Drop,
    );
    let mut m = platform
        .builder(8)
        .with_tracing(TraceConfig::default())
        .with_faults(plan)
        .build();
    let r = charm_pingpong_on(&mut m, Variant::Ckd, BYTES, ITERS);

    println!("== one injected drop, end to end");
    println!("timeline (virtual time, from the trace rings):");
    for (pe, ring) in m.tracer().rings().unwrap().iter().enumerate() {
        for rec in ring.iter() {
            match rec.ev {
                TraceEvent::FaultDrop { dst } => println!(
                    "  {:>10.3}us  pe{pe}: put to pe{dst} dropped by the fabric",
                    rec.at.as_us_f64()
                ),
                TraceEvent::Retransmit { attempt, backoff } => println!(
                    "  {:>10.3}us  pe{pe}: ack timeout -> retransmit attempt {attempt} \
                     (next backoff {:.0}us)",
                    rec.at.as_us_f64(),
                    backoff.as_us_f64()
                ),
                _ => {}
            }
        }
    }

    let rel = m.rel_stats();
    println!(
        "reliability: {} drop injected, {} timeout fired, {} retransmit;",
        rel.drops_injected, rel.timeouts, rel.retries
    );
    println!(
        "application: {}/{} exchanges, rtt {:.3}us (clean {:.3}us), lossy puts seen: {}",
        r.iters,
        ITERS,
        r.rtt.as_us_f64(),
        base.rtt.as_us_f64(),
        r.lossy_puts
    );
    assert_eq!(r.iters, base.iters, "the drop must not cost an iteration");
    assert_eq!(
        m.stats().puts,
        clean.stats().puts,
        "the retransmit must not inflate the app-visible put count"
    );
    assert!(rel.retries >= 1, "the trigger must have fired");
    println!(
        "app-visible puts: {} (identical to the fault-free run)",
        m.stats().puts
    );
}
