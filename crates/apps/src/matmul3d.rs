//! §4.2 — matrix multiplication with Agarwal's 3-D decomposition (Fig 3).
//!
//! A `c × c × c` chare grid computes `C = A · B` for `N × N` matrices in
//! `(N/c)²` blocks: chare `(x, y, z)` computes `C[x,y] += A[x,z] · B[z,y]`.
//! Per iteration:
//!
//! 1. `A[x,z]` is replicated from its home `(x, 0, z)` along the Y axis and
//!    `B[z,y]` from `(0, y, z)` along X — one source buffer associated with
//!    many CkDirect handles, the paper's no-copy multicast;
//! 2. every chare runs a local DGEMM (contiguous operands — the reason
//!    landing the data *in place* matters);
//! 3. partial `C` blocks flow along Z to `(x, y, 0)` and are summed.
//!
//! In the MSG variant each received block must additionally be copied into
//! the contiguous operand panel (the copy CkDirect avoids, per the paper).

use bytes::Bytes;
use ckd_charm::{Chare, Ctx, EntryId, Msg, PutOutcome, RedOp, RedTarget, RedVal};
use ckd_linalg::{dgemm_block, gemm_flops, Mat};
use ckd_sim::Time;
use ckd_topo::{Dims, Idx, Mapper};
use ckdirect::{HandleId, Region};

use crate::common::{Platform, Variant, OOB_PATTERN};

const EP_SETUP: EntryId = EntryId(0);
const EP_HANDLE: EntryId = EntryId(1);
const EP_ITER: EntryId = EntryId(2);
const EP_BLOCK: EntryId = EntryId(3);

/// Which operand a transfer carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    A,
    B,
    /// Partial C from the chare at this Z coordinate.
    C(usize),
}

impl Kind {
    fn tag(self) -> u32 {
        match self {
            Kind::A => 0,
            Kind::B => 1,
            Kind::C(z) => 2 + z as u32,
        }
    }

    fn from_tag(t: u32) -> Kind {
        match t {
            0 => Kind::A,
            1 => Kind::B,
            z => Kind::C((z - 2) as usize),
        }
    }
}

/// Handle-shipping payload.
#[derive(Clone, Copy)]
struct HandleMsg {
    kind: Kind,
    handle: HandleId,
}

/// Block payload for the MSG variant.
struct BlockMsg {
    kind: Kind,
    data: Bytes,
}

/// Configuration of one matmul run.
#[derive(Clone, Copy, Debug)]
pub struct MatmulCfg {
    /// Matrix dimension (N of the N×N inputs); 2048 in the paper.
    pub n: usize,
    /// Chare grid edge: `grid³` chares, blocks of `(N/grid)²`.
    pub grid: usize,
    /// Repetitions of the full multiplication.
    pub iters: u32,
    /// Transport variant.
    pub variant: Variant,
    /// Execute the arithmetic and verify (tests) or charge flops only.
    pub real_compute: bool,
}

impl MatmulCfg {
    fn nb(&self) -> usize {
        self.n / self.grid
    }

    fn block_bytes(&self) -> usize {
        self.nb() * self.nb() * 8
    }
}

/// Result of one matmul run.
#[derive(Clone, Copy, Debug)]
pub struct MatmulResult {
    /// Average time per full multiplication.
    pub time_per_iter: Time,
    /// Virtual time at completion.
    pub total: Time,
    /// Iterations executed.
    pub iters: u32,
    /// Puts the runtime reported retried or degraded, summed over chares
    /// (always 0 without fault injection).
    pub lossy_puts: u64,
}

/// Deterministic input generators (global element coordinates).
fn gen_a(i: usize, j: usize) -> f64 {
    ((i as f64) * 0.37 + (j as f64) * 0.11).sin()
}

fn gen_b(i: usize, j: usize) -> f64 {
    ((i as f64) * 0.05 - (j as f64) * 0.23).cos()
}

struct MatmulChare {
    cfg: MatmulCfg,
    pos: [usize; 3],
    // --- data (real mode) ---
    a: Option<Mat>,
    b: Option<Mat>,
    c: Option<Mat>,
    /// C-home: partial blocks received, indexed by source z.
    c_parts: Vec<Option<Vec<f64>>>,
    // --- transport state ---
    a_bytes: Option<Bytes>,
    b_bytes: Option<Bytes>,
    a_recv: Option<Region>,
    b_recv: Option<Region>,
    c_recv: Vec<Option<Region>>,
    a_recv_handle: Option<HandleId>,
    b_recv_handle: Option<HandleId>,
    c_recv_handles: Vec<Option<HandleId>>,
    /// Outbound: A multicast handles (A-home), B multicast handles
    /// (B-home), C handle (z≠0).
    a_out: Vec<HandleId>,
    b_out: Vec<HandleId>,
    c_out: Option<HandleId>,
    a_send_region: Option<Region>,
    b_send_region: Option<Region>,
    c_send_region: Option<Region>,
    setup_acks: usize,
    // --- per-iteration ---
    iter: u32,
    started: bool,
    got_a: bool,
    got_b: bool,
    computed: bool,
    c_in: usize,
    lossy_puts: u64,
    t_first: Option<Time>,
    t_done: Time,
}

impl MatmulChare {
    fn new(cfg: MatmulCfg, idx: Idx) -> MatmulChare {
        let c = cfg.grid;
        MatmulChare {
            cfg,
            pos: [idx.at(0), idx.at(1), idx.at(2)],
            a: None,
            b: None,
            c: None,
            c_parts: vec![None; c],
            a_bytes: None,
            b_bytes: None,
            a_recv: None,
            b_recv: None,
            c_recv: vec![None; c],
            a_recv_handle: None,
            b_recv_handle: None,
            c_recv_handles: vec![None; c],
            a_out: Vec::new(),
            b_out: Vec::new(),
            c_out: None,
            a_send_region: None,
            b_send_region: None,
            c_send_region: None,
            setup_acks: 0,
            iter: 0,
            started: false,
            got_a: false,
            got_b: false,
            computed: false,
            c_in: 0,
            lossy_puts: 0,
            t_first: None,
            t_done: Time::ZERO,
        }
    }

    /// Issue one put and fold its outcome into the lossy-put counter.
    fn put_counted(&mut self, ctx: &mut Ctx<'_>, h: HandleId) {
        match ctx.direct_put(h).expect("put") {
            PutOutcome::Sent => {}
            PutOutcome::Retried { .. } | PutOutcome::Degraded => self.lossy_puts += 1,
        }
    }

    fn is_a_home(&self) -> bool {
        self.pos[1] == 0
    }

    fn is_b_home(&self) -> bool {
        self.pos[0] == 0
    }

    fn is_c_home(&self) -> bool {
        self.pos[2] == 0
    }

    fn needs_a(&self) -> bool {
        !self.is_a_home()
    }

    fn needs_b(&self) -> bool {
        !self.is_b_home()
    }

    fn region_len(&self) -> usize {
        if self.cfg.real_compute {
            self.cfg.block_bytes()
        } else {
            64
        }
    }

    /// Handle messages this chare expects during setup.
    fn setup_expected(&self) -> usize {
        if self.cfg.variant == Variant::Msg {
            return 0;
        }
        let c = self.cfg.grid;
        let mut n = 0;
        if self.is_a_home() && c > 1 {
            n += c - 1;
        }
        if self.is_b_home() && c > 1 {
            n += c - 1;
        }
        if !self.is_c_home() {
            n += 1;
        }
        n
    }

    /// Generate this home's block for the current iteration. Iteration `k`
    /// scales the base pattern so every repetition moves fresh data.
    fn gen_block(&self, which: Kind) -> Mat {
        let nb = self.cfg.nb();
        let [x, y, z] = self.pos;
        let scale = 1.0 + self.iter as f64 * 0.0; // inputs constant across iters
        match which {
            Kind::A => {
                debug_assert_eq!(y, 0);
                Mat::from_fn(nb, nb, |r, cc| scale * gen_a(x * nb + r, z * nb + cc))
            }
            Kind::B => {
                debug_assert_eq!(x, 0);
                Mat::from_fn(nb, nb, |r, cc| scale * gen_b(z * nb + r, y * nb + cc))
            }
            Kind::C(_) => unreachable!(),
        }
    }

    fn mat_to_bytes(m: &Mat) -> Bytes {
        let mut v = Vec::with_capacity(m.as_slice().len() * 8);
        for &x in m.as_slice() {
            v.extend_from_slice(&x.to_le_bytes());
        }
        Bytes::from(v)
    }

    fn bytes_to_vec(b: &[u8]) -> Vec<f64> {
        b.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Distribute this home's operand block along its replication axis.
    fn distribute(&mut self, ctx: &mut Ctx<'_>, kind: Kind) {
        let wire = self.cfg.block_bytes();
        let block = if self.cfg.real_compute {
            Some(self.gen_block(kind))
        } else {
            None
        };
        match self.cfg.variant {
            Variant::Msg => {
                let data = block
                    .as_ref()
                    .map_or_else(|| Bytes::from(vec![0u8; 64]), Self::mat_to_bytes);
                let c = self.cfg.grid;
                let [x, y, z] = self.pos;
                for k in 1..c {
                    let to = match kind {
                        Kind::A => Idx::i3(x, k, z),
                        Kind::B => Idx::i3(k, y, z),
                        Kind::C(_) => unreachable!(),
                    };
                    let target = ctx.element(ctx.me().array, to);
                    ctx.send(
                        target,
                        Msg::value(
                            EP_BLOCK,
                            BlockMsg {
                                kind,
                                data: data.clone(),
                            },
                            wire,
                        ),
                    );
                }
            }
            Variant::Ckd => {
                let region = match kind {
                    Kind::A => self.a_send_region.as_ref(),
                    Kind::B => self.b_send_region.as_ref(),
                    Kind::C(_) => unreachable!(),
                };
                // `region` is None only when there are no consumers
                // (degenerate 1-wide replication axis)
                if let Some(region) = region {
                    if let Some(m) = &block {
                        let vals = m.as_slice();
                        region.write_f64s(0, vals);
                        ctx.charge_bytes(2 * wire as u64); // pack into the window
                    } else {
                        region.write_f64s(0, &[self.iter as f64 + 1.0]);
                    }
                    let outs = match kind {
                        Kind::A => self.a_out.clone(),
                        Kind::B => self.b_out.clone(),
                        Kind::C(_) => unreachable!(),
                    };
                    for h in outs {
                        self.put_counted(ctx, h);
                    }
                }
            }
        }
        // the home itself consumes its own block directly
        match kind {
            Kind::A => {
                self.a = block;
                self.got_a = true;
            }
            Kind::B => {
                self.b = block;
                self.got_b = true;
            }
            Kind::C(_) => unreachable!(),
        }
    }

    /// Local `C += A·B` once both operands are in.
    fn maybe_compute(&mut self, ctx: &mut Ctx<'_>) {
        if !self.started || self.computed {
            return;
        }
        if (self.needs_a() && !self.got_a) || (self.needs_b() && !self.got_b) {
            return;
        }
        self.computed = true;
        self.started = false;
        self.got_a = false;
        self.got_b = false;
        let nb = self.cfg.nb();
        if self.cfg.real_compute {
            // materialize operands from wherever they landed
            let a = self.a.take().unwrap_or_else(|| {
                let vals = match self.cfg.variant {
                    Variant::Msg => Self::bytes_to_vec(self.a_bytes.as_ref().unwrap()),
                    Variant::Ckd => self.a_recv.as_ref().unwrap().read_f64s(0, nb * nb),
                };
                Mat::from_vec(nb, nb, vals)
            });
            let b = self.b.take().unwrap_or_else(|| {
                let vals = match self.cfg.variant {
                    Variant::Msg => Self::bytes_to_vec(self.b_bytes.as_ref().unwrap()),
                    Variant::Ckd => self.b_recv.as_ref().unwrap().read_f64s(0, nb * nb),
                };
                Mat::from_vec(nb, nb, vals)
            });
            let mut c = Mat::zeros(nb, nb);
            dgemm_block(&mut c, &a, &b, 64);
            self.c = Some(c);
            self.a = Some(a);
            self.b = Some(b);
        }
        ctx.charge_flops(gemm_flops(nb, nb, nb));
        // CkDirect: release the operand channels for the next iteration
        if self.cfg.variant == Variant::Ckd {
            if let Some(h) = self.a_recv_handle {
                ctx.direct_ready(h).expect("ready a");
            }
            if let Some(h) = self.b_recv_handle {
                ctx.direct_ready(h).expect("ready b");
            }
        }
        self.forward_c(ctx);
    }

    /// Ship (or locally bank) this chare's C contribution.
    fn forward_c(&mut self, ctx: &mut Ctx<'_>) {
        let [x, y, z] = self.pos;
        let wire = self.cfg.block_bytes();
        if self.is_c_home() {
            self.c_in += 1;
            if self.cfg.real_compute {
                self.c_parts[z] = Some(self.c.as_ref().unwrap().as_slice().to_vec());
            }
            self.maybe_home_done(ctx);
            return;
        }
        match self.cfg.variant {
            Variant::Msg => {
                let data = if self.cfg.real_compute {
                    Self::mat_to_bytes(self.c.as_ref().unwrap())
                } else {
                    Bytes::from(vec![0u8; 64])
                };
                let home = ctx.element(ctx.me().array, Idx::i3(x, y, 0));
                ctx.send(
                    home,
                    Msg::value(
                        EP_BLOCK,
                        BlockMsg {
                            kind: Kind::C(z),
                            data,
                        },
                        wire,
                    ),
                );
            }
            Variant::Ckd => {
                let region = self.c_send_region.as_ref().unwrap();
                if self.cfg.real_compute {
                    region.write_f64s(0, self.c.as_ref().unwrap().as_slice());
                    ctx.charge_bytes(2 * wire as u64);
                } else {
                    region.write_f64s(0, &[self.iter as f64 + 1.0]);
                }
                let h = self.c_out.expect("assoc'd");
                self.put_counted(ctx, h);
            }
        }
        self.finish_iteration(ctx);
    }

    /// C-home: sum the partials once everything arrived.
    fn maybe_home_done(&mut self, ctx: &mut Ctx<'_>) {
        if !self.computed || self.c_in < self.cfg.grid {
            return;
        }
        self.c_in = 0;
        let nb = self.cfg.nb();
        if self.cfg.real_compute {
            // deterministic summation order: ascending z
            let mut acc = vec![0.0f64; nb * nb];
            for z in 0..self.cfg.grid {
                let part = self.c_parts[z].take().expect("partial present");
                for (a, p) in acc.iter_mut().zip(&part) {
                    *a += p;
                }
            }
            self.c = Some(Mat::from_vec(nb, nb, acc));
            // summation streams every partial through memory
            ctx.charge_flops((nb * nb * self.cfg.grid) as f64);
        } else {
            ctx.charge_flops((nb * nb * self.cfg.grid) as f64);
        }
        if self.cfg.variant == Variant::Ckd {
            for z in 1..self.cfg.grid {
                if let Some(h) = self.c_recv_handles[z] {
                    ctx.direct_ready(h).expect("ready c");
                }
            }
        }
        self.finish_iteration(ctx);
    }

    fn finish_iteration(&mut self, ctx: &mut Ctx<'_>) {
        self.iter += 1;
        ctx.contribute(RedVal::Unit, RedOp::Barrier, RedTarget::Broadcast(EP_ITER));
    }

    /// Create inbound channels and ship handles to the data sources.
    fn setup_channels(&mut self, ctx: &mut Ctx<'_>) {
        let len = self.region_len();
        let wire = self.cfg.block_bytes();
        let [x, y, z] = self.pos;
        let arr = ctx.me().array;
        if self.needs_a() {
            let r = Region::alloc(len);
            let h = ctx
                .direct_create_handle_wire(r.clone(), OOB_PATTERN, Kind::A.tag(), wire)
                .expect("create a");
            self.a_recv = Some(r);
            self.a_recv_handle = Some(h);
            let home = ctx.element(arr, Idx::i3(x, 0, z));
            ctx.send(
                home,
                Msg::value(
                    EP_HANDLE,
                    HandleMsg {
                        kind: Kind::A,
                        handle: h,
                    },
                    16,
                ),
            );
        }
        if self.needs_b() {
            let r = Region::alloc(len);
            let h = ctx
                .direct_create_handle_wire(r.clone(), OOB_PATTERN, Kind::B.tag(), wire)
                .expect("create b");
            self.b_recv = Some(r);
            self.b_recv_handle = Some(h);
            let home = ctx.element(arr, Idx::i3(0, y, z));
            ctx.send(
                home,
                Msg::value(
                    EP_HANDLE,
                    HandleMsg {
                        kind: Kind::B,
                        handle: h,
                    },
                    16,
                ),
            );
        }
        if self.is_c_home() {
            for src_z in 1..self.cfg.grid {
                let r = Region::alloc(len);
                let h = ctx
                    .direct_create_handle_wire(r.clone(), OOB_PATTERN, Kind::C(src_z).tag(), wire)
                    .expect("create c");
                self.c_recv[src_z] = Some(r);
                self.c_recv_handles[src_z] = Some(h);
                let src = ctx.element(arr, Idx::i3(x, y, src_z));
                ctx.send(
                    src,
                    Msg::value(
                        EP_HANDLE,
                        HandleMsg {
                            kind: Kind::C(src_z),
                            handle: h,
                        },
                        16,
                    ),
                );
            }
        }
    }

    fn maybe_setup_done(&mut self, ctx: &mut Ctx<'_>) {
        if self.setup_acks == self.setup_expected() {
            ctx.contribute(RedVal::Unit, RedOp::Barrier, RedTarget::Broadcast(EP_ITER));
        }
    }
}

impl Chare for MatmulChare {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_SETUP => match self.cfg.variant {
                Variant::Msg => {
                    ctx.contribute(RedVal::Unit, RedOp::Barrier, RedTarget::Broadcast(EP_ITER));
                }
                Variant::Ckd => {
                    self.setup_channels(ctx);
                    self.maybe_setup_done(ctx);
                }
            },
            EP_HANDLE => {
                let hm = *msg.payload.downcast::<HandleMsg>().unwrap();
                let len = self.region_len();
                match hm.kind {
                    Kind::A => {
                        // one shared source buffer for the whole row
                        if self.a_send_region.is_none() {
                            let r = Region::alloc(len);
                            r.set_last_word(0x5AA5_5AA5_5AA5_5AA5);
                            self.a_send_region = Some(r);
                        }
                        ctx.direct_assoc_local(hm.handle, self.a_send_region.clone().unwrap())
                            .expect("assoc a");
                        self.a_out.push(hm.handle);
                    }
                    Kind::B => {
                        if self.b_send_region.is_none() {
                            let r = Region::alloc(len);
                            r.set_last_word(0x5AA5_5AA5_5AA5_5AA5);
                            self.b_send_region = Some(r);
                        }
                        ctx.direct_assoc_local(hm.handle, self.b_send_region.clone().unwrap())
                            .expect("assoc b");
                        self.b_out.push(hm.handle);
                    }
                    Kind::C(_) => {
                        let r = Region::alloc(len);
                        r.set_last_word(0x5AA5_5AA5_5AA5_5AA5);
                        ctx.direct_assoc_local(hm.handle, r.clone())
                            .expect("assoc c");
                        self.c_send_region = Some(r);
                        self.c_out = Some(hm.handle);
                    }
                }
                self.setup_acks += 1;
                self.maybe_setup_done(ctx);
            }
            EP_ITER => {
                if self.t_first.is_none() {
                    self.t_first = Some(ctx.now());
                }
                if self.iter >= self.cfg.iters {
                    self.t_done = ctx.now();
                    return;
                }
                // arrivals for this iteration may precede the broadcast:
                // got_a/got_b/c_in persist and are consumed at compute time
                self.started = true;
                self.computed = false;
                if self.is_a_home() {
                    self.distribute(ctx, Kind::A);
                }
                if self.is_b_home() {
                    self.distribute(ctx, Kind::B);
                }
                self.maybe_compute(ctx);
            }
            EP_BLOCK => {
                let bm = msg.payload.downcast::<BlockMsg>().unwrap();
                // A and B must be copied into the contiguous operand panel
                // for DGEMM: the cost the paper says CkDirect avoids here.
                // C partials are summed straight out of the message, no copy.
                if matches!(bm.kind, Kind::A | Kind::B) {
                    ctx.charge_bytes(2 * self.cfg.block_bytes() as u64);
                }
                match bm.kind {
                    Kind::A => {
                        self.a_bytes = Some(bm.data.clone());
                        self.got_a = true;
                        self.maybe_compute(ctx);
                    }
                    Kind::B => {
                        self.b_bytes = Some(bm.data.clone());
                        self.got_b = true;
                        self.maybe_compute(ctx);
                    }
                    Kind::C(z) => {
                        if self.cfg.real_compute {
                            self.c_parts[z] = Some(Self::bytes_to_vec(&bm.data));
                        }
                        self.c_in += 1;
                        self.maybe_home_done(ctx);
                    }
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, tag: u32, _handle: HandleId) {
        match Kind::from_tag(tag) {
            Kind::A => {
                self.got_a = true;
                self.maybe_compute(ctx);
            }
            Kind::B => {
                self.got_b = true;
                self.maybe_compute(ctx);
            }
            Kind::C(z) => {
                if self.cfg.real_compute {
                    let nb = self.cfg.nb();
                    let r = self.c_recv[z].as_ref().expect("channel");
                    self.c_parts[z] = Some(r.read_f64s(0, nb * nb));
                }
                self.c_in += 1;
                self.maybe_home_done(ctx);
            }
        }
    }
}

fn build(m: &mut ckd_charm::Machine, cfg: MatmulCfg) -> ckd_charm::ArrayId {
    assert_eq!(cfg.n % cfg.grid, 0, "grid must divide N");
    let dims = Dims::d3(cfg.grid, cfg.grid, cfg.grid);
    let arr = m.create_array("matmul", dims, Mapper::Block, |idx| {
        Box::new(MatmulChare::new(cfg, idx))
    });
    m.seed_broadcast(arr, Msg::signal(EP_SETUP));
    arr
}

/// Run the multiplication benchmark.
pub fn run_matmul(platform: Platform, pes: usize, cfg: MatmulCfg) -> MatmulResult {
    let mut m = platform.machine(pes);
    run_matmul_on(&mut m, cfg)
}

/// [`run_matmul`] on a caller-built machine — used by the sanitizer suite
/// to run with race checking enabled and inspect the diagnostics after.
pub fn run_matmul_on(m: &mut ckd_charm::Machine, cfg: MatmulCfg) -> MatmulResult {
    let arr = build(m, cfg);
    let total = m.run();
    let mut t0 = Time::MAX;
    let mut t1 = Time::ZERO;
    let mut lossy_puts = 0u64;
    let dims = Dims::d3(cfg.grid, cfg.grid, cfg.grid);
    for lin in 0..dims.len() {
        let c = m
            .chare::<MatmulChare>(ckd_charm::ChareRef {
                array: arr,
                lin: lin as u32,
            })
            .unwrap();
        assert_eq!(c.iter, cfg.iters, "chare {lin} incomplete");
        lossy_puts += c.lossy_puts;
        t0 = t0.min(c.t_first.expect("ran"));
        t1 = t1.max(c.t_done);
    }
    MatmulResult {
        time_per_iter: (t1 - t0) / cfg.iters as u64,
        total,
        iters: cfg.iters,
        lossy_puts,
    }
}

/// Run with real data and return the assembled `C` (verification helper).
pub fn run_matmul_verify(platform: Platform, pes: usize, cfg: MatmulCfg) -> (MatmulResult, Mat) {
    let mut m = platform.machine(pes);
    run_matmul_verify_on(&mut m, cfg)
}

/// [`run_matmul_verify`] on a caller-built machine, so fault injection or
/// tracing can be enabled before the run starts.
pub fn run_matmul_verify_on(m: &mut ckd_charm::Machine, cfg: MatmulCfg) -> (MatmulResult, Mat) {
    assert!(cfg.real_compute);
    let arr = build(m, cfg);
    let total = m.run();
    let nb = cfg.nb();
    let mut out = Mat::zeros(cfg.n, cfg.n);
    let dims = Dims::d3(cfg.grid, cfg.grid, cfg.grid);
    let mut t0 = Time::MAX;
    let mut t1 = Time::ZERO;
    let mut lossy_puts = 0u64;
    for lin in 0..dims.len() {
        let idx = dims.unlinear(lin);
        let c = m
            .chare::<MatmulChare>(ckd_charm::ChareRef {
                array: arr,
                lin: lin as u32,
            })
            .unwrap();
        t0 = t0.min(c.t_first.expect("ran"));
        t1 = t1.max(c.t_done);
        lossy_puts += c.lossy_puts;
        if idx.at(2) == 0 {
            let block = c.c.as_ref().expect("C-home has the sum");
            for r in 0..nb {
                for cc in 0..nb {
                    *out.at_mut(idx.at(0) * nb + r, idx.at(1) * nb + cc) = block.at(r, cc);
                }
            }
        }
    }
    (
        MatmulResult {
            time_per_iter: (t1 - t0) / cfg.iters as u64,
            total,
            iters: cfg.iters,
            lossy_puts,
        },
        out,
    )
}

/// Serial reference product with the same generators.
pub fn serial_product(n: usize) -> Mat {
    let a = Mat::from_fn(n, n, gen_a);
    let b = Mat::from_fn(n, n, gen_b);
    let mut c = Mat::zeros(n, n);
    dgemm_block(&mut c, &a, &b, 64);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    const ABE8: Platform = Platform::IbAbe { cores_per_node: 8 };

    fn small(variant: Variant) -> MatmulCfg {
        MatmulCfg {
            n: 48,
            grid: 3,
            iters: 2,
            variant,
            real_compute: true,
        }
    }

    #[test]
    fn msg_variant_computes_the_product() {
        let (_, c) = run_matmul_verify(ABE8, 8, small(Variant::Msg));
        let want = serial_product(48);
        assert!(c.dist(&want) < 1e-9, "dist {}", c.dist(&want));
    }

    #[test]
    fn ckd_variant_computes_the_product() {
        let (_, c) = run_matmul_verify(ABE8, 8, small(Variant::Ckd));
        let want = serial_product(48);
        assert!(c.dist(&want) < 1e-9, "dist {}", c.dist(&want));
    }

    #[test]
    fn ckd_variant_computes_the_product_on_bgp() {
        let (_, c) = run_matmul_verify(Platform::Bgp, 8, small(Variant::Ckd));
        let want = serial_product(48);
        assert!(c.dist(&want) < 1e-9);
    }

    #[test]
    fn variants_agree_bitwise() {
        let (_, ca) = run_matmul_verify(ABE8, 8, small(Variant::Msg));
        let (_, cb) = run_matmul_verify(ABE8, 8, small(Variant::Ckd));
        assert_eq!(ca.as_slice(), cb.as_slice());
    }

    #[test]
    fn single_chare_degenerate_grid() {
        let cfg = MatmulCfg {
            n: 16,
            grid: 1,
            iters: 1,
            variant: Variant::Ckd,
            real_compute: true,
        };
        let (_, c) = run_matmul_verify(ABE8, 8, cfg);
        assert!(c.dist(&serial_product(16)) < 1e-10);
    }

    #[test]
    fn ckd_outperforms_msg_modeled() {
        let mk = |variant| MatmulCfg {
            n: 2048,
            grid: 8,
            iters: 2,
            variant,
            real_compute: false,
        };
        let msg = run_matmul(ABE8, 64, mk(Variant::Msg));
        let ckd = run_matmul(ABE8, 64, mk(Variant::Ckd));
        assert!(
            ckd.time_per_iter < msg.time_per_iter,
            "ckd {} !< msg {}",
            ckd.time_per_iter,
            msg.time_per_iter
        );
    }

    #[test]
    fn ckd_advantage_grows_with_scale_on_bgp() {
        // Fig 3(a)'s shape: messages per chare grow with the grid, so the
        // relative win widens with processor count.
        let run = |pes: usize, grid: usize| {
            let mk = |variant| MatmulCfg {
                n: 2048,
                grid,
                iters: 2,
                variant,
                real_compute: false,
            };
            let msg = run_matmul(Platform::Bgp, pes, mk(Variant::Msg)).time_per_iter;
            let ckd = run_matmul(Platform::Bgp, pes, mk(Variant::Ckd)).time_per_iter;
            (msg.as_secs_f64() - ckd.as_secs_f64()) / msg.as_secs_f64()
        };
        let small = run(16, 4);
        let large = run(256, 16);
        assert!(
            large > small,
            "relative win should grow: {small} -> {large}"
        );
    }
}
