//! Ablation studies for the design choices the paper calls out:
//!
//! 1. `ready` vs `ReadyMark`+`ReadyPollQ` (§5.2's polling pathology);
//! 2. envelope header size (§3: ~80 B explains the small-message gap);
//! 3. scheduler overhead (§3: the constant scheduling term);
//! 4. virtualization ratio (§4.1: 8 chares/PE was best);
//! 5. the eager→rendezvous switch point (§3: 20–30 KB on Abe);
//! 6. put vs get (§2's argument for sender-initiated transfers);
//! 7. the automatic channel-learning framework (the conclusion's proposed
//!    extension) against hand-written messages and hand-written CkDirect.

use ckd_apps::jacobi3d::{run_jacobi, JacobiCfg};
use ckd_apps::openatom::{run_openatom, OpenAtomCfg};
use ckd_apps::pingpong::{charm_pingpong, charm_pingpong_get, charm_pingpong_on};
use ckd_apps::{Platform, Variant};
use ckd_bench::{banner, scale, Scale};
use ckd_charm::{Machine, MachineBuilder, RtsConfig};
use ckd_net::presets;
use ckd_sim::Time;
use ckd_topo::Machine as Topo;

fn ib_builder_with(cfg: RtsConfig) -> MachineBuilder {
    Machine::builder(presets::ib_abe(Topo::ib_cluster(8, 2))).with_rts(cfg)
}

fn ib_machine_with(cfg: RtsConfig) -> Machine {
    ib_builder_with(cfg).build()
}

fn ablation_ready_split(steps: u32) {
    banner("Ablation 1: ready vs ReadyMark/ReadyPollQ (mini-OpenAtom, Abe)");
    println!(
        "{:<10} {:>14} {:>16} {:>14}",
        "mode", "us/step", "poll checks", "vs MSG %"
    );
    let base = OpenAtomCfg {
        nstates: 64,
        nplanes: 8,
        grain: 8,
        pts: 256,
        steps,
        variant: Variant::Ckd,
        pc_only: false,
        ready_split: false,
    };
    let abe = Platform::IbAbe { cores_per_node: 2 };
    let msg = run_openatom(
        abe,
        16,
        OpenAtomCfg {
            variant: Variant::Msg,
            ..base
        },
    );
    for (label, split) in [("naive", false), ("split", true)] {
        let r = run_openatom(
            abe,
            16,
            OpenAtomCfg {
                ready_split: split,
                ..base
            },
        );
        println!(
            "{:<10} {:>14.1} {:>16} {:>14.2}",
            label,
            r.time_per_step.as_us_f64(),
            r.poll_checks,
            ckd_bench::improvement(msg.time_per_step, r.time_per_step)
        );
    }
    println!(
        "{:<10} {:>14.1} {:>16} {:>14}",
        "MSG",
        msg.time_per_step.as_us_f64(),
        0,
        "-"
    );
}

fn ablation_header(iters: u32) {
    banner("Ablation 2: envelope size vs small-message RTT (100 B pingpong, Abe)");
    println!(
        "{:<12} {:>12} {:>12}",
        "env bytes", "MSG RTT us", "CKD RTT us"
    );
    for env in [0usize, 40, 80, 160, 320] {
        let mut cfg = RtsConfig::ib_abe();
        cfg.env_bytes = env;
        let msg = charm_pingpong_on(&mut ib_machine_with(cfg), Variant::Msg, 100, iters).rtt;
        let ckd = charm_pingpong_on(&mut ib_machine_with(cfg), Variant::Ckd, 100, iters).rtt;
        println!(
            "{:<12} {:>12.3} {:>12.3}",
            env,
            msg.as_us_f64(),
            ckd.as_us_f64()
        );
    }
}

fn ablation_sched(iters: u32) {
    banner("Ablation 3: scheduler overhead vs RTT (100 B pingpong, Abe)");
    println!(
        "{:<12} {:>12} {:>12}",
        "sched us", "MSG RTT us", "CKD RTT us"
    );
    for sched_ns in [0u64, 1000, 2500, 5000, 10000] {
        let mut cfg = RtsConfig::ib_abe();
        cfg.sched = Time::from_ns(sched_ns);
        let msg = charm_pingpong_on(&mut ib_machine_with(cfg), Variant::Msg, 100, iters).rtt;
        let ckd = charm_pingpong_on(&mut ib_machine_with(cfg), Variant::Ckd, 100, iters).rtt;
        println!(
            "{:<12.1} {:>12.3} {:>12.3}",
            sched_ns as f64 / 1000.0,
            msg.as_us_f64(),
            ckd.as_us_f64()
        );
    }
    println!("(CkDirect bypasses the scheduler: its column must stay flat)");
}

fn ablation_vratio(iters: u32) {
    banner("Ablation 4: virtualization ratio (Jacobi3D, 256x256x128, 16 PEs, Abe)");
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>10}",
        "ratio", "chares", "MSG us/iter", "CKD us/iter", "improv %"
    );
    for (ratio, chares) in [
        (1u32, [4usize, 2, 2]),
        (2, [4, 4, 2]),
        (4, [4, 4, 4]),
        (8, [8, 4, 4]),
        (16, [8, 8, 4]),
        (32, [8, 8, 8]),
    ] {
        let mk = |variant| JacobiCfg {
            domain: [256, 256, 128],
            chares,
            iters,
            variant,
            real_compute: false,
        };
        let p = Platform::IbAbe { cores_per_node: 8 };
        let msg = run_jacobi(p, 16, mk(Variant::Msg)).time_per_iter;
        let ckd = run_jacobi(p, 16, mk(Variant::Ckd)).time_per_iter;
        println!(
            "{:<8} {:>10} {:>14.1} {:>14.1} {:>10.2}",
            ratio,
            chares.iter().product::<usize>(),
            msg.as_us_f64(),
            ckd.as_us_f64(),
            ckd_bench::improvement(msg, ckd)
        );
    }
}

fn ablation_rendezvous(iters: u32) {
    banner("Ablation 5: eager->rendezvous switch vs 30 KB message RTT (Abe)");
    println!("{:<14} {:>12}", "eager max KB", "MSG RTT us");
    for max_kb in [8usize, 16, 24, 32, 64] {
        let mut cfg = RtsConfig::ib_abe();
        cfg.eager_max = max_kb * 1024;
        let msg = charm_pingpong_on(&mut ib_machine_with(cfg), Variant::Msg, 30_000, iters).rtt;
        println!("{:<14} {:>12.3}", max_kb, msg.as_us_f64());
    }
    println!("(the default 20 KB switch makes 30 KB messages pay the rendezvous)");
}

fn ablation_put_vs_get(iters: u32) {
    banner("Ablation 6: put vs get pingpong RTT (us) — why the paper chose put");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "bytes", "IB put", "IB get", "BGP put", "BGP get"
    );
    let abe = Platform::IbAbe { cores_per_node: 2 };
    for bytes in [100usize, 10_000, 100_000] {
        let ib_put = charm_pingpong(abe, Variant::Ckd, bytes, iters).rtt;
        let ib_get = charm_pingpong_get(abe, bytes, iters).rtt;
        let bgp_put = charm_pingpong(Platform::Bgp, Variant::Ckd, bytes, iters).rtt;
        let bgp_get = charm_pingpong_get(Platform::Bgp, bytes, iters).rtt;
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            bytes,
            ib_put.as_us_f64(),
            ib_get.as_us_f64(),
            bgp_put.as_us_f64(),
            bgp_get.as_us_f64()
        );
    }
    println!("(each get leg pays a readiness notification + two wire traversals)");
}

fn ablation_learning(iters: u32) {
    banner("Ablation 7: automatic channel learning (4 KB producer/consumer rounds, Abe)");
    use ckd_charm::{Chare, ChareRef, Ctx, EntryId, LearnConfig, Msg};
    use ckd_topo::{Dims, Idx};

    const EP_START: EntryId = EntryId(0);
    const EP_DATA: EntryId = EntryId(1);
    const EP_ACK: EntryId = EntryId(2);
    const SIZE: usize = 4096;

    struct Prod {
        peer: Option<ChareRef>,
        round: u32,
        rounds: u32,
        learned: bool,
        t_done: Time,
    }
    impl Chare for Prod {
        fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            match msg.ep {
                EP_START => {
                    self.peer = Some(*msg.payload.downcast::<ChareRef>().unwrap());
                    self.fire(ctx);
                }
                EP_ACK => {
                    self.t_done = ctx.now();
                    if self.round < self.rounds {
                        self.fire(ctx);
                    }
                }
                _ => unreachable!(),
            }
        }
    }
    impl Prod {
        fn fire(&mut self, ctx: &mut Ctx<'_>) {
            self.round += 1;
            let msg = Msg::bytes(EP_DATA, bytes::Bytes::from(vec![7u8; SIZE]));
            let peer = self.peer.unwrap();
            if self.learned {
                ctx.send_learned(peer, msg);
            } else {
                ctx.send(peer, msg);
            }
        }
    }
    struct Cons {
        peer: Option<ChareRef>,
    }
    impl Chare for Cons {
        fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            match msg.ep {
                EP_START => self.peer = Some(*msg.payload.downcast::<ChareRef>().unwrap()),
                EP_DATA => {
                    let peer = self.peer.unwrap();
                    ctx.send(peer, Msg::signal(EP_ACK));
                }
                _ => unreachable!(),
            }
        }
    }

    let run = |learned: bool| {
        let mut b = ckd_bench::maybe_trace(ib_builder_with(ckd_charm::RtsConfig::ib_abe()));
        if learned {
            b = b.with_learning(LearnConfig { threshold: 3 });
        }
        let mut m = b.build();
        let pa = m.create_array("p", Dims::d1(1), ckd_topo::Mapper::Block, |_| {
            Box::new(Prod {
                peer: None,
                round: 0,
                rounds: iters,
                learned,
                t_done: Time::ZERO,
            }) as Box<dyn Chare>
        });
        let npes = m.npes();
        let ca = m.create_array("c", Dims::d1(npes), ckd_topo::Mapper::Block, |_| {
            Box::new(Cons { peer: None }) as Box<dyn Chare>
        });
        let p = m.element(pa, Idx::i1(0));
        let c = m.element(ca, Idx::i1(npes - 1));
        m.seed(c, Msg::value(EP_START, p, 8));
        m.seed(p, Msg::value(EP_START, c, 8));
        m.run();
        let end = m.chare::<Prod>(p).unwrap().t_done;
        let t = m.learning_totals();
        ckd_bench::trace_epilogue(
            if learned {
                "learned channels"
            } else {
                "messages"
            },
            &m,
        );
        (end / iters as u64, t.installed, t.hits, t.misses)
    };
    let (msg_rt, _, _, _) = run(false);
    let (learn_rt, installed, hits, misses) = run(true);
    println!(
        "{:<22} {:>14} {:>10} {:>8} {:>8}",
        "mode", "us/round", "channels", "hits", "misses"
    );
    println!(
        "{:<22} {:>14.2} {:>10} {:>8} {:>8}",
        "messages",
        msg_rt.as_us_f64(),
        0,
        0,
        0
    );
    println!(
        "{:<22} {:>14.2} {:>10} {:>8} {:>8}",
        "learned channels",
        learn_rt.as_us_f64(),
        installed,
        hits,
        misses
    );
    println!("(the runtime installed the channel after 3 identical sends)");
}

fn main() {
    let s = scale();
    let iters = if s == Scale::Quick { 5 } else { 50 };
    let steps = if s == Scale::Quick { 2 } else { 4 };
    ablation_ready_split(steps);
    ablation_header(iters);
    ablation_sched(iters);
    ablation_vratio(if s == Scale::Quick { 2 } else { 6 });
    ablation_rendezvous(iters);
    ablation_put_vs_get(iters.min(25));
    ablation_learning(iters.max(20));
}
