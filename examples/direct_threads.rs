//! The real-thread rendering of CkDirect's out-of-band trick: a put is a
//! plain write into the receiver's buffer whose final word — stored last,
//! with `Release` ordering — overwrites the sentinel pattern; the receiver
//! detects it with one `Acquire` load per poll. No locks, no queue, no
//! scheduler hand-off.
//!
//! ```text
//! cargo run --release --example direct_threads
//! ```

use std::thread;
use std::time::Instant;

use ckdirect::direct;

const OOB: u64 = u64::MAX;
const SIZE: usize = 4096;
const ITERS: u64 = 20_000;

fn main() {
    println!("one-slot direct channel: {SIZE}-byte messages, {ITERS} iterations");

    // --- cross-thread iterative exchange (the paper's usage pattern) ----
    let (mut tx, mut rx) = direct::channel(SIZE, OOB);
    let t0 = Instant::now();
    let producer = thread::spawn(move || {
        let mut msg = vec![0u8; SIZE];
        for it in 0..ITERS {
            // wait for the receiver's ready (the application-level
            // synchronization the paper relies on)
            while !tx.receiver_ready() {
                thread::yield_now();
            }
            msg[..8].copy_from_slice(&it.to_le_bytes());
            tx.put(&msg).expect("receiver armed");
        }
    });
    let mut checks: u64 = 0;
    for it in 0..ITERS {
        loop {
            checks += 1;
            if rx.poll() {
                break;
            }
            thread::yield_now();
        }
        // zero-copy read straight out of the landed buffer
        rx.with_data(|v| {
            assert_eq!(v.word(0), it, "iteration stamp mismatch");
        });
        rx.arm(); // CkDirect_ready
    }
    producer.join().unwrap();
    let dt = t0.elapsed();
    println!(
        "cross-thread: {:.2} us per exchange ({} sentinel checks total)",
        dt.as_secs_f64() * 1e6 / ITERS as f64,
        checks
    );

    // --- single-threaded data-path cost (put + poll + arm) vs the
    // --- message-path analogue (allocate + enqueue + dequeue) -----------
    println!("single-thread data path (ns/op):");
    println!(
        "{:<10} {:>20} {:>20}",
        "size", "direct put+poll+arm", "alloc+queue+dequeue"
    );
    for size in [64usize, 1024, SIZE] {
        let (mut tx, mut rx) = direct::channel(size, OOB);
        let payload = vec![0x5Au8; size];
        let t0 = Instant::now();
        for _ in 0..ITERS {
            tx.put(&payload).unwrap();
            assert!(rx.poll());
            rx.with_data(|v| std::hint::black_box(v.word(0)));
            rx.arm();
        }
        let direct_ns = t0.elapsed().as_nanos() as f64 / ITERS as f64;

        let (qtx, qrx) = std::sync::mpsc::channel::<Vec<u8>>();
        let t0 = Instant::now();
        for _ in 0..ITERS {
            qtx.send(payload.clone()).unwrap(); // alloc + copy (envelope path)
            let m = qrx.recv().unwrap(); // queue hand-off
            std::hint::black_box(m[0]);
        }
        let queue_ns = t0.elapsed().as_nanos() as f64 / ITERS as f64;
        println!("{size:<10} {direct_ns:>20.0} {queue_ns:>20.0}");
    }
    println!();
    println!("the direct path saves allocation and queueing (dominant for small");
    println!("messages); both paths copy the payload once in shared memory, so");
    println!("large-message costs converge — on a real RDMA NIC the direct path");
    println!("also drops the copy, which is the simulated machine's put model.");
    println!("(full statistics: `cargo bench --bench wallclock`)");
}
