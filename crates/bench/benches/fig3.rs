//! Figure 3 — 3-D matrix multiplication (2048×2048): execution time per
//! multiplication for the message-based and CkDirect versions.
//!
//! (a) Blue Gene/P (paper: ~40 % improvement at 4K PEs), (b) Abe.

use ckd_apps::matmul3d::{run_matmul, MatmulCfg};
use ckd_apps::{Platform, Variant};
use ckd_bench::{banner, pick, scale, Scale};

/// Chare-grid edge per PE count: keeps blocks dividing 2048 while growing
/// the number of messages per PE with scale, as the paper describes.
fn grid_for(pes: usize) -> usize {
    match pes {
        0..=31 => 4,
        32..=127 => 8,
        128..=1023 => 16,
        1024..=2047 => 32,
        // finest decomposition: 32x32-element blocks, the paper's
        // "PairCalculator further decomposed at higher processor counts"
        // analogue for matmul
        _ => 64,
    }
}

fn series(platform: Platform, pes_list: &[usize], iters: u32) {
    println!(
        "{:<8} {:>6} {:>14} {:>14} {:>12}",
        "PEs", "grid", "MSG ms/mult", "CKD ms/mult", "improv. %"
    );
    for &pes in pes_list {
        let grid = grid_for(pes);
        let mk = |variant| MatmulCfg {
            n: 2048,
            grid,
            iters,
            variant,
            real_compute: false,
        };
        let msg = run_matmul(platform, pes, mk(Variant::Msg)).time_per_iter;
        let ckd = run_matmul(platform, pes, mk(Variant::Ckd)).time_per_iter;
        println!(
            "{:<8} {:>6} {:>14.2} {:>14.2} {:>12.2}",
            pes,
            grid,
            msg.as_ms_f64(),
            ckd.as_ms_f64(),
            ckd_bench::improvement(msg, ckd)
        );
    }
}

fn main() {
    let s = scale();
    let iters = if s == Scale::Quick { 1 } else { 3 };

    banner("Fig 3(a): MatMul 2048x2048, Blue Gene/P");
    let bgp = pick(s, &[64], &[64, 256, 1024], &[64, 256, 1024, 4096]);
    series(Platform::Bgp, &bgp, iters);

    banner("Fig 3(b): MatMul 2048x2048, Abe (Infiniband)");
    let abe = pick(
        s,
        &[16, 64],
        &[16, 32, 64, 128, 256],
        &[16, 32, 64, 128, 256],
    );
    series(Platform::IbAbe { cores_per_node: 8 }, &abe, iters);
}
