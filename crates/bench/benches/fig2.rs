//! Figure 2 — Jacobi3D stencil: % improvement in iteration time of the
//! CkDirect variant over Charm++ messages, vs processor count.
//!
//! (a) Infiniband (Abe, 8 cores/node), (b) Blue Gene/P. Domain
//! 1024×1024×512, virtualization ratio 8 (the paper's best), modeled
//! compute at figure scale.

use ckd_apps::jacobi3d::{improvement_percent, run_jacobi, JacobiCfg};
use ckd_apps::{Platform, Variant};
use ckd_bench::{banner, pick, scale, Scale};

/// A chare grid of roughly `8 × pes` cuboids whose extents divide the
/// domain (powers of two throughout).
fn grid_for(pes: usize) -> [usize; 3] {
    let mut g = [1usize, 1, 1];
    let mut total = 1;
    let mut axis = 0;
    while total < pes * 8 {
        g[axis] *= 2;
        total *= 2;
        axis = (axis + 1) % 3;
    }
    g
}

fn series(platform: Platform, pes_list: &[usize], iters: u32) {
    println!(
        "{:<8} {:>12} {:>12} {:>14}",
        "PEs", "MSG us/iter", "CKD us/iter", "improvement %"
    );
    for &pes in pes_list {
        let chares = grid_for(pes);
        let mk = |variant| JacobiCfg {
            domain: [1024, 1024, 512],
            chares,
            iters,
            variant,
            real_compute: false,
        };
        let msg = run_jacobi(platform, pes, mk(Variant::Msg)).time_per_iter;
        let ckd = run_jacobi(platform, pes, mk(Variant::Ckd)).time_per_iter;
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>14.2}",
            pes,
            msg.as_us_f64(),
            ckd.as_us_f64(),
            improvement_percent(msg, ckd)
        );
    }
}

fn main() {
    let s = scale();
    let iters = if s == Scale::Quick { 3 } else { 8 };

    banner("Fig 2(a): Jacobi3D improvement, Infiniband (paper: ~12% at 256 PEs)");
    let ib_pes = pick(
        s,
        &[16, 64],
        &[16, 32, 64, 128, 256],
        &[16, 32, 64, 128, 256],
    );
    series(Platform::IbAbe { cores_per_node: 8 }, &ib_pes, iters);

    banner("Fig 2(b): Jacobi3D improvement, Blue Gene/P (paper: gains grow 64->4096)");
    let bgp_pes = pick(
        s,
        &[64],
        &[64, 256, 1024],
        &[64, 128, 256, 512, 1024, 2048, 4096],
    );
    series(Platform::Bgp, &bgp_pes, iters);
}
