//! Determinism of the parallel sweep engine: the merged output of
//! [`run_sweep`] must be a pure function of the grid — byte-identical
//! JSON and identical per-run [`MachineStats`] for every worker count,
//! and identical to a hand-rolled serial loop that never touches the
//! engine at all. Workers race for grid indices, so any divergence here
//! means host scheduling leaked into virtual-time results.

use ckd_bench::{run_sweep, smoke_grid, sweep_json, validate_sweep_json, RunRecord};

/// The engine's own 1-worker pass, used as the comparison baseline.
fn baseline() -> Vec<RunRecord> {
    run_sweep(&smoke_grid(), 1)
}

#[test]
fn merged_output_is_byte_identical_across_worker_counts() {
    let grid = smoke_grid();
    let base = baseline();
    let base_json = sweep_json("smoke", &base, None);
    validate_sweep_json(&base_json).unwrap();

    for workers in [2usize, 4, 8] {
        let records = run_sweep(&grid, workers);
        assert_eq!(
            sweep_json("smoke", &records, None),
            base_json,
            "{workers}-worker sweep JSON diverged from 1 worker"
        );
        // deeper than the JSON: every machine counter, including the
        // per-protocol breakdowns the JSON doesn't serialize
        for (i, (a, b)) in base.iter().zip(&records).enumerate() {
            assert_eq!(a.spec, b.spec, "run {i}: grid order not preserved");
            assert_eq!(
                a.stats, b.stats,
                "run {i}: MachineStats diverged at {workers} workers"
            );
        }
        assert_eq!(base, records, "{workers}-worker records diverged");
    }
}

#[test]
fn engine_matches_a_hand_rolled_serial_loop() {
    let grid = smoke_grid();
    // no engine: just execute each spec in order on this thread
    let by_hand: Vec<RunRecord> = grid.iter().map(|spec| spec.execute()).collect();
    for workers in [1usize, 4] {
        let engine = run_sweep(&grid, workers);
        assert_eq!(
            by_hand, engine,
            "{workers}-worker engine output != hand-rolled serial loop"
        );
    }
    assert_eq!(
        sweep_json("smoke", &by_hand, None),
        sweep_json("smoke", &run_sweep(&grid, 2), None)
    );
}

#[test]
fn oversubscribed_workers_are_harmless() {
    // more workers than grid points: the extras find the counter already
    // exhausted and exit without contributing
    let grid = &smoke_grid()[..3];
    let few = run_sweep(grid, 1);
    let many = run_sweep(grid, 16);
    assert_eq!(few, many);
}

#[test]
fn faulty_grid_points_are_as_deterministic_as_clean_ones() {
    // the smoke grid interleaves clean and faulty points; re-running the
    // whole sweep must reproduce the fault histories exactly
    let grid = smoke_grid();
    let a = run_sweep(&grid, 4);
    let b = run_sweep(&grid, 4);
    assert_eq!(a, b, "same grid, same workers, different results");
    assert!(
        a.iter().any(|r| r.stats.rel.retries > 0),
        "no faulty point ever retried — the fault axis is inert"
    );
    assert!(
        a.iter().any(|r| r.spec.drop_permille == 0),
        "smoke grid lost its clean points"
    );
}
