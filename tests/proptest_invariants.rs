//! Property-based tests of the core invariants, spanning crates.

use proptest::prelude::*;

use ckd_sim::Time;
use ckd_topo::{Dims, Machine as Topo, Mapper, NodeId, Pe, Topology, Torus3D};
use ckdirect::{direct, DirectConfig, DirectError, DirectRegistry, Region};

// ------------------------------------------------------------------- time

proptest! {
    #[test]
    fn time_addition_is_associative_and_monotone(a in 0u64..1 << 40, b in 0u64..1 << 40, c in 0u64..1 << 40) {
        let (ta, tb, tc) = (Time::from_ps(a), Time::from_ps(b), Time::from_ps(c));
        prop_assert_eq!((ta + tb) + tc, ta + (tb + tc));
        prop_assert!(ta + tb >= ta);
        prop_assert_eq!(ta.saturating_sub(tb) , Time::from_ps(a.saturating_sub(b)));
    }

    #[test]
    fn time_us_roundtrip(us in 0.0f64..1e9) {
        let t = Time::from_us_f64(us);
        // picosecond quantization: within half a picosecond relative
        prop_assert!((t.as_us_f64() - us).abs() <= us * 1e-9 + 1e-6);
    }
}

// -------------------------------------------------------------- event queue

proptest! {
    #[test]
    fn event_queue_is_a_stable_time_sort(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = ckd_sim::EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_ns(t), i);
        }
        let mut out = Vec::new();
        while let Some((t, i)) = q.pop() {
            out.push((t, i));
        }
        // sorted by time…
        prop_assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
        // …stable for equal timestamps…
        prop_assert!(out
            .windows(2)
            .all(|w| w[0].0 != w[1].0 || w[0].1 < w[1].1));
        // …and a permutation of the input
        let mut seen: Vec<usize> = out.iter().map(|&(_, i)| i).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
    }
}

// ------------------------------------------------------------------- topo

proptest! {
    #[test]
    fn torus_hops_form_a_metric(dims in (1usize..8, 1usize..8, 1usize..8), a in 0usize..512, b in 0usize..512, c in 0usize..512) {
        let t = Torus3D::new([dims.0, dims.1, dims.2]);
        let n = t.nodes();
        let (x, y, z) = (NodeId((a % n) as u32), NodeId((b % n) as u32), NodeId((c % n) as u32));
        prop_assert_eq!(t.hops(x, x), 0);
        prop_assert_eq!(t.hops(x, y), t.hops(y, x));
        prop_assert!(t.hops(x, z) <= t.hops(x, y) + t.hops(y, z), "triangle inequality");
        prop_assert!(t.hops(x, y) <= t.diameter());
    }

    #[test]
    fn block_mapper_is_monotone_and_balanced(total in 1usize..500, npes in 1usize..64) {
        let mut counts = vec![0usize; npes];
        let mut last = 0;
        for lin in 0..total {
            let pe = Mapper::Block.pe_for(lin, total, npes).idx();
            prop_assert!(pe < npes);
            prop_assert!(pe >= last);
            last = pe;
            counts[pe] += 1;
        }
        let mx = counts.iter().max().unwrap();
        let mn = counts.iter().filter(|&&c| c > 0).min().unwrap();
        prop_assert!(mx - mn <= 1);
    }

    #[test]
    fn dims_linearize_bijective(a in 1usize..6, b in 1usize..6, c in 1usize..6, d in 1usize..4) {
        let dims = Dims::d4(a, b, c, d);
        for lin in 0..dims.len() {
            prop_assert_eq!(dims.linear(dims.unlinear(lin)), lin);
        }
    }
}

// -------------------------------------------------------------- net model

proptest! {
    #[test]
    fn transfer_delays_are_monotone_in_size(bytes in prop::collection::vec(0usize..1 << 20, 2..20)) {
        use ckd_net::{presets, Protocol};
        let net = presets::ib_abe(Topo::ib_cluster(4, 1));
        let mut sorted = bytes.clone();
        sorted.sort_unstable();
        for proto in [Protocol::Eager, Protocol::RdmaPut, Protocol::Rendezvous { reg_cached: false }] {
            let mut last = Time::ZERO;
            for &b in &sorted {
                let t = net.timing(Pe(0), Pe(2), b, proto);
                prop_assert!(t.delay >= last);
                last = t.delay;
            }
        }
    }

    #[test]
    fn put_never_uses_receiver_cpu_on_rdma(bytes in 0usize..1 << 22) {
        use ckd_net::presets;
        let net = presets::ib_abe(Topo::ib_cluster(4, 1));
        let t = net.put(Pe(0), Pe(3), bytes);
        prop_assert_eq!(t.recv_cpu, Time::ZERO);
        prop_assert_eq!(t.overlap_cpu, Time::ZERO);
    }
}

// --------------------------------------------------- registry state machine

/// Operations a fuzzer can throw at one CkDirect channel.
#[derive(Clone, Debug)]
enum Op {
    Put,
    Land,
    Sweep,
    Ready,
    Mark,
    PollQ,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Put),
        Just(Op::Land),
        Just(Op::Sweep),
        Just(Op::Ready),
        Just(Op::Mark),
        Just(Op::PollQ),
    ]
}

proptest! {
    /// Arbitrary operation sequences never panic, never corrupt the
    /// channel, and deliveries never outnumber puts.
    #[test]
    fn registry_state_machine_is_total(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::ib());
        let send = Region::alloc(32);
        send.set_last_word(0x1234_5678_9ABC_DEF0);
        let h = reg.create_handle(Pe(1), Region::alloc(32), u64::MAX, 9).unwrap();
        reg.assoc_local(h, Pe(0), send).unwrap();

        let mut in_flight = false;
        for op in ops {
            match op {
                Op::Put => {
                    if reg.put(h, Pe(0)).is_ok() {
                        in_flight = true;
                    }
                }
                Op::Land => {
                    if in_flight {
                        reg.land(h).unwrap();
                        in_flight = false;
                    }
                }
                Op::Sweep => {
                    let s = reg.poll_sweep(Pe(1));
                    prop_assert!(s.deliveries.len() <= 1);
                }
                Op::Ready => {
                    let _ = reg.ready(h);
                }
                Op::Mark => {
                    let _ = reg.ready_mark(h);
                }
                Op::PollQ => {
                    let _ = reg.ready_poll_q(h);
                }
            }
            let (puts, deliveries, _) = reg.counters();
            prop_assert!(deliveries <= puts, "deliveries {deliveries} > puts {puts}");
            prop_assert!(reg.pollq_len(Pe(1)) <= 1, "handle duplicated in pollq");
        }
    }

    /// Every delivered payload is exactly the bytes of the matching put —
    /// no loss, no reordering, no tearing — for any interleaving of
    /// ready/put/land/sweep that respects the channel contract.
    #[test]
    fn registry_delivers_every_put_intact(payload_seeds in prop::collection::vec(0u64..u64::MAX - 1, 1..20)) {
        let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::ib());
        let recv = Region::alloc(16);
        let send = Region::alloc(16);
        let h = reg.create_handle(Pe(1), recv.clone(), u64::MAX, 0).unwrap();
        reg.assoc_local(h, Pe(0), send.clone()).unwrap();
        for (i, &seed) in payload_seeds.iter().enumerate() {
            send.write_f64s(0, &[i as f64]);
            send.set_last_word(seed); // never u64::MAX by construction
            reg.put(h, Pe(0)).unwrap();
            reg.land(h).unwrap();
            let sweep = reg.poll_sweep(Pe(1));
            prop_assert_eq!(sweep.deliveries.len(), 1);
            prop_assert_eq!(recv.last_word(), seed);
            prop_assert_eq!(recv.read_f64s(0, 1)[0], i as f64);
            reg.ready(h).unwrap();
        }
    }
}

// -------------------------------------------------- real-thread channel

proptest! {
    /// Any payload that does not end with the pattern survives a put/recv
    /// roundtrip bit for bit.
    #[test]
    fn direct_channel_roundtrips_any_payload(mut payload in prop::collection::vec(any::<u8>(), 1..32)) {
        // round up to a whole number of words
        while payload.len() % 8 != 0 {
            payload.push(0);
        }
        let n = payload.len();
        let oob = u64::MAX;
        let last = u64::from_le_bytes(payload[n - 8..].try_into().unwrap());
        let (mut tx, mut rx) = direct::channel(n, oob);
        let res = tx.put(&payload);
        if last == oob {
            prop_assert_eq!(res.unwrap_err(), direct::PutError::OobCollision);
        } else {
            res.unwrap();
            prop_assert_eq!(rx.try_recv().unwrap(), payload);
        }
    }
}

// ---------------------------------------------------------- region safety

proptest! {
    #[test]
    fn region_writes_stay_inside_their_window(off in 0usize..64, len in 8usize..64) {
        let buf = ckdirect::region::shared_buf(128);
        let Ok(r) = Region::new(buf.clone(), off, len) else {
            prop_assert!(off + len > 128);
            return Ok(());
        };
        r.fill(0xEE);
        let all = buf.borrow();
        for (i, &b) in all.iter().enumerate() {
            let inside = i >= off && i < off + len;
            prop_assert_eq!(b == 0xEE, inside, "byte {} leaked", i);
        }
    }
}

// ------------------------------------------------------------- misuse API

#[test]
fn misuse_is_reported_not_corrupted() {
    let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::ib());
    let h = reg
        .create_handle(Pe(1), Region::alloc(16), u64::MAX, 0)
        .unwrap();
    // not associated yet
    assert_eq!(reg.put(h, Pe(0)).unwrap_err(), DirectError::NotAssociated);
    reg.assoc_local(h, Pe(0), Region::alloc(16)).unwrap();
    // double put
    reg.put(h, Pe(0)).unwrap();
    assert_eq!(reg.put(h, Pe(0)).unwrap_err(), DirectError::PutInFlight);
    reg.land(h).unwrap();
    reg.poll_sweep(Pe(1));
    // overwrite before ready
    assert_eq!(reg.put(h, Pe(0)).unwrap_err(), DirectError::Overwrite);
    reg.ready(h).unwrap();
    reg.put(h, Pe(0)).unwrap();
}

// ------------------------------------------------------------- strided

proptest! {
    /// gather ∘ scatter is the identity on the strided window and never
    /// touches bytes outside it, for arbitrary valid layouts.
    #[test]
    fn strided_gather_scatter_roundtrip(
        offset in 0usize..32,
        block_len in 1usize..16,
        extra_stride in 0usize..16,
        count in 1usize..8,
    ) {
        use ckdirect::StridedSpec;
        let spec = StridedSpec {
            offset,
            block_len,
            stride: block_len + extra_stride,
            count,
        };
        let backing_len = spec.span() + 8;
        let src = Region::alloc(backing_len);
        src.with_mut(|b| {
            for (i, x) in b.iter_mut().enumerate() {
                *x = (i as u8).wrapping_mul(31).wrapping_add(7);
            }
        });
        prop_assert!(spec.validate(&src).is_ok());

        let wire = Region::alloc(spec.payload_len());
        spec.gather(&src, &wire);
        let dst = Region::alloc(backing_len);
        spec.scatter(&wire, &dst);

        let sv = src.to_vec();
        let dv = dst.to_vec();
        for i in 0..backing_len {
            let in_window = i >= spec.offset
                && i < spec.span()
                && (i - spec.offset) % spec.stride < spec.block_len;
            if in_window {
                prop_assert_eq!(dv[i], sv[i], "window byte {} lost", i);
            } else {
                prop_assert_eq!(dv[i], 0, "byte {} leaked outside the window", i);
            }
        }
    }

    /// A strided channel delivers exactly the strided window of the source
    /// for arbitrary layouts (full put→land→sweep cycle).
    #[test]
    fn strided_channel_moves_exactly_the_window(
        block_words in 1usize..4,
        gap_words in 0usize..3,
        count in 2usize..6,
    ) {
        use ckdirect::StridedSpec;
        let block_len = block_words * 8;
        let spec = StridedSpec {
            offset: 0,
            block_len,
            stride: block_len + gap_words * 8,
            count,
        };
        let backing_len = spec.span();
        let src = Region::alloc(backing_len);
        src.with_mut(|b| {
            for (i, x) in b.iter_mut().enumerate() {
                *x = (i % 251) as u8 + 1; // never 0, never 0xFF-runs
            }
        });
        let dst = Region::alloc(backing_len);
        let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::ib());
        let h = reg
            .create_handle_strided(Pe(1), dst.clone(), spec, u64::MAX, 0)
            .unwrap();
        reg.assoc_local_strided(h, Pe(0), src.clone(), spec).unwrap();
        reg.put(h, Pe(0)).unwrap();
        reg.land(h).unwrap();
        prop_assert_eq!(reg.poll_sweep(Pe(1)).deliveries.len(), 1);
        let sv = src.to_vec();
        let dv = dst.to_vec();
        for i in 0..backing_len {
            let in_window = i % spec.stride < block_len;
            if in_window {
                prop_assert_eq!(dv[i], sv[i]);
            } else {
                prop_assert_eq!(dv[i], 0);
            }
        }
    }
}
