//! Quickstart: the CkDirect channel lifecycle of the paper's Figure 1,
//! narrated step by step on a two-node simulated Infiniband machine.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ckd_charm::{Chare, ChareRef, Ctx, EntryId, Machine, Msg, PutOutcome};
use ckd_net::presets;
use ckd_topo::{Dims, Idx, Machine as Topo, Mapper};
use ckdirect::{HandleId, Region};

const EP_START: EntryId = EntryId(0);
const EP_HANDLE: EntryId = EntryId(1);

/// An out-of-band pattern that can never appear in our payloads: a NaN bit
/// pattern (the paper suggests "NaN in an array of doubles").
const OOB: u64 = u64::MAX;

/// The receiver: owns a 4-double buffer, creates the handle, re-arms after
/// each delivery (Fig 1, right-hand side).
struct Receiver {
    sender: Option<ChareRef>,
    buffer: Region,
    rounds: u32,
}

impl Chare for Receiver {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        assert_eq!(msg.ep, EP_START);
        self.sender = Some(*msg.payload.downcast::<ChareRef>().unwrap());

        // (1) CkDirect_createHandle: register the buffer, the out-of-band
        //     pattern, and the completion callback (tag 7)
        let h = ctx
            .direct_create_handle(self.buffer.clone(), OOB, 7)
            .expect("create handle");
        println!(
            "[{}] receiver: created handle {h:?} over a {}-byte buffer (sentinel armed)",
            ctx.now(),
            self.buffer.len()
        );

        // (2) ship the handle to the sender in an ordinary message
        ctx.send(self.sender.unwrap(), Msg::value(EP_HANDLE, h, 16));
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, tag: u32, handle: HandleId) {
        // (5) the RTS detected the sentinel overwrite during a poll sweep
        //     and invoked this callback as a plain function call
        let values = self.buffer.read_f64s(0, 3);
        println!(
            "[{}] receiver: callback(tag={tag}) fired — data landed in place: {values:?}",
            ctx.now()
        );
        self.rounds -= 1;
        if self.rounds > 0 {
            // (6) CkDirect_ready: rewrite the pattern, resume polling.
            //     No message, no synchronization — the next put may come.
            ctx.direct_ready(handle).expect("ready");
            println!("[{}] receiver: ready() — channel re-armed", ctx.now());
        } else {
            println!("[{}] receiver: done", ctx.now());
        }
    }
}

/// The sender: binds its local buffer to the received handle, then puts a
/// fresh payload every round (Fig 1, left-hand side).
struct Sender {
    buffer: Region,
    handle: Option<HandleId>,
    round: u32,
    rounds: u32,
}

impl Chare for Sender {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        assert_eq!(msg.ep, EP_HANDLE);
        let h = *msg.payload.downcast::<HandleId>().unwrap();

        // (3) CkDirect_assocLocal: bind the local source buffer
        ctx.direct_assoc_local(h, self.buffer.clone())
            .expect("assoc");
        self.handle = Some(h);
        println!("[{}] sender: associated local buffer with {h:?}", ctx.now());

        self.fire(ctx);
    }
}

impl Sender {
    fn fire(&mut self, ctx: &mut Ctx<'_>) {
        self.round += 1;
        let base = self.round as f64;
        self.buffer
            .write_f64s(0, &[base, base * 10.0, base * 100.0]);

        // (4) CkDirect_put: one-sided write into the receiver's buffer —
        //     no envelope, no rendezvous, no remote scheduler trip
        let outcome = ctx.direct_put(self.handle.unwrap()).expect("put");
        assert_eq!(outcome, PutOutcome::Sent, "no faults in the quickstart");
        println!(
            "[{}] sender: put #{} issued (sender is immediately free)",
            ctx.now(),
            self.round
        );
        if self.round < self.rounds {
            // iterative applications put once per iteration; the barrier
            // that normally separates iterations is the receiver's callback
            // chain in this 1:1 demo
        }
    }
}

// Glue: the sender fires again whenever the receiver re-arms. In a real
// iterative code the application's own synchronization (the iteration
// barrier) guarantees readiness; here the receiver pokes the sender.
struct PokedSender {
    inner: Sender,
}

impl Chare for PokedSender {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_HANDLE => self.inner.entry(ctx, msg),
            EP_START => self.inner.fire(ctx), // poke: next round
            other => panic!("unexpected {other:?}"),
        }
    }
}

struct PokingReceiver {
    inner: Receiver,
}

impl Chare for PokingReceiver {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        self.inner.entry(ctx, msg);
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, tag: u32, handle: HandleId) {
        self.inner.direct_callback(ctx, tag, handle);
        if self.inner.rounds > 0 {
            let sender = self.inner.sender.unwrap();
            ctx.send(sender, Msg::signal(EP_START));
        }
    }
}

fn main() {
    // a 4-PE Infiniband machine, one core per node so the channel really
    // crosses the network
    let net = presets::ib_abe(Topo::ib_cluster(4, 1));
    let mut m = Machine::builder(net).build();

    const ROUNDS: u32 = 3;
    let recv_arr = m.create_array("receiver", Dims::d1(1), Mapper::Block, |_| {
        Box::new(PokingReceiver {
            inner: Receiver {
                sender: None,
                buffer: Region::alloc(4 * 8),
                rounds: ROUNDS,
            },
        })
    });
    let send_arr = m.create_array("sender", Dims::d1(4), Mapper::Block, |_| {
        Box::new(PokedSender {
            inner: Sender {
                buffer: Region::alloc(4 * 8),
                handle: None,
                round: 0,
                rounds: ROUNDS,
            },
        })
    });

    let receiver = m.element(recv_arr, Idx::i1(0));
    let sender = m.element(send_arr, Idx::i1(3)); // last PE: 3 hops away
    m.seed(receiver, Msg::value(EP_START, sender, 8));
    let end = m.run();

    let c = m.direct_counters();
    println!();
    println!("finished at virtual time {end}");
    println!(
        "puts={} deliveries={} sentinel checks={}",
        c.puts, c.deliveries, c.poll_checks
    );
    assert_eq!(c.puts, ROUNDS as u64);
    assert_eq!(c.deliveries, ROUNDS as u64);
}
