//! Chare arrays: dense collections of chares placed across PEs.

use ckd_topo::{Dims, Idx, Mapper, Pe};

/// Identifies a chare array within a machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// Dense index for lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for ArrayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "arr{}", self.0)
    }
}

/// Static facts about one array: shape, placement, and the list of PEs that
/// host at least one element (the participants of its reductions).
pub struct ArrayInfo {
    /// Human-readable name for traces.
    pub name: String,
    /// Index-space extents.
    pub dims: Dims,
    /// Placement strategy.
    pub mapper: Mapper,
    /// PEs hosting ≥ 1 element, ascending (spanning-tree participants).
    pub participants: Vec<Pe>,
    /// Elements homed on each PE (indexed by PE).
    pub local_counts: Vec<usize>,
}

impl ArrayInfo {
    /// Compute placement metadata for an array over `npes` PEs.
    pub fn new(name: &str, dims: Dims, mapper: Mapper, npes: usize) -> ArrayInfo {
        let total = dims.len();
        let mut local_counts = vec![0usize; npes];
        for lin in 0..total {
            local_counts[mapper.pe_for(lin, total, npes).idx()] += 1;
        }
        let participants = (0..npes as u32)
            .map(Pe)
            .filter(|p| local_counts[p.idx()] > 0)
            .collect();
        ArrayInfo {
            name: name.to_string(),
            dims,
            mapper,
            participants,
            local_counts,
        }
    }

    /// The home PE of the element with linearized index `lin`.
    pub fn home(&self, lin: usize, npes: usize) -> Pe {
        self.mapper.pe_for(lin, self.dims.len(), npes)
    }

    /// The home PE of the element at `idx`.
    pub fn home_of(&self, idx: Idx, npes: usize) -> Pe {
        self.home(self.dims.linear(idx), npes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn participants_and_counts() {
        let info = ArrayInfo::new("a", Dims::d1(10), Mapper::Block, 4);
        assert_eq!(info.local_counts.iter().sum::<usize>(), 10);
        assert_eq!(info.participants.len(), 4);
        // 10 over 4 PEs: 3,3,2,2
        assert_eq!(info.local_counts, vec![3, 3, 2, 2]);
    }

    #[test]
    fn sparse_participation() {
        let info = ArrayInfo::new("small", Dims::d1(2), Mapper::Block, 8);
        assert_eq!(info.participants.len(), 2);
        assert_eq!(info.local_counts.iter().filter(|&&c| c > 0).count(), 2);
    }

    #[test]
    fn home_agrees_with_mapper() {
        let info = ArrayInfo::new("a", Dims::d2(4, 4), Mapper::RoundRobin, 3);
        for lin in 0..16 {
            assert_eq!(info.home(lin, 3), Mapper::RoundRobin.pe_for(lin, 16, 3));
        }
        assert_eq!(info.home_of(Idx::i2(1, 0), 3), info.home(1, 3));
    }
}
