//! Execution statistics gathered by the machine.

use ckd_sim::Time;

/// Per-PE counters.
#[derive(Clone, Debug, Default)]
pub struct PeStats {
    /// Total CPU time this PE spent busy (handlers, overheads, polling).
    pub busy: Time,
    /// Messages delivered through the scheduler.
    pub msgs_delivered: u64,
    /// CkDirect callbacks delivered.
    pub callbacks: u64,
    /// Individual handle checks performed by poll sweeps.
    pub poll_checks: u64,
}

/// Machine-wide counters.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// Messages sent (scheduler path).
    pub msgs_sent: u64,
    /// Payload bytes sent on the scheduler path (envelopes excluded).
    pub msg_bytes: u64,
    /// CkDirect puts issued.
    pub puts: u64,
    /// Bytes moved by CkDirect puts.
    pub put_bytes: u64,
    /// Reductions completed (generations across all arrays).
    pub reductions: u64,
    /// Events processed by the simulation core.
    pub events: u64,
}
