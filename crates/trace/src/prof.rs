//! Host-side self-profiling of the simulator itself.
//!
//! The tracer answers "where does *virtual* time go?"; the profiler
//! answers "where does *host* time go while simulating it?" — the
//! prerequisite for optimizing the scheduler hot path (ROADMAP items 1–2)
//! without guessing. A [`Profiler`] rides next to the `Tracer` inside the
//! machine and follows the same zero-cost discipline: disabled it is one
//! `Option` discriminant check per instrumentation point and the
//! scheduler's unprofiled dispatch loop is not even entered, so a bare
//! machine's golden traces are untouched with the profiler compiled in.
//!
//! Enabled, it collects a [`ProfShard`]:
//!
//! * wall-clock [`PhaseStat`]s per scheduler [`Phase`] (`Instant`-based,
//!   host-dependent, excluded from determinism comparisons);
//! * three deterministic [`Hist`]ograms derived from virtual time and
//!   counters — put issue→callback latency, poll batch size, and
//!   event-queue depth;
//! * a [`SnapshotStream`] of periodic JSONL metric samples keyed by
//!   virtual time (see [`crate::snapshot`]).
//!
//! Shards merge ([`ProfShard::merge`]), so a parallel sweep can aggregate
//! per-worker profiles into one machine-wide report.

use std::collections::BTreeMap;
use std::time::Instant;

use ckd_sim::Time;

use crate::hist::Hist;
use crate::snapshot::{Snapshot, SnapshotStream};

/// Where the simulator spends host time, one bucket per scheduler
/// concern. `Sched`, `Backend`, and `Rel` partition event dispatch by
/// event kind; `Poll` and `Layers` are *nested* sub-spans (the poll sweep
/// runs inside a scheduler iteration, the layer fan-out inside every
/// handler), so their totals overlap the dispatch phases rather than
/// summing with them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Scheduler dispatch: message arrivals, PE loop iterations,
    /// reductions, and broadcasts.
    Sched,
    /// CkDirect poll sweeps (nested inside `Sched` PE loops).
    Poll,
    /// Completion-backend work: put/get landings driving the registry.
    Backend,
    /// Reliable-delivery events: fault-plane deliveries, acks, timers.
    Rel,
    /// Runtime-layer-stack fan-out (nested inside the other phases).
    Layers,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 5;
    /// Every phase, in display order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Sched,
        Phase::Poll,
        Phase::Backend,
        Phase::Rel,
        Phase::Layers,
    ];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Sched => "sched",
            Phase::Poll => "poll",
            Phase::Backend => "backend",
            Phase::Rel => "rel",
            Phase::Layers => "layers",
        }
    }

    /// Index into a `[_; Phase::COUNT]` table.
    pub fn index(self) -> usize {
        match self {
            Phase::Sched => 0,
            Phase::Poll => 1,
            Phase::Backend => 2,
            Phase::Rel => 3,
            Phase::Layers => 4,
        }
    }
}

/// Wall-clock accumulator for one [`Phase`]. Host-dependent by nature:
/// never compared in determinism tests, only merged and reported.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Spans recorded.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

impl PhaseStat {
    fn add(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    fn merge(&mut self, other: &PhaseStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One worker's (or one machine's) complete profile. The three histograms
/// plus `events`/`puts` are derived from virtual time and deterministic
/// counters — byte-identical across runs and worker counts; the phase
/// table and `host_ns` are wall-clock and vary with the host.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfShard {
    /// Wall-clock phase table (host-dependent).
    pub phases: [PhaseStat; Phase::COUNT],
    /// Put issue→callback latency in nanoseconds of *virtual* time
    /// (deterministic).
    pub put_lat_ns: Hist,
    /// Handles checked per poll sweep (deterministic).
    pub poll_batch: Hist,
    /// Event-queue depth sampled after each pop (deterministic).
    pub queue_depth: Hist,
    /// Scheduler events dispatched under profiling (deterministic).
    pub events: u64,
    /// One-sided puts issued under profiling (deterministic).
    pub puts: u64,
    /// Total wall time spent in profiled dispatch loops, nanoseconds
    /// (host-dependent).
    pub host_ns: u64,
}

impl ProfShard {
    /// Fold another shard into this one (sweep aggregation).
    pub fn merge(&mut self, other: &ProfShard) {
        for (p, o) in self.phases.iter_mut().zip(&other.phases) {
            p.merge(o);
        }
        self.put_lat_ns.merge(&other.put_lat_ns);
        self.poll_batch.merge(&other.poll_batch);
        self.queue_depth.merge(&other.queue_depth);
        self.events += other.events;
        self.puts += other.puts;
        self.host_ns += other.host_ns;
    }

    /// Host events/second over the profiled dispatch loops (0.0 before
    /// any wall time was recorded).
    pub fn events_per_sec(&self) -> f64 {
        if self.host_ns == 0 {
            0.0
        } else {
            self.events as f64 * 1e9 / self.host_ns as f64
        }
    }

    /// Host puts/second over the profiled dispatch loops.
    pub fn puts_per_sec(&self) -> f64 {
        if self.host_ns == 0 {
            0.0
        } else {
            self.puts as f64 * 1e9 / self.host_ns as f64
        }
    }

    /// The full profile report: phase table, throughput line, and the
    /// three histograms. Wall-clock numbers vary by host; the histogram
    /// sections are deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>12} {:>14} {:>12} {:>12}\n",
            "phase", "spans", "total ms", "avg us", "max us"
        ));
        for ph in Phase::ALL {
            let s = &self.phases[ph.index()];
            let avg_us = if s.count == 0 {
                0.0
            } else {
                s.total_ns as f64 / s.count as f64 / 1e3
            };
            out.push_str(&format!(
                "{:<10} {:>12} {:>14.3} {:>12.3} {:>12.3}\n",
                ph.label(),
                s.count,
                s.total_ns as f64 / 1e6,
                avg_us,
                s.max_ns as f64 / 1e3
            ));
        }
        out.push_str("(poll and layers are nested spans; they overlap the dispatch phases)\n");
        out.push_str(&format!(
            "throughput: {:.0} events/s, {:.0} puts/s \
             ({} events, {} puts, {:.3} ms host)\n",
            self.events_per_sec(),
            self.puts_per_sec(),
            self.events,
            self.puts,
            self.host_ns as f64 / 1e6
        ));
        out.push_str("\nput issue->callback latency (virtual ns):\n");
        out.push_str(&self.put_lat_ns.render("ns"));
        out.push_str("\npoll batch size (handles checked per sweep):\n");
        out.push_str(&self.poll_batch.render("handles"));
        out.push_str("\nevent-queue depth (sampled per dispatch):\n");
        out.push_str(&self.queue_depth.render("events"));
        out
    }
}

/// Profiling configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfConfig {
    /// Emit one JSONL snapshot every this many scheduler events
    /// (0 disables snapshots but keeps the phase/histogram profile).
    pub snapshot_every: u64,
}

impl Default for ProfConfig {
    fn default() -> Self {
        ProfConfig {
            snapshot_every: 1024,
        }
    }
}

/// Everything an enabled profiler owns; boxed so the disabled state stays
/// one word inside the machine.
#[derive(Debug)]
struct ProfInner {
    cfg: ProfConfig,
    shard: ProfShard,
    snaps: SnapshotStream,
    /// Put issue times awaiting their callback, keyed by handle.
    outstanding: BTreeMap<u32, Time>,
}

/// Zero-cost-when-disabled self-profiling handle, the host-time sibling
/// of the `Tracer`.
#[derive(Debug, Default)]
pub struct Profiler {
    inner: Option<Box<ProfInner>>,
}

impl Profiler {
    /// A profiler that records nothing and costs one branch per call.
    pub fn disabled() -> Profiler {
        Profiler { inner: None }
    }

    /// An enabled profiler.
    pub fn enabled(cfg: ProfConfig) -> Profiler {
        Profiler {
            inner: Some(Box::new(ProfInner {
                cfg,
                shard: ProfShard::default(),
                snaps: SnapshotStream::new(),
                outstanding: BTreeMap::new(),
            })),
        }
    }

    /// True when the profiler is collecting.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The collected profile, when enabled.
    pub fn shard(&self) -> Option<&ProfShard> {
        self.inner.as_ref().map(|i| &i.shard)
    }

    /// The snapshot stream as JSONL, when enabled.
    pub fn snapshots_jsonl(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.snaps.as_jsonl())
    }

    /// Snapshot cadence in events, when enabled and non-zero.
    pub fn snapshot_every(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|i| i.cfg.snapshot_every)
            .filter(|&n| n > 0)
    }

    /// Start a wall-clock span (None when disabled, so the disabled path
    /// never reads the host clock).
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Close a wall-clock span opened by [`Profiler::begin`].
    #[inline]
    pub fn end(&mut self, phase: Phase, t0: Option<Instant>) {
        if let (Some(inner), Some(t0)) = (self.inner.as_deref_mut(), t0) {
            inner.shard.phases[phase.index()].add(t0.elapsed().as_nanos() as u64);
        }
    }

    /// One scheduler event was dispatched; `queue_depth` is the event
    /// queue's length after the pop (deterministic).
    #[inline]
    pub fn event_dispatched(&mut self, queue_depth: u64) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.shard.events += 1;
            inner.shard.queue_depth.record(queue_depth);
        }
    }

    /// A put was issued at virtual time `at`; starts the issue→callback
    /// clock and counts toward puts/sec.
    #[inline]
    pub fn put_issued(&mut self, handle: u32, at: Time) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.shard.puts += 1;
            inner.outstanding.insert(handle, at);
        }
    }

    /// The completion callback for `handle` fired at virtual time `at`;
    /// closes the issue→callback clock if a matching issue was seen.
    #[inline]
    pub fn callback_fired(&mut self, handle: u32, at: Time) {
        if let Some(inner) = self.inner.as_deref_mut() {
            if let Some(issued) = inner.outstanding.remove(&handle) {
                inner
                    .shard
                    .put_lat_ns
                    .record(at.saturating_sub(issued).as_ps() / 1_000);
            }
        }
    }

    /// One poll sweep checked `checked` handles.
    #[inline]
    pub fn poll_batch(&mut self, checked: u64) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.shard.poll_batch.record(checked);
        }
    }

    /// Accumulate wall time of one profiled dispatch loop.
    #[inline]
    pub fn add_host_ns(&mut self, ns: u64) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.shard.host_ns += ns;
        }
    }

    /// Append one periodic metric snapshot.
    #[inline]
    pub fn record_snapshot(&mut self, snap: &Snapshot) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.snaps.push(snap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        assert!(p.begin().is_none());
        p.end(Phase::Sched, None);
        p.event_dispatched(4);
        p.put_issued(3, Time::from_us(1));
        p.callback_fired(3, Time::from_us(2));
        p.poll_batch(7);
        p.record_snapshot(&Snapshot::default());
        assert!(!p.is_enabled());
        assert!(p.shard().is_none());
        assert!(p.snapshots_jsonl().is_none());
        assert!(p.snapshot_every().is_none());
    }

    #[test]
    fn put_latency_uses_virtual_time() {
        let mut p = Profiler::enabled(ProfConfig::default());
        p.put_issued(5, Time::from_us(10));
        p.callback_fired(5, Time::from_us(15));
        // a callback with no matching issue is harmless
        p.callback_fired(42, Time::from_us(16));
        let s = p.shard().unwrap();
        assert_eq!(s.puts, 1);
        assert_eq!(s.put_lat_ns.count(), 1);
        // 5 µs = 5000 ns, bucket [4096, 8192)
        assert_eq!(Hist::bucket_for(5_000), 13);
        assert_eq!(s.put_lat_ns.sum(), 5_000);
    }

    #[test]
    fn phase_spans_accumulate() {
        let mut p = Profiler::enabled(ProfConfig { snapshot_every: 0 });
        let t0 = p.begin();
        assert!(t0.is_some());
        p.end(Phase::Poll, t0);
        p.end(Phase::Poll, p.begin());
        let s = p.shard().unwrap();
        assert_eq!(s.phases[Phase::Poll.index()].count, 2);
        assert_eq!(s.phases[Phase::Sched.index()].count, 0);
        assert!(p.snapshot_every().is_none(), "0 cadence disables snapshots");
    }

    #[test]
    fn shards_merge_and_render() {
        let mut a = Profiler::enabled(ProfConfig::default());
        let mut b = Profiler::enabled(ProfConfig::default());
        a.event_dispatched(2);
        a.poll_batch(3);
        b.event_dispatched(9);
        b.put_issued(1, Time::from_us(1));
        b.callback_fired(1, Time::from_us(3));
        let mut merged = a.shard().unwrap().clone();
        merged.merge(b.shard().unwrap());
        assert_eq!(merged.events, 2);
        assert_eq!(merged.puts, 1);
        assert_eq!(merged.queue_depth.count(), 2);
        let report = merged.render();
        assert!(report.contains("sched"));
        assert!(report.contains("poll batch size"));
        assert!(report.contains("1 puts"));
    }
}
