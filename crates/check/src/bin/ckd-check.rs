//! `ckd-check` — certify schedule-independence, hunt schedule bugs, and
//! run the static channel-protocol analysis.
//!
//! ```text
//! ckd-check certify [--window-ns N] [--budget N] [--out FILE]
//! ckd-check mutant  [--window-ns N] [--budget N]
//! ckd-check lint    [--gate] <path>...
//! ckd-check validate <file>
//! ```
//!
//! Exit codes: `0` success, `1` a gate failed (violation found where none
//! expected, none found where one expected, ratio too small, static
//! findings outside the mutants), `2` usage error.

use std::fs;
use std::process::ExitCode;

use ckd_check::cases::CheckCase;
use ckd_check::cert::{certificate_json, validate_certificate_json, CaseReport};
use ckd_check::commgraph;
use ckd_check::typestate;
use ckd_sim::Time;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ckd-check certify [--window-ns N] [--budget N] [--out FILE]\n       ckd-check mutant  [--window-ns N] [--budget N]\n       ckd-check lint    [--gate] <path>...\n       ckd-check validate <file>"
    );
    ExitCode::from(2)
}

struct Opts {
    window_ns: u64,
    budget: u64,
    out: Option<String>,
    gate: bool,
    paths: Vec<String>,
}

fn parse_opts(args: &[String], default_window_ns: u64, default_budget: u64) -> Option<Opts> {
    let mut o = Opts {
        window_ns: default_window_ns,
        budget: default_budget,
        out: None,
        gate: false,
        paths: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--window-ns" => {
                o.window_ns = args.get(i + 1)?.parse().ok()?;
                i += 2;
            }
            "--budget" => {
                o.budget = args.get(i + 1)?.parse().ok()?;
                i += 2;
            }
            "--out" => {
                o.out = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--gate" => {
                o.gate = true;
                i += 1;
            }
            a if a.starts_with("--") => return None,
            a => {
                o.paths.push(a.to_owned());
                i += 1;
            }
        }
    }
    Some(o)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "certify" => {
            let Some(o) = parse_opts(&args[1..], 0, 64) else {
                return usage();
            };
            certify(&o)
        }
        "mutant" => {
            let Some(o) = parse_opts(&args[1..], 2_000, 64) else {
                return usage();
            };
            mutant(&o)
        }
        "lint" => {
            let Some(o) = parse_opts(&args[1..], 0, 0) else {
                return usage();
            };
            if o.paths.is_empty() {
                return usage();
            }
            lint(&o)
        }
        "validate" => {
            let Some(file) = args.get(1) else {
                return usage();
            };
            match fs::read_to_string(file)
                .map_err(|e| e.to_string())
                .and_then(|s| validate_certificate_json(&s))
            {
                Ok(()) => {
                    println!("{file}: ok");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{file}: INVALID: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

fn certify(o: &Opts) -> ExitCode {
    let window = Time::from_ns(o.window_ns);
    let mut reports = Vec::new();
    let mut failed = false;
    for case in CheckCase::APPS {
        let ex = case.explore(window, o.budget);
        let st = &ex.stats;
        println!(
            "{:<12} explored={} naive={} ratio={}x pruned_commuting={} pruned_sleep={} excluded={}{}",
            case.name(),
            st.explored,
            st.naive,
            st.ratio(),
            st.pruned_commuting,
            st.pruned_sleep,
            st.excluded,
            if st.budget_exhausted { " (budget exhausted)" } else { "" },
        );
        if let Some(cx) = &ex.counterexample {
            failed = true;
            println!("  VIOLATION: swapped {}", cx.swapped);
            println!("  canonical: {}", cx.canonical.digest);
            println!("  divergent: {}", cx.divergent.digest);
        } else if st.ratio() < 2 {
            failed = true;
            println!("  GATE: pruning ratio {}x < 2x", st.ratio());
        } else {
            println!(
                "  certified (window {} ns, budget {})",
                o.window_ns, o.budget
            );
        }
        reports.push(CaseReport {
            app: case.name().to_owned(),
            fabric: "ib_abe".to_owned(),
            pes: case.pes(),
            window_ps: window.as_ps(),
            budget: o.budget,
            exploration: ex,
        });
    }
    let doc = certificate_json(&reports);
    if let Err(e) = validate_certificate_json(&doc) {
        eprintln!("internal: emitted certificate fails validation: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &o.out {
        if let Err(e) = fs::write(path, &doc) {
            eprintln!("write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("certificate -> {path}");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn mutant(o: &Opts) -> ExitCode {
    let window = Time::from_ns(o.window_ns);
    let case = CheckCase::SchedMutant;
    let ex = case.explore(window, o.budget);
    let st = &ex.stats;
    println!(
        "{} explored={} naive={} pruned_commuting={} pruned_sleep={} excluded={}",
        case.name(),
        st.explored,
        st.naive,
        st.pruned_commuting,
        st.pruned_sleep,
        st.excluded,
    );
    let Some(cx) = &ex.counterexample else {
        eprintln!(
            "GATE: the schedule-dependent mutant was NOT caught (window {} ns, budget {})",
            o.window_ns, o.budget
        );
        return ExitCode::FAILURE;
    };
    println!(
        "counterexample after {} run(s): swapped {}",
        st.explored, cx.swapped
    );
    println!("  prescription: {:?}", cx.prescription);
    println!(
        "  canonical: clean={} {}",
        cx.canonical.clean, cx.canonical.digest
    );
    println!(
        "  divergent: clean={} {}",
        cx.divergent.clean, cx.divergent.digest
    );
    // the counterexample must replay deterministically
    let (replayed, _) = case.run_once(window, &cx.prescription);
    if replayed.digest != cx.divergent.digest || replayed.clean != cx.divergent.clean {
        eprintln!(
            "GATE: counterexample did NOT replay (got {})",
            replayed.digest
        );
        return ExitCode::FAILURE;
    }
    println!("  replayed: identical");
    ExitCode::SUCCESS
}

fn lint(o: &Opts) -> ExitCode {
    let findings = match typestate::analyze_paths(&o.paths) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{}", f.render());
    }
    println!("typestate: {} finding(s)", findings.len());

    // communication graphs, informational
    let mut files = Vec::new();
    for p in &o.paths {
        let _ = collect_rs(std::path::Path::new(p), &mut files);
    }
    files.sort();
    for f in &files {
        if let Ok(src) = fs::read_to_string(f) {
            let g = commgraph::extract(&f.to_string_lossy(), &src);
            if !g.edges.is_empty() {
                print!("{}", g.render());
            }
        }
    }

    if o.gate {
        match typestate::typestate_gate(&findings) {
            Ok(msg) => {
                println!("{msg}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("GATE: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        ExitCode::SUCCESS
    }
}

fn collect_rs(p: &std::path::Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    if p.is_dir() {
        for e in fs::read_dir(p)? {
            collect_rs(&e?.path(), out)?;
        }
    } else if p.extension().is_some_and(|e| e == "rs") {
        out.push(p.to_path_buf());
    }
    Ok(())
}
