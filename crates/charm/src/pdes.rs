//! Machine ↔ PDES glue: routing runtime events to their home shards.
//!
//! The engine itself lives in `ckd_sim::pdes`; this module decides *which*
//! shard each [`Ev`] belongs to (the PE whose state its dispatch mutates —
//! the same PE its independence footprint names), derives the node-aligned
//! [`ShardMap`] from the topology, and takes the safe window from the
//! fabric's minimum cross-node latency. Dispatch itself stays on the
//! coordinator thread — `Machine` is deliberately `!Send` (chares hold
//! `Rc`s) — so the worker threads act purely as progress engines for their
//! shards' heaps.

use ckd_sim::pdes::{PdesStats, ShardMap, ShardedEngine};
use ckd_sim::Time;
use ckd_topo::Pe;

use crate::machine::{Ev, Machine};

/// The sharded engine a machine runs on when `with_shards(n > 1)`.
pub(crate) struct PdesRuntime {
    pub(crate) engine: ShardedEngine<Ev>,
}

/// Event payloads must be shippable to shard worker threads.
fn _assert_ev_send(ev: Ev) -> impl Send {
    ev
}

impl Machine {
    /// Build the node-aligned shard map and the threaded engine. Called by
    /// the builder exactly once, before any event is pushed.
    pub(crate) fn install_pdes(&mut self, shards: usize) {
        debug_assert!(self.events.is_empty(), "install_pdes before seeding");
        let topo = self.net.machine();
        let nodes: Vec<u32> = (0..self.npes())
            .map(|p| topo.node_of(Pe(p as u32)).0)
            .collect();
        let map = ShardMap::node_aligned(&nodes, shards);
        let lookahead = self.net.fabric().lookahead();
        self.pdes = Some(PdesRuntime {
            engine: ShardedEngine::new(map, lookahead),
        });
    }

    /// PDES engine counters, when the machine runs sharded. Deliberately
    /// not part of [`MachineStats`](crate::MachineStats): serial and
    /// sharded runs must keep byte-identical stats output.
    pub fn pdes_stats(&self) -> Option<PdesStats> {
        self.pdes.as_ref().map(|p| p.engine.stats())
    }

    /// Pop the next runtime event at or before `limit` from whichever
    /// engine this machine runs on.
    #[inline]
    pub(crate) fn pop_next(&mut self, limit: Time) -> Option<(Time, Ev)> {
        match self.pdes.as_mut() {
            None => self.events.pop_before(limit),
            Some(p) => p.engine.pop_before(limit),
        }
    }

    /// Pending events across whichever engine this machine runs on.
    #[inline]
    pub(crate) fn queue_depth(&self) -> usize {
        match self.pdes.as_ref() {
            None => self.events.len(),
            Some(p) => p.engine.len(),
        }
    }

    /// Route an event to its home shard. The home PE mirrors the event's
    /// independence footprint: the PE whose state dispatch mutates.
    pub(crate) fn push_ev_sharded(&mut self, at: Time, ev: Ev) {
        let home = self.home_pe_of(&ev);
        let p = self.pdes.as_mut().expect("caller checked pdes");
        let shard = home.map_or(0, |pe| p.engine.map().shard_of(pe.idx()));
        p.engine.push(at, shard, ev);
    }

    /// The PE an event fires on, `None` for events with no resolvable home
    /// (a direct landing on a handle that has been torn down) — those are
    /// conservatively homed on shard 0; order is unaffected either way.
    fn home_pe_of(&self, ev: &Ev) -> Option<Pe> {
        match ev {
            Ev::MsgArrive { pe, .. } | Ev::PeLoop { pe } | Ev::ProgressTick { pe } => Some(*pe),
            Ev::ReduceUp { to, .. } | Ev::BcastDown { to, .. } => Some(*to),
            Ev::DirectLand { handle, .. } | Ev::DirectGetLand { handle, .. } => {
                self.direct.recv_pe(*handle).ok()
            }
            Ev::RelDeliver { link, .. } => Some(Pe(link.1)),
            Ev::RelAck { to, .. } | Ev::RelTimer { to, .. } => Some(Pe(*to)),
        }
    }
}
