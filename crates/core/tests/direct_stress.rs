//! Wall-clock stress for the multi-thread CkDirect channel
//! (`ckdirect::direct`): real std threads hammering put / poll / re-arm
//! cycles to exercise the release/acquire publication protocol.
//!
//! The invariants under test:
//!
//! * payloads are never torn — a receiver sees every word of generation
//!   `i`'s payload or none of it, even with the sender spinning;
//! * `WouldOverwrite` fires exactly when the receiver has not re-armed
//!   since the last accepted put, and never otherwise;
//! * `OobCollision` fires exactly when the payload's final word equals the
//!   pattern, and the buffer is untouched by the rejected put.

use ckdirect::direct::{channel, channel_checked, DirectReceiver, PutError};
use ckdirect::CheckedRecv;
use std::thread;

const OOB: u64 = u64::MAX;

/// Wait for an arrival, yielding the CPU between polls — unlike
/// `recv_spin`, this stays live even when sender and receiver share one
/// core (the CI container), at the cost of a syscall per empty poll.
fn recv_yield(rx: &mut DirectReceiver) -> Vec<u8> {
    loop {
        if let Some(m) = rx.try_recv() {
            return m;
        }
        thread::yield_now();
    }
}

/// A payload whose every word carries the iteration stamp — any tear shows
/// up as a word mismatch at the receiver.
fn stamped(words: usize, stamp: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(words * 8);
    for _ in 0..words {
        out.extend_from_slice(&stamp.to_le_bytes());
    }
    out
}

#[test]
fn thousands_of_cycles_never_tear() {
    const WORDS: usize = 64;
    const ITERS: u64 = 4_000;
    let (mut tx, mut rx) = channel(WORDS * 8, OOB);

    let sender = thread::spawn(move || {
        for i in 1..=ITERS {
            let payload = stamped(WORDS, i);
            loop {
                match tx.put(&payload) {
                    Ok(()) => break,
                    Err(PutError::WouldOverwrite) => thread::yield_now(),
                    Err(e) => panic!("iteration {i}: unexpected {e}"),
                }
            }
        }
        tx.stats()
    });

    let receiver = thread::spawn(move || {
        for i in 1..=ITERS {
            let msg = recv_yield(&mut rx);
            for (w, chunk) in msg.chunks_exact(8).enumerate() {
                let got = u64::from_le_bytes(chunk.try_into().unwrap());
                assert_eq!(got, i, "torn payload: word {w} of generation {i}");
            }
            rx.arm();
        }
        rx.stats()
    });

    let tx_stats = sender.join().unwrap();
    let rx_stats = receiver.join().unwrap();
    assert_eq!(tx_stats.completed, ITERS, "every put eventually lands");
    assert_eq!(rx_stats.completed, ITERS, "every payload is delivered once");
    // the sender may have been rejected while the receiver held data, but
    // never lost an accepted put
    assert!(tx_stats.attempts >= tx_stats.completed);
}

#[test]
fn zero_copy_polling_sees_untorn_words() {
    const WORDS: usize = 32;
    const ITERS: u64 = 2_000;
    let (mut tx, mut rx) = channel(WORDS * 8, OOB);

    let sender = thread::spawn(move || {
        for i in 1..=ITERS {
            let payload = stamped(WORDS, i * 3 + 1);
            while let Err(PutError::WouldOverwrite) = tx.put(&payload) {
                thread::yield_now();
            }
        }
    });

    let receiver = thread::spawn(move || {
        for i in 1..=ITERS {
            while !rx.poll() {
                thread::yield_now();
            }
            rx.with_data(|view| {
                let expect = i * 3 + 1;
                assert_eq!(view.len(), WORDS * 8, "view length is in bytes");
                for w in 0..view.len() / 8 {
                    assert_eq!(view.word(w), expect, "torn word {w} in generation {i}");
                }
            });
            rx.arm();
        }
        assert_eq!(rx.generation(), ITERS + 1, "one re-arm per delivery");
    });

    sender.join().unwrap();
    receiver.join().unwrap();
}

#[test]
fn would_overwrite_fires_exactly_until_rearm() {
    let (mut tx, mut rx) = channel(16, OOB);
    assert!(tx.receiver_ready());
    tx.put(&stamped(2, 7)).unwrap();
    assert!(!tx.receiver_ready());

    // rejected while the data sits unconsumed...
    assert_eq!(tx.put(&stamped(2, 8)), Err(PutError::WouldOverwrite));
    // ...and still rejected after delivery but before the re-arm
    assert_eq!(rx.try_recv().unwrap(), stamped(2, 7));
    assert_eq!(tx.put(&stamped(2, 8)), Err(PutError::WouldOverwrite));

    // the re-arm is the *only* thing that re-opens the channel
    rx.arm();
    assert!(tx.receiver_ready());
    tx.put(&stamped(2, 8)).unwrap();
    assert_eq!(rx.recv_spin(), stamped(2, 8));

    let s = tx.stats();
    assert_eq!(s.completed, 2, "exactly the two accepted puts");
    assert_eq!(s.attempts, 4, "two accepted + two rejected attempts");
}

#[test]
fn oob_collision_fires_exactly_on_pattern_tail_and_leaves_data_alone() {
    let (mut tx, mut rx) = channel(24, OOB);
    tx.put(&stamped(3, 41)).unwrap();

    // a payload ending in the pattern is rejected even though the channel
    // would otherwise accept a put after this re-arm
    assert_eq!(rx.recv_spin(), stamped(3, 41));
    rx.arm();
    let mut poisoned = stamped(3, 42);
    poisoned[16..].copy_from_slice(&OOB.to_le_bytes());
    assert_eq!(tx.put(&poisoned), Err(PutError::OobCollision));

    // the rejection wrote nothing: the channel still looks empty...
    assert!(rx.try_recv().is_none());
    // ...and a clean payload goes through untouched by the poisoned one
    tx.put(&stamped(3, 43)).unwrap();
    assert_eq!(rx.recv_spin(), stamped(3, 43));
    assert_eq!(tx.stats().completed, 2);
}

#[test]
fn size_mismatch_is_rejected_before_any_write() {
    let (mut tx, mut rx) = channel(16, OOB);
    assert_eq!(tx.put(&stamped(3, 1)), Err(PutError::SizeMismatch));
    assert_eq!(tx.put(&stamped(1, 1)), Err(PutError::SizeMismatch));
    assert!(rx.try_recv().is_none());
    tx.put(&stamped(2, 1)).unwrap();
    assert_eq!(rx.recv_spin(), stamped(2, 1));
}

/// The checked channel (per-put CRC + sequence number folded into the
/// sentinel word) under real threads and a deterministic fault schedule:
/// damaged landings (payload bit-flips, damaged protocol words, torn
/// writes) are detected exactly once and recovered by retransmission, and
/// replayed puts are suppressed exactly once — while the clean traffic
/// flows untorn and in order.
#[test]
fn checked_channel_recovers_on_a_faulty_fabric_under_threads() {
    const WORDS: usize = 16;
    const ITERS: u64 = 2_000;
    let (mut tx, mut rx) = channel_checked(WORDS * 8, OOB);

    let sender = thread::spawn(move || {
        let (mut corrupts, mut dups) = (0u64, 0u64);
        let send = |do_put: &mut dyn FnMut() -> Result<(), PutError>| loop {
            match do_put() {
                Ok(()) => break,
                Err(PutError::WouldOverwrite) => thread::yield_now(),
                Err(e) => panic!("unexpected {e}"),
            }
        };
        for i in 1..=ITERS {
            let payload = stamped(WORDS, i);
            if i % 5 == 0 {
                // the first copy arrives damaged — rotate through the
                // three damage shapes — then retransmit until it lands
                if i % 15 == 0 {
                    send(&mut || tx.put_torn(&payload, i as usize % WORDS));
                } else if i % 10 == 0 {
                    // the "corrupted last 8 bytes" case: the protocol word
                    send(&mut || tx.put_corrupted(&payload, WORDS));
                } else {
                    send(&mut || tx.put_corrupted(&payload, i as usize % WORDS));
                }
                corrupts += 1;
                send(&mut || tx.retransmit());
            } else {
                send(&mut || tx.put(&payload));
            }
            if i % 7 == 0 {
                // the fabric replays the landed put after consumption
                send(&mut || tx.put_duplicate());
                dups += 1;
            }
        }
        (corrupts, dups)
    });

    let receiver = thread::spawn(move || {
        let mut expected = 1u64;
        loop {
            match rx.try_recv() {
                CheckedRecv::Data(msg) => {
                    for (w, chunk) in msg.chunks_exact(8).enumerate() {
                        let got = u64::from_le_bytes(chunk.try_into().unwrap());
                        assert_eq!(got, expected, "torn word {w} in generation {expected}");
                    }
                    rx.arm();
                    if expected == ITERS {
                        break;
                    }
                    expected += 1;
                }
                // damaged and replayed landings re-arm themselves
                CheckedRecv::Corrupt | CheckedRecv::Duplicate => {}
                CheckedRecv::Empty => thread::yield_now(),
            }
        }
        rx.stats()
    });

    let (corrupts, dups) = sender.join().unwrap();
    let stats = receiver.join().unwrap();
    assert_eq!(stats.delivered, ITERS, "every logical put delivered once");
    assert_eq!(
        stats.corrupt_detected, corrupts,
        "each damaged landing detected exactly once"
    );
    assert_eq!(
        stats.dups_suppressed, dups,
        "each replay suppressed exactly once"
    );
}

/// Many independent channels in flight at once — one thread per pair — to
/// shake out any accidental sharing between instances.
#[test]
fn parallel_channel_pairs_stay_independent() {
    const PAIRS: usize = 8;
    const ITERS: u64 = 500;
    let mut handles = Vec::new();
    for p in 0..PAIRS {
        handles.push(thread::spawn(move || {
            let (mut tx, mut rx) = channel(32, OOB);
            let tag = (p as u64 + 1) << 32;
            for i in 1..=ITERS {
                let payload = stamped(4, tag | i);
                while let Err(PutError::WouldOverwrite) = tx.put(&payload) {
                    thread::yield_now();
                }
                let msg = recv_yield(&mut rx);
                assert_eq!(msg, payload, "pair {p} generation {i}");
                rx.arm();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
