//! Seeded, stream-splittable randomness.
//!
//! Every source of randomness in an experiment derives from a single root
//! seed plus a textual stream label, so re-running any benchmark with the
//! same seed reproduces the exact same workload regardless of how many other
//! streams were drawn in between.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// FNV-1a over a byte string; used only for deriving sub-seeds, never for
/// anything adversarial.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic RNG handle carrying its root seed so that independent
/// sub-streams can be split off by label.
#[derive(Clone)]
pub struct DetRng {
    seed: u64,
    rng: SmallRng,
}

impl DetRng {
    /// Root RNG for an experiment.
    pub fn new(seed: u64) -> DetRng {
        DetRng {
            seed,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent stream identified by `label`.
    ///
    /// Streams with distinct labels are statistically independent; the same
    /// `(seed, label)` pair always yields the same stream.
    pub fn stream(&self, label: &str) -> DetRng {
        let sub = self.seed ^ fnv1a(label.as_bytes()).rotate_left(17);
        DetRng::new(sub.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    /// Derive an independent stream identified by an integer (e.g. a PE id).
    pub fn stream_u64(&self, id: u64) -> DetRng {
        let sub = self.seed ^ id.wrapping_mul(0xff51_afd7_ed55_8ccd).rotate_left(31);
        DetRng::new(sub.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    /// The root seed this stream was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Fill a byte buffer with pseudo-random data (payload generation).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.rng.fill(buf);
    }

    /// Access the underlying `rand` RNG for distributions not wrapped here.
    pub fn inner(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1 << 40), b.range(0, 1 << 40));
        }
    }

    #[test]
    fn labeled_streams_are_reproducible_and_distinct() {
        let root = DetRng::new(7);
        let mut s1 = root.stream("jacobi");
        let mut s2 = root.stream("jacobi");
        let mut s3 = root.stream("matmul");
        let a: Vec<u64> = (0..16).map(|_| s1.range(0, u64::MAX)).collect();
        let b: Vec<u64> = (0..16).map(|_| s2.range(0, u64::MAX)).collect();
        let c: Vec<u64> = (0..16).map(|_| s3.range(0, u64::MAX)).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn integer_streams_distinct() {
        let root = DetRng::new(7);
        let x = root.stream_u64(0).range(0, u64::MAX);
        let y = root.stream_u64(1).range(0, u64::MAX);
        assert_ne!(x, y);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // out-of-range p is clamped rather than panicking
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = DetRng::new(9).stream("payload");
        let mut b = DetRng::new(9).stream("payload");
        let mut ba = [0u8; 64];
        let mut bb = [0u8; 64];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }
}
