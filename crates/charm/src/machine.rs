//! The simulated parallel machine: PEs, arrays, the event queue, and the
//! composition points — the completion backend and the runtime-layer
//! stack. Event execution lives in `exec.rs`; reliable delivery in
//! `rel.rs`.
//!
//! # Execution model
//!
//! Each PE runs the classic message-driven scheduler loop, reproduced here
//! as discrete events:
//!
//! ```text
//! loop {
//!     poll CkDirect handles          // polling backends: sentinel checks,
//!                                    // callbacks as plain function calls
//!     dequeue one message            // charge `sched`
//!     run its entry method           // user code charges compute
//! }
//! ```
//!
//! A message send pays allocation + envelope + the network model's
//! two-sided cost and lands in the destination's scheduler queue. A
//! CkDirect put pays only the RDMA issue cost and lands *directly in the
//! receiver's registered buffer*; on a polling backend the receiving
//! scheduler notices it at its next sweep (or, if idle, after
//! `idle_poll_gap`), and the completion callback runs without any envelope,
//! allocation, or scheduling overhead — the entire point of the paper.

use std::collections::VecDeque;

use ckd_net::{NetModel, Protocol, RelStats, RetryPolicy};
use ckd_race::{Footprint, Sanitizer, SanitizerConfig};
use ckd_sim::{EventQueue, FaultCounts, FaultOp, FaultPlan, ReorderPolicy, Time};
use ckd_topo::{Dims, Idx, Mapper, Pe};
use ckd_trace::{Phase, ProfConfig, Profiler, ProtoClass, Snapshot, TraceConfig, Tracer};
use ckdirect::{DirectConfig, DirectRegistry, HandleId, RegistryCounters};

use crate::array::{ArrayId, ArrayInfo};
use crate::backend::{backend_for, matching_backend, CompletionBackend};
use crate::builder::MachineBuilder;
use crate::chare::{Chare, ChareRef};
use crate::config::RtsConfig;
use crate::layer::{LayerStack, RuntimeLayer};
use crate::learn::{LearnConfig, LearningTotals};
use crate::msg::{EntryId, Msg, Payload};
use crate::reduction::{RedOp, RedPeState, RedTarget, RedVal};
use crate::rel::ReliableLayer;
use crate::stats::{MachineStats, PeStats};

/// CkDirect completion-callback token: which chare to poke, and how.
#[derive(Clone, Copy, Debug)]
pub struct DirectCb {
    /// The receiving chare.
    pub target: ChareRef,
    /// What delivery means for this channel.
    pub kind: CbKind,
}

/// Delivery style of a CkDirect channel.
#[derive(Clone, Copy, Debug)]
pub enum CbKind {
    /// Application-created channel: invoke `Chare::direct_callback(tag)`.
    User(u32),
    /// Channel installed by the learning framework: synthesize a message
    /// for this entry point from the landed bytes and invoke the entry
    /// method directly (callback cost, no scheduler trip), then re-arm.
    Learned(EntryId),
}

#[derive(Clone)]
pub(crate) enum Ev {
    /// A two-sided message finished arriving at `pe`.
    MsgArrive {
        pe: Pe,
        target: ChareRef,
        msg: Msg,
        recv_cpu: Time,
        /// Receiver CPU consumed during the wire protocol (rendezvous
        /// registration): backdated capacity, see `ckd_net::Timing`.
        overlap_cpu: Time,
        /// PE the message left from (trace attribution only).
        from: Pe,
        /// Protocol family the model chose for the transfer. The tracer
        /// emits a pseudo-CTS on arrival for rendezvous transfers — the net
        /// model collapses the RTS/CTS handshake into one `Timing`, so the
        /// handshake legs are reconstructed, not separately simulated.
        proto: ProtoClass,
        /// Sanitizer happens-before edge token (0 when disabled).
        edge: u64,
    },
    /// A CkDirect put finished landing in its receive buffer.
    DirectLand { handle: HandleId, recv_cpu: Time },
    /// A CkDirect get completed back at its initiator.
    DirectGetLand { handle: HandleId, recv_cpu: Time },
    /// One scheduler iteration on `pe`.
    PeLoop { pe: Pe },
    /// Async software-progress tick on `pe`: drain one completion-queue
    /// batch even if the scheduler is busy or idle (see `progress.rs`).
    ProgressTick { pe: Pe },
    /// Reduction partial result moving up the PE tree.
    ReduceUp {
        array: ArrayId,
        to: Pe,
        value: RedVal,
        count: usize,
        op: RedOp,
        target: RedTarget,
        recv_cpu: Time,
        /// Sanitizer happens-before edge token carrying the child subtree's
        /// contributions (0 when disabled).
        edge: u64,
    },
    /// Broadcast propagating down the PE tree.
    BcastDown {
        array: ArrayId,
        to: Pe,
        ep: EntryId,
        payload: Payload,
        size: usize,
        recv_cpu: Time,
        /// Sanitizer happens-before edge token (0 when disabled).
        edge: u64,
    },
    /// Fault-plane arrival of a reliable packet: carries the real delivery
    /// event (`inner`) plus the protocol header the receiver checks. Fresh
    /// and intact ⇒ dispatch `inner` at this very instant (identical timing
    /// to the unfaulted run); corrupted or duplicated ⇒ discard.
    RelDeliver {
        token: u64,
        link: (u32, u32),
        seq: u64,
        kind: FaultOp,
        corrupted: bool,
        inner: Box<Ev>,
    },
    /// A reliability ack reached the sender: retire the pending packet.
    /// Charges no PE time and emits no trace record — pure NIC protocol.
    /// `to` is the sender PE the ack lands on (shard homing).
    RelAck { token: u64, to: u32 },
    /// Retransmission timer: if the packet is still pending at this exact
    /// attempt, resend it through the fault plane with backoff. `to` is the
    /// sender PE the timer fires on (shard homing).
    RelTimer { token: u64, attempt: u32, to: u32 },
}

pub(crate) struct PeState {
    pub queue: VecDeque<(ChareRef, Msg)>,
    pub busy_until: Time,
    pub loop_scheduled: bool,
    pub stats: PeStats,
}

/// The whole simulated machine.
pub struct Machine {
    pub(crate) net: NetModel,
    pub(crate) cfg: RtsConfig,
    pub(crate) events: EventQueue<Ev>,
    pub(crate) now: Time,
    pub(crate) pes: Vec<PeState>,
    pub(crate) arrays: Vec<ArrayInfo>,
    /// Elements of each array homed on each PE: `[array][pe] -> lins`.
    pub(crate) locals: Vec<Vec<Vec<u32>>>,
    pub(crate) chares: Vec<Vec<Option<Box<dyn Chare>>>>,
    pub(crate) direct: DirectRegistry<DirectCb>,
    pub(crate) red: Vec<Vec<RedPeState>>,
    /// How put completion is detected (see [`CompletionBackend`]).
    pub(crate) backend: Box<dyn CompletionBackend>,
    /// The composed runtime-layer stack (tracer, sanitizer, learner,
    /// reliable delivery, user layers).
    pub(crate) stack: LayerStack,
    /// Host-side self-profiler (disabled unless profiling was enabled);
    /// disabled it costs one branch per seam, and `run_until` never even
    /// enters the profiled dispatch loop.
    pub(crate) prof: Profiler,
    pub(crate) stats: MachineStats,
    /// Sharded PDES engine replacing `events` when `with_shards(n > 1)`
    /// was requested; `None` is the serial fast path (see `pdes.rs`).
    pub(crate) pdes: Option<crate::pdes::PdesRuntime>,
    /// Async software-progress engine for CQ-draining backends; `None`
    /// (the default) leaves draining to the scheduler (see `progress.rs`).
    pub(crate) progress: Option<crate::progress::ProgressState>,
    pub(crate) stop: bool,
    /// Recycled callback-delivery buffers: the scheduler hands these to
    /// entry methods and completion callbacks instead of allocating a
    /// fresh `Vec` per invocation (see `exec::run_callbacks`).
    pub(crate) cb_pool: Vec<Vec<(DirectCb, HandleId)>>,
    /// Recycled poll-sweep delivery buffers, pooled the same way so the
    /// per-iteration sweep allocates nothing in steady state.
    pub(crate) sweep_pool: Vec<Vec<(HandleId, DirectCb)>>,
}

impl Machine {
    /// Start building a machine over `net`: pick layers and a backend,
    /// then [`MachineBuilder::build`]. Defaults match the fabric — see
    /// [`MachineBuilder`].
    pub fn builder(net: NetModel) -> MachineBuilder {
        MachineBuilder::new(net)
    }

    /// Build a machine from a network model, runtime costs, and a CkDirect
    /// backend configuration. The completion backend is derived from
    /// `direct_cfg`; use [`Machine::builder`] to choose one explicitly.
    pub fn new(net: NetModel, cfg: RtsConfig, direct_cfg: DirectConfig) -> Machine {
        let backend = backend_for(&direct_cfg);
        Machine::with_backend(net, cfg, backend, direct_cfg)
    }

    /// Convenience: a machine whose CkDirect backend matches the fabric
    /// (sentinel polling on Infiniband, delivery callbacks on DCMF) — a
    /// one-line lookup through [`matching_backend`].
    pub fn with_matching_backend(net: NetModel, cfg: RtsConfig) -> Machine {
        let backend = matching_backend(net.fabric());
        let direct_cfg = backend.direct_config();
        Machine::with_backend(net, cfg, backend, direct_cfg)
    }

    pub(crate) fn with_backend(
        net: NetModel,
        cfg: RtsConfig,
        backend: Box<dyn CompletionBackend>,
        direct_cfg: DirectConfig,
    ) -> Machine {
        let npes = net.machine().npes();
        Machine {
            net,
            cfg,
            events: EventQueue::new(),
            now: Time::ZERO,
            pes: (0..npes)
                .map(|_| PeState {
                    queue: VecDeque::new(),
                    busy_until: Time::ZERO,
                    loop_scheduled: false,
                    stats: PeStats::default(),
                })
                .collect(),
            arrays: Vec::new(),
            locals: Vec::new(),
            chares: Vec::new(),
            direct: DirectRegistry::new(npes, direct_cfg),
            red: Vec::new(),
            backend,
            stack: LayerStack::new(),
            prof: Profiler::disabled(),
            stats: MachineStats::default(),
            pdes: None,
            progress: None,
            stop: false,
            cb_pool: Vec::new(),
            sweep_pool: Vec::new(),
        }
    }

    /// Borrow a recycled callback buffer (empty, capacity retained).
    pub(crate) fn take_cb_buf(&mut self) -> Vec<(DirectCb, HandleId)> {
        self.cb_pool.pop().unwrap_or_default()
    }

    /// Return a drained callback buffer to the pool.
    pub(crate) fn recycle_cb_buf(&mut self, mut buf: Vec<(DirectCb, HandleId)>) {
        buf.clear();
        if self.cb_pool.len() < 8 {
            self.cb_pool.push(buf);
        }
    }

    /// Borrow a recycled sweep-delivery buffer (empty, capacity retained).
    pub(crate) fn take_sweep_buf(&mut self) -> Vec<(HandleId, DirectCb)> {
        self.sweep_pool.pop().unwrap_or_default()
    }

    /// Return a drained sweep-delivery buffer to the pool.
    pub(crate) fn recycle_sweep_buf(&mut self, mut buf: Vec<(HandleId, DirectCb)>) {
        buf.clear();
        if self.sweep_pool.len() < 8 {
            self.sweep_pool.push(buf);
        }
    }

    // ---- layer installation (the builder's back end) -----------------------

    pub(crate) fn install_tracing(&mut self, cfg: TraceConfig) {
        self.stack.tracer = Tracer::enabled(cfg, self.npes());
    }

    pub(crate) fn install_sanitizer(&mut self, cfg: SanitizerConfig) {
        self.stack.san = Sanitizer::enabled(cfg, self.npes());
        self.direct
            .set_probe(self.stack.san.probe().expect("sanitizer just enabled"));
    }

    pub(crate) fn install_faults(&mut self, plan: FaultPlan, policy: RetryPolicy, degrade: u32) {
        self.stack.rel = Some(Box::new(ReliableLayer::new(plan, policy, degrade)));
    }

    pub(crate) fn install_learning(&mut self, cfg: LearnConfig) {
        self.stack.learner.cfg = Some(cfg);
    }

    pub(crate) fn install_layer(&mut self, layer: Box<dyn RuntimeLayer>) {
        self.stack.user.push(layer);
    }

    pub(crate) fn install_profiling(&mut self, cfg: ProfConfig) {
        self.prof = Profiler::enabled(cfg);
    }

    pub(crate) fn install_checker(&mut self, policy: Box<dyn ReorderPolicy>) {
        self.events.set_policy(policy);
    }

    // ---- observability accessors ------------------------------------------

    /// Learning-framework totals across all observed streams.
    pub fn learning_totals(&self) -> LearningTotals {
        self.stack.learner.totals()
    }

    /// The tracing handle (disabled unless tracing was enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.stack.tracer
    }

    /// The sanitizer handle (disabled unless race checking was enabled).
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.stack.san
    }

    /// The self-profiling handle (disabled unless profiling was enabled).
    pub fn profiler(&self) -> &Profiler {
        &self.prof
    }

    /// CkDirect completion callbacks delivered, summed over every PE.
    pub fn callback_total(&self) -> u64 {
        self.pes.iter().map(|p| p.stats.callbacks).sum()
    }

    /// CkDirect handles examined by poll sweeps, summed over every PE.
    pub fn poll_check_total(&self) -> u64 {
        self.pes.iter().map(|p| p.stats.poll_checks).sum()
    }

    /// Notification records drained from completion queues, summed over
    /// every PE (zero on every backend but notified-put).
    pub fn cq_drain_total(&self) -> u64 {
        self.stats.cq_drains
    }

    /// What the fault plane injected, when faults are enabled.
    pub fn fault_counts(&self) -> Option<FaultCounts> {
        self.stack.rel.as_ref().map(|r| r.plan.counts())
    }

    /// Reliability-layer counters (also available as
    /// [`MachineStats::rel`]). All zero when faults were never enabled.
    pub fn rel_stats(&self) -> RelStats {
        self.stats.rel
    }

    /// Footprint of the reliability layer's per-link dedup table as
    /// `(links, seqs retained above the high-water marks)`, when faults
    /// are enabled. Regression hook: `retained` must stay bounded by the
    /// reordering window, not grow with run length.
    pub fn rel_dedup_footprint(&self) -> Option<(usize, usize)> {
        self.stack
            .rel
            .as_ref()
            .map(|r| (r.seqs.links(), r.seqs.retained()))
    }

    /// The put-completion backend in use.
    pub fn backend(&self) -> &dyn CompletionBackend {
        self.backend.as_ref()
    }

    /// Number of PEs.
    pub fn npes(&self) -> usize {
        self.pes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Machine-wide statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Statistics for one PE.
    pub fn pe_stats(&self, pe: Pe) -> &PeStats {
        &self.pes[pe.idx()].stats
    }

    /// Lifetime CkDirect counters across every channel.
    pub fn direct_counters(&self) -> RegistryCounters {
        self.direct.counters()
    }

    /// The runtime cost configuration.
    pub fn config(&self) -> &RtsConfig {
        &self.cfg
    }

    /// The network model in use.
    pub fn net(&self) -> &NetModel {
        &self.net
    }

    // ---- arrays and elements ----------------------------------------------

    /// Create a chare array: `factory` is called once per index, elements
    /// are homed by `mapper`. Must run before [`Machine::run`].
    pub fn create_array(
        &mut self,
        name: &str,
        dims: Dims,
        mapper: Mapper,
        mut factory: impl FnMut(Idx) -> Box<dyn Chare>,
    ) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        let info = ArrayInfo::new(name, dims, mapper, self.npes());
        let mut locals = vec![Vec::new(); self.npes()];
        let mut elems = Vec::with_capacity(dims.len());
        for lin in 0..dims.len() {
            let idx = dims.unlinear(lin);
            locals[info.home(lin, self.npes()).idx()].push(lin as u32);
            elems.push(Some(factory(idx)));
        }
        self.arrays.push(info);
        self.locals.push(locals);
        self.chares.push(elems);
        self.red
            .push((0..self.npes()).map(|_| RedPeState::new()).collect());
        id
    }

    /// Static facts about an array.
    pub fn array_info(&self, array: ArrayId) -> &ArrayInfo {
        &self.arrays[array.idx()]
    }

    /// Reference to the element of `array` at `idx`.
    pub fn element(&self, array: ArrayId, idx: Idx) -> ChareRef {
        ChareRef {
            array,
            lin: self.arrays[array.idx()].dims.linear(idx) as u32,
        }
    }

    /// Inspect a chare's concrete state (testing / result extraction).
    pub fn chare<T: Chare>(&self, aref: ChareRef) -> Option<&T> {
        self.chares[aref.array.idx()][aref.lin as usize]
            .as_deref()
            .and_then(|c| c.downcast_ref::<T>())
    }

    /// Mutate a chare's concrete state before the run starts (topology
    /// wiring that factories cannot do because the array is still being
    /// built when they execute).
    pub fn with_chare_mut<T: Chare>(&mut self, aref: ChareRef, f: impl FnOnce(&mut T)) {
        let c = self.chares[aref.array.idx()][aref.lin as usize]
            .as_deref_mut()
            .and_then(|c| c.downcast_mut::<T>())
            .expect("chare exists and has the expected type");
        f(c);
    }

    /// Home PE of an element.
    pub fn home_pe(&self, aref: ChareRef) -> Pe {
        self.arrays[aref.array.idx()].home(aref.lin as usize, self.pes.len())
    }

    // ---- seeding and running ----------------------------------------------

    /// Inject an initial message (delivered at time zero, free of wire
    /// costs — the analogue of `main::main` firing the first entries).
    pub fn seed(&mut self, target: ChareRef, msg: Msg) {
        let pe = self.home_pe(target);
        self.push_ev(
            Time::ZERO,
            Ev::MsgArrive {
                pe,
                target,
                msg,
                recv_cpu: Time::ZERO,
                overlap_cpu: Time::ZERO,
                from: pe,
                proto: ProtoClass::Control,
                edge: 0,
            },
        );
    }

    /// Inject an initial message to every element of an array.
    pub fn seed_broadcast(&mut self, array: ArrayId, msg: Msg) {
        for lin in 0..self.arrays[array.idx()].dims.len() {
            self.seed(
                ChareRef {
                    array,
                    lin: lin as u32,
                },
                msg.clone(),
            );
        }
    }

    /// Run to quiescence (or until a chare calls [`Ctx::exit`](crate::Ctx::exit)). Returns
    /// the final virtual time.
    pub fn run(&mut self) -> Time {
        self.run_until(Time::MAX)
    }

    /// Run until quiescence, exit, or `limit` virtual time. Each return
    /// hands the layer stack its [`RuntimeLayer::epilogue`], so a phased
    /// driver that calls this repeatedly delivers one epilogue per phase.
    pub fn run_until(&mut self, limit: Time) -> Time {
        if self.prof.is_enabled() {
            return self.run_until_profiled(limit);
        }
        while !self.stop {
            let Some((t, ev)) = self.pop_next(limit) else {
                break;
            };
            self.now = t;
            self.stats.events += 1;
            self.dispatch(ev);
        }
        self.stack.epilogue(&self.stats);
        self.now
    }

    /// [`Machine::run_until`] with the self-profiler collecting: times
    /// each dispatch by scheduler phase, samples the event-queue depth,
    /// and emits a JSONL snapshot every `snapshot_every` events. Kept as
    /// a separate loop so the unprofiled hot path pays nothing.
    fn run_until_profiled(&mut self, limit: Time) -> Time {
        let loop_t0 = std::time::Instant::now();
        let every = self.prof.snapshot_every();
        while !self.stop {
            let Some((t, ev)) = self.pop_next(limit) else {
                break;
            };
            self.now = t;
            self.stats.events += 1;
            self.prof.event_dispatched(self.queue_depth() as u64);
            let phase = phase_of(&ev);
            let t0 = self.prof.begin();
            self.dispatch(ev);
            self.prof.end(phase, t0);
            if let Some(every) = every {
                if self.stats.events.is_multiple_of(every) {
                    self.emit_snapshot();
                }
            }
        }
        self.prof.add_host_ns(loop_t0.elapsed().as_nanos() as u64);
        self.stack.epilogue(&self.stats);
        self.now
    }

    /// Sample the machine's deterministic counters into the profiler's
    /// snapshot stream (keyed by the current virtual time).
    fn emit_snapshot(&mut self) {
        let snap = Snapshot {
            t_ps: self.now.as_ps(),
            events: self.stats.events,
            msgs_sent: self.stats.msgs_sent,
            puts: self.stats.puts,
            put_bytes: self.stats.put_bytes,
            queue_depth: self.queue_depth() as u64,
            pollq: self.direct.pollq_total() as u64,
            ready: self.direct.ready_total() as u64,
            cq_backlog: self.direct.cq_total() as u64,
            ring_drops: self.stack.tracer.dropped_total(),
            retries: self.stats.rel.retries,
        };
        self.prof.record_snapshot(&snap);
    }

    // ---- shared accounting helpers ----------------------------------------

    /// Account one control packet issued from `pe` in the per-protocol
    /// breakdowns (reduction hops, broadcast forwarding, handle shipping).
    /// `delay` is the wire latency the packet was charged.
    pub(crate) fn record_control(&mut self, pe: Pe, delay: Time) {
        let bytes = self.net.control_bytes() as u64;
        self.stats.proto.record(Protocol::Control, bytes);
        self.pes[pe.idx()]
            .stats
            .proto_sent
            .record(Protocol::Control, bytes);
        self.stack.tracer.control_transfer(bytes, delay);
    }

    /// Schedule a scheduler iteration on `pe` if none is pending.
    pub(crate) fn ensure_loop(&mut self, pe: Pe, extra_gap: Time) {
        let st = &mut self.pes[pe.idx()];
        if !st.loop_scheduled {
            st.loop_scheduled = true;
            let at = st.busy_until.max(self.now) + extra_gap;
            self.push_ev(at, Ev::PeLoop { pe });
        }
    }

    /// Every runtime event enters the queue through here. On the canonical
    /// path (no checker, shards=1) this is exactly `events.push`; with a
    /// `ReorderPolicy` installed it additionally stamps the event with its
    /// independence footprint so the checker can tell which pending events
    /// commute (see `ckd_race::independence`); with shards > 1 it routes
    /// the event to its home shard's heap (see `pdes.rs`).
    pub(crate) fn push_ev(&mut self, at: Time, ev: Ev) {
        if self.pdes.is_some() {
            self.push_ev_sharded(at, ev);
        } else if self.events.reordering() {
            let tag = self.footprint_of(&ev).tag();
            self.events.push_tagged(at, tag, ev);
        } else {
            self.events.push(at, ev);
        }
    }

    /// The independence footprint of a pending event: which PE its
    /// dispatch mutates, whether it is an arrival-class remote delivery
    /// (reorderable by a PDES commutation window), and which channel it
    /// completes on. Reliability-plane events keep the reserved unknown
    /// footprint: the checker never runs under fault injection, and
    /// unknown conservatively conflicts with everything.
    fn footprint_of(&self, ev: &Ev) -> Footprint {
        match ev {
            Ev::MsgArrive { pe, .. } => Footprint::arrival(pe.idx()),
            Ev::DirectLand { handle, .. } | Ev::DirectGetLand { handle, .. } => self
                .direct
                .recv_pe(*handle)
                .map_or(Footprint::UNKNOWN, |pe| {
                    Footprint::arrival_on(pe.idx(), handle.0)
                }),
            Ev::PeLoop { pe } | Ev::ProgressTick { pe } => Footprint::local(pe.idx()),
            Ev::ReduceUp { to, .. } | Ev::BcastDown { to, .. } => Footprint::arrival(to.idx()),
            Ev::RelDeliver { .. } | Ev::RelAck { .. } | Ev::RelTimer { .. } => Footprint::UNKNOWN,
        }
    }
}

/// Host-profiling phase an event's dispatch is charged to: scheduler
/// work, completion-backend work, or the reliability plane. The poll
/// sweep and the layer fan-out are timed as nested sub-spans at their
/// own seams (see [`Phase`]).
fn phase_of(ev: &Ev) -> Phase {
    match ev {
        Ev::MsgArrive { .. } | Ev::PeLoop { .. } | Ev::ReduceUp { .. } | Ev::BcastDown { .. } => {
            Phase::Sched
        }
        Ev::DirectLand { .. } | Ev::DirectGetLand { .. } | Ev::ProgressTick { .. } => {
            Phase::Backend
        }
        Ev::RelDeliver { .. } | Ev::RelAck { .. } | Ev::RelTimer { .. } => Phase::Rel,
    }
}
