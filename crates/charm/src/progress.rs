//! Async software progress for the notified-put backend.
//!
//! Notified RMA decouples *landing* from *delivery*: the NIC deposits a
//! notification record in the receiver's bounded completion queue, and
//! somebody has to drain it. By default that somebody is the receiving
//! scheduler, between iterations — which reproduces the classic MPI
//! progress problem: a PE deep in a compute kernel drains nothing, and
//! senders eventually stall on CQ backpressure.
//!
//! The progress engine models the standard fix — a software progress
//! thread (the design space surveyed by Si et al., arXiv:1609.08574) — as
//! a periodic virtual-time tick per PE: whenever the PE's completion queue
//! is non-empty, a `Ev::ProgressTick` fires at the
//! next multiple of [`ProgressConfig::tick`] and drains up to one CQ batch
//! at the fabric's modeled drain cost, delivering completion callbacks
//! exactly as a scheduler-driven drain would. Ticks are armed lazily (only
//! while the CQ is non-empty), so an idle machine quiesces and the run
//! terminates.
//!
//! Delivered data is byte-identical with the engine on or off — only the
//! *timing* of drains moves. `tests/proptest_invariants.rs` proves that
//! transparency over arbitrary put interleavings.

use std::fmt;

use ckd_sim::Time;
use ckd_topo::Pe;

use crate::machine::{Ev, Machine};

/// Configuration for the modeled software-progress engine.
#[derive(Clone, Copy, Debug)]
pub struct ProgressConfig {
    /// Virtual-time cadence of the progress thread: a pending notification
    /// is drained at the next multiple of this period.
    pub tick: Time,
}

impl Default for ProgressConfig {
    /// A 5 µs tick: coarse enough that the progress thread's drain cost
    /// stays in the noise, fine enough to bound delivery latency under a
    /// busy scheduler.
    fn default() -> ProgressConfig {
        ProgressConfig {
            tick: Time::from_us(5),
        }
    }
}

/// Why a [`crate::MachineBuilder`] refused to construct a machine. The
/// builder's combination rules used to be scattered asserts that fired
/// deep inside `build()` (or worse, panics mid-run); `try_build` names
/// each illegal combination instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// `with_checker` + `with_shards(n > 1)`: schedule exploration needs
    /// the single serial event heap; the sharded engine has one heap per
    /// shard.
    CheckerWithShards,
    /// `with_checker` + `with_progress`: the reorder policies shipped with
    /// `ckd-check` have no commutation rule for progress ticks, so
    /// certification would explore schedules the serial machine can never
    /// produce. Drop one of the two.
    CheckerWithProgress,
    /// `with_progress` on a backend that never drains a completion queue
    /// (sentinel polling, DCMF callbacks, shared memory): the tick would
    /// have nothing to do, which is almost certainly a misconfiguration.
    ProgressWithoutCq,
    /// `with_progress(tick == 0)`: a zero-period tick would re-arm itself
    /// at the same virtual instant forever.
    ZeroProgressTick,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BuildError::CheckerWithShards => {
                "with_shards cannot combine with with_checker: schedule \
                 exploration needs the single serial event heap"
            }
            BuildError::CheckerWithProgress => {
                "with_checker cannot combine with with_progress: no reorder \
                 policy models progress-tick commutation"
            }
            BuildError::ProgressWithoutCq => {
                "with_progress requires a CQ-draining backend (notified-put); \
                 this backend has no completion queue to drain"
            }
            BuildError::ZeroProgressTick => {
                "with_progress tick must be nonzero: a zero-period tick never \
                 advances virtual time"
            }
        };
        f.write_str(s)
    }
}

impl std::error::Error for BuildError {}

/// Runtime state of the enabled progress engine.
pub(crate) struct ProgressState {
    pub(crate) tick: Time,
    /// Per-PE "a tick is already in the queue" latch, so a burst of
    /// landings arms at most one tick.
    pub(crate) armed: Vec<bool>,
}

impl Machine {
    pub(crate) fn install_progress(&mut self, cfg: ProgressConfig) {
        let npes = self.npes();
        self.progress = Some(ProgressState {
            tick: cfg.tick,
            armed: vec![false; npes],
        });
    }

    /// Arm a progress tick for `pe` at the next tick boundary, if the
    /// engine is enabled and none is pending. Called on every notified
    /// landing and after any drain that leaves the CQ non-empty.
    pub(crate) fn arm_progress_tick(&mut self, pe: Pe) -> bool {
        let Some(prog) = self.progress.as_mut() else {
            return false;
        };
        if prog.armed[pe.idx()] {
            return true;
        }
        prog.armed[pe.idx()] = true;
        let period = prog.tick.as_ps().max(1);
        // the next multiple of the period at or after now — the progress
        // thread runs on its own cadence, not relative to the landing
        let at = Time::from_ps(self.now.as_ps().div_ceil(period) * period);
        let at = if at > self.now { at } else { at + prog.tick };
        self.push_ev(at, Ev::ProgressTick { pe });
        true
    }
}
