//! Criterion wall-clock benches of the real (non-simulated) components:
//!
//! * the real-thread `DirectChannel` data path (put + poll + arm) against a
//!   conventional queue+dispatch message path — the host-machine analogue
//!   of Table 1's CkDirect-vs-messages comparison;
//! * the discrete-event queue;
//! * the full simulated scheduler (virtual-events per wall second).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use ckd_apps::pingpong::charm_pingpong;
use ckd_apps::{Platform, Variant};
use ckd_sim::{EventQueue, Time};
use ckdirect::direct;

/// One-slot direct channel: put → poll → arm, single-threaded (isolates
/// the per-operation software cost, independent of core count).
fn bench_direct_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("direct_channel");
    for size in [64usize, 1024, 16 * 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("put_poll_arm_{size}B"), |b| {
            let (mut tx, mut rx) = direct::channel(size, u64::MAX);
            let payload = vec![0x5Au8; size];
            b.iter(|| {
                tx.put(&payload).expect("armed");
                assert!(rx.poll());
                rx.with_data(|v| std::hint::black_box(v.word(0)));
                rx.arm();
            });
        });
        // the "message path": allocate, enqueue, dequeue, dispatch, copy out
        g.bench_function(format!("queue_dispatch_{size}B"), |b| {
            let (tx, rx) = crossbeam::channel::unbounded::<Vec<u8>>();
            let payload = vec![0x5Au8; size];
            b.iter(|| {
                tx.send(payload.clone()).unwrap(); // alloc + copy (envelope path)
                let msg = rx.recv().unwrap(); // scheduler dequeue
                std::hint::black_box(msg[0]);
            });
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1024u64 {
                // pseudo-shuffled timestamps
                q.push(Time::from_ns((i * 7919) % 104729), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            std::hint::black_box(acc)
        });
    });
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("charm_pingpong_msg_100x1KB", |b| {
        b.iter(|| {
            charm_pingpong(
                Platform::IbAbe { cores_per_node: 2 },
                Variant::Msg,
                1024,
                100,
            )
        });
    });
    g.bench_function("charm_pingpong_ckd_100x1KB", |b| {
        b.iter(|| {
            charm_pingpong(
                Platform::IbAbe { cores_per_node: 2 },
                Variant::Ckd,
                1024,
                100,
            )
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_direct_channel,
    bench_event_queue,
    bench_simulator
);
criterion_main!(benches);
