//! The simulated parallel machine: PEs, schedulers, the event loop, and the
//! CkDirect integration points.
//!
//! # Execution model
//!
//! Each PE runs the classic message-driven scheduler loop, reproduced here
//! as discrete events:
//!
//! ```text
//! loop {
//!     poll CkDirect handles          // IbPoll backend: sentinel checks,
//!                                    // callbacks as plain function calls
//!     dequeue one message            // charge `sched`
//!     run its entry method           // user code charges compute
//! }
//! ```
//!
//! A message send pays allocation + envelope + the network model's
//! two-sided cost and lands in the destination's scheduler queue. A
//! CkDirect put pays only the RDMA issue cost and lands *directly in the
//! receiver's registered buffer*; on the polling backend the receiving
//! scheduler notices it at its next sweep (or, if idle, after
//! `idle_poll_gap`), and the completion callback runs without any envelope,
//! allocation, or scheduling overhead — the entire point of the paper.

use std::collections::VecDeque;

use ckd_net::{NetModel, Protocol, RelStats, RetryPolicy};
use ckd_race::{Sanitizer, SanitizerConfig};
use ckd_sim::{EventQueue, FaultAction, FaultCounts, FaultOp, FaultPlan, Time};
use ckd_topo::{Dims, Idx, Mapper, Pe};
use ckd_trace::{BusyKind, ProtoClass, TraceConfig, Tracer};
use ckdirect::{DirectConfig, DirectRegistry, HandleId, LandOutcome, RegistryCounters};

use crate::array::{ArrayId, ArrayInfo};
use crate::chare::{Chare, ChareRef};
use crate::config::RtsConfig;
use crate::ctx::Ctx;
use crate::learn::{LearnConfig, Learner, LearningTotals};
use crate::msg::{EntryId, Msg, Payload};
use crate::reduction::{tree_children, tree_parent, RedOp, RedPeState, RedTarget, RedVal};
use crate::rel::{Pending, ReliableLayer};
use crate::stats::{MachineStats, PeStats};

/// CkDirect completion-callback token: which chare to poke, and how.
#[derive(Clone, Copy, Debug)]
pub struct DirectCb {
    /// The receiving chare.
    pub target: ChareRef,
    /// What delivery means for this channel.
    pub kind: CbKind,
}

/// Delivery style of a CkDirect channel.
#[derive(Clone, Copy, Debug)]
pub enum CbKind {
    /// Application-created channel: invoke `Chare::direct_callback(tag)`.
    User(u32),
    /// Channel installed by the learning framework: synthesize a message
    /// for this entry point from the landed bytes and invoke the entry
    /// method directly (callback cost, no scheduler trip), then re-arm.
    Learned(EntryId),
}

#[derive(Clone)]
pub(crate) enum Ev {
    /// A two-sided message finished arriving at `pe`.
    MsgArrive {
        pe: Pe,
        target: ChareRef,
        msg: Msg,
        recv_cpu: Time,
        /// Receiver CPU consumed during the wire protocol (rendezvous
        /// registration): backdated capacity, see `ckd_net::Timing`.
        overlap_cpu: Time,
        /// PE the message left from (trace attribution only).
        from: Pe,
        /// Protocol family the model chose for the transfer. The tracer
        /// emits a pseudo-CTS on arrival for rendezvous transfers — the net
        /// model collapses the RTS/CTS handshake into one `Timing`, so the
        /// handshake legs are reconstructed, not separately simulated.
        proto: ProtoClass,
        /// Sanitizer happens-before edge token (0 when disabled).
        edge: u64,
    },
    /// A CkDirect put finished landing in its receive buffer.
    DirectLand { handle: HandleId, recv_cpu: Time },
    /// A CkDirect get completed back at its initiator.
    DirectGetLand { handle: HandleId, recv_cpu: Time },
    /// One scheduler iteration on `pe`.
    PeLoop { pe: Pe },
    /// Reduction partial result moving up the PE tree.
    ReduceUp {
        array: ArrayId,
        to: Pe,
        value: RedVal,
        count: usize,
        op: RedOp,
        target: RedTarget,
        recv_cpu: Time,
        /// Sanitizer happens-before edge token carrying the child subtree's
        /// contributions (0 when disabled).
        edge: u64,
    },
    /// Broadcast propagating down the PE tree.
    BcastDown {
        array: ArrayId,
        to: Pe,
        ep: EntryId,
        payload: Payload,
        size: usize,
        recv_cpu: Time,
        /// Sanitizer happens-before edge token (0 when disabled).
        edge: u64,
    },
    /// Fault-plane arrival of a reliable packet: carries the real delivery
    /// event (`inner`) plus the protocol header the receiver checks. Fresh
    /// and intact ⇒ dispatch `inner` at this very instant (identical timing
    /// to the unfaulted run); corrupted or duplicated ⇒ discard.
    RelDeliver {
        token: u64,
        link: (u32, u32),
        seq: u64,
        kind: FaultOp,
        corrupted: bool,
        inner: Box<Ev>,
    },
    /// A reliability ack reached the sender: retire the pending packet.
    /// Charges no PE time and emits no trace record — pure NIC protocol.
    RelAck { token: u64 },
    /// Retransmission timer: if the packet is still pending at this exact
    /// attempt, resend it through the fault plane with backoff.
    RelTimer { token: u64, attempt: u32 },
}

pub(crate) struct PeState {
    pub queue: VecDeque<(ChareRef, Msg)>,
    pub busy_until: Time,
    pub loop_scheduled: bool,
    pub stats: PeStats,
}

/// The whole simulated machine.
pub struct Machine {
    pub(crate) net: NetModel,
    pub(crate) cfg: RtsConfig,
    pub(crate) events: EventQueue<Ev>,
    pub(crate) now: Time,
    pub(crate) pes: Vec<PeState>,
    pub(crate) arrays: Vec<ArrayInfo>,
    /// Elements of each array homed on each PE: `[array][pe] -> lins`.
    pub(crate) locals: Vec<Vec<Vec<u32>>>,
    pub(crate) chares: Vec<Vec<Option<Box<dyn Chare>>>>,
    pub(crate) direct: DirectRegistry<DirectCb>,
    pub(crate) red: Vec<Vec<RedPeState>>,
    pub(crate) learner: Learner,
    pub(crate) stats: MachineStats,
    pub(crate) tracer: Tracer,
    pub(crate) san: Sanitizer,
    /// Fault injection + reliable delivery; `None` (the default) costs one
    /// branch per send/put and leaves event flow bit-identical to a build
    /// without the fault plane.
    pub(crate) rel: Option<Box<ReliableLayer>>,
    pub(crate) stop: bool,
}

impl Machine {
    /// Build a machine from a network model, runtime costs, and a CkDirect
    /// backend configuration.
    pub fn new(net: NetModel, cfg: RtsConfig, direct_cfg: DirectConfig) -> Machine {
        let npes = net.machine().npes();
        Machine {
            net,
            cfg,
            events: EventQueue::new(),
            now: Time::ZERO,
            pes: (0..npes)
                .map(|_| PeState {
                    queue: VecDeque::new(),
                    busy_until: Time::ZERO,
                    loop_scheduled: false,
                    stats: PeStats::default(),
                })
                .collect(),
            arrays: Vec::new(),
            locals: Vec::new(),
            chares: Vec::new(),
            direct: DirectRegistry::new(npes, direct_cfg),
            red: Vec::new(),
            learner: Learner::default(),
            stats: MachineStats::default(),
            tracer: Tracer::disabled(),
            san: Sanitizer::disabled(),
            rel: None,
            stop: false,
        }
    }

    /// Enable the automatic channel-learning framework for sends routed
    /// through [`Ctx::send_learned`].
    pub fn enable_learning(&mut self, cfg: LearnConfig) {
        self.learner.cfg = Some(cfg);
    }

    /// Learning-framework totals across all observed streams.
    pub fn learning_totals(&self) -> LearningTotals {
        self.learner.totals()
    }

    /// Start collecting a trace: per-PE event rings plus the aggregated
    /// metrics registry (`ckd-trace`). Call before [`Machine::run`]; with
    /// tracing never enabled every instrumentation point costs one branch.
    pub fn enable_tracing(&mut self, cfg: TraceConfig) {
        self.tracer = Tracer::enabled(cfg, self.npes());
    }

    /// The tracing handle (disabled unless [`Machine::enable_tracing`] ran).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Start race checking: per-PE vector clocks plus a per-handle
    /// lifecycle state machine fed by the registry's transition probe
    /// (`ckd-race`). Call before [`Machine::run`]; never enabling it keeps
    /// every hook at one branch and the registry probe-free, so runs are
    /// bit-identical to a build without the sanitizer.
    pub fn enable_sanitizer(&mut self, cfg: SanitizerConfig) {
        self.san = Sanitizer::enabled(cfg, self.npes());
        self.direct
            .set_probe(self.san.probe().expect("sanitizer just enabled"));
    }

    /// The sanitizer handle (disabled unless
    /// [`Machine::enable_sanitizer`] ran).
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.san
    }

    /// Enable fault injection and the reliable-delivery machinery that
    /// survives it, with the default [`RetryPolicy`] and a degradation
    /// threshold of 8 cumulative retransmits per channel. Call before
    /// [`Machine::run`]; never enabling this keeps every send/put hook at
    /// one branch, and runs are bit-identical to the pre-fault runtime.
    pub fn enable_faults(&mut self, plan: FaultPlan) {
        self.enable_faults_with(plan, RetryPolicy::default(), 8);
    }

    /// [`Machine::enable_faults`] with an explicit retransmission policy
    /// and degradation threshold (`degrade_after` cumulative retransmits
    /// flip a channel's puts to rendezvous timing; `u32::MAX` never
    /// degrades, `0` degrades every channel up front).
    pub fn enable_faults_with(&mut self, plan: FaultPlan, policy: RetryPolicy, degrade_after: u32) {
        self.rel = Some(Box::new(ReliableLayer::new(plan, policy, degrade_after)));
    }

    /// What the fault plane injected, when faults are enabled.
    pub fn fault_counts(&self) -> Option<FaultCounts> {
        self.rel.as_ref().map(|r| r.plan.counts())
    }

    /// Reliability-layer counters (also available as
    /// [`MachineStats::rel`]). All zero when faults were never enabled.
    pub fn rel_stats(&self) -> RelStats {
        self.stats.rel
    }

    /// Convenience: a machine whose CkDirect backend matches the fabric
    /// (polling on Infiniband, delivery callbacks on DCMF).
    pub fn with_matching_backend(net: NetModel, cfg: RtsConfig) -> Machine {
        let direct_cfg = if net.has_rdma() {
            DirectConfig::ib()
        } else {
            DirectConfig::bgp()
        };
        Machine::new(net, cfg, direct_cfg)
    }

    /// Number of PEs.
    pub fn npes(&self) -> usize {
        self.pes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Machine-wide statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Statistics for one PE.
    pub fn pe_stats(&self, pe: Pe) -> &PeStats {
        &self.pes[pe.idx()].stats
    }

    /// Lifetime CkDirect counters across every channel.
    pub fn direct_counters(&self) -> RegistryCounters {
        self.direct.counters()
    }

    /// The runtime cost configuration.
    pub fn config(&self) -> &RtsConfig {
        &self.cfg
    }

    /// The network model in use.
    pub fn net(&self) -> &NetModel {
        &self.net
    }

    /// Create a chare array: `factory` is called once per index, elements
    /// are homed by `mapper`. Must run before [`Machine::run`].
    pub fn create_array(
        &mut self,
        name: &str,
        dims: Dims,
        mapper: Mapper,
        mut factory: impl FnMut(Idx) -> Box<dyn Chare>,
    ) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        let info = ArrayInfo::new(name, dims, mapper, self.npes());
        let mut locals = vec![Vec::new(); self.npes()];
        let mut elems = Vec::with_capacity(dims.len());
        for lin in 0..dims.len() {
            let idx = dims.unlinear(lin);
            locals[info.home(lin, self.npes()).idx()].push(lin as u32);
            elems.push(Some(factory(idx)));
        }
        self.arrays.push(info);
        self.locals.push(locals);
        self.chares.push(elems);
        self.red
            .push((0..self.npes()).map(|_| RedPeState::new()).collect());
        id
    }

    /// Static facts about an array.
    pub fn array_info(&self, array: ArrayId) -> &ArrayInfo {
        &self.arrays[array.idx()]
    }

    /// Reference to the element of `array` at `idx`.
    pub fn element(&self, array: ArrayId, idx: Idx) -> ChareRef {
        ChareRef {
            array,
            lin: self.arrays[array.idx()].dims.linear(idx) as u32,
        }
    }

    /// Inspect a chare's concrete state (testing / result extraction).
    pub fn chare<T: Chare>(&self, aref: ChareRef) -> Option<&T> {
        self.chares[aref.array.idx()][aref.lin as usize]
            .as_deref()
            .and_then(|c| c.downcast_ref::<T>())
    }

    /// Home PE of an element.
    pub fn home_pe(&self, aref: ChareRef) -> Pe {
        self.arrays[aref.array.idx()].home(aref.lin as usize, self.pes.len())
    }

    /// Inject an initial message (delivered at time zero, free of wire
    /// costs — the analogue of `main::main` firing the first entries).
    pub fn seed(&mut self, target: ChareRef, msg: Msg) {
        let pe = self.home_pe(target);
        self.events.push(
            Time::ZERO,
            Ev::MsgArrive {
                pe,
                target,
                msg,
                recv_cpu: Time::ZERO,
                overlap_cpu: Time::ZERO,
                from: pe,
                proto: ProtoClass::Control,
                edge: 0,
            },
        );
    }

    /// Inject an initial message to every element of an array.
    pub fn seed_broadcast(&mut self, array: ArrayId, msg: Msg) {
        for lin in 0..self.arrays[array.idx()].dims.len() {
            self.seed(
                ChareRef {
                    array,
                    lin: lin as u32,
                },
                msg.clone(),
            );
        }
    }

    /// Run to quiescence (or until a chare calls [`Ctx::exit`]). Returns
    /// the final virtual time.
    pub fn run(&mut self) -> Time {
        self.run_until(Time::MAX)
    }

    /// Run until quiescence, exit, or `limit` virtual time.
    pub fn run_until(&mut self, limit: Time) -> Time {
        while !self.stop {
            match self.events.peek_time() {
                Some(t) if t <= limit => {}
                _ => break,
            }
            let (t, ev) = self.events.pop().expect("peeked");
            self.now = t;
            self.stats.events += 1;
            self.dispatch(ev);
        }
        self.now
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::MsgArrive {
                pe,
                target,
                msg,
                recv_cpu,
                overlap_cpu,
                from,
                proto,
                edge,
            } => {
                self.san.edge_in(pe.idx(), edge);
                if proto == ProtoClass::Rendezvous {
                    // reconstructed handshake leg: the receiver cleared the
                    // sender to write (see `Ev::MsgArrive::proto`)
                    self.tracer.cts(pe.idx(), self.now, from.0);
                }
                let st = &mut self.pes[pe.idx()];
                // protocol-time CPU: steals capacity from a busy PE but
                // cannot push this message past its own arrival on an idle
                // one (it was spent while waiting for the wire)
                st.busy_until = if st.busy_until >= self.now {
                    st.busy_until + overlap_cpu
                } else {
                    (st.busy_until + overlap_cpu).min(self.now)
                };
                st.busy_until = st.busy_until.max(self.now) + recv_cpu;
                st.stats.busy += recv_cpu + overlap_cpu;
                st.queue.push_back((target, msg));
                self.ensure_loop(pe, Time::ZERO);
            }
            Ev::DirectLand { handle, recv_cpu } => {
                if self.tracer.is_enabled() {
                    if let (Ok(pe), Ok(bytes)) =
                        (self.direct.recv_pe(handle), self.direct.wire_bytes(handle))
                    {
                        self.tracer
                            .put_land(pe.idx(), self.now, handle.0, bytes as u64);
                    }
                }
                if self.san.is_enabled() {
                    if let Ok(pe) = self.direct.recv_pe(handle) {
                        self.san.set_ctx(pe.idx(), self.now);
                    }
                }
                match self.direct.land(handle).expect("land on live channel") {
                    LandOutcome::AwaitPoll => {
                        // Polling backend: the receiving scheduler will
                        // notice at its next sweep; wake it if idle.
                        let pe = self.direct.recv_pe(handle).expect("live channel");
                        self.ensure_loop(pe, self.cfg.idle_poll_gap);
                    }
                    LandOutcome::Deliver(cb) => {
                        // Callback backend (BG/P): charge the DCMF receive
                        // handler and run the user callback immediately.
                        let pe = self.direct.recv_pe(handle).expect("live channel");
                        let start = {
                            let st = &mut self.pes[pe.idx()];
                            st.busy_until = st.busy_until.max(self.now) + recv_cpu;
                            st.stats.busy += recv_cpu;
                            st.busy_until
                        };
                        let elapsed = self.run_callbacks(pe, start, Time::ZERO, vec![(cb, handle)]);
                        let st = &mut self.pes[pe.idx()];
                        st.busy_until = start + elapsed;
                        st.stats.busy += elapsed;
                    }
                }
            }
            Ev::DirectGetLand { handle, recv_cpu } => {
                if self.san.is_enabled() {
                    if let Ok(pe) = self.direct.recv_pe(handle) {
                        self.san.set_ctx(pe.idx(), self.now);
                    }
                }
                let cb = self.direct.land_get(handle).expect("get on live channel");
                let pe = self.direct.recv_pe(handle).expect("live channel");
                if self.tracer.is_enabled() {
                    if let Ok(bytes) = self.direct.wire_bytes(handle) {
                        self.tracer
                            .put_land(pe.idx(), self.now, handle.0, bytes as u64);
                    }
                }
                let start = {
                    let st = &mut self.pes[pe.idx()];
                    st.busy_until = st.busy_until.max(self.now) + recv_cpu;
                    st.stats.busy += recv_cpu;
                    st.busy_until
                };
                let elapsed = self.run_callbacks(pe, start, Time::ZERO, vec![(cb, handle)]);
                let st = &mut self.pes[pe.idx()];
                st.busy_until = start + elapsed;
                st.stats.busy += elapsed;
            }
            Ev::PeLoop { pe } => self.pe_loop(pe),
            Ev::ReduceUp {
                array,
                to,
                value,
                count,
                op,
                target,
                recv_cpu,
                edge,
            } => {
                self.san.red_absorb(array.0, to.idx(), edge);
                let st = &mut self.pes[to.idx()];
                st.busy_until = st.busy_until.max(self.now) + recv_cpu;
                st.stats.busy += recv_cpu;
                let red = &mut self.red[array.idx()][to.idx()];
                red.absorb(value, count, op, target);
                red.got_children += 1;
                self.maybe_complete_reduction(array, to);
            }
            Ev::BcastDown {
                array,
                to,
                ep,
                payload,
                size,
                recv_cpu,
                edge,
            } => {
                self.san.edge_in(to.idx(), edge);
                let st = &mut self.pes[to.idx()];
                st.busy_until = st.busy_until.max(self.now) + recv_cpu;
                st.stats.busy += recv_cpu;
                self.bcast_at(array, to, ep, payload, size);
            }
            Ev::RelDeliver {
                token,
                link,
                seq,
                kind,
                corrupted,
                inner,
            } => self.rel_deliver(token, link, seq, kind, corrupted, *inner),
            Ev::RelAck { token } => self.rel_ack(token),
            Ev::RelTimer { token, attempt } => self.rel_timer(token, attempt),
        }
    }

    // ---- reliable delivery over the fault plane ---------------------------

    /// Schedule a remote delivery event, routing it through the fault plane
    /// when faults are enabled. `begin` is the issue instant on the sender
    /// and `delay` the one-way wire latency: an unfaulted packet delivers at
    /// `begin + delay`, bit-identically to a direct `events.push` — which is
    /// exactly what happens when faults are off or the traffic never crosses
    /// the fabric (same-PE links). `put` carries `(handle, put_seq)` so
    /// duplicated one-sided puts can be replayed idempotently.
    pub(crate) fn rel_push(
        &mut self,
        begin: Time,
        delay: Time,
        link: (u32, u32),
        kind: FaultOp,
        put: Option<(HandleId, u64)>,
        ev: Ev,
    ) {
        if self.rel.is_none() || link.0 == link.1 {
            self.events.push(begin + delay, ev);
            return;
        }
        let rel = self.rel.as_mut().expect("checked above");
        let token = rel.next_token;
        rel.next_token += 1;
        let seq = match put {
            Some((_, s)) => s,
            None => rel.seqs.alloc(link),
        };
        rel.pending.insert(
            token,
            Pending {
                ev,
                link,
                seq,
                attempt: 0,
                wire_delay: delay,
                kind,
                handle: put.map(|(h, _)| h),
            },
        );
        self.rel_transmit(token, begin);
    }

    /// Submit pending packet `token` to the fault plane at `at`, schedule
    /// the consequences, and arm its retransmission timer.
    fn rel_transmit(&mut self, token: u64, at: Time) {
        let rel = self.rel.as_mut().expect("rel enabled");
        let Some(p) = rel.pending.get(&token) else {
            return; // acked in the meantime
        };
        let (link, kind, seq, wire_delay, attempt) =
            (p.link, p.kind, p.seq, p.wire_delay, p.attempt);
        let ev = p.ev.clone();
        let action = rel.plan.decide(at, link, kind);
        let timeout = rel.policy.timeout(attempt);
        let mk = |inner: Ev, corrupted: bool| Ev::RelDeliver {
            token,
            link,
            seq,
            kind,
            corrupted,
            inner: Box::new(inner),
        };
        match action {
            FaultAction::Deliver => self.events.push(at + wire_delay, mk(ev, false)),
            FaultAction::Drop => {
                self.stats.rel.drops_injected += 1;
                self.tracer.rel_drop(link.0 as usize, at, link.1);
            }
            FaultAction::Corrupt => {
                self.stats.rel.corrupts_injected += 1;
                self.events.push(at + wire_delay, mk(ev, true));
            }
            FaultAction::Duplicate { extra } => {
                self.stats.rel.dups_injected += 1;
                self.events.push(at + wire_delay, mk(ev.clone(), false));
                self.events.push(at + wire_delay + extra, mk(ev, false));
            }
            FaultAction::Delay { extra } => {
                self.stats.rel.delays_injected += 1;
                self.events.push(at + wire_delay + extra, mk(ev, false));
            }
        }
        self.events
            .push(at + timeout, Ev::RelTimer { token, attempt });
    }

    /// A reliable packet arrived: verify, dedup, ack, and (when fresh and
    /// intact) dispatch the real delivery event at this very instant.
    fn rel_deliver(
        &mut self,
        token: u64,
        link: (u32, u32),
        seq: u64,
        kind: FaultOp,
        corrupted: bool,
        inner: Ev,
    ) {
        if corrupted {
            // Receiver-side detection — the NIC's link CRC for messages,
            // the per-put CRC folded into the sentinel word for one-sided
            // puts. The damaged landing is discarded (for a put, the
            // sentinel stays armed), no ack is sent, and the sender's
            // timer will retransmit.
            self.stats.rel.corrupt_detected += 1;
            if kind == FaultOp::Put {
                if let Ev::DirectLand { handle, .. } = &inner {
                    self.direct
                        .corrupt_landing(*handle, seq)
                        .expect("live channel");
                }
            }
            return;
        }
        let fresh = match kind {
            FaultOp::Put => {
                if let Ev::DirectLand { handle, .. } = &inner {
                    self.direct
                        .accept_landing(*handle, seq)
                        .expect("live channel")
                } else {
                    true
                }
            }
            _ => self
                .rel
                .as_mut()
                .expect("rel enabled")
                .seqs
                .accept(link, seq),
        };
        // Ack every intact arrival — a duplicate re-acks, in case the
        // original ack was the packet that died.
        self.rel_send_ack(token, link);
        if fresh {
            self.dispatch(inner);
        } else {
            self.stats.rel.dups_suppressed += 1;
        }
    }

    /// Emit the reliability ack for `token` back across the fault plane.
    /// Acks are NIC-level protocol: they charge no PE time, carry no trace
    /// record, and are invisible to the scheduler — only their loss has a
    /// consequence (a spurious retransmission, suppressed by seqno dedup).
    fn rel_send_ack(&mut self, token: u64, link: (u32, u32)) {
        let t = self.net.control(Pe(link.1), Pe(link.0));
        let rel = self.rel.as_mut().expect("rel enabled");
        match rel.plan.decide(self.now, (link.1, link.0), FaultOp::Ack) {
            FaultAction::Deliver => self.events.push(self.now + t.delay, Ev::RelAck { token }),
            FaultAction::Drop | FaultAction::Corrupt => {
                // a corrupted ack fails its CRC at the sender NIC — lost
                // either way
                self.stats.rel.acks_lost += 1;
            }
            FaultAction::Duplicate { extra } => {
                self.events.push(self.now + t.delay, Ev::RelAck { token });
                self.events
                    .push(self.now + t.delay + extra, Ev::RelAck { token });
            }
            FaultAction::Delay { extra } => self
                .events
                .push(self.now + t.delay + extra, Ev::RelAck { token }),
        }
    }

    /// An ack reached the sender: retire the pending packet. A stale ack
    /// (duplicate, or late after retransmission already re-acked) is a
    /// no-op.
    fn rel_ack(&mut self, token: u64) {
        let rel = self.rel.as_mut().expect("rel enabled");
        if rel.pending.remove(&token).is_some() {
            self.stats.rel.acks += 1;
        }
    }

    /// Retransmission timer fired: if the packet is still pending at this
    /// exact attempt, resend it with exponentially backed-off timeout.
    /// Retries are unbounded — a probabilistic plan delivers eventually
    /// (with probability 1), explicit triggers are one-shot, and stall
    /// windows end.
    fn rel_timer(&mut self, token: u64, attempt: u32) {
        let rel = self.rel.as_mut().expect("rel enabled");
        let Some(p) = rel.pending.get_mut(&token) else {
            return; // acked: the common case for every timer of a clean run
        };
        if p.attempt != attempt {
            return; // a newer transmission owns the live timer
        }
        p.attempt += 1;
        let next_attempt = p.attempt;
        let handle = p.handle;
        let sender = p.link.0;
        self.stats.rel.timeouts += 1;
        self.stats.rel.retries += 1;
        if let Some(h) = handle {
            // degradation bookkeeping: after `degrade_after` cumulative
            // retransmits, this channel's future puts pay rendezvous timing
            let r = rel.handle_retries.entry(h.0).or_insert(0);
            *r += 1;
            if *r >= rel.degrade_after && rel.degraded.insert(h.0) {
                self.stats.rel.degraded_channels += 1;
            }
        }
        let backoff = rel.policy.timeout(next_attempt);
        self.tracer
            .rel_retry(sender as usize, self.now, next_attempt, backoff);
        self.rel_transmit(token, self.now);
    }

    /// One scheduler iteration: poll sweep, then at most one message.
    fn pe_loop(&mut self, pe: Pe) {
        self.pes[pe.idx()].loop_scheduled = false;
        let start = self.pes[pe.idx()].busy_until.max(self.now);
        let mut elapsed = Time::ZERO;
        if self.tracer.is_enabled() {
            let depth = self.pes[pe.idx()].queue.len() as u32;
            self.tracer.queue_depth(pe.idx(), self.now, depth);
        }

        // CkDirect poll sweep (IbPoll backend): check every armed handle.
        if self.net.has_rdma() {
            self.san.set_ctx(pe.idx(), start);
            let sweep = self.direct.poll_sweep(pe);
            if sweep.checked > 0 {
                elapsed += self.cfg.poll_per_handle * sweep.checked as u64;
                self.pes[pe.idx()].stats.poll_checks += sweep.checked as u64;
                self.tracer.poll_sweep(
                    pe.idx(),
                    start,
                    start + elapsed,
                    sweep.checked as u32,
                    sweep.deliveries.len() as u32,
                );
            }
            if !sweep.deliveries.is_empty() {
                let cbs: Vec<(DirectCb, HandleId)> = sweep
                    .deliveries
                    .into_iter()
                    .map(|(h, cb)| (cb, h))
                    .collect();
                elapsed = self.run_callbacks(pe, start, elapsed, cbs);
            }
        }

        // One message through the scheduler.
        if let Some((target, msg)) = self.pes[pe.idx()].queue.pop_front() {
            elapsed += self.cfg.sched;
            self.pes[pe.idx()].stats.msgs_delivered += 1;
            self.tracer
                .msg_deliver(pe.idx(), start + elapsed, msg.ep.0, msg.size as u64);
            elapsed = self.run_entry(pe, target, start, elapsed, msg);
        }

        let st = &mut self.pes[pe.idx()];
        st.busy_until = start + elapsed;
        st.stats.busy += elapsed;
        // A handler may already have re-armed the loop (e.g. a broadcast
        // delivered to this very PE); don't double-schedule.
        if !st.queue.is_empty() && !st.loop_scheduled {
            st.loop_scheduled = true;
            let at = st.busy_until;
            self.events.push(at, Ev::PeLoop { pe });
        }
    }

    /// Account one control packet issued from `pe` in the per-protocol
    /// breakdowns (reduction hops, broadcast forwarding, handle shipping).
    /// `delay` is the wire latency the packet was charged.
    pub(crate) fn record_control(&mut self, pe: Pe, delay: Time) {
        let bytes = self.net.control_bytes() as u64;
        self.stats.proto.record(Protocol::Control, bytes);
        self.pes[pe.idx()]
            .stats
            .proto_sent
            .record(Protocol::Control, bytes);
        self.tracer.control_transfer(bytes, delay);
    }

    /// Schedule a scheduler iteration on `pe` if none is pending.
    pub(crate) fn ensure_loop(&mut self, pe: Pe, extra_gap: Time) {
        let st = &mut self.pes[pe.idx()];
        if !st.loop_scheduled {
            st.loop_scheduled = true;
            let at = st.busy_until.max(self.now) + extra_gap;
            self.events.push(at, Ev::PeLoop { pe });
        }
    }

    /// Run one entry method with the chare checked out of the machine;
    /// returns the updated elapsed time.
    fn run_entry(
        &mut self,
        pe: Pe,
        target: ChareRef,
        start: Time,
        elapsed: Time,
        msg: Msg,
    ) -> Time {
        let mut chare = self.chares[target.array.idx()][target.lin as usize]
            .take()
            .unwrap_or_else(|| panic!("{target:?} missing (reentrant delivery?)"));
        let entry_begin = start + elapsed;
        let mut ctx = Ctx::new(self, pe, target, start, elapsed);
        chare.entry(&mut ctx, msg);
        let (elapsed, pending) = ctx.finish();
        self.tracer
            .busy(pe.idx(), entry_begin, start + elapsed, BusyKind::Entry);
        self.chares[target.array.idx()][target.lin as usize] = Some(chare);
        self.run_callbacks(pe, start, elapsed, pending)
    }

    /// Deliver CkDirect callbacks as plain function calls; each may enqueue
    /// more (e.g. `ready_poll_q` discovering already-landed data).
    pub(crate) fn run_callbacks(
        &mut self,
        pe: Pe,
        start: Time,
        mut elapsed: Time,
        mut pending: Vec<(DirectCb, HandleId)>,
    ) -> Time {
        while let Some((cb, handle)) = pending.pop() {
            let cb_begin = start + elapsed;
            elapsed += self.cfg.callback_cost;
            // strided destinations pay the scatter copy at delivery
            if let Ok(Some(bytes)) = self.direct.strided_recv_bytes(handle) {
                elapsed += self.cfg.compute.bytes(2 * bytes as u64);
            }
            self.pes[pe.idx()].stats.callbacks += 1;
            self.tracer
                .callback_fire(pe.idx(), start + elapsed, handle.0);
            let target = cb.target;
            let mut chare = self.chares[target.array.idx()][target.lin as usize]
                .take()
                .unwrap_or_else(|| panic!("{target:?} missing for callback"));
            // synthesize the learned-channel message before Ctx borrows self
            let learned_msg = if let CbKind::Learned(ep) = cb.kind {
                // hand the landed bytes to the ordinary entry method — the
                // application cannot tell the transport changed
                let region = self.direct.recv_region(handle).expect("live channel");
                let size = self.direct.wire_bytes(handle).expect("live channel");
                Some(Msg {
                    ep,
                    payload: crate::msg::Payload::Bytes(bytes::Bytes::from(region.to_vec())),
                    size,
                })
            } else {
                None
            };
            let mut ctx = Ctx::new(self, pe, target, start, elapsed);
            match (cb.kind, learned_msg) {
                (CbKind::User(tag), _) => chare.direct_callback(&mut ctx, tag, handle),
                (CbKind::Learned(_), Some(msg)) => chare.entry(&mut ctx, msg),
                (CbKind::Learned(_), None) => unreachable!(),
            }
            let (e, more) = ctx.finish();
            elapsed = e;
            self.tracer
                .busy(pe.idx(), cb_begin, start + elapsed, BusyKind::Callback);
            self.chares[target.array.idx()][target.lin as usize] = Some(chare);
            if let CbKind::Learned(_) = cb.kind {
                // the runtime owns learned channels: re-arm immediately so
                // the sender's next iteration can put again
                self.san.set_ctx(pe.idx(), start + elapsed);
                if let Ok(Some(cb2)) = self.direct.ready(handle) {
                    pending.push((cb2, handle));
                }
            }
            pending.extend(more);
        }
        elapsed
    }

    /// A chare on `pe` contributed to its array's current reduction.
    pub(crate) fn contribute_local(
        &mut self,
        array: ArrayId,
        pe: Pe,
        v: RedVal,
        op: RedOp,
        target: RedTarget,
    ) {
        self.tracer.reduce_contribute(pe.idx(), self.now, array.0);
        self.san.red_contribute(array.0, pe.idx());
        let red = &mut self.red[array.idx()][pe.idx()];
        red.absorb(v, 1, op, target);
        red.got_local += 1;
        debug_assert!(
            red.got_local <= self.arrays[array.idx()].local_counts[pe.idx()],
            "element contributed twice in one generation"
        );
        self.maybe_complete_reduction(array, pe);
    }

    fn maybe_complete_reduction(&mut self, array: ArrayId, pe: Pe) {
        let info = &self.arrays[array.idx()];
        let need_local = info.local_counts[pe.idx()];
        let need_children = tree_children(&info.participants, pe).len();
        let red = &self.red[array.idx()][pe.idx()];
        if red.got_local < need_local || red.got_children < need_children {
            return;
        }
        let value = red.partial;
        let count = red.count;
        let op = red.op.expect("completed reduction has an op");
        let target = red.target.expect("completed reduction has a target");
        self.red[array.idx()][pe.idx()].advance();

        match tree_parent(&self.arrays[array.idx()].participants, pe) {
            Some(parent) => {
                let t = self.net.control(pe, parent);
                self.record_control(pe, t.delay);
                // the send costs a sliver of CPU on this PE
                let st = &mut self.pes[pe.idx()];
                st.busy_until = st.busy_until.max(self.now) + t.send_cpu;
                st.stats.busy += t.send_cpu;
                let edge = self.san.red_up(array.0, pe.idx());
                self.events.push(
                    self.now + t.delay,
                    Ev::ReduceUp {
                        array,
                        to: parent,
                        value,
                        count,
                        op,
                        target,
                        recv_cpu: t.recv_cpu,
                        edge,
                    },
                );
            }
            None => {
                // Root: the reduction is complete.
                debug_assert_eq!(
                    count,
                    self.arrays[array.idx()].dims.len(),
                    "reduction lost contributions"
                );
                self.stats.reductions += 1;
                self.tracer.reduce_complete(pe.idx(), self.now, array.0);
                // every contribution happens-before whatever the root does
                // next (the release broadcast / client delivery)
                self.san.red_complete(array.0, pe.idx());
                match target {
                    RedTarget::Broadcast(ep) => {
                        let payload = Payload::value(value);
                        self.bcast_at(array, pe, ep, payload, 8);
                    }
                    RedTarget::Single(aref, ep) => {
                        let dst = self.home_pe(aref);
                        let t = self.net.control(pe, dst);
                        self.record_control(pe, t.delay);
                        let edge = self.san.edge_out(pe.idx());
                        self.events.push(
                            self.now + t.delay,
                            Ev::MsgArrive {
                                pe: dst,
                                target: aref,
                                msg: Msg::value(ep, value, 8),
                                recv_cpu: t.recv_cpu,
                                overlap_cpu: Time::ZERO,
                                from: pe,
                                proto: ProtoClass::Control,
                                edge,
                            },
                        );
                    }
                }
            }
        }
    }

    /// User-initiated broadcast: route a message from `from` to the root of
    /// `array`'s participant tree, then distribute down it.
    pub(crate) fn broadcast_from(&mut self, from: Pe, array: ArrayId, msg: Msg) {
        let root = self.arrays[array.idx()].participants[0];
        if root == from {
            self.bcast_at(array, root, msg.ep, msg.payload, msg.size);
        } else {
            let t = self.net.control(from, root);
            self.record_control(from, t.delay);
            let st = &mut self.pes[from.idx()];
            st.busy_until = st.busy_until.max(self.now) + t.send_cpu;
            st.stats.busy += t.send_cpu;
            let edge = self.san.edge_out(from.idx());
            self.events.push(
                self.now + t.delay,
                Ev::BcastDown {
                    array,
                    to: root,
                    ep: msg.ep,
                    payload: msg.payload,
                    size: msg.size,
                    recv_cpu: t.recv_cpu,
                    edge,
                },
            );
        }
    }

    /// Broadcast arriving at `pe`: forward down the tree, then enqueue a
    /// message for every local element.
    fn bcast_at(&mut self, array: ArrayId, pe: Pe, ep: EntryId, payload: Payload, size: usize) {
        let children = tree_children(&self.arrays[array.idx()].participants, pe);
        for child in children {
            let t = self.net.control(pe, child);
            self.record_control(pe, t.delay);
            let st = &mut self.pes[pe.idx()];
            st.busy_until = st.busy_until.max(self.now) + t.send_cpu;
            st.stats.busy += t.send_cpu;
            let edge = self.san.edge_out(pe.idx());
            self.events.push(
                self.now + t.delay,
                Ev::BcastDown {
                    array,
                    to: child,
                    ep,
                    payload: payload.clone(),
                    size,
                    recv_cpu: t.recv_cpu,
                    edge,
                },
            );
        }
        let lins = std::mem::take(&mut self.locals[array.idx()][pe.idx()]);
        for &lin in &lins {
            self.pes[pe.idx()].queue.push_back((
                ChareRef { array, lin },
                Msg {
                    ep,
                    payload: payload.clone(),
                    size,
                },
            ));
        }
        self.locals[array.idx()][pe.idx()] = lins;
        self.ensure_loop(pe, Time::ZERO);
    }
}

impl Machine {
    /// Mutate a chare's concrete state before the run starts (topology
    /// wiring that factories cannot do because the array is still being
    /// built when they execute).
    pub fn with_chare_mut<T: Chare>(&mut self, aref: ChareRef, f: impl FnOnce(&mut T)) {
        let c = self.chares[aref.array.idx()][aref.lin as usize]
            .as_deref_mut()
            .and_then(|c| c.downcast_mut::<T>())
            .expect("chare exists and has the expected type");
        f(c);
    }
}
