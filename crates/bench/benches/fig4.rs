//! Figure 4 — mini-OpenAtom step times on Abe (2 cores/node, as the paper
//! used to isolate network effects): CkDirect vs Charm++ messages, full
//! step and PairCalculator-only runs.

use ckd_apps::openatom::{run_openatom, OpenAtomCfg};
use ckd_apps::{Platform, Variant};
use ckd_bench::{banner, pick, scale, Scale};

pub fn series(platform: Platform, pes_list: &[usize], steps: u32) {
    let base = OpenAtomCfg {
        nstates: 256,
        nplanes: 8,
        grain: 64,
        pts: 512,
        steps,
        variant: Variant::Msg,
        pc_only: false,
        ready_split: true, // the paper's optimized configuration
    };
    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8}",
        "PEs", "MSG ms", "CKD ms", "full %", "MSG-PC ms", "CKD-PC ms", "PC %"
    );
    for &pes in pes_list {
        let run = |variant, pc_only| {
            run_openatom(
                platform,
                pes,
                OpenAtomCfg {
                    variant,
                    pc_only,
                    ..base
                },
            )
            .time_per_step
        };
        let msg = run(Variant::Msg, false);
        let ckd = run(Variant::Ckd, false);
        let msg_pc = run(Variant::Msg, true);
        let ckd_pc = run(Variant::Ckd, true);
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>8.2} {:>12.2} {:>12.2} {:>8.2}",
            pes,
            msg.as_ms_f64(),
            ckd.as_ms_f64(),
            ckd_bench::improvement(msg, ckd),
            msg_pc.as_ms_f64(),
            ckd_pc.as_ms_f64(),
            ckd_bench::improvement(msg_pc, ckd_pc),
        );
    }
}

fn main() {
    let s = scale();
    let steps = if s == Scale::Quick { 2 } else { 4 };
    banner("Fig 4: mini-OpenAtom on Abe, 2 cores/node (paper: ~4% full, up to ~14% PC-only)");
    let pes = pick(s, &[16], &[16, 32, 64, 128, 256], &[16, 32, 64, 128, 256]);
    series(Platform::IbAbe { cores_per_node: 2 }, &pes, steps);
}
