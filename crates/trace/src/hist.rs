//! A mergeable log2-bucket histogram for the self-profiler.
//!
//! Same bucketing as `ckd_sim::Histogram` — bucket `k` holds values whose
//! bit-length is `k`, so bucket 0 is exactly zero and bucket `k > 0` spans
//! `[2^(k-1), 2^k)` — but extended with the pieces sharded profiling
//! needs: a running sum and maximum, [`Hist::merge`] so per-worker shards
//! aggregate without losing shape, and a deterministic text rendering.
//! Everything is fixed-size integer state, so two identical runs produce
//! bit-identical histograms and equality is exact.

/// Number of buckets: one per possible bit-length of a `u64`, plus zero.
const BUCKETS: usize = 65;

/// Fixed-size power-of-two histogram with sum/max and shard merging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; BUCKETS],
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// Empty histogram.
    pub fn new() -> Hist {
        Hist {
            buckets: [0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Fold another shard's counts into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Bucket index a value falls into (testing hook).
    pub fn bucket_for(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (if b == 0 { 0 } else { 1u64 << (b - 1) }, c))
    }

    /// Deterministic multi-line rendering: one `[lo, hi)` row per
    /// non-empty bucket with a proportional bar, for the profile report.
    pub fn render(&self, unit: &str) -> String {
        if self.total == 0 {
            return format!("  (no {unit} samples)\n");
        }
        let peak = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = if b == 0 {
                (0u64, 1u64)
            } else {
                (1u64 << (b - 1), 1u64 << b.min(63))
            };
            let bar = "#".repeat(((c * 40).div_ceil(peak)) as usize);
            out.push_str(&format!("  [{lo:>12}, {hi:>12})  {c:>10}  {bar}\n"));
        }
        out.push_str(&format!(
            "  {} samples, mean {:.1} {unit}, max {} {unit}\n",
            self.total,
            self.mean(),
            self.max
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_matches_bit_length() {
        let mut h = Hist::new();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(Hist::bucket_for(0), 0);
        assert_eq!(Hist::bucket_for(1), 1);
        assert_eq!(Hist::bucket_for(1023), 10);
        assert_eq!(Hist::bucket_for(1024), 11);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 2057);
        assert_eq!(h.max(), 1024);
        let lows: Vec<u64> = h.iter_nonempty().map(|(lo, _)| lo).collect();
        assert_eq!(lows, vec![0, 1, 2, 4, 512, 1024]);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut whole = Hist::new();
        for v in 0..100u64 {
            whole.record(v * 7);
            if v % 2 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole, "merged shards must equal the unsharded run");
    }

    #[test]
    fn render_is_deterministic_and_total() {
        let mut h = Hist::new();
        for v in [5u64, 5, 9, 130] {
            h.record(v);
        }
        let r = h.render("ns");
        assert_eq!(r, h.render("ns"));
        assert!(r.contains("4 samples"));
        assert!(Hist::new().render("ns").contains("no ns samples"));
    }
}
