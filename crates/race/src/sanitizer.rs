//! The dynamic happens-before sanitizer.
//!
//! [`Sanitizer`] is the handle the runtime instruments against, mirroring
//! the zero-cost-when-disabled shape of `ckd-trace`'s `Tracer`: a disabled
//! sanitizer is a single `Option` discriminant check per hook. An enabled
//! sanitizer owns [`SanCore`] behind `Rc<RefCell<…>>` so the registry's
//! [`LifecycleProbe`] closure can share state with the machine-owned handle.
//!
//! Two mechanisms cooperate:
//!
//! * **Vector clocks** (one per PE) advanced by every scheduler event and
//!   joined along every happens-before edge the runtime models: message
//!   delivery ([`Sanitizer::edge_out`] / [`Sanitizer::edge_in`]), reduction
//!   and broadcast trees (`red_*`), and put completion (the in-flight clock
//!   joined at delivery).
//! * **A per-handle lifecycle state machine** (Created → Assoc'd → Armed →
//!   InFlight → Landed → Consumed) fed by the registry's ground-truth
//!   [`Transition`] stream, with the last event of each kind remembered so a
//!   violation can name both racing events and their virtual times.
//!
//! Rejected operations never reach the probe (the registry commits no
//! transition), so the runtime reports them via [`Sanitizer::op_failed`];
//! successful-but-unsynchronized puts are caught by the clock comparison in
//! the `PutIssued` handler.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use ckd_sim::Time;
use ckdirect::{DirectError, HandleId, LifecycleProbe, Transition};

use crate::clock::VectorClock;
use crate::diag::{Diagnostic, EventRef, RaceKind};

/// Sanitizer configuration.
#[derive(Clone, Copy, Debug)]
pub struct SanitizerConfig {
    /// Keep at most this many diagnostics; later ones are counted but
    /// dropped so a pathological run cannot exhaust memory.
    pub max_diagnostics: usize,
    /// Flag puts whose issue is causally concurrent with the receiver's
    /// last re-arm ([`RaceKind::UnsynchronizedPut`]). Runtime-managed
    /// channels (the message-learning fast path) are always exempt: the
    /// runtime falls back to a plain message when the registry rejects the
    /// put, so unsynchronized issue is safe by construction there.
    pub check_unsynchronized: bool,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            max_diagnostics: 1024,
            check_unsynchronized: true,
        }
    }
}

/// Which user-facing channel operation a rejected call was.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectOp {
    /// `create_handle` and variants.
    Create,
    /// `assoc_local` and variants.
    Assoc,
    /// `put`.
    Put,
    /// `get`.
    Get,
    /// `ready_mark`.
    ReadyMark,
    /// `ready_poll_q`.
    ReadyPollQ,
    /// The unsplit `ready`.
    Ready,
    /// `destroy_handle`.
    Destroy,
}

impl DirectOp {
    fn label(self) -> &'static str {
        match self {
            DirectOp::Create => "create_handle",
            DirectOp::Assoc => "assoc_local",
            DirectOp::Put => "put",
            DirectOp::Get => "get",
            DirectOp::ReadyMark => "ready_mark",
            DirectOp::ReadyPollQ => "ready_poll_q",
            DirectOp::Ready => "ready",
            DirectOp::Destroy => "destroy_handle",
        }
    }
}

/// Lifecycle phases the sanitizer tracks per handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Window registered, no sender bound yet.
    Created,
    /// Sender bound; armed by construction (the sentinel was set at
    /// create), so a first put is legal from here.
    Assocd,
    /// Re-armed by `ready_mark` after a consume.
    Armed,
    /// A put or get is on the wire.
    InFlight,
    /// Payload landed (IbPoll: sentinel overwritten, not yet noticed).
    Landed,
    /// Completion callback handed to the executor; receiver owns the data
    /// until it re-arms.
    Consumed,
}

/// Everything the sanitizer remembers about one channel.
#[derive(Clone, Debug)]
struct HandleInfo {
    state: Phase,
    /// Runtime-managed (learning fast path): exempt from the
    /// unsynchronized-put clock check.
    managed: bool,
    created: Option<EventRef>,
    associated: Option<EventRef>,
    last_put: Option<EventRef>,
    last_land: Option<EventRef>,
    last_deliver: Option<EventRef>,
    last_mark: Option<EventRef>,
    /// Receiver clock at the last re-arm (create or `ready_mark`): a put is
    /// synchronized iff this happened-before it.
    armed_clock: VectorClock,
    /// Sender clock at the last accepted put; joined into the receiver at
    /// delivery (the completion edge).
    inflight_clock: VectorClock,
    /// Receiver clock at the last delivery.
    deliver_clock: VectorClock,
}

impl HandleInfo {
    fn new(armed_clock: VectorClock, created: EventRef) -> HandleInfo {
        HandleInfo {
            state: Phase::Created,
            managed: false,
            created: Some(created),
            associated: None,
            last_put: None,
            last_land: None,
            last_deliver: None,
            last_mark: None,
            armed_clock,
            inflight_clock: VectorClock::default(),
            deliver_clock: VectorClock::default(),
        }
    }
}

/// Shared state of an enabled sanitizer.
pub struct SanCore {
    cfg: SanitizerConfig,
    clocks: Vec<VectorClock>,
    /// In-flight happens-before edges (messages, broadcasts), keyed by the
    /// token carried through the event queue. Token 0 is reserved for "no
    /// edge" so a disabled sanitizer can hand out zeros for free.
    edges: BTreeMap<u64, VectorClock>,
    next_edge: u64,
    /// Per-reduction accumulation slots keyed by (array id, PE): the join of
    /// every contribution that has flowed into this PE's subtree.
    red: BTreeMap<(u32, usize), VectorClock>,
    handles: BTreeMap<u32, HandleInfo>,
    diags: Vec<Diagnostic>,
    dropped: u64,
    /// Scheduler context the next probe transitions are attributed to.
    ctx: (usize, Time),
}

impl SanCore {
    fn new(cfg: SanitizerConfig, npes: usize) -> SanCore {
        SanCore {
            cfg,
            clocks: (0..npes).map(|_| VectorClock::new(npes)).collect(),
            edges: BTreeMap::new(),
            next_edge: 1,
            red: BTreeMap::new(),
            handles: BTreeMap::new(),
            diags: Vec::new(),
            dropped: 0,
            ctx: (0, Time::ZERO),
        }
    }

    fn push_diag(&mut self, d: Diagnostic) {
        if self.diags.len() < self.cfg.max_diagnostics {
            self.diags.push(d);
        } else {
            self.dropped += 1;
        }
    }

    fn ev(&self, what: &'static str) -> EventRef {
        EventRef {
            pe: self.ctx.0,
            at: self.ctx.1,
            what,
        }
    }

    fn clock(&mut self, pe: usize) -> &mut VectorClock {
        if pe >= self.clocks.len() {
            let n = self.clocks.len().max(1);
            self.clocks.resize(pe + 1, VectorClock::new(n));
        }
        &mut self.clocks[pe]
    }

    /// Apply one registry-committed transition under the current context.
    fn apply(&mut self, handle: HandleId, t: Transition) {
        let (pe, _) = self.ctx;
        self.clock(pe).tick(pe);
        let snapshot = self.clock(pe).clone();
        match t {
            Transition::Created => {
                let ev = self.ev("create_handle");
                self.handles.insert(handle.0, HandleInfo::new(snapshot, ev));
            }
            Transition::Associated => {
                let ev = self.ev("assoc_local");
                if let Some(h) = self.handles.get_mut(&handle.0) {
                    h.associated = Some(ev);
                    if h.state == Phase::Created {
                        h.state = Phase::Assocd;
                    }
                }
            }
            Transition::PutIssued | Transition::GetIssued => {
                let what = if t == Transition::PutIssued {
                    "put"
                } else {
                    "get"
                };
                let ev = self.ev(what);
                let mut diag = None;
                if let Some(h) = self.handles.get_mut(&handle.0) {
                    if self.cfg.check_unsynchronized
                        && !h.managed
                        && t == Transition::PutIssued
                        && !h.armed_clock.leq(&snapshot)
                    {
                        diag = Some(Diagnostic {
                            kind: RaceKind::UnsynchronizedPut,
                            handle: handle.0,
                            first: h.last_mark.or(h.created),
                            second: ev,
                            missing_edge:
                                "receiver's re-arm (ready_mark) must happen-before the sender's put",
                            hb_ordered: Some(false),
                        });
                    }
                    h.last_put = Some(ev);
                    h.inflight_clock = snapshot;
                    h.state = Phase::InFlight;
                }
                if let Some(d) = diag {
                    self.push_diag(d);
                }
            }
            Transition::Landed => {
                let ev = self.ev("land");
                if let Some(h) = self.handles.get_mut(&handle.0) {
                    h.last_land = Some(ev);
                    h.state = Phase::Landed;
                }
            }
            Transition::Delivered => {
                // completion edge: the sender's clock at put-issue flows to
                // the receiver together with the payload
                let inflight = self
                    .handles
                    .get(&handle.0)
                    .map(|h| h.inflight_clock.clone());
                if let Some(c) = inflight {
                    self.clock(pe).join(&c);
                }
                let ev = self.ev("delivery");
                let snapshot = self.clock(pe).clone();
                if let Some(h) = self.handles.get_mut(&handle.0) {
                    h.last_deliver = Some(ev);
                    h.deliver_clock = snapshot;
                    h.state = Phase::Consumed;
                }
            }
            Transition::Marked => {
                let ev = self.ev("ready_mark");
                if let Some(h) = self.handles.get_mut(&handle.0) {
                    h.last_mark = Some(ev);
                    h.armed_clock = snapshot;
                    h.state = Phase::Armed;
                }
            }
            Transition::Destroyed => {
                // The registry only commits a destroy with no transfer
                // outstanding (destroy-while-in-flight is rejected and
                // surfaces through `op_failed`), so the handle's record can
                // simply be dropped; a stale-handle op later arrives as a
                // failed BadHandle op, not a transition.
                self.handles.remove(&handle.0);
            }
        }
    }

    fn op_failed(&mut self, pe: usize, at: Time, handle: u32, op: DirectOp, err: DirectError) {
        self.ctx = (pe, at);
        self.clock(pe).tick(pe);
        let second = self.ev(op.label());
        let here = self.clock(pe).clone();
        let h = self.handles.get(&handle);
        let ordered = |c: &VectorClock| Some(c.leq(&here));
        let (kind, first, missing_edge, hb_ordered) = match err {
            DirectError::Overwrite => (
                RaceKind::OverwriteUnconsumed,
                h.and_then(|h| h.last_deliver.or(h.last_land).or(h.last_put)),
                "receiver's ready_mark must happen-before the next put",
                h.and_then(|h| ordered(&h.deliver_clock)),
            ),
            DirectError::PutInFlight => (
                RaceKind::PutWhileInFlight,
                h.and_then(|h| h.last_put),
                "completion callback must happen-before the next put",
                h.and_then(|h| ordered(&h.inflight_clock)),
            ),
            DirectError::NotAssociated => (
                RaceKind::PutUnassociated,
                h.and_then(|h| h.created),
                "assoc_local must happen-before the first put",
                None,
            ),
            DirectError::AlreadyAssociated => (
                RaceKind::DoubleAssoc,
                h.and_then(|h| h.associated),
                "each handle takes exactly one assoc_local",
                None,
            ),
            DirectError::OobCollision => (
                RaceKind::OobCollision,
                h.and_then(|h| h.created),
                "payload must never end with the out-of-band pattern",
                None,
            ),
            DirectError::NotDelivered => (
                RaceKind::ReadyNeverCompleted,
                h.and_then(|h| h.last_put.or(h.last_mark).or(h.created)),
                "completion callback must happen-before ready_mark",
                h.and_then(|h| h.last_put.map(|_| h.inflight_clock.leq(&here))),
            ),
            DirectError::NotMarked => (
                RaceKind::PollWithoutMark,
                h.and_then(|h| h.last_deliver),
                "ready_mark must happen-before ready_poll_q",
                None,
            ),
            DirectError::WrongPe => (
                RaceKind::WrongPe,
                h.and_then(|h| h.associated.or(h.created)),
                "channel operations are bound to the PEs that registered them",
                None,
            ),
            _ => (
                RaceKind::ProtocolError,
                None,
                "well-formed channel usage",
                None,
            ),
        };
        self.push_diag(Diagnostic {
            kind,
            handle,
            first,
            second,
            missing_edge,
            hb_ordered,
        });
    }

    fn read_region(&mut self, pe: usize, at: Time, handle: u32) {
        self.ctx = (pe, at);
        self.clock(pe).tick(pe);
        let second = self.ev("recv_region read");
        let here = self.clock(pe).clone();
        let Some(h) = self.handles.get(&handle) else {
            return;
        };
        if matches!(h.state, Phase::InFlight | Phase::Landed) {
            let d = Diagnostic {
                kind: RaceKind::ReadBeforeCompletion,
                handle,
                first: h.last_land.or(h.last_put),
                second,
                missing_edge: "completion callback must happen-before the receiver reads",
                hb_ordered: Some(h.inflight_clock.leq(&here) && h.state != Phase::InFlight),
            };
            self.push_diag(d);
        }
    }
}

/// Zero-cost-when-disabled sanitizer handle.
#[derive(Default)]
pub struct Sanitizer {
    inner: Option<Rc<RefCell<SanCore>>>,
}

impl Sanitizer {
    /// A sanitizer that checks nothing and costs one branch per hook.
    pub fn disabled() -> Sanitizer {
        Sanitizer { inner: None }
    }

    /// An enabled sanitizer for `npes` PEs.
    pub fn enabled(cfg: SanitizerConfig, npes: usize) -> Sanitizer {
        Sanitizer {
            inner: Some(Rc::new(RefCell::new(SanCore::new(cfg, npes)))),
        }
    }

    /// True when checking is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A registry lifecycle probe sharing this sanitizer's state, or `None`
    /// when disabled (install nothing: the registry stays zero-observer).
    pub fn probe(&self) -> Option<LifecycleProbe> {
        let core = Rc::clone(self.inner.as_ref()?);
        Some(Box::new(move |h, t| core.borrow_mut().apply(h, t)))
    }

    /// Attribute the upcoming registry transitions to `pe` at virtual time
    /// `at`. Call before any registry operation that can commit transitions.
    #[inline]
    pub fn set_ctx(&self, pe: usize, at: Time) {
        if let Some(core) = &self.inner {
            core.borrow_mut().ctx = (pe, at);
        }
    }

    /// A message (or broadcast hop) leaves `pe`: snapshot its clock and
    /// return the edge token to carry in the event. 0 when disabled.
    #[inline]
    pub fn edge_out(&self, pe: usize) -> u64 {
        let Some(core) = &self.inner else {
            return 0;
        };
        let mut core = core.borrow_mut();
        core.clock(pe).tick(pe);
        let snap = core.clock(pe).clone();
        let id = core.next_edge;
        core.next_edge += 1;
        core.edges.insert(id, snap);
        id
    }

    /// The event carrying edge token `edge` is dispatched on `pe`: join the
    /// sender's snapshot into `pe`'s clock. Token 0 is a no-op.
    #[inline]
    pub fn edge_in(&self, pe: usize, edge: u64) {
        let Some(core) = &self.inner else {
            return;
        };
        if edge == 0 {
            return;
        }
        let mut core = core.borrow_mut();
        if let Some(snap) = core.edges.remove(&edge) {
            core.clock(pe).join(&snap);
        }
        core.clock(pe).tick(pe);
    }

    /// A chare on `pe` contributed to reduction `array`: fold `pe`'s clock
    /// into the subtree slot.
    #[inline]
    pub fn red_contribute(&self, array: u32, pe: usize) {
        let Some(core) = &self.inner else {
            return;
        };
        let mut core = core.borrow_mut();
        core.clock(pe).tick(pe);
        let snap = core.clock(pe).clone();
        core.red.entry((array, pe)).or_default().join(&snap);
    }

    /// `pe`'s subtree for `array` is complete and flows to its parent:
    /// drain the slot into an edge token for the `ReduceUp` event.
    #[inline]
    pub fn red_up(&self, array: u32, pe: usize) -> u64 {
        let Some(core) = &self.inner else {
            return 0;
        };
        let mut core = core.borrow_mut();
        let snap = core.red.remove(&(array, pe)).unwrap_or_default();
        let id = core.next_edge;
        core.next_edge += 1;
        core.edges.insert(id, snap);
        id
    }

    /// A `ReduceUp` carrying `edge` arrived at parent `pe`: fold the child
    /// subtree into the parent's slot (not the parent's clock — the reduced
    /// value is not visible to application code until completion).
    #[inline]
    pub fn red_absorb(&self, array: u32, pe: usize, edge: u64) {
        let Some(core) = &self.inner else {
            return;
        };
        if edge == 0 {
            return;
        }
        let mut core = core.borrow_mut();
        if let Some(snap) = core.edges.remove(&edge) {
            core.red.entry((array, pe)).or_default().join(&snap);
        }
    }

    /// Reduction `array` completed at root `pe`: every contribution
    /// happened-before whatever the root does next (deliver to the client,
    /// broadcast the barrier release).
    #[inline]
    pub fn red_complete(&self, array: u32, pe: usize) {
        let Some(core) = &self.inner else {
            return;
        };
        let mut core = core.borrow_mut();
        if let Some(snap) = core.red.remove(&(array, pe)) {
            core.clock(pe).join(&snap);
        }
        core.clock(pe).tick(pe);
    }

    /// A channel operation was rejected by the registry: record the
    /// violation with provenance. The error still propagates to the caller.
    #[inline]
    pub fn op_failed(&self, pe: usize, at: Time, handle: HandleId, op: DirectOp, err: DirectError) {
        if let Some(core) = &self.inner {
            core.borrow_mut().op_failed(pe, at, handle.0, op, err);
        }
    }

    /// The receiver is reading the landing window at `at`: flag it if the
    /// current payload has not completed delivery.
    #[inline]
    pub fn read_region(&self, pe: usize, at: Time, handle: HandleId) {
        if let Some(core) = &self.inner {
            core.borrow_mut().read_region(pe, at, handle.0);
        }
    }

    /// Exempt `handle` from the unsynchronized-put check: the runtime
    /// manages its re-arm/fallback discipline itself (learning fast path).
    #[inline]
    pub fn mark_runtime_managed(&self, handle: HandleId) {
        if let Some(core) = &self.inner {
            if let Some(h) = core.borrow_mut().handles.get_mut(&handle.0) {
                h.managed = true;
            }
        }
    }

    /// All diagnostics collected so far (empty when disabled).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |c| c.borrow().diags.clone())
    }

    /// Diagnostics beyond `max_diagnostics` that were counted but dropped.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |c| c.borrow().dropped)
    }

    /// True when no violations were observed (vacuously true when
    /// disabled).
    pub fn is_clean(&self) -> bool {
        match &self.inner {
            None => true,
            Some(c) => {
                let core = c.borrow();
                core.diags.is_empty() && core.dropped == 0
            }
        }
    }

    /// Human-readable report, one diagnostic per line.
    pub fn report(&self) -> String {
        let diags = self.diagnostics();
        let mut out = String::new();
        if diags.is_empty() {
            out.push_str("sanitizer: clean (no diagnostics)\n");
            return out;
        }
        out.push_str(&format!("sanitizer: {} diagnostic(s)\n", diags.len()));
        for d in &diags {
            out.push_str(&format!("  {d}\n"));
        }
        let dropped = self.dropped();
        if dropped > 0 {
            out.push_str(&format!("  … and {dropped} more dropped at the cap\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled2() -> Sanitizer {
        Sanitizer::enabled(SanitizerConfig::default(), 2)
    }

    /// Drive a registry-shaped transition stream by hand.
    fn apply(s: &Sanitizer, pe: usize, at_us: u64, h: u32, t: Transition) {
        s.set_ctx(pe, Time::from_us(at_us));
        if let Some(core) = &s.inner {
            core.borrow_mut().apply(HandleId(h), t);
        }
    }

    #[test]
    fn disabled_sanitizer_is_inert() {
        let s = Sanitizer::disabled();
        assert!(!s.is_enabled());
        assert!(s.probe().is_none());
        assert_eq!(s.edge_out(0), 0);
        s.edge_in(1, 0);
        s.op_failed(
            0,
            Time::ZERO,
            HandleId(0),
            DirectOp::Put,
            DirectError::Overwrite,
        );
        assert!(s.is_clean());
        assert!(s.diagnostics().is_empty());
        assert!(s.report().contains("clean"));
    }

    #[test]
    fn synchronized_cycle_is_clean() {
        let s = enabled2();
        // receiver (pe1) creates; handle ships to sender (pe0) by message
        apply(&s, 1, 0, 0, Transition::Created);
        let e = s.edge_out(1);
        s.edge_in(0, e);
        apply(&s, 0, 1, 0, Transition::Associated);
        apply(&s, 0, 2, 0, Transition::PutIssued);
        apply(&s, 1, 5, 0, Transition::Landed);
        apply(&s, 1, 6, 0, Transition::Delivered);
        apply(&s, 1, 7, 0, Transition::Marked);
        // the mark flows back to the sender (ack message) before re-put
        let e = s.edge_out(1);
        s.edge_in(0, e);
        apply(&s, 0, 9, 0, Transition::PutIssued);
        assert!(s.is_clean(), "{}", s.report());
    }

    #[test]
    fn notified_drain_delay_between_landing_and_delivery_is_clean() {
        // Notified-put backend: the landing only deposits a CQ record;
        // delivery happens at the *drain*, arbitrarily later (a progress
        // tick or a busy scheduler finally getting around to it). The
        // lifecycle machine must accept a long Landed→Delivered gap as
        // long as the mark still synchronizes the next put.
        let s = enabled2();
        apply(&s, 1, 0, 0, Transition::Created);
        let e = s.edge_out(1);
        s.edge_in(0, e);
        apply(&s, 0, 1, 0, Transition::Associated);
        apply(&s, 0, 2, 0, Transition::PutIssued);
        apply(&s, 1, 5, 0, Transition::Landed);
        // drain fires 495 µs later — no transition in between
        apply(&s, 1, 500, 0, Transition::Delivered);
        apply(&s, 1, 501, 0, Transition::Marked);
        let e = s.edge_out(1);
        s.edge_in(0, e);
        apply(&s, 0, 600, 0, Transition::PutIssued);
        assert!(s.is_clean(), "{}", s.report());
    }

    #[test]
    fn unsynchronized_put_is_flagged_even_when_registry_allows_it() {
        let s = enabled2();
        apply(&s, 1, 0, 0, Transition::Created);
        let e = s.edge_out(1);
        s.edge_in(0, e);
        apply(&s, 0, 1, 0, Transition::Associated);
        apply(&s, 0, 2, 0, Transition::PutIssued);
        apply(&s, 1, 5, 0, Transition::Landed);
        apply(&s, 1, 6, 0, Transition::Delivered);
        apply(&s, 1, 7, 0, Transition::Marked);
        // no edge back: the sender's second put is concurrent with the mark
        apply(&s, 0, 9, 0, Transition::PutIssued);
        let diags = s.diagnostics();
        assert_eq!(diags.len(), 1, "{}", s.report());
        let d = &diags[0];
        assert_eq!(d.kind, RaceKind::UnsynchronizedPut);
        assert_eq!(d.first.unwrap().what, "ready_mark");
        assert_eq!(d.first.unwrap().pe, 1);
        assert_eq!(d.second.what, "put");
        assert_eq!(d.second.pe, 0);
        assert_eq!(d.hb_ordered, Some(false));
    }

    #[test]
    fn managed_handles_skip_the_unsynchronized_check() {
        let s = enabled2();
        apply(&s, 0, 0, 0, Transition::Created);
        s.mark_runtime_managed(HandleId(0));
        apply(&s, 0, 1, 0, Transition::Associated);
        apply(&s, 0, 2, 0, Transition::PutIssued);
        apply(&s, 1, 5, 0, Transition::Landed);
        apply(&s, 1, 6, 0, Transition::Delivered);
        apply(&s, 1, 7, 0, Transition::Marked);
        apply(&s, 0, 9, 0, Transition::PutIssued);
        assert!(s.is_clean(), "{}", s.report());
    }

    #[test]
    fn overwrite_failure_names_the_delivery_it_races() {
        let s = enabled2();
        apply(&s, 1, 0, 0, Transition::Created);
        let e = s.edge_out(1);
        s.edge_in(0, e);
        apply(&s, 0, 1, 0, Transition::Associated);
        apply(&s, 0, 2, 0, Transition::PutIssued);
        apply(&s, 1, 5, 0, Transition::Landed);
        apply(&s, 1, 6, 0, Transition::Delivered);
        // receiver never re-arms; the next put is rejected by the registry
        s.op_failed(
            0,
            Time::from_us(9),
            HandleId(0),
            DirectOp::Put,
            DirectError::Overwrite,
        );
        let diags = s.diagnostics();
        assert_eq!(diags.len(), 1);
        let d = &diags[0];
        assert_eq!(d.kind, RaceKind::OverwriteUnconsumed);
        assert_eq!(d.first.unwrap().what, "delivery");
        assert_eq!(d.first.unwrap().at, Time::from_us(6));
        assert_eq!(d.second.at, Time::from_us(9));
        assert!(d.to_string().contains("ready_mark"));
    }

    #[test]
    fn read_before_completion_is_flagged_only_in_flight() {
        let s = enabled2();
        apply(&s, 1, 0, 0, Transition::Created);
        let e = s.edge_out(1);
        s.edge_in(0, e);
        apply(&s, 0, 1, 0, Transition::Associated);
        apply(&s, 0, 2, 0, Transition::PutIssued);
        s.read_region(1, Time::from_us(3), HandleId(0));
        apply(&s, 1, 5, 0, Transition::Landed);
        s.read_region(1, Time::from_us(5), HandleId(0));
        apply(&s, 1, 6, 0, Transition::Delivered);
        s.read_region(1, Time::from_us(7), HandleId(0));
        let diags = s.diagnostics();
        assert_eq!(diags.len(), 2, "{}", s.report());
        assert!(diags
            .iter()
            .all(|d| d.kind == RaceKind::ReadBeforeCompletion));
    }

    #[test]
    fn diagnostic_cap_counts_overflow() {
        let s = Sanitizer::enabled(
            SanitizerConfig {
                max_diagnostics: 2,
                check_unsynchronized: true,
            },
            1,
        );
        for i in 0..5 {
            s.op_failed(
                0,
                Time::from_us(i),
                HandleId(0),
                DirectOp::Put,
                DirectError::BadHandle,
            );
        }
        assert_eq!(s.diagnostics().len(), 2);
        assert_eq!(s.dropped(), 3);
        assert!(!s.is_clean());
        assert!(s.report().contains("3 more dropped"));
    }

    #[test]
    fn reduction_slots_carry_contributions_to_the_root() {
        let s = enabled2();
        // pe0 contributes, subtree flows to root pe1, root completes
        s.red_contribute(7, 0);
        let e = s.red_up(7, 0);
        s.red_absorb(7, 1, e);
        s.red_contribute(7, 1);
        s.red_complete(7, 1);
        let core = s.inner.as_ref().unwrap().borrow();
        assert!(
            core.clocks[0].leq(&core.clocks[1]),
            "root saw both subtrees"
        );
        assert!(core.red.is_empty(), "slots drained at completion");
    }
}
