//! The paper's workloads, each in a message-based (MSG) and a CkDirect
//! (CKD) variant:
//!
//! * [`pingpong`] — the §3 microbenchmark (Tables 1–2, with the MPI rows
//!   supplied by `ckd-mpi`);
//! * [`jacobi3d`] — the §4.1 halo-exchange stencil (Fig 2);
//! * [`matmul3d`] — the §4.2 Agarwal 3-D matrix multiplication (Fig 3);
//! * [`openatom`] — the §5 mini-OpenAtom GSpace/PairCalculator step
//!   (Figs 4–5), including the `ReadyMark`/`ReadyPollQ` polling
//!   optimization the paper needed to make CkDirect profitable there;
//! * [`chanstorm`] — the §5.2 pathology at modern scale: 100k+ persistent
//!   channels on one PE with a sparse active window, exercising the
//!   registry's slab storage and sharded poll rings end to end.
//!
//! Every app supports *real* compute (data verified in tests) and
//! *modeled* compute (flops charged, buffers truncated) for figure-scale
//! runs on thousands of simulated PEs.

pub mod chanstorm;
pub mod common;
pub mod jacobi3d;
pub mod matmul3d;
pub mod mutants;
pub mod openatom;
pub mod pingpong;

pub use common::{Platform, Variant};
