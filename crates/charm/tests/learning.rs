//! Tests of the automatic channel-learning framework (the paper's proposed
//! "automatic learning framework which will create persistent channels
//! where appropriate").

use bytes::Bytes;
use ckd_charm::{Chare, ChareRef, Ctx, EntryId, LearnConfig, LearningTotals, Machine, Msg};
use ckd_net::presets;
use ckd_sim::Time;
use ckd_topo::{Dims, Idx, Machine as Topo, Mapper};

const EP_START: EntryId = EntryId(0);
const EP_DATA: EntryId = EntryId(1);
const EP_ACK: EntryId = EntryId(2);

const ROUNDS: u32 = 20;
const SIZE: usize = 4096;

/// Sends a stamped payload to the consumer each round (via the learning
/// path), waits for an ack, repeats.
struct Producer {
    consumer: Option<ChareRef>,
    round: u32,
    round_times: Vec<Time>,
}

impl Chare for Producer {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                self.consumer = Some(*msg.payload.downcast::<ChareRef>().unwrap());
                self.fire(ctx);
            }
            EP_ACK => {
                self.round_times.push(ctx.now());
                if self.round < ROUNDS {
                    self.fire(ctx);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

impl Producer {
    fn fire(&mut self, ctx: &mut Ctx<'_>) {
        self.round += 1;
        let mut payload = vec![0u8; SIZE];
        payload[..8].copy_from_slice(&(self.round as u64).to_le_bytes());
        payload[SIZE - 16..SIZE - 8].copy_from_slice(&(!(self.round as u64)).to_le_bytes());
        let consumer = self.consumer.unwrap();
        ctx.send_learned(consumer, Msg::bytes(EP_DATA, Bytes::from(payload)));
    }
}

/// Receives the payload — by message or by learned channel, it cannot tell
/// the difference — verifies the stamp, acks.
struct Consumer {
    producer: Option<ChareRef>,
    received: u32,
    corrupt: u32,
}

impl Chare for Consumer {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                self.producer = Some(*msg.payload.downcast::<ChareRef>().unwrap());
            }
            EP_DATA => {
                self.received += 1;
                let data = msg.payload.bytes().expect("bytes payload");
                assert_eq!(data.len(), SIZE);
                let stamp = u64::from_le_bytes(data[..8].try_into().unwrap());
                let check = u64::from_le_bytes(data[SIZE - 16..SIZE - 8].try_into().unwrap());
                if stamp != self.received as u64 || check != !stamp {
                    self.corrupt += 1;
                }
                let producer = self.producer.unwrap();
                ctx.send(producer, Msg::signal(EP_ACK));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

fn build(learning: Option<LearnConfig>) -> (Machine, ChareRef, ChareRef) {
    let net = presets::ib_abe(Topo::ib_cluster(4, 1));
    let mut b = Machine::builder(net);
    if let Some(cfg) = learning {
        b = b.with_learning(cfg);
    }
    let mut m = b.build();
    let prod = m.create_array("prod", Dims::d1(1), Mapper::Block, |_| {
        Box::new(Producer {
            consumer: None,
            round: 0,
            round_times: Vec::new(),
        })
    });
    let cons = m.create_array("cons", Dims::d1(4), Mapper::Block, |_| {
        Box::new(Consumer {
            producer: None,
            received: 0,
            corrupt: 0,
        })
    });
    let p = m.element(prod, Idx::i1(0));
    let c = m.element(cons, Idx::i1(3)); // different node
    m.seed(c, Msg::value(EP_START, p, 8));
    m.seed(p, Msg::value(EP_START, c, 8));
    (m, p, c)
}

#[test]
fn learner_installs_a_channel_and_switches_to_puts() {
    let (mut m, _p, c) = build(Some(LearnConfig { threshold: 3 }));
    m.run();
    let consumer = m.chare::<Consumer>(c).unwrap();
    assert_eq!(consumer.received, ROUNDS);
    assert_eq!(consumer.corrupt, 0, "learned deliveries must be intact");
    let totals = m.learning_totals();
    assert_eq!(totals.installed, 1);
    assert!(
        totals.hits >= (ROUNDS - 5) as u64,
        "only {} one-sided rounds",
        totals.hits
    );
    assert_eq!(totals.misses, 0, "ack-synchronized stream never falls back");
    let c = m.direct_counters();
    assert_eq!(c.puts, totals.hits);
    assert_eq!(c.deliveries, totals.hits);
}

#[test]
fn learning_disabled_means_pure_messages() {
    let (mut m, _p, c) = build(None);
    m.run();
    let consumer = m.chare::<Consumer>(c).unwrap();
    assert_eq!(consumer.received, ROUNDS);
    assert_eq!(m.learning_totals(), LearningTotals::default());
    assert_eq!(m.direct_counters().puts, 0, "no puts without learning");
    assert_eq!(m.stats().msgs_sent as u32, 2 * ROUNDS); // data + acks
}

#[test]
fn learned_transport_is_faster_and_equally_correct() {
    let (mut m1, p1, c1) = build(None);
    m1.run();
    let baseline = m1.chare::<Producer>(p1).unwrap().round_times.clone();
    let base_recv = m1.chare::<Consumer>(c1).unwrap().received;

    let (mut m2, p2, c2) = build(Some(LearnConfig { threshold: 3 }));
    m2.run();
    let learned = m2.chare::<Producer>(p2).unwrap().round_times.clone();
    let learn_recv = m2.chare::<Consumer>(c2).unwrap().received;

    assert_eq!(base_recv, learn_recv);
    assert_eq!(baseline.len(), learned.len());
    // per-round latency in the steady state (after the channel activates)
    let late_rounds = |ts: &[Time]| {
        let n = ts.len();
        (ts[n - 1] - ts[n - 6]).as_us_f64() / 5.0
    };
    let b = late_rounds(&baseline);
    let l = late_rounds(&learned);
    assert!(
        l < b,
        "learned steady-state round {l}us !< message round {b}us"
    );
    // early rounds (before learning) are message-speed in both runs
    let early_b = (baseline[1] - baseline[0]).as_us_f64();
    let early_l = (learned[1] - learned[0]).as_us_f64();
    assert!((early_b - early_l).abs() < 1.0, "{early_b} vs {early_l}");
}

#[test]
fn learner_keys_streams_by_size() {
    // alternating sizes never accumulate a stable pattern at threshold 5
    // within 4 sends each… but do at 3: verify keying by driving two sizes
    // and checking two channels appear.
    struct TwoSize {
        consumer: Option<ChareRef>,
        round: u32,
    }
    impl Chare for TwoSize {
        fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            match msg.ep {
                EP_START => {
                    self.consumer = Some(*msg.payload.downcast::<ChareRef>().unwrap());
                    self.fire(ctx);
                }
                EP_ACK => {
                    if self.round < 16 {
                        self.fire(ctx);
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
    impl TwoSize {
        fn fire(&mut self, ctx: &mut Ctx<'_>) {
            self.round += 1;
            let size = if self.round.is_multiple_of(2) {
                1024
            } else {
                2048
            };
            let consumer = self.consumer.unwrap();
            ctx.send_learned(consumer, Msg::bytes(EP_DATA, Bytes::from(vec![1u8; size])));
        }
    }
    struct AckBack {
        producer: Option<ChareRef>,
    }
    impl Chare for AckBack {
        fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            match msg.ep {
                EP_START => {
                    self.producer = Some(*msg.payload.downcast::<ChareRef>().unwrap());
                }
                EP_DATA => {
                    let producer = self.producer.unwrap();
                    ctx.send(producer, Msg::signal(EP_ACK));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    let net = presets::ib_abe(Topo::ib_cluster(4, 1));
    let mut m = Machine::builder(net)
        .with_learning(LearnConfig { threshold: 3 })
        .build();
    let prod = m.create_array("p", Dims::d1(1), Mapper::Block, |_| {
        Box::new(TwoSize {
            consumer: None,
            round: 0,
        })
    });
    let cons = m.create_array("c", Dims::d1(4), Mapper::Block, |_| {
        Box::new(AckBack { producer: None })
    });
    let p = m.element(prod, Idx::i1(0));
    let c = m.element(cons, Idx::i1(3));
    m.seed(c, Msg::value(EP_START, p, 8));
    m.seed(p, Msg::value(EP_START, c, 8));
    m.run();
    let totals = m.learning_totals();
    assert_eq!(totals.installed, 2, "one channel per (ep, size) stream");
    assert!(totals.hits > 0);
}

#[test]
fn non_bytes_payloads_never_learn() {
    let net = presets::ib_abe(Topo::ib_cluster(2, 1));
    let mut m = Machine::builder(net)
        .with_learning(LearnConfig { threshold: 1 })
        .build();

    struct ValueSender {
        peer: Option<ChareRef>,
        n: u32,
    }
    impl Chare for ValueSender {
        fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            match msg.ep {
                EP_START => {
                    self.peer = Some(*msg.payload.downcast::<ChareRef>().unwrap());
                    for i in 0..5u32 {
                        let peer = self.peer.unwrap();
                        ctx.send_learned(peer, Msg::value(EP_DATA, i, 64));
                    }
                }
                EP_DATA => self.n += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    let arr = m.create_array("v", Dims::d1(2), Mapper::Block, |_| {
        Box::new(ValueSender { peer: None, n: 0 })
    });
    let a = m.element(arr, Idx::i1(0));
    let b = m.element(arr, Idx::i1(1));
    m.seed(a, Msg::value(EP_START, b, 8));
    m.run();
    assert_eq!(m.chare::<ValueSender>(b).unwrap().n, 5);
    assert_eq!(m.learning_totals(), LearningTotals::default());
}
