//! Projections-style tracing for the simulated CkDirect runtime.
//!
//! The paper's results are all *decompositions* of where time goes —
//! envelope overhead, scheduler trips, rendezvous round-trips, the
//! ReadyMark/ReadyPollQ polling window — and Charm++ ships the Projections
//! tool to make exactly those visible. This crate is the reproduction's
//! equivalent, built for the deterministic discrete-event machine:
//!
//! * [`TraceEvent`] — a typed, virtual-time-stamped record vocabulary
//!   (message send/deliver, put issue/land, callback fire, poll sweeps,
//!   rendezvous RTS/CTS, reductions, PE busy spans, queue-depth samples),
//!   buffered per PE in bounded [`EventRing`]s with drop counters.
//! * [`Metrics`] — per-protocol and per-channel counters plus latency
//!   histograms (reusing `ckd_sim`'s [`Histogram`]), including the
//!   put-issue→callback latency that one-sided systems make so hard to see.
//! * Two exporters — [`chrome_trace_json`] (Perfetto-loadable, one track per
//!   PE) and [`text_summary`] (per-protocol byte/count/latency breakdowns).
//!
//! Alongside the virtual-time tracer sits the *host-time* observability
//! stack added for the scheduler-optimization work:
//!
//! * [`Profiler`] — a phase-scoped wall-clock self-profiler ([`Phase`],
//!   [`PhaseStat`]) with mergeable per-worker [`ProfShard`]s,
//! * [`Hist`] — mergeable log2-bucket histograms (put issue→callback
//!   latency, poll batch size, event-queue depth),
//! * [`Snapshot`]/[`SnapshotStream`] — periodic JSONL metric snapshots
//!   keyed by virtual time, checked by [`validate_snapshot_jsonl`].
//!
//! The runtime holds a [`Tracer`] handle: a disabled tracer is a single
//! `Option` discriminant check per instrumentation point, so the hot paths
//! cost nothing measurable when tracing is off. The [`Profiler`] follows
//! the same discipline. All virtual-time output is deterministic: two
//! identical runs export byte-identical traces and snapshot streams.
//!
//! [`Histogram`]: ckd_sim::Histogram

mod event;
mod export;
mod hist;
mod metrics;
mod prof;
mod ring;
mod snapshot;
mod tracer;

pub use event::{BusyKind, ProtoClass, Record, TraceEvent};
pub use export::{chrome_trace_json, text_summary};
pub use hist::Hist;
pub use metrics::{ChannelStat, Metrics, ProtoStat};
pub use prof::{Phase, PhaseStat, ProfConfig, ProfShard, Profiler};
pub use ring::EventRing;
pub use snapshot::{validate_snapshot_jsonl, Snapshot, SnapshotStream};
pub use tracer::{TraceConfig, TraceInner, Tracer};
