//! Table 1 — pingpong round-trip times on the Infiniband (Abe) model:
//! Default Charm++, CkDirect, MPICH-VMI, MVAPICH two-sided, MVAPICH `MPI_Put`.

use ckd_apps::pingpong::charm_pingpong;
use ckd_apps::{Platform, Variant};
use ckd_bench::{banner, print_size_header, print_time_row, scale, Scale, TABLE_SIZES};
use ckd_mpi::{flavor, pingpong_rtt, PingMode};
use ckd_net::presets;
use ckd_topo::Machine as Topo;

fn main() {
    let iters = match scale() {
        Scale::Quick => 5,
        Scale::Standard => 100,
        Scale::Full => 1000, // the paper's iteration count
    };
    let abe = Platform::IbAbe { cores_per_node: 2 };
    let net = presets::ib_abe(Topo::ib_cluster(8, 2));

    banner("Table 1: pingpong RTT (us) on Infiniband (Abe model)");
    print_size_header();
    let run_charm = |v: Variant| -> Vec<_> {
        TABLE_SIZES
            .iter()
            .map(|&b| charm_pingpong(abe, v, b, iters).rtt)
            .collect()
    };
    print_time_row("Default CHARM++", &run_charm(Variant::Msg));
    print_time_row("CkDirect CHARM++", &run_charm(Variant::Ckd));
    let run_mpi = |f: ckd_mpi::MpiFlavor, mode: PingMode| -> Vec<_> {
        TABLE_SIZES
            .iter()
            .map(|&b| pingpong_rtt(&net, f, b, iters, mode))
            .collect()
    };
    print_time_row(
        "MPICH-VMI",
        &run_mpi(flavor::mpich_vmi(), PingMode::TwoSided),
    );
    print_time_row("MVAPICH", &run_mpi(flavor::mvapich(), PingMode::TwoSided));
    print_time_row(
        "MVAPICH-Put",
        &run_mpi(flavor::mvapich(), PingMode::OneSidedPscw),
    );

    println!();
    println!("paper values:");
    ckd_bench::print_row(
        "Default CHARM++",
        &[
            22.924, 25.110, 47.340, 66.176, 96.215, 160.470, 191.343, 271.803, 353.305, 1399.145,
        ],
    );
    ckd_bench::print_row(
        "CkDirect CHARM++",
        &[
            12.383, 16.108, 29.330, 43.136, 68.927, 93.422, 120.954, 195.248, 275.322, 1294.358,
        ],
    );
    ckd_bench::print_row(
        "MPICH-VMI",
        &[
            12.367, 19.669, 37.318, 60.892, 102.684, 127.591, 201.148, 322.687, 332.690, 1396.942,
        ],
    );
    ckd_bench::print_row(
        "MVAPICH",
        &[
            12.302, 19.436, 37.311, 56.249, 88.659, 119.452, 144.973, 236.545, 315.692, 1386.051,
        ],
    );
    ckd_bench::print_row(
        "MVAPICH-Put",
        &[
            16.801, 22.821, 51.750, 64.202, 94.250, 120.218, 146.028, 232.021, 308.942, 1369.516,
        ],
    );
}
