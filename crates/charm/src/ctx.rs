//! The per-invocation context handed to entry methods and CkDirect
//! callbacks: the user-facing API of the runtime.

use ckd_net::{Protocol, Timing};
use ckd_race::DirectOp;
use ckd_sim::{FaultOp, Time};
use ckd_topo::{Idx, Pe};
use ckd_trace::ProtoClass;
use ckdirect::{DirectError, HandleId, PutRequest, Region, StridedSpec};

use crate::array::ArrayId;
use crate::chare::ChareRef;
use crate::layer::PutIssueInfo;
use crate::machine::{CbKind, DirectCb, Ev, Machine};
use crate::msg::Msg;
use crate::reduction::{RedOp, RedTarget, RedVal};

/// What [`Ctx::direct_put`] reports about the transfer it issued. With
/// faults disabled every put is [`PutOutcome::Sent`]; under fault injection
/// the other variants surface channel health to the application without
/// changing its data-delivery semantics (the reliability layer retransmits
/// either way).
#[must_use = "a degraded or retried channel is worth reacting to; match the outcome or discard it explicitly"]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PutOutcome {
    /// Issued on the direct-RDMA fast path, no retransmissions so far.
    Sent,
    /// Issued direct, but this channel has needed `retries` cumulative
    /// retransmissions — a flaky but still-direct path.
    Retried {
        /// Cumulative retransmits charged to the channel so far.
        retries: u32,
    },
    /// The channel crossed the retransmission threshold and this put paid
    /// conventional rendezvous timing instead of the direct path.
    Degraded,
}

/// Execution context of one entry-method or callback invocation.
///
/// Virtual time within the invocation is `start + elapsed`; every API that
/// consumes CPU advances `elapsed`, and asynchronous effects (message
/// arrivals, put landings) are scheduled relative to that instant.
pub struct Ctx<'a> {
    pub(crate) m: &'a mut Machine,
    pub(crate) pe: Pe,
    pub(crate) me: ChareRef,
    pub(crate) start: Time,
    pub(crate) elapsed: Time,
    pub(crate) pending: Vec<(DirectCb, HandleId)>,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(
        m: &'a mut Machine,
        pe: Pe,
        me: ChareRef,
        start: Time,
        elapsed: Time,
    ) -> Ctx<'a> {
        let pending = m.take_cb_buf();
        Ctx {
            m,
            pe,
            me,
            start,
            elapsed,
            pending,
        }
    }

    pub(crate) fn finish(self) -> (Time, Vec<(DirectCb, HandleId)>) {
        (self.elapsed, self.pending)
    }

    // ---- identity & time -------------------------------------------------

    /// The chare being invoked.
    pub fn me(&self) -> ChareRef {
        self.me
    }

    /// This chare's index within its array.
    pub fn my_index(&self) -> Idx {
        self.m.arrays[self.me.array.idx()]
            .dims
            .unlinear(self.me.lin as usize)
    }

    /// The PE executing this invocation.
    pub fn my_pe(&self) -> Pe {
        self.pe
    }

    /// Number of PEs in the machine.
    pub fn npes(&self) -> usize {
        self.m.npes()
    }

    /// Current virtual time (advances as the invocation charges work).
    pub fn now(&self) -> Time {
        self.start + self.elapsed
    }

    /// Reference to another element of any array.
    pub fn element(&self, array: ArrayId, idx: Idx) -> ChareRef {
        self.m.element(array, idx)
    }

    /// Extents of an array.
    pub fn array_dims(&self, array: ArrayId) -> ckd_topo::Dims {
        self.m.arrays[array.idx()].dims
    }

    // ---- compute charging ------------------------------------------------

    /// Charge `t` of compute time to this invocation.
    pub fn charge(&mut self, t: Time) {
        self.elapsed += t;
    }

    /// Charge `flops` floating-point operations (converted through the
    /// machine's compute model).
    pub fn charge_flops(&mut self, flops: f64) {
        self.elapsed += self.m.cfg.compute.flops(flops);
    }

    /// Charge streaming `bytes` through memory.
    pub fn charge_bytes(&mut self, bytes: u64) {
        self.elapsed += self.m.cfg.compute.bytes(bytes);
    }

    // ---- messaging (the default Charm++ path) -----------------------------

    /// Send a message to another chare: pays allocation, the ~80-byte
    /// envelope, the two-sided wire protocol (eager or rendezvous), and, on
    /// the far side, envelope processing plus a scheduler dequeue.
    pub fn send(&mut self, to: ChareRef, msg: Msg) {
        let dst = self.m.home_pe(to);
        let bytes = msg.size + self.m.cfg.env_bytes;
        let alloc = self.m.cfg.alloc + Time::from_ps(self.m.cfg.alloc_ps_per_byte * bytes as u64);
        let (t, proto) = self
            .m
            .net
            .two_sided(self.pe, dst, bytes, self.m.cfg.eager_max, false);
        let pclass = ProtoClass::from(proto);
        let begin = self.start + self.elapsed;
        self.elapsed += alloc + t.send_cpu;
        self.m.stats.msgs_sent += 1;
        self.m.stats.msg_bytes += msg.size as u64;
        self.m.stats.proto.record(proto, msg.size as u64);
        self.m.pes[self.pe.idx()]
            .stats
            .proto_sent
            .record(proto, msg.size as u64);
        if self.m.stack.tracer.is_enabled() {
            self.m.stack.tracer.msg_send(
                self.pe.idx(),
                begin,
                dst.0,
                msg.ep.0,
                msg.size as u64,
                pclass,
                t.delay,
            );
            if pclass == ProtoClass::Rendezvous {
                // reconstructed handshake leg (see `Ev::MsgArrive::proto`)
                self.m
                    .stack
                    .tracer
                    .rts(self.pe.idx(), begin, dst.0, msg.size as u64);
            }
        }
        let edge = self.m.stack.san.edge_out(self.pe.idx());
        self.m.rel_push(
            begin + alloc,
            t.delay,
            (self.pe.0, dst.0),
            FaultOp::Msg,
            None,
            Ev::MsgArrive {
                pe: dst,
                target: to,
                msg,
                recv_cpu: t.recv_cpu,
                overlap_cpu: t.overlap_cpu,
                from: self.pe,
                proto: pclass,
                edge,
            },
        );
    }

    /// Send to the element of `array` at `idx`.
    pub fn send_to(&mut self, array: ArrayId, idx: Idx, msg: Msg) {
        let to = self.element(array, idx);
        self.send(to, msg);
    }

    /// Enqueue a message for a chare on *this* PE without any network or
    /// envelope cost — the runtime-internal local enqueue Charm++ uses when
    /// a CkDirect callback schedules an entry method (§5.1: "the callback
    /// enqueues a CHARM++ entry method to perform the multiplication").
    /// The scheduler dequeue cost is still paid when it runs.
    pub fn send_local(&mut self, to: ChareRef, msg: Msg) {
        debug_assert_eq!(self.m.home_pe(to), self.pe, "send_local to a remote chare");
        let begin = self.start + self.elapsed;
        self.elapsed += self.m.cfg.alloc;
        self.m.push_ev(
            begin + self.m.cfg.alloc,
            Ev::MsgArrive {
                pe: self.pe,
                target: to,
                msg,
                recv_cpu: Time::ZERO,
                overlap_cpu: Time::ZERO,
                from: self.pe,
                proto: ProtoClass::Control,
                // same-PE delivery: program order is already a
                // happens-before edge, no token needed
                edge: 0,
            },
        );
    }

    // ---- reductions --------------------------------------------------------

    /// Contribute to this chare's array-wide reduction. Every element must
    /// contribute exactly once per generation with the same `op` and
    /// `target`; the reduced value is delivered per `target`.
    pub fn contribute(&mut self, v: RedVal, op: RedOp, target: RedTarget) {
        self.m
            .contribute_local(self.me.array, self.pe, v, op, target);
    }

    /// Barrier shorthand: contribute nothing, broadcast `ep` when all
    /// elements arrived.
    pub fn barrier(&mut self, ep: crate::msg::EntryId) {
        self.contribute(RedVal::Unit, RedOp::Barrier, RedTarget::Broadcast(ep));
    }

    // ---- CkDirect ---------------------------------------------------------

    /// `CkDirect_createHandle`: register `recv` (owned by this chare, on
    /// this PE) as a put destination. `oob` must never occur as the final
    /// 8 bytes of real payloads; `tag` is handed back to
    /// [`crate::Chare::direct_callback`] on every delivery.
    ///
    /// On RDMA fabrics the buffer registration cost is charged *here, once*
    /// — amortized over every subsequent put, unlike the per-transfer
    /// registration of the default rendezvous path.
    pub fn direct_create_handle(
        &mut self,
        recv: Region,
        oob: u64,
        tag: u32,
    ) -> Result<HandleId, DirectError> {
        self.charge_registration(recv.len());
        self.san_ctx();
        self.m.direct.create_handle(
            self.pe,
            recv,
            oob,
            DirectCb {
                target: self.me,
                kind: CbKind::User(tag),
            },
        )
    }

    /// [`Ctx::direct_create_handle`] with an explicit wire size: the region
    /// may be a truncated stand-in while the network is charged for
    /// `wire_bytes` — used by figure-scale runs that model full buffers
    /// without allocating them.
    pub fn direct_create_handle_wire(
        &mut self,
        recv: Region,
        oob: u64,
        tag: u32,
        wire_bytes: usize,
    ) -> Result<HandleId, DirectError> {
        self.charge_registration(wire_bytes);
        self.san_ctx();
        self.m.direct.create_handle_wire(
            self.pe,
            recv,
            oob,
            DirectCb {
                target: self.me,
                kind: CbKind::User(tag),
            },
            wire_bytes,
        )
    }

    /// Strided `create_handle` (the paper's proposed extension): puts land
    /// scattered into `backing` per `spec` — e.g. straight into a matrix
    /// column — with the scatter copy charged at delivery.
    pub fn direct_create_handle_strided(
        &mut self,
        backing: Region,
        spec: StridedSpec,
        oob: u64,
        tag: u32,
    ) -> Result<HandleId, DirectError> {
        self.charge_registration(spec.payload_len());
        self.san_ctx();
        self.m.direct.create_handle_strided(
            self.pe,
            backing,
            spec,
            oob,
            DirectCb {
                target: self.me,
                kind: CbKind::User(tag),
            },
        )
    }

    /// Strided `assoc_local`: puts gather their payload from `backing` per
    /// `spec`, with the gather copy charged at put.
    pub fn direct_assoc_local_strided(
        &mut self,
        handle: HandleId,
        backing: Region,
        spec: StridedSpec,
    ) -> Result<(), DirectError> {
        self.charge_registration(spec.payload_len());
        let now = self.san_ctx();
        self.m
            .direct
            .assoc_local_strided(handle, self.pe, backing, spec)
            .map_err(|e| self.san_fail(now, handle, DirectOp::Assoc, e))
    }

    /// `CkDirect_assocLocal`: bind this chare's `send` buffer to a handle
    /// created by the receiver. Also a one-time registration cost.
    pub fn direct_assoc_local(
        &mut self,
        handle: HandleId,
        send: Region,
    ) -> Result<(), DirectError> {
        self.charge_registration(send.len());
        let now = self.san_ctx();
        self.m
            .direct
            .assoc_local(handle, self.pe, send)
            .map_err(|e| self.san_fail(now, handle, DirectOp::Assoc, e))
    }

    /// `CkDirect_put`: the one-sided transfer. Pays only the RDMA issue
    /// cost on this PE; the receiver pays nothing until its poll sweep
    /// detects the sentinel overwrite (Infiniband) or the delivery callback
    /// fires (Blue Gene/P).
    ///
    /// The returned [`PutOutcome`] reports channel health under fault
    /// injection: a channel that crossed the retransmission threshold
    /// degrades to conventional rendezvous timing ([`PutOutcome::Degraded`])
    /// — the reproduction's stand-in for tearing down a flaky RDMA path.
    /// Delivery semantics are identical in every case; retransmission is the
    /// runtime's job, not the application's.
    pub fn direct_put(&mut self, handle: HandleId) -> Result<PutOutcome, DirectError> {
        // strided sources pay the gather copy here, on the sender
        if let Some(bytes) = self.m.direct.strided_send_bytes(handle)? {
            self.charge_bytes(2 * bytes as u64);
        }
        let now = self.san_ctx();
        let req = self
            .m
            .direct
            .put(handle, self.pe)
            .map_err(|e| self.san_fail(now, handle, DirectOp::Put, e))?;
        let degraded = self
            .m
            .stack
            .rel
            .as_ref()
            .is_some_and(|r| r.is_degraded(handle));
        let retries = self
            .m
            .stack
            .rel
            .as_ref()
            .map_or(0, |r| r.retries_of(handle));
        let (outcome, t, proto) = if degraded {
            self.m.stats.rel.degraded_puts += 1;
            let (t, proto) = self.m.net.two_sided(req.src, req.dst, req.bytes, 0, true);
            (PutOutcome::Degraded, t, proto)
        } else {
            let outcome = if retries > 0 {
                PutOutcome::Retried { retries }
            } else {
                PutOutcome::Sent
            };
            let t = self.m.net.put(req.src, req.dst, req.bytes);
            (outcome, t, self.m.backend.put_proto())
        };
        let begin = self.start + self.elapsed;
        self.elapsed += t.send_cpu;
        self.record_put(handle, &req, &t, begin, proto);
        self.m.rel_push(
            begin,
            t.delay,
            (req.src.0, req.dst.0),
            FaultOp::Put,
            Some((handle, req.seq)),
            Ev::DirectLand {
                handle,
                recv_cpu: t.recv_cpu,
            },
        );
        Ok(outcome)
    }

    /// `CkDirect_get` (§2's comparison variant): the receiver *pulls* the
    /// associated send buffer. Unlike a put, the initiator must already
    /// know — through some extra synchronization — that the source data is
    /// ready; the data also pays two wire traversals (request + response)
    /// instead of one. The completion callback fires at the initiator when
    /// the read returns. Provided to quantify why the paper chose put.
    pub fn direct_get(&mut self, handle: HandleId) -> Result<(), DirectError> {
        if let Some(bytes) = self.m.direct.strided_send_bytes(handle)? {
            self.charge_bytes(2 * bytes as u64);
        }
        let now = self.san_ctx();
        let req = self
            .m
            .direct
            .get(handle, self.pe)
            .map_err(|e| self.san_fail(now, handle, DirectOp::Get, e))?;
        let t = self.m.net.get(req.src, req.dst, req.bytes);
        let begin = self.start + self.elapsed;
        self.elapsed += t.send_cpu;
        let proto = self.m.backend.put_proto();
        self.record_put(handle, &req, &t, begin, proto);
        self.m.push_ev(
            begin + t.delay,
            Ev::DirectGetLand {
                handle,
                recv_cpu: t.recv_cpu,
            },
        );
        Ok(())
    }

    /// `CkDirect_ready`: re-arm the channel for the next iteration
    /// (mark + start polling). Purely local: no message, no synchronization.
    pub fn direct_ready(&mut self, handle: HandleId) -> Result<(), DirectError> {
        self.direct_ready_mark(handle)?;
        self.direct_ready_poll_q(handle)
    }

    /// `CkDirect_ReadyMark`: release the buffer and rewrite the out-of-band
    /// pattern, without resuming polling. Call as soon as the data has been
    /// consumed.
    pub fn direct_ready_mark(&mut self, handle: HandleId) -> Result<(), DirectError> {
        let now = self.san_ctx();
        self.m
            .direct
            .ready_mark(handle)
            .map_err(|e| self.san_fail(now, handle, DirectOp::ReadyMark, e))
    }

    /// `CkDirect_ReadyPollQ`: resume polling the handle. Call just before
    /// the phase that expects the next put, so unrelated phases don't pay
    /// the per-handle poll cost (§5.2 of the paper). If the put already
    /// landed, the callback fires right after this invocation returns.
    pub fn direct_ready_poll_q(&mut self, handle: HandleId) -> Result<(), DirectError> {
        let now = self.san_ctx();
        match self.m.direct.ready_poll_q(handle) {
            Ok(Some(cb)) => {
                debug_assert_eq!(
                    self.m.direct.recv_pe(handle),
                    Ok(self.pe),
                    "ready_poll_q from a non-owner PE"
                );
                self.pending.push((cb, handle));
                Ok(())
            }
            Ok(None) => Ok(()),
            Err(e) => Err(self.san_fail(now, handle, DirectOp::ReadyPollQ, e)),
        }
    }

    /// `CkDirect_destroyHandle`: tear the channel down and recycle its
    /// registry slot. Purely local to the receiver. Rejected (and reported
    /// to the sanitizer) while a put is outstanding — destroying a window
    /// the NIC may still write into is a lifecycle race; any handle copy
    /// the sender still holds goes stale and fails with `BadHandle`.
    pub fn direct_destroy(&mut self, handle: HandleId) -> Result<(), DirectError> {
        let now = self.san_ctx();
        self.m
            .direct
            .destroy_handle(handle)
            .map_err(|e| self.san_fail(now, handle, DirectOp::Destroy, e))
    }

    /// The receive window of a channel (the same storage registered at
    /// creation — reading it *is* reading the landed data).
    pub fn direct_recv_region(&self, handle: HandleId) -> Result<Region, DirectError> {
        self.m
            .stack
            .san
            .read_region(self.pe.idx(), self.start + self.elapsed, handle);
        self.m.direct.recv_region(handle)
    }

    /// Broadcast a message to every element of `array` (spanning-tree
    /// distribution, one scheduler delivery per element).
    pub fn broadcast(&mut self, array: ArrayId, msg: Msg) {
        self.m.broadcast_from(self.pe, array, msg);
    }

    // ---- control -----------------------------------------------------------

    /// Stop the machine after this invocation (end of the program).
    pub fn exit(&mut self) {
        self.m.stop = true;
    }

    /// Point the sanitizer's virtual clock at this PE before a direct op,
    /// returning the current virtual time for any follow-up report.
    pub(crate) fn san_ctx(&mut self) -> Time {
        let now = self.start + self.elapsed;
        self.m.stack.san.set_ctx(self.pe.idx(), now);
        now
    }

    /// Report a rejected direct op to the sanitizer. The error still
    /// propagates to the caller — the sanitizer only records the race the
    /// rejection is evidence of.
    pub(crate) fn san_fail(
        &self,
        now: Time,
        handle: HandleId,
        op: DirectOp,
        err: DirectError,
    ) -> DirectError {
        self.m
            .stack
            .san
            .op_failed(self.pe.idx(), now, handle, op, err);
        err
    }

    /// One-time buffer registration at handle setup, priced by the
    /// completion backend (HCA pinning on Infiniband, free on DCMF and
    /// shared memory).
    pub(crate) fn charge_registration(&mut self, bytes: usize) {
        let reg = self.m.backend.reg_cost(&self.m.net, bytes);
        self.elapsed += reg;
    }

    /// Shared accounting for one-sided transfers (puts, learned puts, gets):
    /// aggregate counters, the per-protocol breakdown, and the layer-stack
    /// issue hook (where the tracer starts the issue→callback latency
    /// clock). `proto` is the caller's because a degraded put records
    /// rendezvous, not RDMA.
    pub(crate) fn record_put(
        &mut self,
        handle: HandleId,
        req: &PutRequest,
        t: &Timing,
        begin: Time,
        proto: Protocol,
    ) {
        self.m.stats.puts += 1;
        self.m.stats.put_bytes += req.bytes as u64;
        self.m.stats.proto.record(proto, req.bytes as u64);
        self.m.pes[self.pe.idx()]
            .stats
            .proto_sent
            .record(proto, req.bytes as u64);
        self.m.prof.put_issued(handle.0, begin);
        if self.m.stack.observing() {
            self.m.stack.on_put_issue(&PutIssueInfo {
                pe: self.pe.idx(),
                at: begin,
                dst: req.dst.0,
                handle,
                bytes: req.bytes as u64,
                proto: ProtoClass::from(proto),
                wire_delay: t.delay,
            });
        }
    }
}
