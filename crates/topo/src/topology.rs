//! Interconnect topologies at node granularity.

use crate::machine::NodeId;

/// A node-level interconnect shape: how many nodes exist and how many hops
/// (switch/router traversals) separate any two of them.
pub trait Topology: Send + Sync {
    /// Number of nodes in the machine.
    fn nodes(&self) -> usize;

    /// Router/switch hops between two nodes. `hops(a, a) == 0`.
    fn hops(&self, a: NodeId, b: NodeId) -> u32;

    /// Largest hop count between any node pair (network diameter).
    fn diameter(&self) -> u32;

    /// A short human-readable description for experiment logs.
    fn describe(&self) -> String;
}

/// Idealised single-switch network: every distinct pair is one hop apart.
#[derive(Clone, Debug)]
pub struct Crossbar {
    nodes: usize,
}

impl Crossbar {
    /// A crossbar over `nodes` nodes.
    pub fn new(nodes: usize) -> Crossbar {
        assert!(nodes > 0, "topology needs at least one node");
        Crossbar { nodes }
    }
}

impl Topology for Crossbar {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        u32::from(a != b)
    }

    fn diameter(&self) -> u32 {
        u32::from(self.nodes > 1)
    }

    fn describe(&self) -> String {
        format!("crossbar({} nodes)", self.nodes)
    }
}

/// Two-level fat-tree, the shape of Abe's Infiniband fabric: nodes hang off
/// leaf switches of a given radix; leaf switches connect through a core
/// stage. Same leaf → 1 hop, different leaf → 3 hops (leaf, core, leaf).
#[derive(Clone, Debug)]
pub struct FatTree {
    nodes: usize,
    leaf_radix: usize,
}

impl FatTree {
    /// A fat-tree over `nodes` nodes with `leaf_radix` nodes per leaf switch.
    pub fn new(nodes: usize, leaf_radix: usize) -> FatTree {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(leaf_radix > 0, "leaf radix must be positive");
        FatTree { nodes, leaf_radix }
    }

    fn leaf_of(&self, n: NodeId) -> usize {
        n.0 as usize / self.leaf_radix
    }
}

impl Topology for FatTree {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            0
        } else if self.leaf_of(a) == self.leaf_of(b) {
            1
        } else {
            3
        }
    }

    fn diameter(&self) -> u32 {
        if self.nodes <= 1 {
            0
        } else if self.nodes <= self.leaf_radix {
            1
        } else {
            3
        }
    }

    fn describe(&self) -> String {
        format!("fat-tree({} nodes, radix {})", self.nodes, self.leaf_radix)
    }
}

/// 3-D torus with deterministic dimension-ordered (XYZ) routing — the Blue
/// Gene/P interconnect. Hop count is the wrap-around Manhattan distance.
#[derive(Clone, Debug)]
pub struct Torus3D {
    dims: [usize; 3],
}

impl Torus3D {
    /// A torus with the given X×Y×Z extents.
    pub fn new(dims: [usize; 3]) -> Torus3D {
        assert!(dims.iter().all(|&d| d > 0), "torus dims must be positive");
        Torus3D { dims }
    }

    /// Pick a near-cubic torus that holds at least `nodes` nodes — mirrors
    /// how Blue Gene partitions are allocated for a job of a given size.
    pub fn fitting(nodes: usize) -> Torus3D {
        assert!(nodes > 0);
        let mut x = (nodes as f64).cbrt().floor().max(1.0) as usize;
        while x > 1 && !nodes.is_multiple_of(x) {
            x -= 1;
        }
        let rest = nodes / x;
        let mut y = (rest as f64).sqrt().floor().max(1.0) as usize;
        while y > 1 && !rest.is_multiple_of(y) {
            y -= 1;
        }
        let z = rest / y;
        Torus3D::new([x, y, z])
    }

    /// Torus extents.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Node id → (x, y, z) coordinate.
    pub fn coords(&self, n: NodeId) -> [usize; 3] {
        let [dx, dy, _dz] = self.dims;
        let i = n.0 as usize;
        [i % dx, (i / dx) % dy, i / (dx * dy)]
    }

    /// (x, y, z) coordinate → node id.
    pub fn node_at(&self, c: [usize; 3]) -> NodeId {
        let [dx, dy, dz] = self.dims;
        debug_assert!(c[0] < dx && c[1] < dy && c[2] < dz);
        NodeId((c[0] + c[1] * dx + c[2] * dx * dy) as u32)
    }

    fn axis_dist(extent: usize, a: usize, b: usize) -> u32 {
        let d = a.abs_diff(b);
        d.min(extent - d) as u32
    }
}

impl Topology for Torus3D {
    fn nodes(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coords(a);
        let cb = self.coords(b);
        (0..3)
            .map(|k| Self::axis_dist(self.dims[k], ca[k], cb[k]))
            .sum()
    }

    fn diameter(&self) -> u32 {
        self.dims.iter().map(|&d| (d / 2) as u32).sum()
    }

    fn describe(&self) -> String {
        format!("torus({}x{}x{})", self.dims[0], self.dims[1], self.dims[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_hops() {
        let t = Crossbar::new(4);
        assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 1);
        assert_eq!(t.diameter(), 1);
        assert_eq!(Crossbar::new(1).diameter(), 0);
    }

    #[test]
    fn fat_tree_hops() {
        let t = FatTree::new(32, 8);
        assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.hops(NodeId(0), NodeId(7)), 1); // same leaf
        assert_eq!(t.hops(NodeId(0), NodeId(8)), 3); // across core
        assert_eq!(t.diameter(), 3);
        assert_eq!(FatTree::new(8, 8).diameter(), 1);
    }

    #[test]
    fn torus_coords_roundtrip() {
        let t = Torus3D::new([4, 3, 2]);
        for n in 0..t.nodes() as u32 {
            let c = t.coords(NodeId(n));
            assert_eq!(t.node_at(c), NodeId(n));
        }
    }

    #[test]
    fn torus_wraparound_distance() {
        let t = Torus3D::new([8, 8, 8]);
        let a = t.node_at([0, 0, 0]);
        let b = t.node_at([7, 0, 0]);
        assert_eq!(t.hops(a, b), 1, "wraps around the ring");
        let c = t.node_at([4, 4, 4]);
        assert_eq!(t.hops(a, c), 12);
        assert_eq!(t.diameter(), 12);
    }

    #[test]
    fn torus_hops_symmetric() {
        let t = Torus3D::new([5, 4, 3]);
        for i in 0..t.nodes() as u32 {
            for j in 0..t.nodes() as u32 {
                assert_eq!(t.hops(NodeId(i), NodeId(j)), t.hops(NodeId(j), NodeId(i)));
            }
        }
    }

    #[test]
    fn fitting_covers_requested_nodes() {
        for n in [1, 2, 7, 64, 100, 512, 1024, 4096] {
            let t = Torus3D::fitting(n);
            assert!(t.nodes() >= n, "{n} -> {:?}", t.dims());
            assert_eq!(t.nodes(), n, "factorisation should be exact: {n}");
        }
    }
}
