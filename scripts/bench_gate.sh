#!/usr/bin/env bash
# Paper-figure regression gate over the committed sweep trajectory.
#
# Three checks, split by what can legitimately vary across hosts:
#
#  1. Virtual-time results are bit-for-bit deterministic, so the fresh
#     sweep's "runs" section must be byte-identical to the committed
#     BENCH_sweep.json. Any diff is a behavioural change to the runtime,
#     the fabric models, or the fault plane — intentional changes must
#     regenerate the baseline (command printed on failure).
#
#  2. Wall clock is host-dependent, so the only portable assertion is
#     self-relative: the 4-worker pass must finish within 1.5x of the
#     serial pass measured by the same invocation. On a multi-core host
#     the parallel pass is strictly faster and this is trivially met; the
#     1.5x margin only absorbs 1-core containers, where four workers
#     oversubscribe a single core and pay context-switch overhead.
#
#  3. Throughput floor: the fresh sweep's host events/sec and puts/sec
#     must stay within 1.5x of the rates of the serial pass *from the same
#     invocation*. The committed baseline's host block came from some
#     other host entirely, so it can't be a floor — a fast host would
#     sail past a slow baseline with a real regression, and a slow host
#     would flake on a fast one. Recomputing the floor from the fresh
#     serial wall clock keeps the comparison host-relative, like check 2.
#
#  4. Channel-storm trajectory: a fresh `ckd-sweep channels` run (1k→100k
#     registered channels, fixed active window) must reproduce the
#     committed BENCH_channels.json deterministic section byte-for-byte.
#     The host-side flatness gate — per-sweep cost must not scale with
#     the registered herd — runs *inside* the binary against the fresh
#     host's own numbers, so it stays host-relative like checks 2–3.
#
#  5. Backend-comparison trajectory: a fresh `ckd-sweep backends` run
#     (4 apps x 4 completion backends) must reproduce the committed
#     BENCH_backends.json deterministic section byte-for-byte and
#     validate against the v4 schema (per-run `backend`/`cq_drains`).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_sweep.json
if [ ! -f "$BASELINE" ]; then
    echo "bench_gate: no committed $BASELINE baseline" >&2
    exit 1
fi

cargo build --release --offline -q -p ckd-bench
FRESH=$(mktemp)
trap 'rm -f "$FRESH"' EXIT
./target/release/ckd-sweep sweep64 --workers 4 --out "$FRESH" >/dev/null

# Everything before the "host" object is the deterministic section.
runs_of() { sed -n '/^  "host": {$/q;p' "$1"; }

if ! diff <(runs_of "$BASELINE") <(runs_of "$FRESH") >/dev/null; then
    echo "bench_gate: virtual-time results diverged from $BASELINE:" >&2
    diff <(runs_of "$BASELINE") <(runs_of "$FRESH") | head -20 >&2
    echo "bench_gate: if the change is intentional, regenerate with:" >&2
    echo "  ./target/release/ckd-sweep sweep64 --workers 4" >&2
    exit 1
fi

wall=$(sed -n 's/^    "wall_ms": \(.*\),$/\1/p' "$FRESH")
serial=$(sed -n 's/^    "serial_wall_ms": \(.*\),$/\1/p' "$FRESH")
if [ -z "$wall" ] || [ -z "$serial" ]; then
    echo "bench_gate: could not read wall clocks from the fresh sweep" >&2
    exit 1
fi
if ! awk -v w="$wall" -v s="$serial" 'BEGIN { exit !(w <= 1.5 * s) }'; then
    echo "bench_gate: 4-worker wall ${wall} ms exceeds 1.5x serial ${serial} ms" >&2
    exit 1
fi

# Throughput floor vs the serial pass of this same invocation (check 3).
# The recorded rates divide by the parallel wall; the serial-pass rate of
# the identical grid on the identical host is rate * wall / serial_wall.
rate_of() { sed -n "s/^    \"$2\": \(.*\),\$/\1/p" "$1"; }
for metric in events_per_sec puts_per_sec; do
    fresh=$(rate_of "$FRESH" "$metric")
    if [ -z "$fresh" ]; then
        echo "bench_gate: could not read $metric from the fresh sweep" >&2
        exit 1
    fi
    floor=$(awk -v f="$fresh" -v w="$wall" -v s="$serial" \
        'BEGIN { printf "%.0f", f * w / s / 1.5 }')
    if ! awk -v f="$fresh" -v b="$floor" 'BEGIN { exit !(f >= b) }'; then
        echo "bench_gate: fresh $metric $fresh below serial-derived floor $floor" >&2
        exit 1
    fi
    echo "bench_gate: $metric $fresh vs serial-derived floor $floor"
done
echo "bench_gate: runs identical to baseline; wall ${wall} ms vs serial ${serial} ms (within 1.5x)"

# Check 4: the channel-storm trajectory (deterministic section + in-binary
# host flatness gate).
CH_BASELINE=BENCH_channels.json
if [ ! -f "$CH_BASELINE" ]; then
    echo "bench_gate: no committed $CH_BASELINE baseline" >&2
    exit 1
fi
CH_FRESH=$(mktemp)
trap 'rm -f "$FRESH" "$CH_FRESH"' EXIT
./target/release/ckd-sweep channels --out "$CH_FRESH" >/dev/null
if ! diff <(runs_of "$CH_BASELINE") <(runs_of "$CH_FRESH") >/dev/null; then
    echo "bench_gate: channel-storm results diverged from $CH_BASELINE:" >&2
    diff <(runs_of "$CH_BASELINE") <(runs_of "$CH_FRESH") | head -20 >&2
    echo "bench_gate: if the change is intentional, regenerate with:" >&2
    echo "  ./target/release/ckd-sweep channels" >&2
    exit 1
fi
./target/release/ckd-sweep validate "$CH_FRESH" >/dev/null 2>&1
echo "bench_gate: channel storm identical to baseline; per-sweep host cost flat across the herd"

# Check 5: the backend-comparison trajectory (deterministic section +
# v4 schema, which carries the per-run backend/cq_drains fields).
BK_BASELINE=BENCH_backends.json
if [ ! -f "$BK_BASELINE" ]; then
    echo "bench_gate: no committed $BK_BASELINE baseline" >&2
    exit 1
fi
BK_FRESH=$(mktemp)
trap 'rm -f "$FRESH" "$CH_FRESH" "$BK_FRESH"' EXIT
./target/release/ckd-sweep backends --workers 2 --out "$BK_FRESH" >/dev/null
if ! diff <(runs_of "$BK_BASELINE") <(runs_of "$BK_FRESH") >/dev/null; then
    echo "bench_gate: backend-grid results diverged from $BK_BASELINE:" >&2
    diff <(runs_of "$BK_BASELINE") <(runs_of "$BK_FRESH") | head -20 >&2
    echo "bench_gate: if the change is intentional, regenerate with:" >&2
    echo "  ./target/release/ckd-sweep backends --workers 2" >&2
    exit 1
fi
./target/release/ckd-sweep validate "$BK_FRESH" >/dev/null 2>&1
if ! grep -q '"schema": "ckd-sweep/v4"' "$BK_FRESH"; then
    echo "bench_gate: fresh backend grid is not schema v4" >&2
    exit 1
fi
if ! grep -q '"backend": "notified-put"' "$BK_FRESH"; then
    echo "bench_gate: backend grid lost its notified-put points" >&2
    exit 1
fi
echo "bench_gate: backend grid identical to baseline; v4 schema with all four backends"
