//! Wall-clock benches of the real (non-simulated) components:
//!
//! * the real-thread `DirectChannel` data path (put + poll + arm) against a
//!   conventional queue+dispatch message path — the host-machine analogue
//!   of Table 1's CkDirect-vs-messages comparison;
//! * the discrete-event queue;
//! * the full simulated scheduler (virtual-events per wall second).
//!
//! A small self-contained timing harness (median of repeated batches)
//! replaces an external benchmark framework so the workspace builds with no
//! network access.

use std::time::Instant;

use ckd_apps::pingpong::charm_pingpong;
use ckd_apps::{Platform, Variant};
use ckd_sim::{EventQueue, Time};
use ckdirect::direct;

/// Median ns/op over `reps` batches of `iters` calls each.
fn time_ns<F: FnMut()>(reps: usize, iters: u64, mut f: F) -> f64 {
    // warmup
    for _ in 0..iters / 4 + 1 {
        f();
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// One-slot direct channel: put → poll → arm, single-threaded (isolates
/// the per-operation software cost, independent of core count).
fn bench_direct_channel() {
    println!("-- direct_channel (ns/op, median of 7) --");
    println!(
        "{:<10} {:>20} {:>20}",
        "size", "put_poll_arm", "queue_dispatch"
    );
    for size in [64usize, 1024, 16 * 1024] {
        let (mut tx, mut rx) = direct::channel(size, u64::MAX);
        let payload = vec![0x5Au8; size];
        let direct_ns = time_ns(7, 20_000, || {
            tx.put(&payload).expect("armed");
            assert!(rx.poll());
            rx.with_data(|v| std::hint::black_box(v.word(0)));
            rx.arm();
        });
        // the "message path": allocate, enqueue, dequeue, dispatch, copy out
        let (qtx, qrx) = std::sync::mpsc::channel::<Vec<u8>>();
        let queue_ns = time_ns(7, 20_000, || {
            qtx.send(payload.clone()).unwrap(); // alloc + copy (envelope path)
            let msg = qrx.recv().unwrap(); // scheduler dequeue
            std::hint::black_box(msg[0]);
        });
        println!("{size:<10} {direct_ns:>20.1} {queue_ns:>20.1}");
    }
    println!();
}

fn bench_event_queue() {
    let ns = time_ns(7, 200, || {
        let mut q = EventQueue::with_capacity(1024);
        for i in 0..1024u64 {
            // pseudo-shuffled timestamps
            q.push(Time::from_ns((i * 7919) % 104729), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        std::hint::black_box(acc);
    });
    println!("-- event_queue --");
    println!(
        "push_pop_1k: {:.1} us/batch ({:.1} ns/event)",
        ns / 1e3,
        ns / 1024.0
    );
    println!();
}

fn bench_simulator() {
    println!("-- simulator (wall ms per 100x1KB pingpong) --");
    for (label, variant) in [("msg", Variant::Msg), ("ckd", Variant::Ckd)] {
        let ns = time_ns(5, 3, || {
            std::hint::black_box(charm_pingpong(
                Platform::IbAbe { cores_per_node: 2 },
                variant,
                1024,
                100,
            ));
        });
        println!("charm_pingpong_{label}_100x1KB: {:.2} ms", ns / 1e6);
    }
    println!();
}

fn main() {
    bench_direct_channel();
    bench_event_queue();
    bench_simulator();
}
