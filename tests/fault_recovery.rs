//! Chaos suite: deterministic fault injection against every application.
//!
//! Each test runs an app twice — once fault-free, once under a seeded
//! [`FaultPlan`] that drops, corrupts, duplicates and delays packets — and
//! demands the faulty run *converge to byte-identical application results*.
//! The reliability layer (acks, exponential backoff, retransmits, per-put
//! CRC, sequence-number replay filtering) is what makes that possible; the
//! happens-before sanitizer runs throughout to prove retransmission never
//! manufactures a lifecycle race.
//!
//! Everything is seed-deterministic: a failure reproduces from the printed
//! seed alone.

use ckd_apps::jacobi3d::{run_jacobi_grid_on, JacobiCfg};
use ckd_apps::matmul3d::{run_matmul_verify_on, MatmulCfg};
use ckd_apps::openatom::{run_openatom_on, OpenAtomCfg};
use ckd_apps::pingpong::charm_pingpong_on;
use ckd_apps::{Platform, Variant};
use ckd_charm::{FaultPlan, Machine, MachineBuilder};
use ckd_race::SanitizerConfig;
use ckd_sim::Time;

const ABE4: Platform = Platform::IbAbe { cores_per_node: 4 };

/// Fixed seed matrix — `scripts/check.sh` runs the whole file, so every
/// seed here is exercised on every commit.
const SEEDS: [u64; 4] = [0xC0FFEE, 1, 42, 0xDEAD_BEEF];

/// The ISSUE's headline drop rates: moderate and brutal.
const DROP_RATES: [f64; 2] = [0.10, 0.20];

fn sanitized(pes: usize) -> MachineBuilder {
    ABE4.builder(pes).with_sanitizer(SanitizerConfig::default())
}

/// A mixed-fault plan: drops plus every non-loss fault class.
fn mixed_plan(seed: u64, drop: f64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_drop(drop)
        .with_corrupt(0.05)
        .with_duplicate(0.05)
        .with_delay(0.05, Time::from_us(30))
}

fn assert_recovered(m: &Machine, label: &str) {
    assert!(
        m.sanitizer().is_clean(),
        "{label}: retransmission manufactured a race: {:?}",
        m.sanitizer().diagnostics()
    );
    let counts = m.fault_counts().expect("faults enabled");
    assert!(counts.total() > 0, "{label}: the plan never injected");
    let rel = m.rel_stats();
    assert!(
        rel.retries > 0,
        "{label}: drops were injected but nothing retransmitted: {counts:?}"
    );
    // every dropped or corrupted data packet must have been retransmitted
    assert!(
        rel.retries >= rel.drops_injected + rel.corrupts_injected,
        "{label}: {rel:?}"
    );
}

// ------------------------------------------------------------------ jacobi

#[test]
fn jacobi_converges_byte_identical_under_drops() {
    let cfg = JacobiCfg {
        domain: [16, 8, 8],
        chares: [2, 2, 2],
        iters: 8,
        variant: Variant::Ckd,
        real_compute: true,
    };
    let (clean_res, clean_grid) = run_jacobi_grid_on(&mut ABE4.machine(8), cfg);
    for seed in SEEDS {
        for drop in DROP_RATES {
            let label = format!("jacobi seed={seed:#x} drop={drop}");
            let mut m = sanitized(8)
                .with_faults(FaultPlan::new(seed).with_drop(drop))
                .build();
            let (res, grid) = run_jacobi_grid_on(&mut m, cfg);
            // bit-for-bit: same residual, same every grid element
            assert_eq!(
                res.residual.to_bits(),
                clean_res.residual.to_bits(),
                "{label}"
            );
            assert_eq!(grid.len(), clean_grid.len(), "{label}");
            for (i, (a, b)) in grid.iter().zip(&clean_grid).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{label}: grid[{i}]");
            }
            assert_eq!(res.iters, clean_res.iters, "{label}");
            assert_recovered(&m, &label);
            assert!(
                res.lossy_puts > 0,
                "{label}: retries happened but no put reported Retried/Degraded"
            );
        }
    }
}

/// The fault matrix again, but sharded: recovery must also hold when the
/// event heap is split over 4 PDES worker threads (`with_shards`). Every
/// sharded faulty run is checked three ways — bit-identical grid against
/// the clean *serial* reference, identical reliability stats against the
/// *serial faulty* run with the same seed (the retransmission schedule
/// itself must not notice the sharding), and sanitizer-clean.
#[test]
fn sharded_jacobi_converges_byte_identical_under_drops() {
    let cfg = JacobiCfg {
        domain: [16, 8, 8],
        chares: [2, 2, 2],
        iters: 8,
        variant: Variant::Ckd,
        real_compute: true,
    };
    let (clean_res, clean_grid) = run_jacobi_grid_on(&mut ABE4.machine(8), cfg);
    for seed in SEEDS {
        let label = format!("sharded jacobi seed={seed:#x}");
        let mut serial = sanitized(8)
            .with_faults(FaultPlan::new(seed).with_drop(0.20))
            .build();
        let (serial_res, serial_grid) = run_jacobi_grid_on(&mut serial, cfg);
        let mut m = sanitized(8)
            .with_faults(FaultPlan::new(seed).with_drop(0.20))
            .with_shards(4)
            .build();
        let (res, grid) = run_jacobi_grid_on(&mut m, cfg);
        // vs the clean serial reference: recovery is complete
        assert_eq!(
            res.residual.to_bits(),
            clean_res.residual.to_bits(),
            "{label}"
        );
        for (i, (a, b)) in grid.iter().zip(&clean_grid).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{label}: grid[{i}]");
        }
        assert_eq!(res.iters, clean_res.iters, "{label}");
        // vs the serial faulty run: sharding is invisible to the fault plane
        assert_eq!(grid, serial_grid, "{label}: grids diverged from serial");
        assert_eq!(res.total, serial_res.total, "{label}: completion time");
        assert_eq!(
            m.rel_stats(),
            serial.rel_stats(),
            "{label}: retransmission schedule diverged from serial"
        );
        assert_eq!(
            m.fault_counts().unwrap(),
            serial.fault_counts().unwrap(),
            "{label}: injections diverged from serial"
        );
        assert_recovered(&m, &label);
        let pdes = m.pdes_stats().expect("sharded run has engine stats");
        assert!(pdes.rounds > 0, "{label}: engine never started a round");
        assert_eq!(pdes.window_spills, 0, "{label}: safe window violated");
    }
}

// ---------------------------------------------------------------- pingpong

#[test]
fn pingpong_completes_under_mixed_faults() {
    const BYTES: usize = 4096;
    const ITERS: u32 = 24;
    let clean = charm_pingpong_on(&mut ABE4.machine(8), Variant::Ckd, BYTES, ITERS);
    for seed in SEEDS {
        let label = format!("pingpong seed={seed:#x}");
        let mut m = sanitized(8).with_faults(mixed_plan(seed, 0.10)).build();
        let r = charm_pingpong_on(&mut m, Variant::Ckd, BYTES, ITERS);
        assert_eq!(r.iters, clean.iters, "{label}: lost an exchange");
        assert_recovered(&m, &label);
        // a faulty fabric can only be slower than a clean one
        assert!(r.rtt >= clean.rtt, "{label}");
    }
}

/// Regression: the receiver-side dedup table compacts retired seqnos below
/// each link's high-water mark, so a *long* faulty run retains O(links)
/// state — not one entry per message ever delivered.
#[test]
fn dedup_table_stays_o_links_over_a_long_faulty_pingpong() {
    const BYTES: usize = 1024;
    const ITERS: u32 = 400;
    let mut m = ABE4
        .builder(8)
        .with_faults(mixed_plan(0xC0FFEE, 0.10))
        .build();
    let r = charm_pingpong_on(&mut m, Variant::Ckd, BYTES, ITERS);
    assert_eq!(r.iters, ITERS);
    assert!(m.rel_stats().retries > 0, "plan never bit");
    let (links, retained) = m.rel_dedup_footprint().expect("faults enabled");
    assert!(links <= 8 * 8, "dedup table tracks {links} links");
    // thousands of messages crossed the wire; anything still retained is
    // only an unclosed reordering hole, bounded by in-flight packets
    assert!(
        retained <= 2 * links,
        "dedup table retains {retained} seqs over {links} links — compaction regressed"
    );
}

// ------------------------------------------------------------------ matmul

#[test]
fn matmul_product_byte_identical_under_drops() {
    let cfg = MatmulCfg {
        n: 16,
        grid: 2,
        iters: 2,
        variant: Variant::Ckd,
        real_compute: true,
    };
    let (clean_res, clean_c) = run_matmul_verify_on(&mut ABE4.machine(8), cfg);
    for seed in SEEDS {
        let label = format!("matmul seed={seed:#x}");
        let mut m = sanitized(8).with_faults(mixed_plan(seed, 0.20)).build();
        let (res, c) = run_matmul_verify_on(&mut m, cfg);
        assert_eq!(c, clean_c, "{label}: product diverged");
        assert_eq!(res.iters, clean_res.iters, "{label}");
        assert_recovered(&m, &label);
    }
}

// ---------------------------------------------------------------- openatom

#[test]
fn openatom_completes_under_drops() {
    let cfg = OpenAtomCfg {
        nstates: 8,
        nplanes: 2,
        grain: 2,
        pts: 16,
        steps: 3,
        variant: Variant::Ckd,
        pc_only: false,
        ready_split: false,
    };
    let clean = run_openatom_on(&mut ABE4.machine(8), cfg);
    for seed in SEEDS {
        let label = format!("openatom seed={seed:#x}");
        let mut m = sanitized(8)
            .with_faults(FaultPlan::new(seed).with_drop(0.10))
            .build();
        let r = run_openatom_on(&mut m, cfg);
        assert_eq!(r.steps, clean.steps, "{label}: lost a step");
        // every logical put is still delivered exactly once
        let reg = m.direct_counters();
        assert_eq!(reg.deliveries, reg.puts, "{label}");
        assert_recovered(&m, &label);
    }
}

// ------------------------------------------------------------ notified put

/// The chaos matrix over the notified-RMA backend: Jacobi on the
/// Slingshot preset under the ISSUE's brutal 20 % mixed plan must
/// converge bit-identical to the fault-free run, stay sanitizer-clean,
/// and deliver every notification exactly once. Notifications ride the
/// same wire packets as the payload, so the reliability layer's seqno
/// dedup is what keeps a retransmitted put from enqueueing a second CQ
/// record.
#[test]
fn notified_jacobi_converges_byte_identical_under_chaos() {
    let cfg = JacobiCfg {
        domain: [16, 8, 8],
        chares: [2, 2, 2],
        iters: 8,
        variant: Variant::Ckd,
        real_compute: true,
    };
    let mut clean_m = Platform::Slingshot.machine(8);
    assert_eq!(clean_m.backend().name(), "notified-put");
    let (clean_res, clean_grid) = run_jacobi_grid_on(&mut clean_m, cfg);
    for seed in SEEDS {
        let label = format!("notified jacobi seed={seed:#x}");
        let mut m = Platform::Slingshot
            .builder(8)
            .with_sanitizer(SanitizerConfig::default())
            .with_faults(mixed_plan(seed, 0.20))
            .build();
        let (res, grid) = run_jacobi_grid_on(&mut m, cfg);
        assert_eq!(
            res.residual.to_bits(),
            clean_res.residual.to_bits(),
            "{label}"
        );
        for (i, (a, b)) in grid.iter().zip(&clean_grid).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{label}: grid[{i}]");
        }
        assert_eq!(res.iters, clean_res.iters, "{label}");
        assert_recovered(&m, &label);
        // exactly-once notification delivery under drops and duplicates
        let reg = m.direct_counters();
        assert_eq!(reg.deliveries, reg.puts, "{label}: lost or doubled a put");
        assert_eq!(
            reg.notifications, reg.deliveries,
            "{label}: notifications != deliveries"
        );
        assert_eq!(
            reg.cq_drains, reg.notifications,
            "{label}: a notification was never drained (or drained twice)"
        );
        assert_eq!(reg.poll_checks, 0, "{label}: notified backend polled");
    }
}

/// The nasty half of at-least-once delivery: the fabric *duplicates* a
/// put whose first copy already landed — payload in place, notification
/// already enqueued (and possibly already drained). The replay filter
/// must swallow the duplicate before it reaches the registry, or the CQ
/// would grow a second record for a single logical put and the app would
/// see a phantom completion callback.
#[test]
fn duplicated_packets_never_duplicate_notifications() {
    const BYTES: usize = 2048;
    const ITERS: u32 = 60;
    let mut clean_m = Platform::Slingshot.machine(8);
    let clean = charm_pingpong_on(&mut clean_m, Variant::Ckd, BYTES, ITERS);
    let clean_reg = clean_m.direct_counters();
    for seed in SEEDS {
        let label = format!("notified dup seed={seed:#x}");
        // duplicate-heavy, drop-free: every logical packet arrives, many
        // arrive more than once
        let mut m = Platform::Slingshot
            .builder(8)
            .with_sanitizer(SanitizerConfig::default())
            .with_faults(FaultPlan::new(seed).with_duplicate(0.30))
            .build();
        let r = charm_pingpong_on(&mut m, Variant::Ckd, BYTES, ITERS);
        assert_eq!(r.iters, clean.iters, "{label}: lost an exchange");
        assert!(
            m.fault_counts().unwrap().duplicates > 0,
            "{label}: the plan never duplicated"
        );
        let reg = m.direct_counters();
        assert_eq!(reg.puts, clean_reg.puts, "{label}: put count changed");
        assert_eq!(
            reg.notifications, clean_reg.notifications,
            "{label}: a duplicate packet enqueued a second notification"
        );
        assert_eq!(
            reg.cq_drains, reg.notifications,
            "{label}: drained != enqueued"
        );
        assert_eq!(
            m.callback_total(),
            clean_m.callback_total(),
            "{label}: phantom completion callback"
        );
        assert!(
            m.sanitizer().is_clean(),
            "{label}: {:?}",
            m.sanitizer().diagnostics()
        );
    }
}

// ------------------------------------------------------------ determinism

/// The fault plane is part of the deterministic machine: the same seed
/// must reproduce the identical run — same injections, same recoveries,
/// same stats — every time.
#[test]
fn same_seed_reproduces_the_identical_faulty_run() {
    let cfg = JacobiCfg {
        domain: [16, 8, 8],
        chares: [2, 2, 2],
        iters: 6,
        variant: Variant::Ckd,
        real_compute: true,
    };
    let run = |seed: u64| {
        let mut m = ABE4.builder(8).with_faults(mixed_plan(seed, 0.15)).build();
        let (res, grid) = run_jacobi_grid_on(&mut m, cfg);
        (
            res.total,
            grid,
            m.fault_counts().unwrap(),
            m.rel_stats(),
            m.stats().clone(),
        )
    };
    let (t1, g1, c1, r1, s1) = run(7);
    let (t2, g2, c2, r2, s2) = run(7);
    assert_eq!(t1, t2, "virtual completion time must reproduce");
    assert_eq!(g1, g2, "grids must reproduce bit-for-bit");
    assert_eq!(c1, c2, "injected-fault counts must reproduce");
    assert_eq!(r1, r2, "reliability stats must reproduce");
    assert_eq!(s1, s2, "machine stats must reproduce");
    // ...and a different seed is genuinely a different schedule
    let (_, _, c3, _, _) = run(8);
    assert_ne!(c1, c3, "different seeds should inject differently");
}

// ------------------------------------------------------- stats reconciliation

/// App-visible aggregates count each logical transfer once however many
/// times the fabric forced it back onto the wire; the wire-level truth
/// lives in `rel_stats` alone.
#[test]
fn retransmits_never_inflate_app_visible_aggregates() {
    let cfg = JacobiCfg {
        domain: [16, 8, 8],
        chares: [2, 2, 2],
        iters: 6,
        variant: Variant::Ckd,
        real_compute: true,
    };
    let mut clean_m = ABE4.machine(8);
    run_jacobi_grid_on(&mut clean_m, cfg);
    let mut m = ABE4
        .builder(8)
        .with_faults(FaultPlan::new(3).with_drop(0.15))
        .build();
    run_jacobi_grid_on(&mut m, cfg);
    let (cs, fs) = (clean_m.stats(), m.stats());
    assert!(m.rel_stats().retries > 0, "plan never bit");
    assert_eq!(fs.puts, cs.puts, "a retransmitted put still counts once");
    assert_eq!(fs.msgs_sent, cs.msgs_sent, "a retransmitted message too");
    assert_eq!(fs.msg_bytes, cs.msg_bytes);
    assert_eq!(fs.put_bytes, cs.put_bytes);
    let (creg, freg) = (clean_m.direct_counters(), m.direct_counters());
    assert_eq!(freg.puts, creg.puts);
    assert_eq!(freg.deliveries, creg.deliveries);
}

// ---------------------------------------------------------------- stalls

/// A NIC-stall window delays traffic but loses nothing: the app still
/// converges to the clean answer.
#[test]
fn nic_stall_window_only_delays() {
    let cfg = JacobiCfg {
        domain: [16, 8, 8],
        chares: [2, 2, 2],
        iters: 6,
        variant: Variant::Ckd,
        real_compute: true,
    };
    let (clean_res, clean_grid) = run_jacobi_grid_on(&mut ABE4.machine(8), cfg);
    let mut m = sanitized(8)
        .with_faults(FaultPlan::new(11).with_stall(None, Time::from_us(50), Time::from_us(400)))
        .build();
    let (res, grid) = run_jacobi_grid_on(&mut m, cfg);
    assert_eq!(grid, clean_grid, "stall must not lose data");
    assert_eq!(res.residual.to_bits(), clean_res.residual.to_bits());
    assert!(m.fault_counts().unwrap().stalls > 0, "window never matched");
    assert!(
        m.sanitizer().is_clean(),
        "{:?}",
        m.sanitizer().diagnostics()
    );
    assert!(
        res.total >= clean_res.total,
        "a stall can only slow the run"
    );
}
