//! Randomized (but fully deterministic) tests of the core invariants,
//! spanning crates.
//!
//! Each test drives many seeded cases through `ckd_sim::DetRng` instead of
//! an external property-testing framework, so the suite builds offline and
//! every failure is reproducible from the printed case index.

use ckd_sim::{DetRng, Time};
use ckd_topo::{Dims, Machine as Topo, Mapper, NodeId, Pe, Topology, Torus3D};
use ckdirect::{direct, DirectConfig, DirectError, DirectRegistry, Region};

const CASES: usize = 64;

// ------------------------------------------------------------------- time

#[test]
fn time_addition_is_associative_and_monotone() {
    let mut rng = DetRng::new(0xA11CE).stream("time-add");
    for _ in 0..CASES * 4 {
        let (a, b, c) = (
            rng.range(0, 1 << 40),
            rng.range(0, 1 << 40),
            rng.range(0, 1 << 40),
        );
        let (ta, tb, tc) = (Time::from_ps(a), Time::from_ps(b), Time::from_ps(c));
        assert_eq!((ta + tb) + tc, ta + (tb + tc));
        assert!(ta + tb >= ta);
        assert_eq!(ta.saturating_sub(tb), Time::from_ps(a.saturating_sub(b)));
    }
}

#[test]
fn time_us_roundtrip() {
    let mut rng = DetRng::new(0xA11CE).stream("time-roundtrip");
    for _ in 0..CASES * 4 {
        let us = rng.range_f64(0.0, 1e9);
        let t = Time::from_us_f64(us);
        // picosecond quantization: within half a picosecond relative
        assert!((t.as_us_f64() - us).abs() <= us * 1e-9 + 1e-6);
    }
}

// -------------------------------------------------------------- event queue

#[test]
fn event_queue_is_a_stable_time_sort() {
    let mut rng = DetRng::new(0xE1E2).stream("event-queue");
    for case in 0..CASES {
        let n = rng.range(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.range(0, 1000)).collect();
        let mut q = ckd_sim::EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_ns(t), i);
        }
        let mut out = Vec::new();
        while let Some((t, i)) = q.pop() {
            out.push((t, i));
        }
        // sorted by time…
        assert!(
            out.windows(2).all(|w| w[0].0 <= w[1].0),
            "case {case}: not time-sorted"
        );
        // …stable for equal timestamps…
        assert!(
            out.windows(2).all(|w| w[0].0 != w[1].0 || w[0].1 < w[1].1),
            "case {case}: unstable for equal timestamps"
        );
        // …and a permutation of the input
        let mut seen: Vec<usize> = out.iter().map(|&(_, i)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
    }
}

/// Reference implementation: the naive `BinaryHeap<Reverse<(Time, seq)>>`
/// the optimized queue replaced. The slab/packed-key queue must pop in
/// *exactly* this `(time, seqno)` order for arbitrary interleaved
/// push/pop streams — including bursts of identical timestamps, where
/// only the seqno tiebreak separates events.
#[test]
fn event_queue_matches_the_reference_binary_heap() {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut rng = DetRng::new(0xBEEF_CAFE).stream("event-queue-reference");
    for case in 0..CASES {
        let mut q = ckd_sim::EventQueue::new();
        let mut reference: BinaryHeap<Reverse<(Time, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64; // horizon in ns, to keep pushes causal
        let mut next_id = 0u32;
        let ops = rng.range(10, 300);
        for _ in 0..ops {
            if rng.chance(0.6) || reference.is_empty() {
                // same-timestamp bursts: several events at one instant
                let burst = if rng.chance(0.3) { rng.range(2, 20) } else { 1 };
                let at = Time::from_ns(now + rng.range(0, 50));
                for _ in 0..burst {
                    q.push(at, next_id);
                    reference.push(Reverse((at, seq, next_id)));
                    seq += 1;
                    next_id += 1;
                }
            } else {
                let got = q.pop();
                let want = reference.pop().map(|Reverse((t, _, id))| (t, id));
                assert_eq!(got, want, "case {case}: pop order diverged");
                if let Some((t, _)) = got {
                    now = t.as_ps() / 1000; // ns
                }
            }
        }
        // drain both completely
        loop {
            let got = q.pop();
            let want = reference.pop().map(|Reverse((t, _, id))| (t, id));
            assert_eq!(got, want, "case {case}: drain order diverged");
            if got.is_none() {
                break;
            }
        }
    }
}

/// `pop_before` is the scheduler's fast path: it must behave exactly like
/// `peek_time` + `pop` under a limit, against the same reference heap.
#[test]
fn event_queue_pop_before_matches_peek_then_pop() {
    let mut rng = DetRng::new(0x11F0).stream("event-queue-pop-before");
    for case in 0..CASES {
        let mut fast = ckd_sim::EventQueue::new();
        let mut slow = ckd_sim::EventQueue::new();
        let n = rng.range(1, 100);
        for i in 0..n {
            let at = Time::from_ns(rng.range(0, 200));
            fast.push(at, i);
            slow.push(at, i);
        }
        let mut limit = 0u64;
        while !slow.is_empty() {
            limit += rng.range(0, 60);
            let lim = Time::from_ns(limit);
            loop {
                let want = match slow.peek_time() {
                    Some(t) if t <= lim => slow.pop(),
                    _ => None,
                };
                let got = fast.pop_before(lim);
                assert_eq!(got, want, "case {case}: pop_before(limit) diverged");
                if got.is_none() {
                    break;
                }
            }
            assert_eq!(fast.len(), slow.len());
            assert_eq!(fast.horizon(), slow.horizon(), "case {case}");
        }
        assert!(fast.pop_before(Time::MAX).is_none());
    }
}

// ------------------------------------------------------------------- topo

#[test]
fn torus_hops_form_a_metric() {
    let mut rng = DetRng::new(0x7020).stream("torus-metric");
    for _ in 0..CASES * 2 {
        let dims = [
            rng.range(1, 8) as usize,
            rng.range(1, 8) as usize,
            rng.range(1, 8) as usize,
        ];
        let t = Torus3D::new(dims);
        let n = t.nodes() as u64;
        let x = NodeId(rng.range(0, n) as u32);
        let y = NodeId(rng.range(0, n) as u32);
        let z = NodeId(rng.range(0, n) as u32);
        assert_eq!(t.hops(x, x), 0);
        assert_eq!(t.hops(x, y), t.hops(y, x));
        assert!(
            t.hops(x, z) <= t.hops(x, y) + t.hops(y, z),
            "triangle inequality"
        );
        assert!(t.hops(x, y) <= t.diameter());
    }
}

#[test]
fn block_mapper_is_monotone_and_balanced() {
    let mut rng = DetRng::new(0x7021).stream("block-mapper");
    for _ in 0..CASES {
        let total = rng.range(1, 500) as usize;
        let npes = rng.range(1, 64) as usize;
        let mut counts = vec![0usize; npes];
        let mut last = 0;
        for lin in 0..total {
            let pe = Mapper::Block.pe_for(lin, total, npes).idx();
            assert!(pe < npes);
            assert!(pe >= last);
            last = pe;
            counts[pe] += 1;
        }
        let mx = counts.iter().max().unwrap();
        let mn = counts.iter().filter(|&&c| c > 0).min().unwrap();
        assert!(mx - mn <= 1);
    }
}

#[test]
fn dims_linearize_bijective() {
    let mut rng = DetRng::new(0x7022).stream("dims-bijective");
    for _ in 0..CASES {
        let dims = Dims::d4(
            rng.range(1, 6) as usize,
            rng.range(1, 6) as usize,
            rng.range(1, 6) as usize,
            rng.range(1, 4) as usize,
        );
        for lin in 0..dims.len() {
            assert_eq!(dims.linear(dims.unlinear(lin)), lin);
        }
    }
}

// -------------------------------------------------------------- net model

#[test]
fn transfer_delays_are_monotone_in_size() {
    use ckd_net::{presets, Protocol};
    let net = presets::ib_abe(Topo::ib_cluster(4, 1));
    let mut rng = DetRng::new(0x4E7).stream("delay-monotone");
    for _ in 0..CASES / 4 {
        let n = rng.range(2, 20) as usize;
        let mut sorted: Vec<usize> = (0..n).map(|_| rng.range(0, 1 << 20) as usize).collect();
        sorted.sort_unstable();
        for proto in [
            Protocol::Eager,
            Protocol::RdmaPut,
            Protocol::Rendezvous { reg_cached: false },
        ] {
            let mut last = Time::ZERO;
            for &b in &sorted {
                let t = net.timing(Pe(0), Pe(2), b, proto);
                assert!(t.delay >= last);
                last = t.delay;
            }
        }
    }
}

#[test]
fn put_never_uses_receiver_cpu_on_rdma() {
    use ckd_net::presets;
    let net = presets::ib_abe(Topo::ib_cluster(4, 1));
    let mut rng = DetRng::new(0x4E8).stream("put-rdma");
    for _ in 0..CASES * 4 {
        let bytes = rng.range(0, 1 << 22) as usize;
        let t = net.put(Pe(0), Pe(3), bytes);
        assert_eq!(t.recv_cpu, Time::ZERO);
        assert_eq!(t.overlap_cpu, Time::ZERO);
    }
}

// --------------------------------------------------- registry state machine

/// Operations a fuzzer can throw at one CkDirect channel.
#[derive(Clone, Copy, Debug)]
enum Op {
    Put,
    Land,
    Sweep,
    Ready,
    Mark,
    PollQ,
}

const OPS: [Op; 6] = [Op::Put, Op::Land, Op::Sweep, Op::Ready, Op::Mark, Op::PollQ];

/// Arbitrary operation sequences never panic, never corrupt the channel,
/// and deliveries never outnumber puts.
#[test]
fn registry_state_machine_is_total() {
    let mut rng = DetRng::new(0x5EED).stream("registry-fuzz");
    for case in 0..CASES * 2 {
        let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::ib());
        let send = Region::alloc(32);
        send.set_last_word(0x1234_5678_9ABC_DEF0);
        let h = reg
            .create_handle(Pe(1), Region::alloc(32), u64::MAX, 9)
            .unwrap();
        reg.assoc_local(h, Pe(0), send).unwrap();

        let n_ops = rng.range(0, 60) as usize;
        let mut in_flight = false;
        for _ in 0..n_ops {
            let op = OPS[rng.range(0, OPS.len() as u64) as usize];
            match op {
                Op::Put => {
                    if reg.put(h, Pe(0)).is_ok() {
                        in_flight = true;
                    }
                }
                Op::Land => {
                    if in_flight {
                        reg.land(h).unwrap();
                        in_flight = false;
                    }
                }
                Op::Sweep => {
                    let s = reg.poll_sweep(Pe(1));
                    assert!(s.deliveries.len() <= 1);
                }
                Op::Ready => {
                    let _ = reg.ready(h);
                }
                Op::Mark => {
                    let _ = reg.ready_mark(h);
                }
                Op::PollQ => {
                    let _ = reg.ready_poll_q(h);
                }
            }
            let c = reg.counters();
            assert!(
                c.deliveries <= c.puts,
                "case {case}: deliveries {} > puts {}",
                c.deliveries,
                c.puts
            );
            assert!(reg.pollq_len(Pe(1)) <= 1, "handle duplicated in pollq");
        }
    }
}

/// Every delivered payload is exactly the bytes of the matching put — no
/// loss, no reordering, no tearing — for any interleaving of
/// ready/put/land/sweep that respects the channel contract.
#[test]
fn registry_delivers_every_put_intact() {
    let mut rng = DetRng::new(0x5EEE).stream("registry-intact");
    for _ in 0..CASES {
        let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::ib());
        let recv = Region::alloc(16);
        let send = Region::alloc(16);
        let h = reg.create_handle(Pe(1), recv.clone(), u64::MAX, 0).unwrap();
        reg.assoc_local(h, Pe(0), send.clone()).unwrap();
        let n = rng.range(1, 20) as usize;
        for i in 0..n {
            let seed = rng.range(0, u64::MAX - 1); // never the OOB pattern
            send.write_f64s(0, &[i as f64]);
            send.set_last_word(seed);
            reg.put(h, Pe(0)).unwrap();
            reg.land(h).unwrap();
            let sweep = reg.poll_sweep(Pe(1));
            assert_eq!(sweep.deliveries.len(), 1);
            assert_eq!(recv.last_word(), seed);
            assert_eq!(recv.read_f64s(0, 1)[0], i as f64);
            reg.ready(h).unwrap();
        }
    }
}

/// Reference model for the slab registry: the naive storage the slab
/// replaced — a `HashMap` from packed handle to logical channel phase plus
/// a `Vec` modelling the per-PE poll queue in enqueue order. Arbitrary
/// create/destroy/put/land/ready/sweep interleavings must behave
/// identically: same per-op verdicts, same delivery order, same live and
/// destroyed counts, and every stale (destroyed) handle must answer
/// `BadHandle` to every operation forever — generation tags make slot
/// reuse unobservable.
#[test]
fn slab_registry_matches_a_naive_reference_model() {
    use std::collections::HashMap;

    #[derive(Clone, Copy, PartialEq, Debug)]
    enum Phase {
        Empty,
        InFlight,
        Landed,
        Delivered,
    }

    let mut rng = DetRng::new(0x51AB).stream("slab-reference");
    for case in 0..CASES {
        let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::ib());
        let send = Region::alloc(32);
        send.set_last_word(0x1234_5678_9ABC_DEF0);
        let mut model: HashMap<u64, Phase> = HashMap::new();
        let mut pollq: Vec<ckdirect::HandleId> = Vec::new(); // enqueue order
        let mut live: Vec<ckdirect::HandleId> = Vec::new();
        let mut stale: Vec<ckdirect::HandleId> = Vec::new();
        let mut destroyed = 0usize;
        let mut next_cb = 0u32;

        for step in 0..rng.range(20, 120) {
            // ~every 6th op goes to a stale handle, which must always be
            // rejected as BadHandle no matter what now occupies the slot
            if !stale.is_empty() && rng.chance(0.15) {
                let h = stale[rng.range(0, stale.len() as u64) as usize];
                let err = match rng.range(0, 4) {
                    0 => reg.put(h, Pe(0)).map(|_| ()).unwrap_err(),
                    1 => reg.land(h).map(|_| ()).unwrap_err(),
                    2 => reg.ready(h).map(|_| ()).unwrap_err(),
                    _ => reg.destroy_handle(h).unwrap_err(),
                };
                assert_eq!(
                    err,
                    DirectError::BadHandle,
                    "case {case} step {step}: stale handle accepted"
                );
                continue;
            }
            match rng.range(0, 6) {
                0 => {
                    // create + assoc: a fresh armed channel at the back of
                    // the poll queue
                    let h = reg
                        .create_handle(Pe(1), Region::alloc(32), u64::MAX, next_cb)
                        .unwrap();
                    next_cb += 1;
                    reg.assoc_local(h, Pe(0), send.clone()).unwrap();
                    assert!(
                        model.insert(h.0 as u64, Phase::Empty).is_none(),
                        "case {case}: live handle id reused"
                    );
                    pollq.push(h);
                    live.push(h);
                }
                1 if !live.is_empty() => {
                    let h = live[rng.range(0, live.len() as u64) as usize];
                    let want = model[&(h.0 as u64)];
                    let got = reg.put(h, Pe(0)).map(|_| ());
                    match want {
                        Phase::Empty => {
                            got.unwrap();
                            model.insert(h.0 as u64, Phase::InFlight);
                        }
                        Phase::InFlight | Phase::Landed => {
                            assert_eq!(got.unwrap_err(), DirectError::PutInFlight);
                        }
                        Phase::Delivered => {
                            assert_eq!(got.unwrap_err(), DirectError::Overwrite);
                        }
                    }
                }
                2 if !live.is_empty() => {
                    let h = live[rng.range(0, live.len() as u64) as usize];
                    if model[&(h.0 as u64)] == Phase::InFlight {
                        reg.land(h).unwrap();
                        model.insert(h.0 as u64, Phase::Landed);
                    }
                }
                3 => {
                    // sweep: the ring plane must deliver exactly the landed
                    // channels, in enqueue order, and check every armed one
                    let armed = pollq.len();
                    let out = reg.poll_sweep(Pe(1));
                    assert_eq!(out.checked, armed, "case {case} step {step}");
                    let want: Vec<ckdirect::HandleId> = pollq
                        .iter()
                        .copied()
                        .filter(|h| model[&(h.0 as u64)] == Phase::Landed)
                        .collect();
                    let got: Vec<ckdirect::HandleId> =
                        out.deliveries.iter().map(|&(h, _)| h).collect();
                    assert_eq!(got, want, "case {case} step {step}: delivery order");
                    for h in &want {
                        model.insert(h.0 as u64, Phase::Delivered);
                    }
                    pollq.retain(|h| model[&(h.0 as u64)] != Phase::Delivered);
                }
                4 if !live.is_empty() => {
                    let h = live[rng.range(0, live.len() as u64) as usize];
                    let got = reg.ready(h).map(|_| ());
                    if model[&(h.0 as u64)] == Phase::Delivered {
                        got.unwrap();
                        model.insert(h.0 as u64, Phase::Empty);
                        pollq.push(h); // re-armed at the back
                    } else {
                        assert_eq!(got.unwrap_err(), DirectError::NotDelivered);
                    }
                }
                5 if !live.is_empty() => {
                    let at = rng.range(0, live.len() as u64) as usize;
                    let h = live[at];
                    let got = reg.destroy_handle(h);
                    match model[&(h.0 as u64)] {
                        Phase::InFlight | Phase::Landed => {
                            assert_eq!(got.unwrap_err(), DirectError::PutInFlight);
                        }
                        Phase::Empty | Phase::Delivered => {
                            got.unwrap();
                            model.remove(&(h.0 as u64));
                            pollq.retain(|&q| q != h);
                            live.swap_remove(at);
                            stale.push(h);
                            destroyed += 1;
                        }
                    }
                }
                _ => {}
            }
            assert_eq!(reg.live_channels(), live.len(), "case {case} step {step}");
            assert_eq!(reg.destroyed_channels(), destroyed, "case {case}");
            assert_eq!(reg.pollq_len(Pe(1)), pollq.len(), "case {case} step {step}");
        }
    }
}

/// Delivery-order equivalence of the sharded ready rings against the
/// naive `Vec`-scan poll queue they replaced: for arbitrary landing
/// subsets, re-arms and interleaved sweeps, the rings deliver exactly
/// what a linear scan of the insertion-ordered `Vec` would — the
/// byte-identity argument for the whole poll-plane swap, in isolation.
#[test]
fn ring_sweep_order_matches_the_vec_pollq_reference() {
    let mut rng = DetRng::new(0x9106).stream("ring-vs-vec");
    for case in 0..CASES {
        let n = rng.range(2, 150) as usize;
        let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::ib());
        let send = Region::alloc(16);
        send.set_last_word(0x0DDC_0FFE_E0DD_F00D);
        let mut vec_pollq: Vec<ckdirect::HandleId> = (0..n)
            .map(|cb| {
                let h = reg
                    .create_handle(Pe(1), Region::alloc(16), u64::MAX, cb as u32)
                    .unwrap();
                reg.assoc_local(h, Pe(0), send.clone()).unwrap();
                h
            })
            .collect();
        let mut idle: Vec<ckdirect::HandleId> = Vec::new(); // delivered, un-rearmed
        for round in 0..rng.range(2, 12) {
            // a random subset of armed channels receives a put+landing
            let mut landed = Vec::new();
            for &h in &vec_pollq {
                if rng.chance(0.3) {
                    reg.put(h, Pe(0)).unwrap();
                    reg.land(h).unwrap();
                    landed.push(h);
                }
            }
            let out = reg.poll_sweep(Pe(1));
            assert_eq!(out.checked, vec_pollq.len(), "case {case} round {round}");
            // the reference scan: walk the Vec in insertion order, deliver
            // landed channels, compact the rest in place
            let got: Vec<ckdirect::HandleId> = out.deliveries.iter().map(|&(h, _)| h).collect();
            assert_eq!(got, landed, "case {case} round {round}: order diverged");
            vec_pollq.retain(|h| !landed.contains(h));
            idle.extend(landed);
            // re-arm a random subset of delivered channels (back of queue)
            let mut still_idle = Vec::new();
            for h in idle.drain(..) {
                if rng.chance(0.6) {
                    reg.ready(h).unwrap();
                    vec_pollq.push(h);
                } else {
                    still_idle.push(h);
                }
            }
            idle = still_idle;
            assert_eq!(reg.pollq_len(Pe(1)), vec_pollq.len(), "case {case}");
        }
    }
}

// -------------------------------------------------- real-thread channel

/// Any payload that does not end with the pattern survives a put/recv
/// roundtrip bit for bit.
#[test]
fn direct_channel_roundtrips_any_payload() {
    let mut rng = DetRng::new(0xD1EC7).stream("direct-roundtrip");
    for case in 0..CASES * 2 {
        let len = rng.range(1, 32) as usize;
        let mut payload = vec![0u8; len];
        rng.fill_bytes(&mut payload);
        // every ~8th case: force an OOB collision in the final word
        if case % 8 == 7 {
            while !payload.len().is_multiple_of(8) {
                payload.push(0);
            }
            let n = payload.len();
            payload[n - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        }
        // round up to a whole number of words
        while !payload.len().is_multiple_of(8) {
            payload.push(0);
        }
        let n = payload.len();
        let oob = u64::MAX;
        let last = u64::from_le_bytes(payload[n - 8..].try_into().unwrap());
        let (mut tx, mut rx) = direct::channel(n, oob);
        let res = tx.put(&payload);
        if last == oob {
            assert_eq!(res.unwrap_err(), direct::PutError::OobCollision);
        } else {
            res.unwrap();
            assert_eq!(rx.try_recv().unwrap(), payload);
        }
    }
}

// ------------------------------------------------------------ fault plane

/// Two identically-built plans fed the identical submission sequence make
/// the identical decisions, and the injection counters reconcile: one
/// decision per packet, at most one fault per decision.
#[test]
fn fault_plan_is_deterministic_and_counts_reconcile() {
    use ckd_sim::{FaultOp, FaultPlan};
    let mut rng = DetRng::new(0xFA017).stream("fault-plan-det");
    for case in 0..CASES {
        let seed = rng.range(0, u64::MAX - 1);
        let drop = rng.range_f64(0.0, 0.3);
        let corrupt = rng.range_f64(0.0, 0.2);
        let dup = rng.range_f64(0.0, 0.2);
        let n = rng.range(1, 400);
        let subs: Vec<(u64, (u32, u32), FaultOp)> = (0..n)
            .map(|_| {
                (
                    rng.range(0, 1_000_000),
                    (rng.range(0, 4) as u32, rng.range(0, 4) as u32),
                    match rng.range(0, 3) {
                        0 => FaultOp::Msg,
                        1 => FaultOp::Put,
                        _ => FaultOp::Ack,
                    },
                )
            })
            .collect();
        let mk = || {
            FaultPlan::new(seed)
                .with_drop(drop)
                .with_corrupt(corrupt)
                .with_duplicate(dup)
        };
        let (mut a, mut b) = (mk(), mk());
        for &(t, link, op) in &subs {
            let ra = a.decide(Time::from_ns(t), link, op);
            let rb = b.decide(Time::from_ns(t), link, op);
            assert_eq!(ra, rb, "case {case}: same seed, divergent decision");
        }
        assert_eq!(a.counts(), b.counts(), "case {case}");
        let c = a.counts();
        assert_eq!(c.decisions, n, "case {case}");
        assert!(c.total() <= c.decisions, "case {case}: >1 fault per packet");
    }
}

/// A plan with no probabilities, triggers or stalls is inert: every packet
/// delivers, nothing is ever counted.
#[test]
fn inert_fault_plan_always_delivers() {
    use ckd_sim::{FaultAction, FaultOp, FaultPlan};
    let mut rng = DetRng::new(0xFA018).stream("fault-plan-inert");
    for _ in 0..CASES {
        let mut plan = FaultPlan::new(rng.range(0, u64::MAX - 1));
        assert!(plan.is_inert());
        for _ in 0..rng.range(1, 50) {
            let link = (rng.range(0, 8) as u32, rng.range(0, 8) as u32);
            let at = Time::from_ns(rng.range(0, 1 << 30));
            assert_eq!(plan.decide(at, link, FaultOp::Put), FaultAction::Deliver);
        }
        assert_eq!(plan.counts().total(), 0);
    }
}

// ----------------------------------------------------- checked channel

/// Arbitrary interleavings of damaged landings, retransmits and replays:
/// the checked channel delivers every logical message exactly once, bit
/// for bit, and its counters account for every injected fault.
#[test]
fn checked_channel_delivers_exactly_once_under_arbitrary_faults() {
    use ckdirect::direct::channel_checked;
    use ckdirect::CheckedRecv;
    let mut rng = DetRng::new(0xC4C).stream("checked-chaos");
    for case in 0..CASES {
        let words = rng.range(1, 8) as usize;
        let (mut tx, mut rx) = channel_checked(words * 8, u64::MAX);
        let msgs = rng.range(1, 30);
        let (mut corrupts, mut dups) = (0u64, 0u64);
        for i in 1..=msgs {
            let mut payload = vec![0u8; words * 8];
            rng.fill_bytes(&mut payload);
            if rng.chance(0.4) {
                // the first copy arrives damaged: bit-flip somewhere in the
                // payload, a damaged protocol word, or a torn write
                if rng.chance(0.5) {
                    let dmg = rng.range(0, words as u64 + 1) as usize;
                    tx.put_corrupted(&payload, dmg).unwrap();
                } else {
                    let miss = rng.range(0, words as u64) as usize;
                    tx.put_torn(&payload, miss).unwrap();
                }
                assert_eq!(
                    rx.try_recv(),
                    CheckedRecv::Corrupt,
                    "case {case} msg {i}: damage undetected"
                );
                corrupts += 1;
                tx.retransmit().unwrap();
            } else {
                tx.put(&payload).unwrap();
            }
            assert_eq!(
                rx.try_recv(),
                CheckedRecv::Data(payload.clone()),
                "case {case} msg {i}"
            );
            rx.arm();
            if rng.chance(0.3) {
                // the fabric replays the consumed put; the seq filter eats it
                tx.put_duplicate().unwrap();
                assert_eq!(rx.try_recv(), CheckedRecv::Duplicate, "case {case} msg {i}");
                dups += 1;
            }
        }
        let s = rx.stats();
        assert_eq!(s.delivered, msgs, "case {case}");
        assert_eq!(s.corrupt_detected, corrupts, "case {case}");
        assert_eq!(s.dups_suppressed, dups, "case {case}");
    }
}

// ---------------------------------------------------------- region safety

#[test]
fn region_writes_stay_inside_their_window() {
    let mut rng = DetRng::new(0x8E61).stream("region-window");
    for _ in 0..CASES * 2 {
        let off = rng.range(0, 64) as usize;
        let len = rng.range(8, 64) as usize;
        let buf = ckdirect::region::shared_buf(128);
        let Ok(r) = Region::new(buf.clone(), off, len) else {
            assert!(off + len > 128);
            continue;
        };
        r.fill(0xEE);
        let all = buf.borrow();
        for (i, &b) in all.iter().enumerate() {
            let inside = i >= off && i < off + len;
            assert_eq!(b == 0xEE, inside, "byte {i} leaked");
        }
    }
}

// ------------------------------------------------------------- misuse API

#[test]
fn misuse_is_reported_not_corrupted() {
    let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::ib());
    let h = reg
        .create_handle(Pe(1), Region::alloc(16), u64::MAX, 0)
        .unwrap();
    // not associated yet
    assert_eq!(reg.put(h, Pe(0)).unwrap_err(), DirectError::NotAssociated);
    reg.assoc_local(h, Pe(0), Region::alloc(16)).unwrap();
    // double put
    reg.put(h, Pe(0)).unwrap();
    assert_eq!(reg.put(h, Pe(0)).unwrap_err(), DirectError::PutInFlight);
    reg.land(h).unwrap();
    reg.poll_sweep(Pe(1));
    // overwrite before ready
    assert_eq!(reg.put(h, Pe(0)).unwrap_err(), DirectError::Overwrite);
    reg.ready(h).unwrap();
    reg.put(h, Pe(0)).unwrap();
}

// ------------------------------------------------------------- strided

/// gather ∘ scatter is the identity on the strided window and never touches
/// bytes outside it, for arbitrary valid layouts.
#[test]
fn strided_gather_scatter_roundtrip() {
    use ckdirect::StridedSpec;
    let mut rng = DetRng::new(0x57D1).stream("strided-roundtrip");
    for _ in 0..CASES {
        let offset = rng.range(0, 32) as usize;
        let block_len = rng.range(1, 16) as usize;
        let extra_stride = rng.range(0, 16) as usize;
        let count = rng.range(1, 8) as usize;
        let spec = StridedSpec {
            offset,
            block_len,
            stride: block_len + extra_stride,
            count,
        };
        let backing_len = spec.span() + 8;
        let src = Region::alloc(backing_len);
        src.with_mut(|b| {
            for (i, x) in b.iter_mut().enumerate() {
                *x = (i as u8).wrapping_mul(31).wrapping_add(7);
            }
        });
        assert!(spec.validate(&src).is_ok());

        let wire = Region::alloc(spec.payload_len());
        spec.gather(&src, &wire);
        let dst = Region::alloc(backing_len);
        spec.scatter(&wire, &dst);

        let sv = src.to_vec();
        let dv = dst.to_vec();
        for i in 0..backing_len {
            let in_window = i >= spec.offset
                && i < spec.span()
                && (i - spec.offset) % spec.stride < spec.block_len;
            if in_window {
                assert_eq!(dv[i], sv[i], "window byte {i} lost");
            } else {
                assert_eq!(dv[i], 0, "byte {i} leaked outside the window");
            }
        }
    }
}

/// A strided channel delivers exactly the strided window of the source for
/// arbitrary layouts (full put→land→sweep cycle).
#[test]
fn strided_channel_moves_exactly_the_window() {
    use ckdirect::StridedSpec;
    let mut rng = DetRng::new(0x57D2).stream("strided-channel");
    for _ in 0..CASES {
        let block_words = rng.range(1, 4) as usize;
        let gap_words = rng.range(0, 3) as usize;
        let count = rng.range(2, 6) as usize;
        let block_len = block_words * 8;
        let spec = StridedSpec {
            offset: 0,
            block_len,
            stride: block_len + gap_words * 8,
            count,
        };
        let backing_len = spec.span();
        let src = Region::alloc(backing_len);
        src.with_mut(|b| {
            for (i, x) in b.iter_mut().enumerate() {
                *x = (i % 251) as u8 + 1; // never 0, never 0xFF-runs
            }
        });
        let dst = Region::alloc(backing_len);
        let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::ib());
        let h = reg
            .create_handle_strided(Pe(1), dst.clone(), spec, u64::MAX, 0)
            .unwrap();
        reg.assoc_local_strided(h, Pe(0), src.clone(), spec)
            .unwrap();
        reg.put(h, Pe(0)).unwrap();
        reg.land(h).unwrap();
        assert_eq!(reg.poll_sweep(Pe(1)).deliveries.len(), 1);
        let sv = src.to_vec();
        let dv = dst.to_vec();
        for i in 0..backing_len {
            let in_window = i % spec.stride < block_len;
            if in_window {
                assert_eq!(dv[i], sv[i]);
            } else {
                assert_eq!(dv[i], 0);
            }
        }
    }
}

// ----------------------------------------------------------- reorder policy

/// A policy that picks a pseudo-random candidate at every choice point —
/// the harshest schedule the seam can produce.
struct ChaosPolicy {
    rng: DetRng,
    window: Time,
}

impl ckd_sim::ReorderPolicy for ChaosPolicy {
    fn window(&self) -> Time {
        self.window
    }

    fn choose(&mut self, cands: &[ckd_sim::EventMeta]) -> usize {
        self.rng.range(0, cands.len() as u64) as usize
    }
}

#[test]
fn any_reorder_policy_schedule_is_a_valid_in_window_permutation() {
    let mut rng = DetRng::new(0xC0DE).stream("reorder-permutation");
    for case in 0..CASES {
        let n = rng.range(1, 150) as usize;
        let window = Time::from_ns(rng.range(0, 20));
        let times: Vec<u64> = (0..n).map(|_| rng.range(0, 40)).collect();
        let mut q = ckd_sim::EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push_tagged(Time::from_ns(t), i as u64 + 1, i);
        }
        q.set_policy(Box::new(ChaosPolicy {
            rng: DetRng::new(0xBAD5EED ^ case as u64).stream("chaos"),
            window,
        }));
        let mut remaining: Vec<Time> = times.iter().map(|&t| Time::from_ns(t)).collect();
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            // every pop stays inside the window anchored at the current min
            let min = *remaining.iter().min().expect("queue and model agree");
            assert!(
                t.as_ps() <= min.as_ps() + window.as_ps(),
                "case {case}: popped {}ps with min {}ps window {}ps",
                t.as_ps(),
                min.as_ps(),
                window.as_ps()
            );
            let at = remaining
                .iter()
                .position(|&r| r == t)
                .expect("popped time was pending");
            remaining.swap_remove(at);
            popped.push(i);
        }
        // …and the drain is a permutation of the input
        assert!(remaining.is_empty(), "case {case}");
        popped.sort_unstable();
        assert_eq!(popped, (0..n).collect::<Vec<_>>(), "case {case}");
    }
}

#[test]
fn identity_policy_is_byte_identical_to_the_min_heap_order() {
    let mut rng = DetRng::new(0x1DE7).stream("identity-policy");
    for case in 0..CASES {
        let n = rng.range(1, 150) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.range(0, 40)).collect();
        let mut plain = ckd_sim::EventQueue::new();
        let mut scripted = ckd_sim::EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            plain.push(Time::from_ns(t), i);
            scripted.push_tagged(Time::from_ns(t), i as u64 + 1, i);
        }
        scripted.set_policy(Box::new(ckd_sim::IdentityPolicy {
            window: Time::from_ns(rng.range(0, 20)),
        }));
        loop {
            let (a, b) = (plain.pop(), scripted.pop());
            assert_eq!(a, b, "case {case}: identity policy diverged");
            if a.is_none() {
                break;
            }
        }
    }
}

// ------------------------------------------------------- PDES safe window

/// A random but self-consistent fabric: every latency/overhead field is
/// drawn independently, with `base_latency >= 1ps` (a zero-latency wire
/// admits no conservative lookahead and `Lookahead::new` rejects it).
fn arbitrary_fabric(rng: &mut DetRng) -> ckd_net::FabricParams {
    use ckd_net::{DcmfParams, FabricParams, IbParams, SharedMemParams, WireParams};
    let wire = WireParams {
        base_latency: Time::from_ps(rng.range(1, 1 << 34)),
        per_hop: Time::from_ps(rng.range(0, 1 << 30)),
        ps_per_byte: rng.range(0, 1 << 14),
        per_packet: Time::from_ps(rng.range(0, 1 << 28)),
        packet_bytes: rng.range(64, 1 << 14) as usize,
    };
    let shmem = SharedMemParams {
        latency: Time::from_ps(rng.range(0, 1 << 28)),
        ps_per_byte: rng.range(0, 1 << 12),
    };
    if rng.chance(0.5) {
        FabricParams::IbVerbs(IbParams {
            wire,
            shmem,
            o_send: Time::from_ps(rng.range(0, 1 << 28)),
            o_recv: Time::from_ps(rng.range(0, 1 << 28)),
            eager_copy_ps_per_byte: rng.range(0, 1 << 12),
            rdma_issue: Time::from_ps(rng.range(0, 1 << 28)),
            reg_base: Time::from_ps(rng.range(0, 1 << 28)),
            reg_ps_per_byte: rng.range(0, 1 << 12),
            control_bytes: rng.range(8, 256) as usize,
        })
    } else {
        FabricParams::Dcmf(DcmfParams {
            wire,
            shmem,
            o_send: Time::from_ps(rng.range(0, 1 << 28)),
            o_recv: Time::from_ps(rng.range(0, 1 << 28)),
            short_max: rng.range(0, 1 << 12) as usize,
            short_copy_ps_per_byte: rng.range(0, 1 << 12),
            info_bytes: rng.range(0, 128) as usize,
            control_bytes: rng.range(8, 256) as usize,
        })
    }
}

/// The conservative-lookahead contract: for *any* fabric, the safe window
/// is positive, equals the zero-hop latency infimum, and never exceeds the
/// latency of any actual route — so no cross-shard event can arrive inside
/// a round that its sender's shard has already drained past.
#[test]
fn safe_window_bounds_every_cross_shard_latency() {
    let mut rng = DetRng::new(0x9DE5).stream("safe-window");
    for case in 0..CASES * 2 {
        let fabric = arbitrary_fabric(&mut rng);
        let w = fabric.lookahead().safe_window();
        assert!(w > Time::ZERO, "case {case}: window must be positive");
        assert_eq!(
            w,
            fabric.min_remote_latency(),
            "case {case}: window is the latency infimum"
        );
        for _ in 0..8 {
            let hops = rng.range(0, 64) as u32;
            assert!(
                w <= fabric.wire().latency(hops),
                "case {case}: window exceeds a {hops}-hop route"
            );
        }
    }
}

/// Raising the wire's base latency never shrinks the safe window
/// (monotonicity): a slower fabric always admits at least as much
/// lookahead.
#[test]
fn safe_window_is_monotone_in_base_latency() {
    let mut rng = DetRng::new(0x9DE6).stream("safe-window-monotone");
    for case in 0..CASES {
        let fabric = arbitrary_fabric(&mut rng);
        let w0 = fabric.lookahead().safe_window();
        let bump = Time::from_ps(rng.range(0, 1 << 32));
        let mut slower = fabric;
        match &mut slower {
            ckd_net::FabricParams::IbVerbs(p) => p.wire.base_latency += bump,
            ckd_net::FabricParams::Dcmf(p) => p.wire.base_latency += bump,
            ckd_net::FabricParams::Slingshot(p) => p.rdma.wire.base_latency += bump,
        }
        let w1 = slower.lookahead().safe_window();
        assert!(
            w1 >= w0,
            "case {case}: window shrank when the wire got slower"
        );
        assert_eq!(w1, w0 + bump, "case {case}: window tracks base latency");
    }
}

/// `ShardMap::node_aligned` keeps every PE of a node on one shard (the
/// property the safe-window derivation rests on: only *inter-node* events
/// cross shards), assigns only valid shard ids, and is contiguous — shard
/// ids never decrease along the PE axis.
#[test]
fn node_aligned_shard_maps_never_split_a_node() {
    let mut rng = DetRng::new(0x5A4D).stream("shard-map");
    for case in 0..CASES * 2 {
        let nodes = rng.range(1, 32) as usize;
        let cores = rng.range(1, 8) as usize;
        let shards = rng.range(1, 12) as usize;
        let node_of_pe: Vec<u32> = (0..nodes * cores).map(|p| (p / cores) as u32).collect();
        let map = ckd_sim::ShardMap::node_aligned(&node_of_pe, shards);
        assert_eq!(map.shards(), shards);
        assert_eq!(map.npes(), node_of_pe.len());
        let mut last = 0u32;
        for pe in 0..map.npes() {
            let s = map.shard_of(pe);
            assert!((s as usize) < shards, "case {case}: shard id out of range");
            assert!(s >= last, "case {case}: shard ids must be contiguous");
            last = s;
            if pe > 0 && node_of_pe[pe] == node_of_pe[pe - 1] {
                assert_eq!(
                    s,
                    map.shard_of(pe - 1),
                    "case {case}: node {} split across shards",
                    node_of_pe[pe]
                );
            }
        }
    }
}

/// The engine-level byte-identity property, via the public API: arbitrary
/// event soups pushed through a threaded `ShardedEngine` (random shard
/// maps, random windows) pop in *exactly* the serial `EventQueue`'s
/// `(time, seq)` order, under arbitrary interleaved push/pop streams.
#[test]
fn sharded_engine_pops_in_serial_queue_order() {
    let mut rng = DetRng::new(0x9DE5_0DE5).stream("sharded-vs-serial");
    for case in 0..CASES / 2 {
        let shards = rng.range(1, 6) as usize;
        let npes = rng.range(1, 24) as usize;
        let shard_of: Vec<u32> = (0..npes)
            .map(|_| rng.range(0, shards as u64) as u32)
            .collect();
        let map = ckd_sim::ShardMap::from_assignment(shard_of.clone(), shards);
        let window = ckd_sim::Lookahead::new(Time::from_ns(rng.range(1, 5000)));
        let mut engine: ckd_sim::ShardedEngine<u32> = ckd_sim::ShardedEngine::new(map, window);
        let mut serial = ckd_sim::EventQueue::new();
        let mut now = 0u64; // ns horizon, keeps pushes causal
        let mut next_id = 0u32;
        for _ in 0..rng.range(20, 200) {
            if rng.chance(0.6) || serial.is_empty() {
                let burst = if rng.chance(0.3) { rng.range(2, 12) } else { 1 };
                let at = Time::from_ns(now + rng.range(0, 3000));
                for _ in 0..burst {
                    let pe = rng.range(0, npes as u64) as usize;
                    engine.push(at, shard_of[pe], next_id);
                    serial.push(at, next_id);
                    next_id += 1;
                }
            } else {
                let got = engine.pop();
                let want = serial.pop();
                assert_eq!(got, want, "case {case}: pop order diverged");
                if let Some((t, _)) = got {
                    now = t.as_ps() / 1000;
                }
            }
        }
        loop {
            let got = engine.pop();
            let want = serial.pop();
            assert_eq!(got, want, "case {case}: drain order diverged");
            if got.is_none() {
                break;
            }
        }
        assert!(engine.is_empty());
    }
}

// --------------------------------------------------- notified-put CQ model

/// Reference model for the bounded notification CQ of the `NotifiedPut`
/// backend: a naive *unbounded* per-PE `VecDeque` plus explicit depth
/// accounting. For arbitrary interleavings of put/land/drain/ready across
/// a herd of channels, the registry must agree with the model on every
/// observable: each landing's verdict (admitted vs `CqOverflow`), the
/// exact FIFO drain order, the backlog length after every step, and the
/// final notification/overflow/drain counters — which together give
/// exactly-once notification per landed put.
#[test]
fn bounded_cq_matches_an_unbounded_reference_model() {
    use ckdirect::{HandleId, LandOutcome};
    use std::collections::VecDeque;

    #[derive(Clone, Copy, PartialEq, Debug)]
    enum St {
        Idle,
        InFlight,
        Queued,
        Delivered,
    }

    let mut rng = DetRng::new(0xCC_C0DE).stream("cq-reference");
    for case in 0..CASES {
        let depth = rng.range(1, 6) as usize;
        let nchan = rng.range(1, 8) as usize;
        let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::notified(depth));
        let mut handles: Vec<HandleId> = Vec::new();
        let mut st: Vec<St> = Vec::new();
        for i in 0..nchan {
            let h = reg
                .create_handle(Pe(1), Region::alloc(32), u64::MAX, i as u32)
                .unwrap();
            reg.assoc_local(h, Pe(0), Region::alloc(32)).unwrap();
            handles.push(h);
            st.push(St::Idle);
        }
        let mut model: VecDeque<HandleId> = VecDeque::new(); // unbounded
        let (mut enqueued, mut overflows, mut drained) = (0u64, 0u64, 0u64);

        for step in 0..rng.range(30, 200) {
            match rng.range(0, 3) {
                0 => {
                    // advance one random channel's lifecycle a step
                    let i = rng.range(0, nchan as u64) as usize;
                    match st[i] {
                        St::Idle => {
                            reg.put(handles[i], Pe(0)).unwrap();
                            st[i] = St::InFlight;
                        }
                        St::InFlight => {
                            // admission-first landing, judged against the
                            // model's own depth accounting
                            if model.len() >= depth {
                                match reg.land(handles[i]) {
                                    Err(DirectError::CqOverflow) => overflows += 1,
                                    other => panic!(
                                        "case {case} step {step}: full CQ admitted \
                                         a landing: {other:?}"
                                    ),
                                }
                                // refused: channel must still be retryable
                            } else {
                                match reg.land(handles[i]).unwrap() {
                                    LandOutcome::Notified => {}
                                    other => panic!(
                                        "case {case} step {step}: notified landing \
                                         returned {other:?}"
                                    ),
                                }
                                model.push_back(handles[i]);
                                enqueued += 1;
                                st[i] = St::Queued;
                            }
                        }
                        St::Queued => {} // waits for a drain
                        St::Delivered => {
                            reg.ready(handles[i]).unwrap();
                            st[i] = St::Idle;
                        }
                    }
                }
                1 => {
                    // drain a batch; order must be exactly the model's FIFO
                    let batch = rng.range(1, 5) as usize;
                    let got = reg.cq_drain(Pe(1), batch);
                    assert_eq!(
                        got.len(),
                        batch.min(model.len()),
                        "case {case} step {step}: drain size"
                    );
                    for (gh, cb) in got {
                        let wh = model.pop_front().unwrap();
                        assert_eq!(gh, wh, "case {case} step {step}: drain order");
                        let i = handles.iter().position(|&h| h == gh).unwrap();
                        assert_eq!(cb, i as u32, "case {case} step {step}: callback");
                        assert_eq!(
                            st[i],
                            St::Queued,
                            "case {case} step {step}: drained a non-queued channel"
                        );
                        st[i] = St::Delivered;
                        drained += 1;
                    }
                }
                _ => {
                    // release one delivered channel, if any
                    if let Some(i) = (0..nchan).find(|&i| st[i] == St::Delivered) {
                        reg.ready(handles[i]).unwrap();
                        st[i] = St::Idle;
                    }
                }
            }
            assert_eq!(
                reg.cq_len(Pe(1)),
                model.len(),
                "case {case} step {step}: backlog diverged"
            );
            assert!(model.len() <= depth, "case {case}: model overflowed depth");
        }
        let c = reg.counters();
        assert_eq!(c.notifications, enqueued, "case {case}: enqueue count");
        assert_eq!(c.cq_overflows, overflows, "case {case}: overflow count");
        assert_eq!(c.cq_drains, drained, "case {case}: drain count");
        // exactly-once: everything enqueued is either drained or still queued
        assert_eq!(
            c.notifications,
            c.cq_drains + reg.cq_len(Pe(1)) as u64,
            "case {case}: a notification was lost or doubled"
        );
    }
}

/// Progress-tick transparency: a notified-put machine with the async
/// progress engine enabled (any tick period) must deliver byte-identical
/// application data to the same machine relying purely on
/// scheduler-driven drains — the engine may only move *when* CQ drains
/// happen, never what they deliver.
#[test]
fn progress_ticks_are_transparent_to_delivered_data() {
    use ckd_apps::jacobi3d::{run_jacobi_grid_on, JacobiCfg};
    use ckd_apps::{Platform, Variant};
    use ckd_charm::ProgressConfig;

    let mut rng = DetRng::new(0x9106_6E55).stream("progress-transparency");
    for case in 0..CASES / 8 {
        let shapes = [
            ([16, 8, 8], [2, 2, 2]),
            ([8, 8, 8], [2, 2, 1]),
            ([16, 16, 8], [4, 2, 2]),
        ];
        let (domain, chares) = shapes[rng.range(0, shapes.len() as u64) as usize];
        let cfg = JacobiCfg {
            domain,
            chares,
            iters: rng.range(2, 8) as u32,
            variant: Variant::Ckd,
            real_compute: true,
        };
        let tick = ckd_sim::Time::from_ns(rng.range(50, 20_000));
        let mut base_m = Platform::Slingshot.machine(8);
        let (base_res, base_grid) = run_jacobi_grid_on(&mut base_m, cfg);
        let mut prog_m = Platform::Slingshot
            .builder(8)
            .with_progress(ProgressConfig { tick })
            .build();
        let (res, grid) = run_jacobi_grid_on(&mut prog_m, cfg);
        assert_eq!(
            res.residual.to_bits(),
            base_res.residual.to_bits(),
            "case {case} tick={tick:?}"
        );
        for (i, (a, b)) in grid.iter().zip(&base_grid).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "case {case} tick={tick:?}: grid[{i}]"
            );
        }
        assert_eq!(res.iters, base_res.iters, "case {case}");
        // same puts, same deliveries, same callbacks — only timing moved
        let (bs, ps) = (base_m.stats(), prog_m.stats());
        assert_eq!(ps.puts, bs.puts, "case {case}");
        assert_eq!(ps.put_bytes, bs.put_bytes, "case {case}");
        assert_eq!(ps.cq_drains, bs.cq_drains, "case {case}: drain totals");
        assert_eq!(
            prog_m.callback_total(),
            base_m.callback_total(),
            "case {case}: callback counts"
        );
        assert_eq!(bs.progress_ticks, 0, "case {case}: engine-off run ticked");
    }
}
