//! The event queue: a priority queue over `(Time, sequence)` keys.
//!
//! The queue is generic over the event payload so that each layer of the
//! stack (network, runtime, MPI model) can define its own event enum and pay
//! no boxing cost. FIFO order among same-timestamp events is guaranteed by a
//! monotonically increasing sequence number, which is what makes the whole
//! simulation deterministic.
//!
//! # Representation
//!
//! The hot path of the simulator is push/pop on this queue, and event
//! payloads are large (message payloads, byte buffers). A naive
//! `BinaryHeap<(Time, u64, E)>` moves whole payloads on every sift. Instead
//! the heap holds 24-byte entries — a packed `u128` key
//! (`time_ps << 64 | seq`, unique because `seq` is monotone) plus a `u32`
//! slot index — while payloads sit still in a slab recycled through a
//! freelist. One integer compare per sift step, no payload moves, no
//! per-event allocation once the slab has warmed up. The pop order is
//! exactly the `(Time, seq)` lexicographic order of the old representation:
//! the packed key compares identically and every key is unique, so ties
//! cannot arise.

use crate::time::Time;

/// What a [`ReorderPolicy`] is allowed to see about a pending event: its
/// identity (`seq`), its timestamp, and the opaque footprint tag the
/// runtime attached at push time (0 = unknown, conservatively conflicting
/// with everything — the encoding is owned by `ckd-race`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventMeta {
    /// The event's unique, monotone sequence number.
    pub seq: u64,
    /// The event's scheduled firing time.
    pub at: Time,
    /// Footprint tag attached via [`EventQueue::push_tagged`] (0 if the
    /// event was pushed through plain [`EventQueue::push`]).
    pub tag: u64,
}

/// A pluggable pop-order policy: at each pop the queue collects every
/// pending event whose timestamp lies within [`ReorderPolicy::window`] of
/// the earliest one and, when there is more than one, lets the policy pick
/// which fires next. Index 0 of the candidate slice is always the
/// canonical `(time, seq)` minimum, so a policy that returns 0 reproduces
/// the default order exactly (see [`IdentityPolicy`]).
///
/// Installing a policy relaxes the queue's causality checks: choosing a
/// later candidate lets virtual time regress when the jumped-over event is
/// eventually popped, so the horizon becomes a high-water mark instead of
/// a monotone floor. With no policy installed the queue's behavior — and
/// its debug assertions — are byte-identical to the policy-free build.
pub trait ReorderPolicy {
    /// Width of the commutation window: candidates are all pending events
    /// with `at <= earliest + window`. `Time::ZERO` restricts reordering
    /// to same-virtual-time events.
    fn window(&self) -> Time;

    /// Pick the next event among `cands` (sorted by `(time, seq)`; always
    /// at least two entries — singleton pops never consult the policy).
    /// Out-of-range returns are clamped to the last candidate.
    fn choose(&mut self, cands: &[EventMeta]) -> usize;
}

/// The do-nothing policy: always picks the canonical minimum. Exists so
/// tests can prove the policy seam itself is order-transparent.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityPolicy {
    /// Window to advertise (exercises candidate collection without
    /// changing the chosen order).
    pub window: Time,
}

impl ReorderPolicy for IdentityPolicy {
    fn window(&self) -> Time {
        self.window
    }

    fn choose(&mut self, _cands: &[EventMeta]) -> usize {
        0
    }
}

/// Heap entry: packed `(time, seq)` key plus the payload's slab slot.
#[derive(Clone, Copy)]
struct Entry {
    key: u128,
    slot: u32,
}

#[inline]
pub(crate) fn pack(at: Time, seq: u64) -> u128 {
    ((at.as_ps() as u128) << 64) | seq as u128
}

#[inline]
pub(crate) fn key_time(key: u128) -> Time {
    Time::from_ps((key >> 64) as u64)
}

/// A deterministic min-priority queue of timed events.
pub struct EventQueue<E> {
    /// Hand-rolled min-heap over packed keys (smallest key at index 0).
    heap: Vec<Entry>,
    /// Payload slab; `None` slots are free and listed in `free`.
    slots: Vec<Option<E>>,
    /// Footprint tags parallel to `slots` (0 when untagged). Only read
    /// when a policy is installed.
    tags: Vec<u64>,
    free: Vec<u32>,
    seq: u64,
    /// The timestamp of the most recently popped event. Pushing an event
    /// earlier than this is a causality violation and panics in debug builds.
    /// With a [`ReorderPolicy`] installed it degrades to a high-water mark.
    horizon: Time,
    popped: u64,
    /// Installed pop-order policy; `None` is the byte-identical fast path.
    policy: Option<Box<dyn ReorderPolicy>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the horizon at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            tags: Vec::new(),
            free: Vec::new(),
            seq: 0,
            horizon: Time::ZERO,
            popped: 0,
            policy: None,
        }
    }

    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            tags: Vec::new(),
            free: Vec::new(),
            seq: 0,
            horizon: Time::ZERO,
            popped: 0,
            policy: None,
        }
    }

    /// Install a [`ReorderPolicy`]. From here on pops consult the policy
    /// whenever more than one pending event lies inside its window, and
    /// the horizon check degrades to a high-water mark (reordering lets
    /// virtual time regress by design).
    pub fn set_policy(&mut self, policy: Box<dyn ReorderPolicy>) {
        self.policy = Some(policy);
    }

    /// True when a [`ReorderPolicy`] is installed — the runtime uses this
    /// to skip footprint computation entirely on the canonical path.
    #[inline]
    pub fn reordering(&self) -> bool {
        self.policy.is_some()
    }

    /// Schedule `ev` to fire at absolute time `at`.
    ///
    /// `at` may equal the current horizon (same-timestamp events run in FIFO
    /// push order) but must not precede it, unless a policy is installed.
    #[inline]
    pub fn push(&mut self, at: Time, ev: E) {
        self.push_tagged(at, 0, ev);
    }

    /// [`EventQueue::push`] with a footprint tag the installed policy (and
    /// the model checker driving it) can read back through [`EventMeta`].
    #[inline]
    pub fn push_tagged(&mut self, at: Time, tag: u64, ev: E) {
        debug_assert!(
            self.policy.is_some() || at >= self.horizon,
            "causality violation: scheduling at {at} behind horizon {}",
            self.horizon
        );
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(ev);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Some(ev));
                s
            }
        };
        if self.policy.is_some() {
            if self.tags.len() <= slot as usize {
                self.tags.resize(slot as usize + 1, 0);
            }
            self.tags[slot as usize] = tag;
        }
        self.heap.push(Entry {
            key: pack(at, seq),
            slot,
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Schedule `ev` at `at` under a *caller-supplied* sequence number
    /// instead of the queue's own counter. This is the sharding seam: the
    /// PDES coordinator assigns one globally monotone sequence across every
    /// shard's queue so that merging the shards back together reproduces the
    /// exact `(time, seq)` total order a single serial queue would have used.
    ///
    /// The caller must guarantee `seq` is unique across all pushes into this
    /// queue (packed keys must stay unique for pop order to be total). The
    /// internal counter is bumped past `seq` so interleaved [`EventQueue::push`]
    /// calls can never collide.
    #[inline]
    pub fn push_at_seq(&mut self, at: Time, seq: u64, ev: E) {
        debug_assert!(
            self.policy.is_some() || at >= self.horizon,
            "causality violation: scheduling at {at} behind horizon {}",
            self.horizon
        );
        self.seq = self.seq.max(seq.saturating_add(1));
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(ev);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Some(ev));
                s
            }
        };
        self.heap.push(Entry {
            key: pack(at, seq),
            slot,
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Remove and return the earliest event, advancing the horizon to its
    /// timestamp. With a policy installed, "earliest" becomes "whichever
    /// in-window candidate the policy picks".
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.policy.is_some() {
            return self.pop_policy(Time::MAX);
        }
        let root = *self.heap.first()?;
        self.remove_root();
        Some(self.take(root))
    }

    /// [`EventQueue::pop`], but only if the earliest event fires at or
    /// before `limit` — the scheduler-loop fast path (one heap access
    /// instead of a peek followed by a pop).
    #[inline]
    pub fn pop_before(&mut self, limit: Time) -> Option<(Time, E)> {
        if self.policy.is_some() {
            return self.pop_policy(limit);
        }
        let root = *self.heap.first()?;
        if key_time(root.key) > limit {
            return None;
        }
        self.remove_root();
        Some(self.take(root))
    }

    /// The policy-mediated pop: collect every pending event inside the
    /// window anchored at the earliest one (clamped to `limit`), hand the
    /// sorted candidate list to the policy, and remove its pick from an
    /// arbitrary heap position. O(n) per pop — model-checking runs only.
    fn pop_policy(&mut self, limit: Time) -> Option<(Time, E)> {
        let root = *self.heap.first()?;
        let t0 = key_time(root.key);
        if t0 > limit {
            return None;
        }
        let mut policy = self.policy.take().expect("caller checked policy");
        let cutoff = Time::from_ps(t0.as_ps().saturating_add(policy.window().as_ps())).min(limit);
        let mut cands: Vec<(usize, Entry)> = self
            .heap
            .iter()
            .enumerate()
            .filter(|(_, e)| key_time(e.key) <= cutoff)
            .map(|(i, e)| (i, *e))
            .collect();
        cands.sort_by_key(|(_, e)| e.key);
        let pick = if cands.len() > 1 {
            let metas: Vec<EventMeta> = cands
                .iter()
                .map(|(_, e)| EventMeta {
                    seq: e.key as u64,
                    at: key_time(e.key),
                    tag: self.tags.get(e.slot as usize).copied().unwrap_or(0),
                })
                .collect();
            policy.choose(&metas).min(cands.len() - 1)
        } else {
            0
        };
        self.policy = Some(policy);
        let (heap_idx, entry) = cands[pick];
        self.remove_at(heap_idx);
        Some(self.take(entry))
    }

    /// [`EventQueue::pop_before`], but exposing the popped event's sequence
    /// number alongside its timestamp. The PDES drain path uses this to
    /// carry each event's original `(time, seq)` key across shard channels
    /// so the coordinator can merge shards in the serial total order.
    /// Bypasses any installed policy (shard queues never have one).
    #[inline]
    pub fn pop_keyed_before(&mut self, limit: Time) -> Option<(Time, u64, E)> {
        let root = *self.heap.first()?;
        if key_time(root.key) > limit {
            return None;
        }
        self.remove_root();
        let seq = root.key as u64;
        let (at, ev) = self.take(root);
        Some((at, seq, ev))
    }

    /// Timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.first().map(|e| key_time(e.key))
    }

    /// `(time, seq)` key of the earliest pending event, if any.
    #[inline]
    pub fn peek_key(&self) -> Option<(Time, u64)> {
        self.heap.first().map(|e| (key_time(e.key), e.key as u64))
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The virtual time of the most recently popped event.
    #[inline]
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Total number of events ever popped (a cheap progress metric).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Slab slots currently allocated (capacity watermark, not pending
    /// count) — lets tests assert the freelist actually recycles.
    pub fn slab_slots(&self) -> usize {
        self.slots.len()
    }

    // ---- internals --------------------------------------------------------

    /// Drop the root entry out of the heap, restoring the heap property.
    #[inline]
    fn remove_root(&mut self) {
        let last = self.heap.pop().expect("caller checked non-empty");
        if let Some(first) = self.heap.first_mut() {
            *first = last;
            self.sift_down(0);
        }
    }

    /// Drop the entry at heap index `i`, restoring the heap property in
    /// whichever direction the swapped-in tail element violates it.
    fn remove_at(&mut self, i: usize) {
        let last = self.heap.pop().expect("caller checked non-empty");
        if i == self.heap.len() {
            return;
        }
        self.heap[i] = last;
        if i > 0 && self.heap[i].key < self.heap[(i - 1) / 2].key {
            self.sift_up(i);
        } else {
            self.sift_down(i);
        }
    }

    /// Extract the payload of a removed entry and account the pop.
    #[inline]
    fn take(&mut self, e: Entry) -> (Time, E) {
        let ev = self.slots[e.slot as usize]
            .take()
            .expect("heap entry points at a live slot");
        self.free.push(e.slot);
        let at = key_time(e.key);
        debug_assert!(self.policy.is_some() || at >= self.horizon);
        self.horizon = self.horizon.max(at);
        self.popped += 1;
        (at, ev)
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].key <= entry.key {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = entry;
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let entry = self.heap[i];
        loop {
            let mut child = 2 * i + 1;
            if child >= len {
                break;
            }
            let right = child + 1;
            if right < len && self.heap[right].key < self.heap[child].key {
                child = right;
            }
            if entry.key <= self.heap[child].key {
                break;
            }
            self.heap[i] = self.heap[child];
            i = child;
        }
        self.heap[i] = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), "c");
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_advances() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(7), ());
        assert_eq!(q.horizon(), Time::ZERO);
        q.pop();
        assert_eq!(q.horizon(), Time::from_ns(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    #[cfg(debug_assertions)]
    fn rejects_events_behind_horizon() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), ());
        q.pop();
        q.push(Time::from_ns(5), ());
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(40), 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Time::from_ns(20), 2);
        q.push(Time::from_ns(30), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(3), "x");
        assert_eq!(q.peek_time(), Some(Time::from_ns(3)));
        assert_eq!(q.len(), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_ns(3));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_before_respects_the_limit() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), "early");
        q.push(Time::from_ns(30), "late");
        assert_eq!(q.pop_before(Time::from_ns(5)), None);
        assert_eq!(
            q.pop_before(Time::from_ns(10)),
            Some((Time::from_ns(10), "early"))
        );
        assert_eq!(q.pop_before(Time::from_ns(20)), None);
        assert_eq!(q.pop_before(Time::MAX), Some((Time::from_ns(30), "late")));
        assert_eq!(q.pop_before(Time::MAX), None);
        assert_eq!(q.horizon(), Time::from_ns(30));
        assert_eq!(q.events_processed(), 2);
    }

    /// Picks the last (latest) in-window candidate — maximal reordering.
    struct LastWins {
        window: Time,
    }

    impl ReorderPolicy for LastWins {
        fn window(&self) -> Time {
            self.window
        }
        fn choose(&mut self, cands: &[EventMeta]) -> usize {
            cands.len() - 1
        }
    }

    #[test]
    fn identity_policy_is_order_transparent() {
        let mut plain = EventQueue::new();
        let mut seamed = EventQueue::new();
        seamed.set_policy(Box::new(IdentityPolicy {
            window: Time::from_ns(50),
        }));
        assert!(seamed.reordering() && !plain.reordering());
        for (i, ns) in [30u64, 10, 10, 20, 25, 10].iter().enumerate() {
            plain.push(Time::from_ns(*ns), i);
            seamed.push_tagged(Time::from_ns(*ns), i as u64 + 1, i);
        }
        loop {
            let (a, b) = (plain.pop(), seamed.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn policy_reorders_only_inside_the_window() {
        let mut q = EventQueue::new();
        q.set_policy(Box::new(LastWins {
            window: Time::from_ns(5),
        }));
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(12), "b");
        q.push(Time::from_ns(14), "c");
        q.push(Time::from_ns(40), "far");
        // window [10, 15]: candidates a/b/c, policy picks c; then [10, 15]
        // again (time regresses legally): picks b, then a, then far.
        assert_eq!(q.pop(), Some((Time::from_ns(14), "c")));
        assert_eq!(q.pop(), Some((Time::from_ns(12), "b")));
        assert_eq!(q.pop(), Some((Time::from_ns(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_ns(40), "far")));
        assert_eq!(q.horizon(), Time::from_ns(40));
        assert_eq!(q.events_processed(), 4);
    }

    #[test]
    fn policy_respects_pop_before_limit() {
        let mut q = EventQueue::new();
        q.set_policy(Box::new(LastWins {
            window: Time::from_ns(100),
        }));
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(60), "b");
        // the window reaches b, but the scheduler's limit clamps it out
        assert_eq!(
            q.pop_before(Time::from_ns(20)),
            Some((Time::from_ns(10), "a"))
        );
        assert_eq!(q.pop_before(Time::from_ns(20)), None);
        assert_eq!(q.pop_before(Time::MAX), Some((Time::from_ns(60), "b")));
    }

    #[test]
    fn policy_allows_pushes_behind_the_high_water_mark() {
        let mut q = EventQueue::new();
        q.set_policy(Box::new(LastWins {
            window: Time::from_ns(50),
        }));
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        assert_eq!(q.pop(), Some((Time::from_ns(20), 2)));
        // a handler running at the regressed time may schedule "behind"
        // the high-water mark without tripping the causality assert
        q.push(Time::from_ns(15), 3);
        assert_eq!(q.pop(), Some((Time::from_ns(15), 3)));
        assert_eq!(q.pop(), Some((Time::from_ns(10), 1)));
    }

    #[test]
    fn caller_supplied_seqs_define_the_tie_order() {
        let mut q = EventQueue::new();
        // Push out of seq order at one timestamp: pops must follow the
        // caller's seq, not arrival order.
        q.push_at_seq(Time::from_ns(5), 7, "late");
        q.push_at_seq(Time::from_ns(5), 2, "early");
        q.push_at_seq(Time::from_ns(1), 9, "first");
        assert_eq!(q.peek_key(), Some((Time::from_ns(1), 9)));
        assert_eq!(
            q.pop_keyed_before(Time::MAX),
            Some((Time::from_ns(1), 9, "first"))
        );
        assert_eq!(
            q.pop_keyed_before(Time::MAX),
            Some((Time::from_ns(5), 2, "early"))
        );
        // The internal counter must have advanced past every supplied seq,
        // so a plain push cannot collide with seq 7 still in the heap.
        q.push(Time::from_ns(5), "plain");
        assert_eq!(
            q.pop_keyed_before(Time::MAX),
            Some((Time::from_ns(5), 7, "late"))
        );
        let (t, seq, ev) = q.pop_keyed_before(Time::MAX).unwrap();
        assert_eq!((t, ev), (Time::from_ns(5), "plain"));
        assert!(seq >= 10, "plain push reused a low seq: {seq}");
        assert_eq!(q.pop_keyed_before(Time::MAX), None);
        assert_eq!(q.events_processed(), 4);
        assert_eq!(q.horizon(), Time::from_ns(5));
    }

    #[test]
    fn pop_keyed_before_respects_the_limit() {
        let mut q = EventQueue::new();
        q.push_at_seq(Time::from_ns(10), 0, "a");
        q.push_at_seq(Time::from_ns(30), 1, "b");
        assert_eq!(q.pop_keyed_before(Time::from_ns(9)), None);
        assert_eq!(
            q.pop_keyed_before(Time::from_ns(10)),
            Some((Time::from_ns(10), 0, "a"))
        );
        assert_eq!(q.pop_keyed_before(Time::from_ns(29)), None);
        assert_eq!(q.peek_key(), Some((Time::from_ns(30), 1)));
    }

    #[test]
    fn freelist_recycles_slab_slots() {
        let mut q = EventQueue::new();
        // Steady-state ping-pong: one pending event at a time should never
        // grow the slab beyond the high-water mark of concurrent events.
        q.push(Time::from_ns(1), 0u64);
        for i in 1..1000u64 {
            let (t, _) = q.pop().unwrap();
            q.push(t + Time::from_ns(1), i);
        }
        assert!(q.slab_slots() <= 2, "slab grew to {}", q.slab_slots());
    }
}
