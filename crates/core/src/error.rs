//! Error taxonomy for CkDirect misuse.
//!
//! The paper makes correct use "the user's responsibility"; this
//! reproduction keeps that contract for *performance* purposes but detects
//! violations instead of corrupting data, because silent corruption in a
//! simulation would invalidate every experiment built on top of it.

use std::fmt;

/// Everything that can go wrong when driving a CkDirect channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectError {
    /// The registered buffer cannot hold the 8-byte out-of-band pattern.
    BufferTooSmall,
    /// Sender and receiver buffers of one channel must have equal length.
    SizeMismatch,
    /// A region's `offset + len` exceeds its backing allocation.
    RegionOutOfBounds,
    /// `put` on a handle whose sender never called `assoc_local`.
    NotAssociated,
    /// `assoc_local` called twice on the same handle.
    AlreadyAssociated,
    /// A second `put` was issued while one was still in flight — CkDirect
    /// channels carry at most one message at a time.
    PutInFlight,
    /// `put` would overwrite data the receiver has been told about but has
    /// not yet released with `ready_mark` — the exact hazard the paper says
    /// application-level synchronization must prevent.
    Overwrite,
    /// The payload's final 8 bytes equal the out-of-band pattern, so the
    /// polling receiver could never detect arrival. (The paper trusts the
    /// user to pick a pattern that never occurs in data; we detect it.)
    OobCollision,
    /// `ready_mark` called before the callback delivered the current data.
    NotDelivered,
    /// `ready_poll_q` (or `ready`) called when the channel was already
    /// armed / delivered without an intervening `ready_mark`.
    NotMarked,
    /// The handle id does not name a live channel — it was never created,
    /// or it was destroyed and its slot's generation has moved on.
    BadHandle,
    /// An operation was issued from the wrong PE (e.g. `put` from a PE other
    /// than the one that called `assoc_local`).
    WrongPe,
    /// `create_handle` would exceed the registry's slot capacity (the
    /// handle's 24-bit slot field). Historically the index silently
    /// wrapped; now the caller is told.
    TooManyHandles,
    /// A notified put's record would overflow the receiver's bounded
    /// completion queue. Nothing landed: the NIC holds the put back and the
    /// executor must retry after the receiver drains (backpressure, not
    /// data loss).
    CqOverflow,
}

impl fmt::Display for DirectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DirectError::BufferTooSmall => "buffer smaller than the 8-byte out-of-band pattern",
            DirectError::SizeMismatch => "sender and receiver buffer sizes differ",
            DirectError::RegionOutOfBounds => "region exceeds its backing buffer",
            DirectError::NotAssociated => "put on a handle with no associated send buffer",
            DirectError::AlreadyAssociated => "assoc_local called twice",
            DirectError::PutInFlight => "a put is already in flight on this channel",
            DirectError::Overwrite => "put would overwrite undelivered or unreleased data",
            DirectError::OobCollision => {
                "payload ends with the out-of-band pattern; arrival would be undetectable"
            }
            DirectError::NotDelivered => "ready_mark before the completion callback fired",
            DirectError::NotMarked => "ready_poll_q without a preceding ready_mark",
            DirectError::BadHandle => "unknown CkDirect handle",
            DirectError::WrongPe => "operation issued from the wrong PE",
            DirectError::TooManyHandles => "channel registry is out of handle slots",
            DirectError::CqOverflow => {
                "notified put would overflow the receiver's completion queue"
            }
        };
        f.write_str(s)
    }
}

impl std::error::Error for DirectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msg = DirectError::OobCollision.to_string();
        assert!(msg.contains("out-of-band"));
        // all variants render without panicking
        for e in [
            DirectError::BufferTooSmall,
            DirectError::SizeMismatch,
            DirectError::RegionOutOfBounds,
            DirectError::NotAssociated,
            DirectError::AlreadyAssociated,
            DirectError::PutInFlight,
            DirectError::Overwrite,
            DirectError::OobCollision,
            DirectError::NotDelivered,
            DirectError::NotMarked,
            DirectError::BadHandle,
            DirectError::WrongPe,
            DirectError::TooManyHandles,
            DirectError::CqOverflow,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
