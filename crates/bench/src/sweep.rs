//! `ckd-sweep`: a multi-threaded, deterministic parameter-sweep engine.
//!
//! A sweep is a grid of independent simulation runs — `{app} × {fabric
//! preset} × {size} × {seed} × {fault plan}` — described by plain-data
//! [`RunSpec`]s. Workers pull grid indices from a shared atomic counter,
//! build an isolated [`Machine`](ckd_charm::Machine) *inside the worker
//! thread* (machines are deliberately not `Send`: chares hold `Rc`
//! regions), run it to completion, and send back a plain-data
//! [`RunRecord`]. Records are merged in grid order, so the sweep output is
//! byte-identical regardless of worker count — including one — and
//! identical to a hand-rolled serial loop over the same grid. The host's
//! only influence is wall-clock, which is reported separately
//! ([`HostReport`]) and never mixed into the deterministic results.
//!
//! The `ckd-sweep` bin drives the paper-figure grids defined here and
//! writes the repo's `BENCH_*.json` trajectory files.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use ckd_apps::jacobi3d::{run_jacobi_on, JacobiCfg};
use ckd_apps::matmul3d::{run_matmul_on, MatmulCfg};
use ckd_apps::openatom::{run_openatom_on, OpenAtomCfg};
use ckd_apps::pingpong::charm_pingpong_on;
use ckd_apps::{Platform, Variant};
use ckd_charm::{FaultPlan, MachineStats, ProfConfig, ProfShard};

use crate::TABLE_SIZES;

/// Current schema tag of every JSON file this module emits: v4 adds the
/// per-run `backend`/`cq_drains` fields recording which put-completion
/// backend the run used (`ib-sentinel-poll`, `dcmf-callback`,
/// `notified-put`, `shared-mem`) and how many CQ notification records it
/// drained.
pub const SCHEMA: &str = "ckd-sweep/v4";

/// The v3 schema tag (per-run `shards`/`pdes_rounds` PDES fields);
/// [`validate_sweep_json`] still accepts files carrying it so older
/// trajectory archives keep validating.
pub const SCHEMA_V3: &str = "ckd-sweep/v3";

/// The v2 schema tag (per-run `callbacks`/`poll_checks`, host-side
/// throughput metrics); likewise still accepted.
pub const SCHEMA_V2: &str = "ckd-sweep/v2";

/// The original schema tag; likewise still accepted.
pub const SCHEMA_V1: &str = "ckd-sweep/v1";

/// One application grid point: which app to run and its shape parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppCase {
    /// Two-PE round trip of `bytes`-sized payloads.
    Pingpong {
        /// Payload size per leg.
        bytes: usize,
    },
    /// 3-D stencil with halo exchange.
    Jacobi {
        /// Global domain extents.
        domain: [usize; 3],
        /// Chare grid (must divide the domain).
        chares: [usize; 3],
    },
    /// 3-D matrix multiplication.
    Matmul {
        /// Matrix dimension N.
        n: usize,
        /// Chare-grid edge (`grid³` chares).
        grid: usize,
    },
    /// OpenAtom PairCalculator mini-app.
    OpenAtom {
        /// Electronic states.
        nstates: usize,
        /// Planes per state.
        nplanes: usize,
        /// States per PairCalculator block.
        grain: usize,
        /// Doubles streamed GS→PC.
        pts: usize,
    },
}

impl AppCase {
    /// Table/JSON label of the application.
    pub fn label(self) -> &'static str {
        match self {
            AppCase::Pingpong { .. } => "pingpong",
            AppCase::Jacobi { .. } => "jacobi3d",
            AppCase::Matmul { .. } => "matmul3d",
            AppCase::OpenAtom { .. } => "openatom",
        }
    }

    /// Headline size of the grid point (the sweep's size axis).
    pub fn size(self) -> usize {
        match self {
            AppCase::Pingpong { bytes } => bytes,
            AppCase::Jacobi { domain, .. } => domain[0],
            AppCase::Matmul { n, .. } => n,
            AppCase::OpenAtom { pts, .. } => pts,
        }
    }

    /// Full shape of the grid point, for the JSON record.
    pub fn shape(self) -> String {
        match self {
            AppCase::Pingpong { bytes } => format!("bytes={bytes}"),
            AppCase::Jacobi { domain, chares } => format!(
                "domain={}x{}x{},chares={}x{}x{}",
                domain[0], domain[1], domain[2], chares[0], chares[1], chares[2]
            ),
            AppCase::Matmul { n, grid } => format!("n={n},grid={grid}"),
            AppCase::OpenAtom {
                nstates,
                nplanes,
                grain,
                pts,
            } => format!("nstates={nstates},nplanes={nplanes},grain={grain},pts={pts}"),
        }
    }
}

/// Which put-completion backend a grid point runs with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendSel {
    /// The fabric's matching backend (sentinel polling on Infiniband,
    /// DCMF callbacks on BG/P, notified puts on Slingshot).
    Auto,
    /// Force the shared-memory flag backend (single-node runs).
    SharedMem,
}

/// One grid point of a sweep: plain data, safe to share across workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSpec {
    /// Application and shape.
    pub app: AppCase,
    /// Transport variant (messages vs CkDirect).
    pub variant: Variant,
    /// Fabric preset the machine is built from.
    pub platform: Platform,
    /// Processor count.
    pub pes: usize,
    /// Timed iterations (steps for OpenAtom).
    pub iters: u32,
    /// Fault-plan seed; only meaningful when `drop_permille > 0`.
    pub seed: u64,
    /// Packet drop probability in permille (0 = no fault plane at all).
    pub drop_permille: u32,
    /// PDES shard count (1 = the serial engine; byte-identical results
    /// either way, so this only changes how the run executes).
    pub shards: usize,
    /// Put-completion backend ([`BackendSel::Auto`] follows the fabric).
    pub backend: BackendSel,
}

/// The deterministic outcome of one grid point plus the machine's full
/// counter set — everything the merged sweep output is built from — and,
/// when the run was profiled, the host-side profile riding along.
///
/// Equality compares only the deterministic fields (spec, virtual-time
/// metrics, counters, and the snapshot stream); `host_ns` and the
/// wall-clock parts of `prof` legitimately vary across hosts and worker
/// counts and are excluded, so the determinism suite can keep asserting
/// whole-record equality across worker counts.
#[derive(Clone, Debug, Eq)]
pub struct RunRecord {
    /// The grid point that produced this record.
    pub spec: RunSpec,
    /// Headline virtual-time metric in picoseconds (RTT for pingpong,
    /// time per iteration/step for the others).
    pub metric_ps: u64,
    /// Virtual time at completion.
    pub total_ps: u64,
    /// Puts the runtime reported retried or degraded.
    pub lossy_puts: u64,
    /// Machine-wide statistics of the run.
    pub stats: MachineStats,
    /// CkDirect completion callbacks delivered (summed over PEs).
    pub callbacks: u64,
    /// Handles examined by poll sweeps (summed over PEs).
    pub poll_checks: u64,
    /// Safe-window rounds of the PDES engine (0 for serial runs;
    /// deterministic, so it participates in equality).
    pub pdes_rounds: u64,
    /// Name of the put-completion backend the run actually used.
    pub backend: &'static str,
    /// Completion-queue notification records drained (0 outside the
    /// notified-put backend; deterministic, so it participates in
    /// equality).
    pub cq_drains: u64,
    /// The run's JSONL snapshot stream when profiling was on
    /// (deterministic, so it participates in equality).
    pub snapshots: Option<String>,
    /// Wall-clock of this run on the executing worker, nanoseconds
    /// (host-side; excluded from equality).
    pub host_ns: u64,
    /// The run's profiler shard when profiling was on (wall-clock phase
    /// table is host-side; excluded from equality — the deterministic
    /// histograms inside are compared explicitly by the tests).
    pub prof: Option<ProfShard>,
}

impl PartialEq for RunRecord {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.metric_ps == other.metric_ps
            && self.total_ps == other.total_ps
            && self.lossy_puts == other.lossy_puts
            && self.stats == other.stats
            && self.callbacks == other.callbacks
            && self.poll_checks == other.poll_checks
            && self.pdes_rounds == other.pdes_rounds
            && self.backend == other.backend
            && self.cq_drains == other.cq_drains
            && self.snapshots == other.snapshots
    }
}

impl RunSpec {
    /// Build the machine for this grid point and run it to completion.
    /// Everything happens inside the calling thread; the result is plain
    /// data.
    pub fn execute(&self) -> RunRecord {
        self.execute_with(None)
    }

    /// [`RunSpec::execute`] with optional self-profiling: the record then
    /// carries the run's [`ProfShard`] and snapshot JSONL.
    pub fn execute_with(&self, prof: Option<ProfConfig>) -> RunRecord {
        let t0 = Instant::now();
        let mut b = self
            .platform
            .builder(self.pes)
            .with_shards(self.shards.max(1));
        if let BackendSel::SharedMem = self.backend {
            b = b.with_backend(ckd_charm::backend::SharedMem);
        }
        if self.drop_permille > 0 {
            let p = f64::from(self.drop_permille) / 1000.0;
            b = b.with_faults(FaultPlan::new(self.seed).with_drop(p));
        }
        if let Some(cfg) = prof {
            b = b.with_profiling(cfg);
        }
        let mut m = b.build();
        let (metric_ps, lossy_puts) = match self.app {
            AppCase::Pingpong { bytes } => {
                let r = charm_pingpong_on(&mut m, self.variant, bytes, self.iters);
                (r.rtt.as_ps(), r.lossy_puts)
            }
            AppCase::Jacobi { domain, chares } => {
                let r = run_jacobi_on(
                    &mut m,
                    JacobiCfg {
                        domain,
                        chares,
                        iters: self.iters,
                        variant: self.variant,
                        real_compute: false,
                    },
                );
                (r.time_per_iter.as_ps(), r.lossy_puts)
            }
            AppCase::Matmul { n, grid } => {
                let r = run_matmul_on(
                    &mut m,
                    MatmulCfg {
                        n,
                        grid,
                        iters: self.iters,
                        variant: self.variant,
                        real_compute: false,
                    },
                );
                (r.time_per_iter.as_ps(), r.lossy_puts)
            }
            AppCase::OpenAtom {
                nstates,
                nplanes,
                grain,
                pts,
            } => {
                let r = run_openatom_on(
                    &mut m,
                    OpenAtomCfg {
                        nstates,
                        nplanes,
                        grain,
                        pts,
                        steps: self.iters,
                        variant: self.variant,
                        pc_only: false,
                        ready_split: true,
                    },
                );
                (r.time_per_step.as_ps(), r.lossy_puts)
            }
        };
        RunRecord {
            spec: *self,
            metric_ps,
            total_ps: m.now().as_ps(),
            lossy_puts,
            stats: m.stats().clone(),
            callbacks: m.callback_total(),
            poll_checks: m.poll_check_total(),
            pdes_rounds: m.pdes_stats().map_or(0, |s| s.rounds),
            backend: m.backend().name(),
            cq_drains: m.cq_drain_total(),
            snapshots: m.profiler().snapshots_jsonl().map(str::to_string),
            host_ns: t0.elapsed().as_nanos() as u64,
            prof: m.profiler().shard().cloned(),
        }
    }
}

/// Execute every grid point across `workers` OS threads and merge the
/// records in grid order.
///
/// Each run is an isolated simulation, so grid points can execute in any
/// real-time order on any thread; the merged result only depends on the
/// grid. `workers == 1` degenerates to a serial loop over the grid.
pub fn run_sweep(grid: &[RunSpec], workers: usize) -> Vec<RunRecord> {
    run_sweep_with(grid, workers, None)
}

/// [`run_sweep`] with optional self-profiling of every run: each record
/// then carries a per-run [`ProfShard`] (merge them for a machine-wide
/// report) and a deterministic snapshot stream.
pub fn run_sweep_with(
    grid: &[RunSpec],
    workers: usize,
    prof: Option<ProfConfig>,
) -> Vec<RunRecord> {
    assert!(workers >= 1, "a sweep needs at least one worker");
    if workers == 1 || grid.len() <= 1 {
        return grid.iter().map(|s| s.execute_with(prof)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, RunRecord)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = grid.get(i) else { break };
                if tx.send((i, spec.execute_with(prof))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<RunRecord>> = grid.iter().map(|_| None).collect();
        for (i, rec) in rx {
            debug_assert!(slots[i].is_none(), "grid point {i} executed twice");
            slots[i] = Some(rec);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every grid point executed exactly once"))
            .collect()
    })
}

// ---- JSON emission ------------------------------------------------------

/// Platform label used in JSON records.
fn platform_label(p: Platform) -> String {
    match p {
        Platform::IbAbe { cores_per_node } => format!("ib_abe(cpn={cores_per_node})"),
        Platform::Bgp => "bgp".to_string(),
        Platform::Slingshot => "slingshot".to_string(),
    }
}

/// Host-side (non-deterministic) measurements attached to a sweep file.
#[derive(Clone, Copy, Debug)]
pub struct HostReport {
    /// Worker threads used for the recorded run.
    pub workers: usize,
    /// Wall-clock of the recorded (parallel) run, nanoseconds.
    pub wall_ns: u128,
    /// Wall-clock of a one-worker serial pass over the same grid, when
    /// one was measured.
    pub serial_wall_ns: Option<u128>,
    /// `available_parallelism` of the measuring host.
    pub cores: usize,
}

/// Render the merged sweep as JSON.
///
/// Everything except the optional `host` object is a pure function of the
/// grid: integer picosecond metrics and counters, one run per line, grid
/// order. Determinism tests compare this string byte-for-byte across
/// worker counts; `host` carries the wall-clock story and is excluded
/// from those comparisons by passing `None`.
pub fn sweep_json(name: &str, records: &[RunRecord], host: Option<&HostReport>) -> String {
    let mut out = String::with_capacity(records.len() * 256 + 512);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"name\": \"{name}\",\n"));
    out.push_str("  \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        let s = &r.spec;
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"shape\": \"{}\", \"size\": {}, \"variant\": \"{}\", \
             \"platform\": \"{}\", \"pes\": {}, \"iters\": {}, \"seed\": {}, \
             \"drop_permille\": {}, \"metric_ps\": {}, \"total_ps\": {}, \"lossy_puts\": {}, \
             \"events\": {}, \"msgs_sent\": {}, \"msg_bytes\": {}, \"puts\": {}, \
             \"put_bytes\": {}, \"reductions\": {}, \"retries\": {}, \"callbacks\": {}, \
             \"poll_checks\": {}, \"shards\": {}, \"pdes_rounds\": {}, \
             \"backend\": \"{}\", \"cq_drains\": {}}}{}\n",
            s.app.label(),
            s.app.shape(),
            s.app.size(),
            s.variant.label().to_ascii_lowercase(),
            platform_label(s.platform),
            s.pes,
            s.iters,
            s.seed,
            s.drop_permille,
            r.metric_ps,
            r.total_ps,
            r.lossy_puts,
            r.stats.events,
            r.stats.msgs_sent,
            r.stats.msg_bytes,
            r.stats.puts,
            r.stats.put_bytes,
            r.stats.reductions,
            r.stats.rel.retries,
            r.callbacks,
            r.poll_checks,
            s.shards,
            r.pdes_rounds,
            r.backend,
            r.cq_drains,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]");
    if let Some(h) = host {
        let events: u64 = records.iter().map(|r| r.stats.events).sum();
        let puts: u64 = records.iter().map(|r| r.stats.puts).sum();
        let secs = (h.wall_ns.max(1)) as f64 / 1e9;
        out.push_str(",\n  \"host\": {\n");
        out.push_str(&format!("    \"workers\": {},\n", h.workers));
        out.push_str(&format!("    \"cores\": {},\n", h.cores));
        out.push_str(&format!(
            "    \"wall_ms\": {:.3},\n",
            h.wall_ns as f64 / 1e6
        ));
        out.push_str(&format!(
            "    \"events_per_sec\": {:.0},\n",
            events as f64 / secs
        ));
        out.push_str(&format!(
            "    \"puts_per_sec\": {:.0},\n",
            puts as f64 / secs
        ));
        if let Some(serial) = h.serial_wall_ns {
            out.push_str(&format!(
                "    \"serial_wall_ms\": {:.3},\n",
                serial as f64 / 1e6
            ));
            out.push_str(&format!(
                "    \"speedup_vs_serial\": {:.2}\n",
                serial as f64 / h.wall_ns.max(1) as f64
            ));
        } else {
            out.push_str("    \"serial_wall_ms\": null\n");
        }
        out.push_str("  }");
    }
    out.push_str("\n}\n");
    out
}

/// Per-run keys required by every schema version.
const RUN_KEYS_COMMON: [&str; 9] = [
    "\"app\"",
    "\"variant\"",
    "\"platform\"",
    "\"pes\"",
    "\"iters\"",
    "\"seed\"",
    "\"metric_ps\"",
    "\"total_ps\"",
    "\"events\"",
];

/// Per-run keys added by `ckd-sweep/v2`.
const RUN_KEYS_V2: [&str; 2] = ["\"callbacks\"", "\"poll_checks\""];

/// Per-run keys added by `ckd-sweep/v3`.
const RUN_KEYS_V3: [&str; 2] = ["\"shards\"", "\"pdes_rounds\""];

/// Per-run keys added by `ckd-sweep/v4`.
const RUN_KEYS_V4: [&str; 2] = ["\"backend\"", "\"cq_drains\""];

/// Host-block keys the bench gate reads; required whenever a v2+ file
/// carries a `"host"` object at all.
const HOST_KEYS: [&str; 2] = ["\"events_per_sec\"", "\"puts_per_sec\""];

/// Structural check of a `BENCH_*.json` sweep file: schema tag
/// (`ckd-sweep/v1` through `v4` are all accepted), balanced delimiters,
/// and the per-run keys of the tagged version — errors name the missing
/// or extra field and the version whose contract it violates.
/// Deliberately parser-free (the workspace is std-only), like the
/// trace-export sanity tests.
pub fn validate_sweep_json(s: &str) -> Result<(), String> {
    let v4 = s.starts_with(&format!("{{\n  \"schema\": \"{SCHEMA}\""));
    let v3 = s.starts_with(&format!("{{\n  \"schema\": \"{SCHEMA_V3}\""));
    let v2 = s.starts_with(&format!("{{\n  \"schema\": \"{SCHEMA_V2}\""));
    let v1 = s.starts_with(&format!("{{\n  \"schema\": \"{SCHEMA_V1}\""));
    if !v4 && !v3 && !v2 && !v1 {
        return Err(format!(
            "missing schema tag ({SCHEMA:?}, {SCHEMA_V3:?}, {SCHEMA_V2:?} or {SCHEMA_V1:?})"
        ));
    }
    let tag = if v4 {
        SCHEMA
    } else if v3 {
        SCHEMA_V3
    } else if v2 {
        SCHEMA_V2
    } else {
        SCHEMA_V1
    };
    if !s.contains("\"name\": ") || !s.contains("\"runs\": [") {
        return Err("missing name/runs".into());
    }
    if s.matches('{').count() != s.matches('}').count()
        || s.matches('[').count() != s.matches(']').count()
    {
        return Err("unbalanced delimiters".into());
    }
    let runs = s
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"app\""))
        .count();
    if runs == 0 {
        return Err("no runs".into());
    }
    for key in RUN_KEYS_COMMON {
        let n = s.matches(key).count();
        if n != runs {
            return Err(format!("{tag}: missing key {key} ({n}/{runs} runs)"));
        }
    }
    for key in RUN_KEYS_V2 {
        let n = s.matches(key).count();
        if (v2 || v3 || v4) && n != runs {
            return Err(format!("{tag}: missing v2 key {key} ({n}/{runs} runs)"));
        }
        if v1 && n != 0 {
            return Err(format!(
                "{tag}: extra v2-only key {key} in a v1 file ({n} occurrences)"
            ));
        }
    }
    for key in RUN_KEYS_V3 {
        let n = s.matches(key).count();
        if (v3 || v4) && n != runs {
            return Err(format!("{tag}: missing v3 key {key} ({n}/{runs} runs)"));
        }
        if !(v3 || v4) && n != 0 {
            return Err(format!(
                "{tag}: extra v3-only key {key} in a {tag} file ({n} occurrences)"
            ));
        }
    }
    for key in RUN_KEYS_V4 {
        let n = s.matches(key).count();
        if v4 && n != runs {
            return Err(format!("{tag}: missing v4 key {key} ({n}/{runs} runs)"));
        }
        if !v4 && n != 0 {
            return Err(format!(
                "{tag}: extra v4-only key {key} in a {tag} file ({n} occurrences)"
            ));
        }
    }
    // the host block is optional, but when present it must carry the
    // throughput metrics the bench gate reads (v2 onwards)
    if !v1 && s.contains("\"host\": {") {
        for key in HOST_KEYS {
            if !s.contains(key) {
                return Err(format!("{tag}: host block missing {key}"));
            }
        }
    }
    Ok(())
}

// ---- the paper-figure grids ---------------------------------------------

/// The acceptance sweep: 4 apps × 4 sizes × 4 seeds on the Infiniband
/// (Abe) preset under a light (2 %) drop plan, so the seed axis actually
/// changes each run's retransmission history.
pub fn sweep64_grid() -> Vec<RunSpec> {
    const SEEDS: [u64; 4] = [0x5EED, 0xC0FFEE, 42, 7];
    let abe = Platform::IbAbe { cores_per_node: 2 };
    let mut grid = Vec::with_capacity(64);
    for size_class in 0..4usize {
        let apps = [
            (
                AppCase::Pingpong {
                    bytes: [4096, 16384, 65536, 262144][size_class],
                },
                2500,
            ),
            (
                AppCase::Jacobi {
                    domain: [[32, 32, 32], [48, 48, 48], [64, 64, 64], [80, 80, 80]][size_class],
                    chares: [4, 4, 4],
                },
                60,
            ),
            (
                AppCase::Matmul {
                    n: [256, 384, 512, 640][size_class],
                    grid: 4,
                },
                10,
            ),
            (
                AppCase::OpenAtom {
                    nstates: 16,
                    nplanes: 2,
                    grain: 4,
                    pts: [256, 512, 768, 1024][size_class],
                },
                20,
            ),
        ];
        for (app, iters) in apps {
            for seed in SEEDS {
                grid.push(RunSpec {
                    app,
                    variant: Variant::Ckd,
                    platform: abe,
                    pes: 8,
                    iters,
                    seed,
                    drop_permille: 20,
                    shards: 1,
                    backend: BackendSel::Auto,
                });
            }
        }
    }
    grid
}

/// Table 1's charm rows: pingpong RTT over the paper's message sizes for
/// both transports on the Abe model.
pub fn table1_grid() -> Vec<RunSpec> {
    let abe = Platform::IbAbe { cores_per_node: 2 };
    let mut grid = Vec::new();
    for variant in [Variant::Msg, Variant::Ckd] {
        for bytes in TABLE_SIZES {
            grid.push(RunSpec {
                app: AppCase::Pingpong { bytes },
                variant,
                platform: abe,
                pes: 8,
                iters: 30,
                seed: 0,
                drop_permille: 0,
                shards: 1,
                backend: BackendSel::Auto,
            });
        }
    }
    grid
}

/// A chare grid of roughly `8 × pes` cuboids whose extents divide the
/// domain (powers of two throughout) — Fig 2's virtualization ratio.
fn jacobi_grid_for(pes: usize) -> [usize; 3] {
    let mut g = [1usize, 1, 1];
    let mut total = 1;
    let mut axis = 0;
    while total < pes * 8 {
        g[axis] *= 2;
        total *= 2;
        axis = (axis + 1) % 3;
    }
    g
}

/// Fig 2(a): Jacobi3D on the Infiniband (Abe) model, both transports,
/// over the paper's processor counts — plus one sharded replica of the
/// largest CkDirect point, which must land byte-identical metrics to its
/// serial twin while recording `pdes_rounds > 0`.
pub fn fig2a_grid() -> Vec<RunSpec> {
    let abe = Platform::IbAbe { cores_per_node: 8 };
    let mut grid = Vec::new();
    for &pes in &[16usize, 32, 64, 128, 256] {
        for variant in [Variant::Msg, Variant::Ckd] {
            grid.push(RunSpec {
                app: AppCase::Jacobi {
                    domain: [1024, 1024, 512],
                    chares: jacobi_grid_for(pes),
                },
                variant,
                platform: abe,
                pes,
                iters: 4,
                seed: 0,
                drop_permille: 0,
                shards: 1,
                backend: BackendSel::Auto,
            });
        }
    }
    let mut sharded = grid[grid.len() - 1];
    sharded.shards = 4;
    grid.push(sharded);
    grid
}

/// Chare-grid edge per PE count for Fig 3 (blocks divide 2048).
fn matmul_grid_for(pes: usize) -> usize {
    match pes {
        0..=31 => 4,
        32..=127 => 8,
        _ => 16,
    }
}

/// Fig 3(b): 2048³ matrix multiplication on the Abe model, both
/// transports, over the paper's processor counts.
pub fn fig3b_grid() -> Vec<RunSpec> {
    let abe = Platform::IbAbe { cores_per_node: 8 };
    let mut grid = Vec::new();
    for &pes in &[16usize, 32, 64, 128, 256] {
        for variant in [Variant::Msg, Variant::Ckd] {
            grid.push(RunSpec {
                app: AppCase::Matmul {
                    n: 2048,
                    grid: matmul_grid_for(pes),
                },
                variant,
                platform: abe,
                pes,
                iters: 2,
                seed: 0,
                drop_permille: 0,
                shards: 1,
                backend: BackendSel::Auto,
            });
        }
    }
    grid
}

/// A tiny mixed grid for CI smoke checks and the determinism suite:
/// every app, both a clean and a faulty point, seconds to run. The clean
/// Jacobi point runs sharded (`shards = 2`) so the PDES path is on every
/// smoke sweep too — its record must be indistinguishable from a serial
/// run apart from `pdes_rounds`.
pub fn smoke_grid() -> Vec<RunSpec> {
    let abe = Platform::IbAbe { cores_per_node: 2 };
    let mut grid = Vec::new();
    for (app, iters) in [
        (AppCase::Pingpong { bytes: 4096 }, 10u32),
        (
            AppCase::Jacobi {
                domain: [16, 16, 16],
                chares: [2, 2, 1],
            },
            3,
        ),
        (AppCase::Matmul { n: 32, grid: 2 }, 1),
        (
            AppCase::OpenAtom {
                nstates: 4,
                nplanes: 2,
                grain: 2,
                pts: 64,
            },
            2,
        ),
    ] {
        for (seed, drop_permille) in [(0u64, 0u32), (0x5EED, 50)] {
            let sharded = matches!(app, AppCase::Jacobi { .. }) && drop_permille == 0;
            grid.push(RunSpec {
                app,
                variant: Variant::Ckd,
                platform: abe,
                pes: 8,
                iters,
                seed,
                drop_permille,
                shards: if sharded { 2 } else { 1 },
                backend: BackendSel::Auto,
            });
        }
    }
    grid
}

/// The completion-backend comparison grid: every app on every completion
/// strategy, clean fabric, identical 8-PE shapes — sentinel polling
/// (Infiniband), DCMF callbacks (BG/P), notified puts (Slingshot), and
/// the shared-memory flag backend forced onto a single-node Infiniband
/// machine. The conformance suite proves the delivered bytes and
/// callback counts agree across all four; this grid records where each
/// strategy's modeled costs land.
pub fn backends_grid() -> Vec<RunSpec> {
    let fabrics = [
        (Platform::IbAbe { cores_per_node: 2 }, BackendSel::Auto),
        (Platform::Bgp, BackendSel::Auto),
        (Platform::Slingshot, BackendSel::Auto),
        // one full node: every PE shares memory, so the flag backend is
        // honest
        (Platform::IbAbe { cores_per_node: 8 }, BackendSel::SharedMem),
    ];
    let mut grid = Vec::with_capacity(16);
    for (app, iters) in [
        (AppCase::Pingpong { bytes: 16384 }, 200u32),
        (
            AppCase::Jacobi {
                domain: [32, 32, 32],
                chares: [4, 2, 2],
            },
            12,
        ),
        (AppCase::Matmul { n: 128, grid: 2 }, 4),
        (
            AppCase::OpenAtom {
                nstates: 8,
                nplanes: 2,
                grain: 2,
                pts: 256,
            },
            6,
        ),
    ] {
        for (platform, backend) in fabrics {
            grid.push(RunSpec {
                app,
                variant: Variant::Ckd,
                platform,
                pes: 8,
                iters,
                seed: 0,
                drop_permille: 0,
                shards: 1,
                backend,
            });
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_have_the_advertised_shapes() {
        assert_eq!(sweep64_grid().len(), 64, "4 apps × 4 sizes × 4 seeds");
        assert_eq!(table1_grid().len(), 2 * TABLE_SIZES.len());
        assert_eq!(fig2a_grid().len(), 11, "10 serial points + 1 sharded");
        assert_eq!(fig3b_grid().len(), 10);
        assert_eq!(smoke_grid().len(), 8);
        // the sharded fig2a point replicates the largest CkDirect point
        let fig2a = fig2a_grid();
        let sharded = fig2a[10];
        assert_eq!(sharded.shards, 4);
        assert_eq!(
            RunSpec {
                shards: 1,
                ..sharded
            },
            fig2a[9],
            "sharded point must be the serial 256-PE Ckd point's twin"
        );
        assert_eq!(smoke_grid()[2].shards, 2, "clean jacobi smoke is sharded");
        // the backend-comparison grid: 4 apps × 4 completion strategies,
        // all clean, all 8 PEs — differing only in platform/backend
        let backends = backends_grid();
        assert_eq!(backends.len(), 16, "4 apps × 4 backends");
        assert!(backends
            .iter()
            .all(|s| s.drop_permille == 0 && s.pes == 8 && s.shards == 1));
        assert_eq!(
            backends
                .iter()
                .filter(|s| s.backend == BackendSel::SharedMem)
                .count(),
            4,
            "one forced shared-memory point per app"
        );
        assert_eq!(
            backends
                .iter()
                .filter(|s| s.platform == Platform::Slingshot)
                .count(),
            4,
            "one notified-put point per app"
        );
    }

    #[test]
    fn emitted_json_passes_its_own_schema_check() {
        let grid = [smoke_grid()[0], smoke_grid()[1]];
        let records = run_sweep(&grid, 1);
        let plain = sweep_json("unit", &records, None);
        validate_sweep_json(&plain).unwrap();
        let host = HostReport {
            workers: 2,
            wall_ns: 1_000_000,
            serial_wall_ns: Some(2_000_000),
            cores: 4,
        };
        let with_host = sweep_json("unit", &records, Some(&host));
        validate_sweep_json(&with_host).unwrap();
        assert!(with_host.contains("\"speedup_vs_serial\": 2.00"));
        // host info must be an append-only suffix concern: the
        // deterministic prefix is shared
        assert!(with_host.starts_with(plain.trim_end_matches("\n}\n")));
    }

    #[test]
    fn schema_check_rejects_mangled_files() {
        let records = run_sweep(&[smoke_grid()[0]], 1);
        let good = sweep_json("unit", &records, None);
        assert!(validate_sweep_json(&good.replace(SCHEMA, "ckd-sweep/v0")).is_err());
        let e = validate_sweep_json(&good.replace("\"metric_ps\"", "\"m\"")).unwrap_err();
        assert!(
            e.contains("\"metric_ps\""),
            "error must name the field: {e}"
        );
        assert!(validate_sweep_json(&good.replace('}', "")).is_err());
        assert!(validate_sweep_json("{\n}").is_err());
    }

    /// Strip every per-run key from `cut` onwards, rewriting a current
    /// emission into a faithful older-schema file.
    fn downversion(s: &str, old_tag: &str, cut_key: &str) -> String {
        let mut out = String::new();
        for line in s.replace(SCHEMA, old_tag).lines() {
            if let (true, Some(cut)) = (
                line.trim_start().starts_with("{\"app\""),
                line.find(cut_key),
            ) {
                out.push_str(&line[..cut]);
                out.push_str(&line[line.rfind('}').unwrap()..]);
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        out
    }

    #[test]
    fn schema_check_accepts_older_versions_and_polices_the_version_line() {
        let records = run_sweep(&[smoke_grid()[0]], 1);
        let v4 = sweep_json("unit", &records, None);
        // faithful v3, v2 and v1 files validate
        let v3 = downversion(&v4, SCHEMA_V3, ", \"backend\"");
        validate_sweep_json(&v3).unwrap();
        let v2 = downversion(&v4, SCHEMA_V2, ", \"shards\"");
        validate_sweep_json(&v2).unwrap();
        let v1 = downversion(&v4, SCHEMA_V1, ", \"callbacks\"");
        validate_sweep_json(&v1).unwrap();
        // a v1 file that smuggles v2 keys is named and shamed
        let e = validate_sweep_json(&v4.replace(SCHEMA, SCHEMA_V1)).unwrap_err();
        assert!(e.contains("\"callbacks\""), "error must name the key: {e}");
        // ...as is a v2 file that smuggles v3 keys
        let e = validate_sweep_json(&v4.replace(SCHEMA, SCHEMA_V2)).unwrap_err();
        assert!(e.contains("\"shards\""), "error must name the key: {e}");
        // ...and a v3 file that smuggles v4 keys
        let e = validate_sweep_json(&v4.replace(SCHEMA, SCHEMA_V3)).unwrap_err();
        assert!(e.contains("\"backend\""), "error must name the key: {e}");
        // a v4 file missing a v2-era key likewise
        let e = validate_sweep_json(&v4.replace("\"poll_checks\"", "\"pc\"")).unwrap_err();
        assert!(
            e.contains("\"poll_checks\""),
            "error must name the key: {e}"
        );
        // ...and a v4 file missing a v4 key names both key and version
        let e = validate_sweep_json(&v4.replace("\"cq_drains\"", "\"cd\"")).unwrap_err();
        assert!(
            e.contains("\"cq_drains\"") && e.contains(SCHEMA),
            "error must name key and version: {e}"
        );
    }

    /// The bench gate reads `events_per_sec`/`puts_per_sec` from the host
    /// block; a file whose host block lost them must fail validation —
    /// on current files and on v2 archives alike.
    #[test]
    fn schema_check_requires_throughput_in_host_blocks() {
        let records = run_sweep(&[smoke_grid()[0]], 1);
        let host = HostReport {
            workers: 2,
            wall_ns: 1_000_000,
            serial_wall_ns: Some(2_000_000),
            cores: 4,
        };
        let v4 = sweep_json("unit", &records, Some(&host));
        validate_sweep_json(&v4).unwrap();
        let v2 = downversion(&v4, SCHEMA_V2, ", \"shards\"");
        validate_sweep_json(&v2).unwrap();
        for file in [v4, v2] {
            let gutted: String = file
                .lines()
                .filter(|l| !l.contains("\"events_per_sec\""))
                .map(|l| format!("{l}\n"))
                .collect();
            let e = validate_sweep_json(&gutted).unwrap_err();
            assert!(
                e.contains("\"events_per_sec\""),
                "error must name the missing host metric: {e}"
            );
        }
    }

    #[test]
    fn backend_selection_flows_into_records() {
        // the notified-put point drains its CQ; the forced shared-mem
        // point reports the override and never touches one
        let mut slingshot = backends_grid()[2];
        slingshot.iters = 5;
        let r = slingshot.execute();
        assert_eq!(r.backend, "notified-put");
        assert!(r.cq_drains > 0, "notified puts complete via CQ drains");
        let mut shm = backends_grid()[3];
        shm.iters = 5;
        let r = shm.execute();
        assert_eq!(r.backend, "shared-mem", "BackendSel::SharedMem override");
        assert_eq!(r.cq_drains, 0);
        let json = sweep_json("unit", &[r], None);
        assert!(json.contains("\"backend\": \"shared-mem\", \"cq_drains\": 0"));
        validate_sweep_json(&json).unwrap();
    }

    #[test]
    fn profiled_execution_rides_along_without_changing_results() {
        // the jacobi smoke point: enough events for several snapshots
        let spec = smoke_grid()[2];
        let plain = spec.execute();
        let prof = spec.execute_with(Some(ProfConfig { snapshot_every: 64 }));
        assert_eq!(plain.stats, prof.stats, "profiling perturbed the run");
        assert_eq!(plain.metric_ps, prof.metric_ps);
        assert_eq!(plain.callbacks, prof.callbacks);
        assert!(plain.prof.is_none() && plain.snapshots.is_none());
        let shard = prof.prof.as_ref().expect("profiled run carries a shard");
        assert_eq!(shard.events, prof.stats.events);
        assert_eq!(shard.puts, prof.stats.puts);
        ckd_charm::validate_snapshot_jsonl(prof.snapshots.as_deref().unwrap()).unwrap();
    }
}
