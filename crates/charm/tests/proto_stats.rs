//! Reconciliation tests: the per-protocol breakdown added to
//! `MachineStats`/`PeStats` must agree with the aggregate counters it was
//! derived from, and with the `ckd-trace` metrics registry when tracing is
//! enabled — all three views are fed from the same instrumentation points.

use bytes::Bytes;
use ckd_charm::{
    Chare, ChareRef, Ctx, EntryId, FaultPlan, LearnConfig, Machine, Msg, ProtoBreakdown, RedOp,
    RedTarget, RedVal, TraceConfig,
};
use ckd_net::presets;
use ckd_topo::{Dims, Idx, Machine as Topo, Mapper};
use ckd_trace::ProtoClass;

const EP_START: EntryId = EntryId(0);
const EP_SMALL: EntryId = EntryId(1);
const EP_BIG: EntryId = EntryId(2);
const EP_DONE: EntryId = EntryId(3);
const EP_DATA: EntryId = EntryId(4);
const EP_ACK: EntryId = EntryId(5);

const SMALL: usize = 64; // well under eager_max
const BIG: usize = 64 * 1024; // well over eager_max -> rendezvous

fn ib_builder(pes: usize, cores: usize) -> ckd_charm::MachineBuilder {
    Machine::builder(presets::ib_abe(Topo::ib_cluster(pes, cores)))
}

fn ib_machine(pes: usize, cores: usize) -> Machine {
    ib_builder(pes, cores).build()
}

/// Sum the per-PE breakdowns field-wise; must equal the machine-wide one.
fn sum_pe_breakdowns(m: &Machine) -> ProtoBreakdown {
    let mut total = ProtoBreakdown::default();
    for pe in 0..m.npes() {
        let p = &m.pe_stats(ckd_topo::Pe(pe as u32)).proto_sent;
        for (t, s) in [
            (&mut total.eager, &p.eager),
            (&mut total.rendezvous, &p.rendezvous),
            (&mut total.rdma_put, &p.rdma_put),
            (&mut total.dcmf, &p.dcmf),
            (&mut total.control, &p.control),
        ] {
            t.count += s.count;
            t.bytes += s.bytes;
        }
    }
    total
}

fn assert_breakdowns_equal(a: &ProtoBreakdown, b: &ProtoBreakdown) {
    assert_eq!(a.eager, b.eager, "eager mismatch");
    assert_eq!(a.rendezvous, b.rendezvous, "rendezvous mismatch");
    assert_eq!(a.rdma_put, b.rdma_put, "rdma-put mismatch");
    assert_eq!(a.dcmf, b.dcmf, "dcmf mismatch");
    assert_eq!(a.control, b.control, "control mismatch");
}

// ------------------------------------------------- two-sided reconciliation

/// Each round sends one eager-sized and one rendezvous-sized message to the
/// peer, then both contribute to a barrier (control traffic).
struct Exchanger {
    peer_lin: usize,
    rounds_left: u32,
    small_seen: u32,
    big_seen: u32,
}

impl Chare for Exchanger {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let peer = ctx.element(ctx.me().array, Idx::i1(self.peer_lin));
        match msg.ep {
            EP_START | EP_DONE => {
                if msg.ep == EP_DONE && self.rounds_left == 0 {
                    return;
                }
                if self.rounds_left > 0 {
                    self.rounds_left -= 1;
                    ctx.send(peer, Msg::value(EP_SMALL, 7u32, SMALL));
                    ctx.send(peer, Msg::value(EP_BIG, 9u32, BIG));
                }
                ctx.barrier(EP_DONE);
            }
            EP_SMALL => self.small_seen += 1,
            EP_BIG => self.big_seen += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn two_sided_breakdown_reconciles_with_aggregates() {
    const ROUNDS: u32 = 6;
    let mut m = ib_builder(4, 1)
        .with_tracing(TraceConfig::default())
        .build();
    let arr = m.create_array("x", Dims::d1(2), Mapper::RoundRobin, |idx| {
        Box::new(Exchanger {
            peer_lin: 1 - idx.at(0),
            rounds_left: ROUNDS,
            small_seen: 0,
            big_seen: 0,
        })
    });
    m.seed_broadcast(arr, Msg::signal(EP_START));
    m.run();

    let s = m.stats();
    // both chares ran all rounds
    for lin in 0..2 {
        let c = m.chare::<Exchanger>(m.element(arr, Idx::i1(lin))).unwrap();
        assert_eq!(c.small_seen, ROUNDS);
        assert_eq!(c.big_seen, ROUNDS);
    }
    // protocol split is exact: one eager + one rendezvous per round per chare
    assert_eq!(s.proto.eager.count, 2 * ROUNDS as u64);
    assert_eq!(s.proto.rendezvous.count, 2 * ROUNDS as u64);
    assert_eq!(s.proto.rdma_put.count, 0);
    assert_eq!(s.proto.dcmf.count, 0);
    assert!(
        s.proto.control.count > 0,
        "barriers produce control packets"
    );
    // ...and reconciles with the aggregates
    assert_eq!(s.proto.two_sided().count, s.msgs_sent);
    assert_eq!(s.proto.two_sided().bytes, s.msg_bytes);
    assert_eq!(s.proto.eager.bytes, 2 * (ROUNDS as u64) * SMALL as u64);
    assert_eq!(s.proto.rendezvous.bytes, 2 * (ROUNDS as u64) * BIG as u64);
    // per-PE breakdowns sum to the machine-wide one
    assert_breakdowns_equal(&sum_pe_breakdowns(&m), &s.proto);
    // the trace metrics saw the identical split
    let metrics = m.tracer().metrics().unwrap();
    for (class, counters) in [
        (ProtoClass::Eager, s.proto.eager),
        (ProtoClass::Rendezvous, s.proto.rendezvous),
        (ProtoClass::RdmaPut, s.proto.rdma_put),
        (ProtoClass::Control, s.proto.control),
    ] {
        let t = metrics.proto_stat(class);
        assert_eq!(t.count, counters.count, "{class:?} count");
        assert_eq!(t.bytes, counters.bytes, "{class:?} bytes");
    }
    // every rendezvous transfer produced one reconstructed RTS and CTS
    assert_eq!(metrics.rts, s.proto.rendezvous.count);
    assert_eq!(metrics.cts, s.proto.rendezvous.count);
}

// ------------------------------------------------------- put reconciliation

struct Producer {
    consumer: Option<ChareRef>,
    round: u32,
    rounds: u32,
}

impl Chare for Producer {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                self.consumer = Some(*msg.payload.downcast::<ChareRef>().unwrap());
                self.fire(ctx);
            }
            EP_ACK => {
                if self.round < self.rounds {
                    self.fire(ctx);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

impl Producer {
    fn fire(&mut self, ctx: &mut Ctx<'_>) {
        self.round += 1;
        let payload = vec![0x5au8; 4096];
        let consumer = self.consumer.unwrap();
        ctx.send_learned(consumer, Msg::bytes(EP_DATA, Bytes::from(payload)));
    }
}

struct AckingConsumer {
    producer: Option<ChareRef>,
    received: u32,
}

impl Chare for AckingConsumer {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => self.producer = Some(*msg.payload.downcast::<ChareRef>().unwrap()),
            EP_DATA => {
                self.received += 1;
                ctx.send(self.producer.unwrap(), Msg::signal(EP_ACK));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn put_breakdown_reconciles_with_aggregates() {
    const ROUNDS: u32 = 16;
    let mut m = ib_builder(4, 1)
        .with_learning(LearnConfig { threshold: 3 })
        .with_tracing(TraceConfig::default())
        .build();
    let prod = m.create_array("p", Dims::d1(1), Mapper::Block, |_| {
        Box::new(Producer {
            consumer: None,
            round: 0,
            rounds: ROUNDS,
        })
    });
    let cons = m.create_array("c", Dims::d1(4), Mapper::Block, |_| {
        Box::new(AckingConsumer {
            producer: None,
            received: 0,
        })
    });
    let p = m.element(prod, Idx::i1(0));
    let c = m.element(cons, Idx::i1(3));
    m.seed(c, Msg::value(EP_START, p, 8));
    m.seed(p, Msg::value(EP_START, c, 8));
    m.run();

    let s = m.stats();
    let totals = m.learning_totals();
    assert_eq!(totals.installed, 1);
    assert!(totals.hits > 0, "learned channel never went one-sided");
    // on the RDMA fabric every put is an rdma-put; counts and bytes match
    assert_eq!(s.proto.rdma_put.count, s.puts);
    assert_eq!(s.proto.rdma_put.bytes, s.put_bytes);
    assert_eq!(s.puts, totals.hits);
    assert_eq!(s.proto.two_sided().count, s.msgs_sent);
    assert_eq!(s.proto.two_sided().bytes, s.msg_bytes);
    assert_breakdowns_equal(&sum_pe_breakdowns(&m), &s.proto);
    // trace metrics agree with the stats breakdown and the registry
    let metrics = m.tracer().metrics().unwrap();
    assert_eq!(metrics.proto_stat(ProtoClass::RdmaPut).count, s.puts);
    assert_eq!(metrics.proto_stat(ProtoClass::RdmaPut).bytes, s.put_bytes);
    let reg = m.direct_counters();
    assert_eq!(reg.puts, s.puts);
    assert_eq!(
        metrics.put_to_callback_ns.count(),
        reg.deliveries,
        "each delivered put closes one issue→callback latency sample"
    );
}

/// Under an injected-fault plan a retransmitted put still counts exactly
/// once in every app-visible aggregate — `puts`, `put_bytes`, the
/// per-protocol breakdown, and the registry all match a fault-free run of
/// the same program. The replays surface only in the reliability stats and
/// the trace metrics' dedicated counters.
#[test]
fn retransmitted_puts_count_once_with_retries_separate() {
    const ROUNDS: u32 = 16;
    let run = |plan: Option<FaultPlan>| {
        let mut b = ib_builder(4, 1)
            .with_learning(LearnConfig { threshold: 3 })
            .with_tracing(TraceConfig::default());
        if let Some(p) = plan {
            b = b.with_faults(p);
        }
        let mut m = b.build();
        let prod = m.create_array("p", Dims::d1(1), Mapper::Block, |_| {
            Box::new(Producer {
                consumer: None,
                round: 0,
                rounds: ROUNDS,
            })
        });
        let cons = m.create_array("c", Dims::d1(4), Mapper::Block, |_| {
            Box::new(AckingConsumer {
                producer: None,
                received: 0,
            })
        });
        let p = m.element(prod, Idx::i1(0));
        let c = m.element(cons, Idx::i1(3));
        m.seed(c, Msg::value(EP_START, p, 8));
        m.seed(p, Msg::value(EP_START, c, 8));
        m.run();
        let received = m.chare::<AckingConsumer>(c).unwrap().received;
        (m, received)
    };
    let (clean, clean_rx) = run(None);
    let (faulty, faulty_rx) = run(Some(
        FaultPlan::new(0xACED).with_drop(0.15).with_corrupt(0.05),
    ));

    let rel = faulty.rel_stats();
    assert!(rel.retries > 0, "the plan never bit a put or message");
    // the program itself is oblivious: every payload arrived exactly once
    assert_eq!(clean_rx, ROUNDS);
    assert_eq!(faulty_rx, ROUNDS);
    // app-visible aggregates are identical to the fault-free run — each
    // logical put counted once no matter how often the fabric replayed it
    let (cs, fs) = (clean.stats(), faulty.stats());
    assert_eq!(fs.puts, cs.puts, "retransmits inflated `puts`");
    assert_eq!(
        fs.put_bytes, cs.put_bytes,
        "retransmits inflated `put_bytes`"
    );
    assert_eq!(
        fs.msgs_sent, cs.msgs_sent,
        "retransmits inflated `msgs_sent`"
    );
    assert_eq!(fs.proto.rdma_put, cs.proto.rdma_put);
    assert_eq!(fs.proto.two_sided().count, cs.proto.two_sided().count);
    assert_breakdowns_equal(&sum_pe_breakdowns(&faulty), &fs.proto);
    // the registry agrees: one landing consumed per logical put
    let (creg, freg) = (clean.direct_counters(), faulty.direct_counters());
    assert_eq!(freg.puts, creg.puts);
    assert_eq!(freg.deliveries, creg.deliveries);
    assert_eq!(freg.puts, fs.puts);
    // the retries are visible — but only in the reliability plane
    let metrics = faulty.tracer().metrics().unwrap();
    assert_eq!(metrics.retries, rel.retries, "trace metrics track retries");
    assert_eq!(metrics.drops, rel.drops_injected);
    assert_eq!(
        metrics.proto_stat(ProtoClass::RdmaPut).count,
        fs.puts,
        "trace put records exclude retransmissions"
    );
}

#[test]
fn tracing_is_off_by_default() {
    let m = ib_machine(2, 1);
    assert!(!m.tracer().is_enabled());
    assert!(m.tracer().metrics().is_none());
}

#[test]
fn contributes_show_up_in_reduce_counters() {
    const ROUNDS: u32 = 4;
    let mut m = ib_builder(4, 1)
        .with_tracing(TraceConfig::default())
        .build();
    let arr = m.create_array("x", Dims::d1(4), Mapper::Block, |_| {
        Box::new(Reducer {
            generations: 0,
            rounds: ROUNDS,
        })
    });
    m.seed_broadcast(arr, Msg::signal(EP_START));
    m.run();
    let metrics = m.tracer().metrics().unwrap();
    // one contribute per element per generation, one completion per generation
    assert_eq!(metrics.reduce_contribs, 4 * ROUNDS as u64);
    assert_eq!(metrics.reduce_completes, ROUNDS as u64);
    assert_eq!(m.stats().reductions, ROUNDS as u64);
}

struct Reducer {
    generations: u32,
    rounds: u32,
}

impl Chare for Reducer {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => ctx.contribute(
                RedVal::F64(1.0),
                RedOp::SumF64,
                RedTarget::Broadcast(EP_DONE),
            ),
            EP_DONE => {
                self.generations += 1;
                if self.generations < self.rounds {
                    ctx.contribute(
                        RedVal::F64(1.0),
                        RedOp::SumF64,
                        RedTarget::Broadcast(EP_DONE),
                    );
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
