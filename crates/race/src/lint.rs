//! Static protocol-lifecycle lint for CkDirect application source.
//!
//! A std-only, heuristic source scanner — deliberately not a full parser —
//! that walks `.rs` files for lifecycle misuse patterns the dynamic
//! sanitizer would only catch at run time:
//!
//! * `put-without-ready` — a file issues `direct_put` but never re-arms
//!   with any `direct_ready*` form: after the first exchange every further
//!   put must fail or overwrite live data.
//! * `pollq-without-mark` — `direct_ready_poll_q` with no
//!   `direct_ready_mark` anywhere: poll-queue insertion without a mark is
//!   rejected (`NotMarked`) on the polling backend.
//! * `recv-read-outside-callback` — `direct_recv_region` called from a
//!   function that is not a completion callback: before the callback the
//!   window may hold a partial payload.
//! * `double-put-same-handle` — two `direct_put` calls on the same handle
//!   expression within one function body with no `ready` between them:
//!   channels carry one message at a time.
//! * `swallowed-direct-error` — a `direct_*` result discarded with `let _ =`
//!   or `.ok()`: protocol violations become silent exactly like on real
//!   hardware.
//! * `ignored-put-outcome` — a `direct_put` whose `PutOutcome` is dropped
//!   (bare statement unwrapping the `Result`, or `let _ =`): the app never
//!   learns its channel went `Retried`/`Degraded` under fault injection.
//! * `destroyed-handle-use` — any `direct_*` call on a handle expression
//!   that an earlier `direct_destroy` in the same function already tore
//!   down: the slot may be recycled, so the stale generation is rejected
//!   (`BadHandle`) at run time.
//!
//! False positives are suppressed in source with
//! `// ckd-lint: allow(<rule>)` on the offending line or the line above,
//! or `// ckd-lint: allow-file(<rule>)` anywhere for the whole file.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintFinding {
    /// Source file (as given, not canonicalized).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule name.
    pub rule: &'static str,
    /// Human explanation.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// All rule names, for `--help`-style listings and tests.
pub const RULES: &[&str] = &[
    "put-without-ready",
    "pollq-without-mark",
    "recv-read-outside-callback",
    "double-put-same-handle",
    "swallowed-direct-error",
    "ignored-put-outcome",
    "destroyed-handle-use",
];

/// Lint one source text. `label` is used for reporting only.
pub fn lint_source(label: &Path, src: &str) -> Vec<LintFinding> {
    let lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();

    let allowed_file = |rule: &str| src.contains(&format!("ckd-lint: allow-file({rule})"));
    let allowed_at = |rule: &str, line_idx: usize| {
        let here = lines.get(line_idx).copied().unwrap_or("");
        let above = if line_idx > 0 {
            lines[line_idx - 1]
        } else {
            ""
        };
        let tag = format!("ckd-lint: allow({rule})");
        here.contains(&tag) || above.contains(&tag)
    };
    let mut push = |rule: &'static str, line_idx: usize, message: String| {
        if !allowed_file(rule) && !allowed_at(rule, line_idx) {
            findings.push(LintFinding {
                file: label.to_path_buf(),
                line: line_idx + 1,
                rule,
                message,
            });
        }
    };

    // strip line comments so commented-out calls don't count
    fn code_line(l: &str) -> &str {
        l.split("//").next().unwrap_or("")
    }
    let has_put = lines
        .iter()
        .position(|l| code_line(l).contains("direct_put("));
    let has_ready = lines.iter().any(|l| {
        let c = code_line(l);
        c.contains("direct_ready(")
            || c.contains("direct_ready_mark(")
            || c.contains("direct_ready_poll_q(")
    });
    if let Some(idx) = has_put {
        if !has_ready {
            push(
                "put-without-ready",
                idx,
                "direct_put with no direct_ready/ready_mark/ready_poll_q anywhere in this file; \
                 the channel can never be re-armed for a second iteration"
                    .into(),
            );
        }
    }

    let has_pollq = lines
        .iter()
        .position(|l| code_line(l).contains("direct_ready_poll_q("));
    let has_mark = lines
        .iter()
        .any(|l| code_line(l).contains("direct_ready_mark("));
    if let Some(idx) = has_pollq {
        if !has_mark {
            push(
                "pollq-without-mark",
                idx,
                "direct_ready_poll_q with no direct_ready_mark in this file; \
                 poll-queue insertion without a mark is rejected (NotMarked)"
                    .into(),
            );
        }
    }

    for f in functions(&lines) {
        lint_function(&lines, &f, &mut push);
    }

    findings
}

/// A function's extent in the line list.
struct FnSpan {
    name: String,
    /// Line indices covered by the body (inclusive start of `fn` line).
    start: usize,
    end: usize,
}

/// Locate `fn name(..) { .. }` spans by brace counting. Heuristic: good
/// enough for this workspace's formatting (rustfmt, one fn per `fn ` token).
fn functions(lines: &[&str]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].split("//").next().unwrap_or("");
        if let Some(pos) = code.find("fn ") {
            // only definition sites: the prefix may hold visibility and
            // qualifier keywords, nothing else
            let ok_prefix = code[..pos].split_whitespace().all(|t| {
                matches!(t, "pub" | "async" | "unsafe" | "const" | "default")
                    || t.starts_with("pub(")
                    || t.starts_with("extern")
            });
            let rest = &code[pos + 3..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if ok_prefix && !name.is_empty() {
                // find the opening brace, then balance
                let mut depth = 0i32;
                let mut opened = false;
                let mut j = i;
                'scan: while j < lines.len() {
                    let c = lines[j].split("//").next().unwrap_or("");
                    for ch in c.chars() {
                        match ch {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => {
                                depth -= 1;
                                if opened && depth == 0 {
                                    break 'scan;
                                }
                            }
                            ';' if !opened => break 'scan, // fn signature only (trait decl)
                            _ => {}
                        }
                    }
                    j += 1;
                }
                let end = j.min(lines.len() - 1);
                if opened {
                    spans.push(FnSpan {
                        name,
                        start: i,
                        end,
                    });
                }
            }
        }
        i += 1;
    }
    spans
}

fn lint_function<F: FnMut(&'static str, usize, String)>(lines: &[&str], f: &FnSpan, push: &mut F) {
    let is_callback = f.name.contains("callback");
    // last handle expression put inside this body, pending a ready
    let mut pending_put: Option<(String, usize)> = None;
    // handle expressions torn down earlier in this body
    let mut destroyed: Vec<(String, usize)> = Vec::new();
    for (idx, line) in lines.iter().enumerate().take(f.end + 1).skip(f.start) {
        let code = line.split("//").next().unwrap_or("");

        for (name, arg) in direct_calls(code) {
            if name == "destroy" {
                continue; // double destroy surfaces as BadHandle below too
            }
            if let Some((_, at)) = destroyed.iter().find(|(d, _)| *d == arg) {
                push(
                    "destroyed-handle-use",
                    idx,
                    format!(
                        "direct_{name} on `{arg}` in fn `{}` after direct_destroy on \
                         line {}; the slot may be recycled and the stale generation \
                         is rejected (BadHandle)",
                        f.name,
                        at + 1
                    ),
                );
            }
        }
        if let Some(arg) = call_arg(code, "direct_destroy(") {
            destroyed.push((arg, idx));
        }

        if code.contains("direct_recv_region(") && !is_callback {
            push(
                "recv-read-outside-callback",
                idx,
                format!(
                    "direct_recv_region in fn `{}` (not a completion callback); \
                     the window may hold a partial payload here",
                    f.name
                ),
            );
        }

        if code.contains("direct_ready") {
            pending_put = None;
        }
        if let Some(arg) = call_arg(code, "direct_put(") {
            if let Some((prev, prev_idx)) = &pending_put {
                if *prev == arg {
                    push(
                        "double-put-same-handle",
                        idx,
                        format!(
                            "second direct_put on `{arg}` in fn `{}` with no ready since \
                             line {}; channels carry one message at a time",
                            f.name,
                            prev_idx + 1
                        ),
                    );
                }
            }
            pending_put = Some((arg, idx));
        }

        if code.contains("direct_put(") {
            // Statement head: walk up while the previous line is a
            // continuation (non-empty code that doesn't close a statement
            // or open/close a block) — rustfmt wraps long chains, so the
            // `match`/`let` consuming the outcome may sit lines above.
            let mut head = idx;
            while head > f.start {
                let prev = lines[head - 1].split("//").next().unwrap_or("").trim();
                if prev.is_empty()
                    || prev.ends_with(';')
                    || prev.ends_with('{')
                    || prev.ends_with('}')
                {
                    break;
                }
                head -= 1;
            }
            let h = lines[head].split("//").next().unwrap_or("").trim_start();
            let discards = h.starts_with("let _ =") || h.starts_with("let _:");
            let consumes = !discards
                && (h.starts_with("let ")
                    || h.starts_with("match ")
                    || h.starts_with("if ")
                    || h.starts_with("while ")
                    || h.starts_with("return ")
                    || h.starts_with("assert")
                    || h.starts_with("Ok(")
                    || h.starts_with("Some(")
                    || h.contains(" = "));
            if !consumes {
                push(
                    "ignored-put-outcome",
                    idx,
                    format!(
                        "direct_put in fn `{}` whose PutOutcome is dropped; \
                         a Retried or Degraded channel goes unnoticed",
                        f.name
                    ),
                );
            }
        }

        let trimmed = code.trim_start();
        let swallowed = (trimmed.starts_with("let _ =") && code.contains(".direct_"))
            || (code.contains(".direct_") && code.contains(").ok()"));
        if swallowed {
            push(
                "swallowed-direct-error",
                idx,
                format!(
                    "discarded CkDirect result in fn `{}`; a rejected operation \
                     becomes a silent data race",
                    f.name
                ),
            );
        }
    }
}

/// Every `.direct_<name>(<first_arg>…)` call on this line, textually.
fn direct_calls(code: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(pos) = rest.find(".direct_") {
        let tail = &rest[pos + ".direct_".len()..];
        let name: String = tail
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if let Some(args) = tail[name.len()..].strip_prefix('(') {
            let arg: String = args
                .chars()
                .take_while(|c| *c != ',' && *c != ')')
                .collect();
            let arg = arg.trim().to_string();
            if !name.is_empty() && !arg.is_empty() {
                out.push((name, arg));
            }
        }
        rest = &rest[pos + ".direct_".len()..];
    }
    out
}

/// First argument expression of `call` on this line, textually.
fn call_arg(code: &str, call: &str) -> Option<String> {
    let pos = code.find(call)?;
    let rest = &code[pos + call.len()..];
    let arg: String = rest
        .chars()
        .take_while(|c| *c != ',' && *c != ')')
        .collect();
    let arg = arg.trim().to_string();
    if arg.is_empty() {
        None
    } else {
        Some(arg)
    }
}

/// Lint one file from disk.
pub fn lint_file(path: &Path) -> io::Result<Vec<LintFinding>> {
    let src = fs::read_to_string(path)?;
    Ok(lint_source(path, &src))
}

/// Recursively lint every `.rs` file under each path (files are linted
/// directly). Deterministic order: paths as given, directory entries
/// sorted.
pub fn lint_paths(paths: &[PathBuf]) -> io::Result<Vec<LintFinding>> {
    let mut findings = Vec::new();
    for p in paths {
        walk(p, &mut findings)?;
    }
    Ok(findings)
}

fn walk(path: &Path, findings: &mut Vec<LintFinding>) -> io::Result<()> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(path)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for e in entries {
            walk(&e, findings)?;
        }
    } else if path.extension().is_some_and(|e| e == "rs") {
        findings.extend(lint_file(path)?);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<LintFinding> {
        lint_source(Path::new("test.rs"), src)
    }

    #[test]
    fn put_without_ready_fires_and_ready_silences() {
        let bad = "fn iterate(ctx: &mut Ctx) {\n    ctx.direct_put(h).unwrap();\n}\n";
        let hits = lint(bad);
        assert!(
            hits.iter().any(|f| f.rule == "put-without-ready"),
            "{hits:?}"
        );
        let good = "fn iterate(ctx: &mut Ctx) {\n    ctx.direct_put(h).unwrap();\n}\n\
                    fn direct_callback(ctx: &mut Ctx) {\n    ctx.direct_ready(h).unwrap();\n}\n";
        assert!(lint(good).iter().all(|f| f.rule != "put-without-ready"));
    }

    #[test]
    fn pollq_without_mark() {
        let bad = "fn go(ctx: &mut Ctx) {\n    ctx.direct_ready_poll_q(h).unwrap();\n}\n";
        assert!(lint(bad).iter().any(|f| f.rule == "pollq-without-mark"));
        let good = "fn a(ctx: &mut Ctx) {\n    ctx.direct_ready_mark(h).unwrap();\n}\n\
                    fn b(ctx: &mut Ctx) {\n    ctx.direct_ready_poll_q(h).unwrap();\n}\n";
        assert!(lint(good).iter().all(|f| f.rule != "pollq-without-mark"));
    }

    #[test]
    fn recv_read_outside_callback() {
        let bad = "fn on_iter(ctx: &mut Ctx) {\n    let r = ctx.direct_recv_region(h);\n    \
                   ctx.direct_ready(h).ok_or(0);\n}\n";
        let hits = lint(bad);
        assert!(
            hits.iter().any(|f| f.rule == "recv-read-outside-callback"),
            "{hits:?}"
        );
        let good = "fn direct_callback(ctx: &mut Ctx, h: H) {\n    \
                    let r = ctx.direct_recv_region(h);\n    ctx.direct_ready(h).unwrap();\n}\n";
        assert!(lint(good)
            .iter()
            .all(|f| f.rule != "recv-read-outside-callback"));
    }

    #[test]
    fn double_put_same_handle_needs_ready_between() {
        let bad = "fn send(ctx: &mut Ctx) {\n    ctx.direct_put(self.h).unwrap();\n    \
                   ctx.direct_put(self.h).unwrap();\n    ctx.direct_ready(self.h).unwrap();\n}\n";
        let hits = lint(bad);
        assert_eq!(
            hits.iter()
                .filter(|f| f.rule == "double-put-same-handle")
                .count(),
            1,
            "{hits:?}"
        );
        // different handles: fine
        let ok = "fn send(ctx: &mut Ctx) {\n    ctx.direct_put(self.left).unwrap();\n    \
                  ctx.direct_put(self.right).unwrap();\n    ctx.direct_ready(self.left).unwrap();\n}\n";
        assert!(lint(ok).iter().all(|f| f.rule != "double-put-same-handle"));
        // ready between: fine
        let ok2 = "fn send(ctx: &mut Ctx) {\n    ctx.direct_put(self.h).unwrap();\n    \
                   ctx.direct_ready(self.h).unwrap();\n    ctx.direct_put(self.h).unwrap();\n}\n";
        assert!(lint(ok2).iter().all(|f| f.rule != "double-put-same-handle"));
    }

    #[test]
    fn swallowed_errors_are_reported() {
        let bad = "fn send(ctx: &mut Ctx) {\n    let _ = ctx.direct_put(h);\n    \
                   ctx.direct_ready(h).unwrap();\n}\n";
        assert!(lint(bad).iter().any(|f| f.rule == "swallowed-direct-error"));
        let bad2 = "fn send(ctx: &mut Ctx) {\n    ctx.direct_put(h).ok();\n    \
                    ctx.direct_ready(h).unwrap();\n}\n";
        assert!(lint(bad2)
            .iter()
            .any(|f| f.rule == "swallowed-direct-error"));
    }

    #[test]
    fn ignored_put_outcome_flags_bare_and_discarded_puts() {
        let bare = "fn send(ctx: &mut Ctx) {\n    ctx.direct_put(h).expect(\"put\");\n    \
                    ctx.direct_ready(h).unwrap();\n}\n";
        assert!(lint(bare).iter().any(|f| f.rule == "ignored-put-outcome"));
        let discarded = "fn send(ctx: &mut Ctx) {\n    let _ = ctx.direct_put(h);\n    \
                         ctx.direct_ready(h).unwrap();\n}\n";
        assert!(lint(discarded)
            .iter()
            .any(|f| f.rule == "ignored-put-outcome"));
    }

    #[test]
    fn ignored_put_outcome_respects_consuming_heads() {
        let bound =
            "fn send(ctx: &mut Ctx) {\n    let outcome = ctx.direct_put(h).expect(\"put\");\n    \
                     use_it(outcome);\n    ctx.direct_ready(h).unwrap();\n}\n";
        assert!(lint(bound).iter().all(|f| f.rule != "ignored-put-outcome"));
        // rustfmt-wrapped chain: the consuming `match` sits lines above
        let wrapped = "fn send(ctx: &mut Ctx) {\n    match ctx\n        .direct_put(h)\n        \
                       .expect(\"put\")\n    {\n        _ => {}\n    }\n    \
                       ctx.direct_ready(h).unwrap();\n}\n";
        assert!(lint(wrapped)
            .iter()
            .all(|f| f.rule != "ignored-put-outcome"));
        let asserted = "fn send(ctx: &mut Ctx) {\n    \
                        assert_eq!(ctx.direct_put(h).unwrap(), PutOutcome::Sent);\n    \
                        ctx.direct_ready(h).unwrap();\n}\n";
        assert!(lint(asserted)
            .iter()
            .all(|f| f.rule != "ignored-put-outcome"));
        let allowed = "fn send(ctx: &mut Ctx) {\n    // ckd-lint: allow(ignored-put-outcome)\n    \
                       ctx.direct_put(h).expect(\"put\");\n    ctx.direct_ready(h).unwrap();\n}\n";
        assert!(lint(allowed)
            .iter()
            .all(|f| f.rule != "ignored-put-outcome"));
    }

    #[test]
    fn destroyed_handle_use_is_flagged_per_function() {
        let bad = "fn teardown(ctx: &mut Ctx) {\n    ctx.direct_destroy(self.h).unwrap();\n    \
                   ctx.direct_put(self.h).unwrap();\n    ctx.direct_ready(self.h).unwrap();\n}\n";
        let hits = lint(bad);
        assert_eq!(
            hits.iter()
                .filter(|f| f.rule == "destroyed-handle-use")
                .count(),
            2,
            "{hits:?}"
        );
        // a different handle after the destroy: fine
        let ok = "fn teardown(ctx: &mut Ctx) {\n    ctx.direct_destroy(self.old).unwrap();\n    \
                  ctx.direct_put(self.live).unwrap();\n    ctx.direct_ready(self.live).unwrap();\n}\n";
        assert!(lint(ok).iter().all(|f| f.rule != "destroyed-handle-use"));
        // destroy last (the chanstorm teardown shape): fine
        let last = "fn teardown(ctx: &mut Ctx) {\n    ctx.direct_ready(self.h).unwrap();\n    \
                    ctx.direct_destroy(self.h).unwrap();\n}\n";
        assert!(lint(last).iter().all(|f| f.rule != "destroyed-handle-use"));
        // the scan is per-function: use in a later fn is a fresh body
        let split = "fn a(ctx: &mut Ctx) {\n    ctx.direct_destroy(self.h).unwrap();\n}\n\
                     fn b(ctx: &mut Ctx) {\n    ctx.direct_ready(self.h).unwrap();\n}\n";
        assert!(lint(split).iter().all(|f| f.rule != "destroyed-handle-use"));
        let allowed =
            "fn teardown(ctx: &mut Ctx) {\n    ctx.direct_destroy(self.h).unwrap();\n    \
                       // ckd-lint: allow(destroyed-handle-use)\n    \
                       ctx.direct_ready(self.h).unwrap();\n}\n";
        assert!(lint(allowed)
            .iter()
            .all(|f| f.rule != "destroyed-handle-use"));
    }

    #[test]
    fn allow_comments_suppress() {
        let src = "fn send(ctx: &mut Ctx) {\n    // ckd-lint: allow(swallowed-direct-error)\n    \
                   let _ = ctx.direct_put(h);\n    ctx.direct_ready(h).unwrap();\n}\n";
        assert!(lint(src).iter().all(|f| f.rule != "swallowed-direct-error"));
        let file_level = "// ckd-lint: allow-file(put-without-ready)\n\
                          fn send(ctx: &mut Ctx) {\n    ctx.direct_put(h).unwrap();\n}\n";
        assert!(lint(file_level)
            .iter()
            .all(|f| f.rule != "put-without-ready"));
    }

    #[test]
    fn commented_calls_do_not_count() {
        let src = "fn send(ctx: &mut Ctx) {\n    // ctx.direct_put(h).unwrap();\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn findings_render_with_location() {
        let src = "fn go(ctx: &mut Ctx) {\n    ctx.direct_ready_poll_q(h).unwrap();\n}\n";
        let f = &lint(src)[0];
        assert!(f.to_string().starts_with("test.rs:2: [pollq-without-mark]"));
    }
}
