//! Strided transfer layouts — the first of the paper's proposed extensions
//! ("we are considering several extensions … including support for …
//! strided communication patterns").
//!
//! A [`StridedSpec`] describes `count` blocks of `block_len` bytes placed
//! `stride` bytes apart — a matrix column, a face of a row-major cuboid
//! with interior padding, every k-th particle record. ARMCI (the related
//! work the paper contrasts against) supports exactly such layouts; adding
//! them to CkDirect keeps the unsynchronized model while removing the
//! pack/unpack step from the application.
//!
//! A strided channel still has a *contiguous* wire image (`count ×
//! block_len` bytes, sentinel in its last 8); the runtime gathers from the
//! strided source into the wire image at put time and scatters into the
//! strided destination at land time — and charges for both copies, so the
//! cost model stays honest. (A real NIC with scatter/gather lists would
//! skip the copies; the parameterization makes that a one-line change.)

use crate::error::DirectError;
use crate::region::Region;

/// `count` blocks of `block_len` bytes, `stride` bytes apart, starting at
/// `offset` within a backing region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StridedSpec {
    /// Byte offset of the first block within the backing region.
    pub offset: usize,
    /// Bytes per block.
    pub block_len: usize,
    /// Distance between block starts, in bytes (`>= block_len`).
    pub stride: usize,
    /// Number of blocks.
    pub count: usize,
}

impl StridedSpec {
    /// A contiguous layout (one block).
    pub fn contiguous(offset: usize, len: usize) -> StridedSpec {
        StridedSpec {
            offset,
            block_len: len,
            stride: len,
            count: 1,
        }
    }

    /// Payload bytes moved per transfer.
    pub fn payload_len(&self) -> usize {
        self.block_len * self.count
    }

    /// Last byte (exclusive) the layout touches in its backing region.
    pub fn span(&self) -> usize {
        if self.count == 0 {
            return self.offset;
        }
        self.offset + (self.count - 1) * self.stride + self.block_len
    }

    /// Validate the layout against a backing region.
    pub fn validate(&self, backing: &Region) -> Result<(), DirectError> {
        if self.block_len == 0 || self.count == 0 {
            return Err(DirectError::BufferTooSmall);
        }
        if self.stride < self.block_len {
            return Err(DirectError::RegionOutOfBounds); // blocks overlap
        }
        if self.span() > backing.len() {
            return Err(DirectError::RegionOutOfBounds);
        }
        Ok(())
    }

    /// Gather the strided blocks out of `backing` into the contiguous
    /// `wire` image (which must be exactly `payload_len` bytes).
    pub fn gather(&self, backing: &Region, wire: &Region) {
        assert_eq!(wire.len(), self.payload_len(), "wire image size");
        backing.with(|src| {
            wire.with_mut(|dst| {
                for b in 0..self.count {
                    let s = self.offset + b * self.stride;
                    let d = b * self.block_len;
                    dst[d..d + self.block_len].copy_from_slice(&src[s..s + self.block_len]);
                }
            });
        });
    }

    /// Scatter the contiguous `wire` image into the strided blocks of
    /// `backing`.
    pub fn scatter(&self, wire: &Region, backing: &Region) {
        assert_eq!(wire.len(), self.payload_len(), "wire image size");
        wire.with(|src| {
            backing.with_mut(|dst| {
                for b in 0..self.count {
                    let s = b * self.block_len;
                    let d = self.offset + b * self.stride;
                    dst[d..d + self.block_len].copy_from_slice(&src[s..s + self.block_len]);
                }
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_spec() {
        let s = StridedSpec::contiguous(4, 16);
        assert_eq!(s.payload_len(), 16);
        assert_eq!(s.span(), 20);
    }

    #[test]
    fn span_and_validation() {
        let backing = Region::alloc(100);
        let ok = StridedSpec {
            offset: 4,
            block_len: 8,
            stride: 24,
            count: 4,
        };
        assert_eq!(ok.span(), 4 + 3 * 24 + 8);
        ok.validate(&backing).unwrap();

        let too_far = StridedSpec {
            offset: 40,
            block_len: 8,
            stride: 24,
            count: 4,
        };
        assert_eq!(
            too_far.validate(&backing).unwrap_err(),
            DirectError::RegionOutOfBounds
        );

        let overlapping = StridedSpec {
            offset: 0,
            block_len: 16,
            stride: 8,
            count: 2,
        };
        assert_eq!(
            overlapping.validate(&backing).unwrap_err(),
            DirectError::RegionOutOfBounds
        );

        let empty = StridedSpec {
            offset: 0,
            block_len: 0,
            stride: 8,
            count: 2,
        };
        assert_eq!(
            empty.validate(&backing).unwrap_err(),
            DirectError::BufferTooSmall
        );
    }

    #[test]
    fn gather_scatter_roundtrip_matrix_column() {
        // a 4x4 byte "matrix": move column 2 through a wire image
        let src = Region::alloc(16);
        src.with_mut(|b| {
            for (i, x) in b.iter_mut().enumerate() {
                *x = i as u8;
            }
        });
        let col = StridedSpec {
            offset: 2,
            block_len: 1,
            stride: 4,
            count: 4,
        };
        let wire = Region::alloc(col.payload_len());
        col.gather(&src, &wire);
        assert_eq!(wire.to_vec(), vec![2, 6, 10, 14]);

        // scatter into column 0 of a zeroed destination
        let dst = Region::alloc(16);
        let col0 = StridedSpec {
            offset: 0,
            block_len: 1,
            stride: 4,
            count: 4,
        };
        col0.scatter(&wire, &dst);
        assert_eq!(
            dst.to_vec(),
            vec![2, 0, 0, 0, 6, 0, 0, 0, 10, 0, 0, 0, 14, 0, 0, 0]
        );
    }

    #[test]
    fn gather_scatter_multibyte_blocks() {
        let src = Region::alloc(64);
        src.with_mut(|b| {
            for (i, x) in b.iter_mut().enumerate() {
                *x = (i * 3) as u8;
            }
        });
        let spec = StridedSpec {
            offset: 8,
            block_len: 8,
            stride: 16,
            count: 3,
        };
        let wire = Region::alloc(24);
        spec.gather(&src, &wire);
        let dst = Region::alloc(64);
        spec.scatter(&wire, &dst);
        // the strided windows agree; everything else in dst is zero
        let sv = src.to_vec();
        let dv = dst.to_vec();
        for i in 0..64 {
            let in_window = (8..16).contains(&(i % 16)) && (8..56).contains(&i);
            if in_window {
                assert_eq!(dv[i], sv[i], "byte {i}");
            } else {
                assert_eq!(dv[i], 0, "byte {i} leaked");
            }
        }
    }
}
