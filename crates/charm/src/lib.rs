//! A message-driven runtime in the Charm++ mould, executing on the
//! deterministic discrete-event machine of `ckd-sim`/`ckd-net`.
//!
//! The runtime supplies everything the paper's baseline needs —
//!
//! * **chare arrays** (1–4-D) of message-driven objects with entry methods,
//! * a **per-PE scheduler**: incoming messages pay envelope processing and a
//!   scheduler dequeue before their handler runs,
//! * **contribute/reduce** over a spanning tree of PEs (sum/min/max and
//!   barrier), with broadcast delivery back to the array,
//!
//! — and wires the CkDirect registry (`ckdirect` crate) into the scheduler:
//! the poll sweep runs between handler executions and charges per-handle
//! cost, puts bypass the envelope/allocation/scheduler path entirely, and
//! completion callbacks are plain function calls into the receiving chare.
//!
//! User code runs *for real* (bytes actually move; Jacobi actually
//! converges) while time is virtual: handlers charge compute through
//! [`Ctx::charge`] and friends, so results are independent of the host.

pub mod array;
pub mod backend;
pub mod builder;
pub mod chare;
pub mod config;
pub mod ctx;
pub(crate) mod exec;
pub mod layer;
pub mod learn;
pub mod machine;
pub mod msg;
pub(crate) mod pdes;
pub mod progress;
pub mod reduction;
pub(crate) mod rel;
pub mod stats;

pub use array::ArrayId;
pub use backend::{matching_backend, CompletionBackend, SentinelLayout};
pub use builder::MachineBuilder;
pub use chare::{Chare, ChareRef};
pub use config::{ComputeParams, RtsConfig};
pub use ctx::{Ctx, PutOutcome};
pub use layer::{
    DeliverInfo, Delivery, EventInfo, EventKind, LandingInfo, PutIssueInfo, RuntimeLayer,
};
pub use learn::{LearnConfig, LearningTotals};
pub use machine::Machine;
pub use msg::{EntryId, Msg, Payload};
pub use progress::{BuildError, ProgressConfig};
pub use reduction::{RedOp, RedTarget, RedVal};
pub use stats::{MachineStats, PeStats, ProtoBreakdown, ProtoCounters};
// Tracing and self-profiling entry points, re-exported so applications
// need not depend on `ckd-trace` directly for the common
// enable/export/report flow.
pub use ckd_trace::{
    chrome_trace_json, text_summary, validate_snapshot_jsonl, Hist, Phase, PhaseStat, ProfConfig,
    ProfShard, Profiler, Snapshot, SnapshotStream, TraceConfig, Tracer,
};
// Fault-injection entry points, likewise re-exported for the common
// enable/inspect flow of chaos tests and experiments.
pub use ckd_net::{RelStats, RetryPolicy};
pub use ckd_sim::{FaultCounts, FaultKind, FaultOp, FaultPlan, FaultProbs};
// PDES engine counters, surfaced through `Machine::pdes_stats` when a run
// is sharded with `MachineBuilder::with_shards`.
pub use ckd_sim::pdes::PdesStats;
