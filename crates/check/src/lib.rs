//! `ckd-check` — schedule-space model checking and static channel-protocol
//! analysis for the CkDirect simulation suite.
//!
//! Two heads, one question: *is this program's observable behaviour
//! independent of the order in which unsynchronized one-sided operations
//! complete?*
//!
//! **Dynamic half.** A [`policy::ScriptedPolicy`] plugs into the event
//! queue's reorder seam ([`ckd_sim::ReorderPolicy`]) and records every
//! choice point where more than one event sits inside the commutation
//! window. The [`mod@explore`] module re-executes small runs under
//! systematically varied schedules, pruning with a DPOR-style independence
//! relation built on [`ckd_race::Footprint`] tags: two arrivals commute iff
//! they touch different PEs and different channels. Every non-equivalent
//! schedule must reproduce the canonical run's counter digest and sanitizer
//! cleanliness; the first divergence becomes a replayable
//! [`explore::Counterexample`], and a clean sweep becomes a
//! machine-readable certificate ([`cert`]).
//!
//! **Static half.** [`typestate`] parses each function into a statement
//! tree and tracks the handle protocol `create → assoc → armed → put →
//! consumed` across branches and loops — flagging double puts, reads
//! outside completion callbacks, skipped re-arms on one branch arm, puts
//! before assoc, and dropped armed handles. [`commgraph`] extracts the
//! entry-point communication graph and reports cycles through the
//! one-sided plane (ready-wait loops).
//!
//! The binary (`ckd-check`) wires both halves into `certify`, `mutant`,
//! `lint`, and `validate` subcommands; `scripts/check.sh` gates on all of
//! them.

pub mod cases;
pub mod cert;
pub mod commgraph;
pub mod explore;
pub mod policy;
pub mod typestate;

pub use cases::CheckCase;
pub use cert::{certificate_json, validate_certificate_json, CaseReport, SCHEMA};
pub use commgraph::{extract as extract_commgraph, CommGraph};
pub use explore::{explore, Counterexample, Exploration, ExploreStats, Outcome};
pub use policy::{Decision, Prescription, ScheduleTrace, ScriptedPolicy};
pub use typestate::{analyze_paths, analyze_source, typestate_gate, TsFinding, TS_RULES};
