#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
#
# The development environment has no network access, so every cargo call
# runs with --offline; the workspace is std-only (plus the vendored
# crates/bytes) and needs nothing from a registry.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

# Scratch hygiene: no untracked top-level directories (stray examples_tmp/,
# scratch/, … must either be committed or cleaned up before the gate).
echo "==> no untracked top-level scratch directories"
stray=$(git status --porcelain --untracked-files=normal \
    | awk '$1 == "??" && $2 ~ /^[^\/]+\/$/ {print $2}')
if [ -n "$stray" ]; then
    echo "error: untracked top-level directories present:" >&2
    echo "$stray" >&2
    exit 1
fi

run cargo build --release --offline --workspace
run cargo test --offline --workspace -q

# The Machine decomposition must hold: no runtime source file regrows into
# a monolith.
echo "==> charm source files stay under 700 lines"
oversize=$(find crates/charm/src -name '*.rs' -exec wc -l {} + \
    | awk '$2 != "total" && $1 > 700 {print $2 " (" $1 " lines)"}')
if [ -n "$oversize" ]; then
    echo "error: crates/charm/src files exceed 700 lines:" >&2
    echo "$oversize" >&2
    exit 1
fi

# Public docs must build clean (broken intra-doc links, bad code fences).
echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" run cargo doc --offline --no-deps --workspace -q

if cargo fmt --version >/dev/null 2>&1; then
    run cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format check"
fi

if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lints"
fi

# CkDirect lifecycle lint: a std-only static pass over the application and
# example sources (put-without-ready, reads outside callbacks, swallowed
# direct errors, ...). Deliberate misuse in the mutant suite is annotated
# with `ckd-lint: allow(...)` markers, so a clean run is expected.
run cargo run --release --offline -q -p ckd-race --bin lint_direct -- \
    crates/apps/src examples

# Racy-mutant suite: every deliberately-broken app must be *caught* by the
# happens-before sanitizer, and the correct apps must stay clean.
run cargo test --release --offline -q -p ckd-apps mutants
run cargo test --release --offline -q --test sanitizer_races

# Chaos suite: every app must survive seeded drop/corrupt/duplicate/delay
# schedules byte-identical to its fault-free run, sanitizer-clean, with
# retransmits visible only in the reliability stats.
run cargo test --release --offline -q --test fault_recovery
run cargo test --release --offline -q --test trace_determinism

# Cross-backend differential conformance: all four completion backends
# (sentinel polling, DCMF callbacks, notified puts, shared-mem flags)
# must deliver identical data/callbacks on the same apps, each with its
# own cost signature, and the async-progress engine must be transparent.
run cargo test --release --offline -q --test backend_conformance

# Sweep engine: a tiny grid on 2 workers must merge byte-identical to the
# 1-worker pass, the committed trajectory files must parse against the
# ckd-sweep schema (v1 through v4), and the full 64-run sweep must
# reproduce the committed virtual-time baseline within the host-tolerant
# wall and throughput budgets.
run ./target/release/ckd-sweep smoke --workers 2

# PDES smoke: a small traced Jacobi on the 2-shard conservative-lookahead
# engine must export byte-identical trace/summary/stats to the serial run
# (the one-command version of tests/pdes_determinism.rs).
run ./target/release/ckd-sweep pdes

# Backend-comparison smoke: the 16-point grid behind BENCH_backends.json
# (4 apps x 4 completion backends) must run on 2 workers and emit a valid
# v4 file; bench_gate.sh byte-compares it against the committed baseline.
run ./target/release/ckd-sweep backends --workers 2 \
    --out target/BENCH_backends_fresh.json

# Channel-storm smoke: 100k persistent channels registered on one PE with
# a 64-channel active window must complete, tear down every slab slot,
# stay byte-identical across the serial and 2-shard PDES engines, and —
# the point of the sharded poll rings — keep per-sweep host cost flat
# while the registered herd grows 100x. All asserted inside the binary.
run ./target/release/ckd-sweep channels --out target/BENCH_channels_fresh.json
run ./target/release/ckd-sweep validate \
    BENCH_table1.json BENCH_jacobi.json BENCH_matmul.json BENCH_sweep.json \
    BENCH_channels.json BENCH_backends.json
run scripts/bench_gate.sh

# Profiler smoke: the profiled smoke grid must emit structurally valid
# snapshot JSONL streams that are byte-identical across worker counts,
# then print the merged phase/histogram report.
run ./target/release/ckd-sweep profile --workers 2

# Schedule-space model checker: the four paper apps must certify as
# order-independent (with the DPOR pruning ratio gated at >= 2x inside the
# binary), the emitted certificate must validate, the schedule-dependent
# mutant — clean under the canonical schedule — must be caught with a
# replayable counterexample, and the typestate pass must flag exactly the
# racy mutants while every correct app stays clean.
run ./target/release/ckd-check certify --budget 48 --out target/ckd-check-cert.json
run ./target/release/ckd-check validate target/ckd-check-cert.json
# ...and again over the PDES safe window: exploring schedules within the
# sharded engine's round width (the IB fabric's 4550 ns minimum cross-node
# latency) must still find every interleaving result-equivalent, i.e. the
# independence certificates cover exactly the reorderings sharded rounds
# could ever expose.
run ./target/release/ckd-check certify --window-ns 4550 --budget 48 \
    --out target/ckd-check-pdes-cert.json
run ./target/release/ckd-check validate target/ckd-check-pdes-cert.json
run ./target/release/ckd-check mutant --budget 16
run ./target/release/ckd-check lint --gate crates/apps/src

echo "All checks passed."
