//! The §4.2 3-D matrix multiplication with real data: verifies `C = A·B`
//! against a serial DGEMM for both transports and reports the timing gap,
//! including the no-copy multicast of operand blocks (one CkDirect source
//! buffer associated with many handles).
//!
//! ```text
//! cargo run --release --example matmul
//! ```

use ckd_apps::matmul3d::{run_matmul_verify, serial_product, MatmulCfg};
use ckd_apps::{Platform, Variant};

fn main() {
    let n = 96;
    let grid = 4;
    let cfg = |variant| MatmulCfg {
        n,
        grid,
        iters: 2,
        variant,
        real_compute: true,
    };
    let platform = Platform::Bgp;
    let pes = 16;

    println!(
        "MatMul {n}x{n}, {grid}^3 = {} chares on {pes} PEs ({})",
        grid * grid * grid,
        platform.label()
    );

    let (msg_result, msg_c) = run_matmul_verify(platform, pes, cfg(Variant::Msg));
    let (ckd_result, ckd_c) = run_matmul_verify(platform, pes, cfg(Variant::Ckd));
    let want = serial_product(n);

    let em = msg_c.dist(&want);
    let ec = ckd_c.dist(&want);
    assert!(em < 1e-9 && ec < 1e-9, "verification failed: {em} {ec}");
    println!("verification: both variants match the serial product (|err| < 1e-9)");
    assert_eq!(
        msg_c.as_slice(),
        ckd_c.as_slice(),
        "variants must agree bitwise"
    );
    println!("verification: MSG and CKD results are bitwise identical");
    println!();
    println!(
        "time per multiplication: MSG {:.1} us, CKD {:.1} us ({:.1}% faster)",
        msg_result.time_per_iter.as_us_f64(),
        ckd_result.time_per_iter.as_us_f64(),
        100.0 * (msg_result.time_per_iter.as_secs_f64() - ckd_result.time_per_iter.as_secs_f64())
            / msg_result.time_per_iter.as_secs_f64()
    );
    println!("(scaling behaviour: `cargo bench --bench fig3`)");
}
