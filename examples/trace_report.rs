//! Trace a jacobi3d run on the Abe (Infiniband) preset and emit both
//! `ckd-trace` exports:
//!
//! * `target/jacobi3d.trace.json` — Chrome trace-event JSON; open it in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` to see one
//!   timeline track per PE with message sends, put issues/landings,
//!   callback fires, poll sweeps, and busy spans.
//! * `target/jacobi3d.summary.txt` — plain-text per-protocol and
//!   per-channel breakdown.
//!
//! The example also cross-checks the trace metrics against the machine's
//! own counters: the per-protocol put/message counts visible in the export
//! must reconcile with `MachineStats`.

use ckd_apps::jacobi3d::{run_jacobi_on, JacobiCfg};
use ckd_apps::{Platform, Variant};
use ckd_charm::{chrome_trace_json, text_summary, TraceConfig};
use ckd_trace::ProtoClass;

fn main() {
    let pes = 8;
    let mut m = Platform::IbAbe { cores_per_node: 8 }
        .builder(pes)
        .with_tracing(TraceConfig::default())
        .build();

    let cfg = JacobiCfg {
        domain: [48, 48, 48],
        chares: [4, 2, 2], // 2 chares per PE
        iters: 12,
        variant: Variant::Ckd,
        real_compute: true,
    };
    let res = run_jacobi_on(&mut m, cfg);

    // --- reconcile trace metrics with the machine's own counters ---------
    let stats = m.stats().clone();
    let metrics = m.tracer().metrics().expect("tracing was enabled");
    let puts_traced = metrics.proto_stat(ProtoClass::RdmaPut).count;
    let msgs_traced = metrics.proto_stat(ProtoClass::Eager).count
        + metrics.proto_stat(ProtoClass::Rendezvous).count
        + metrics.proto_stat(ProtoClass::Dcmf).count;
    assert_eq!(
        puts_traced, stats.puts,
        "traced puts must match MachineStats"
    );
    assert_eq!(
        puts_traced, stats.proto.rdma_put.count,
        "trace and stats breakdowns disagree on puts"
    );
    assert_eq!(
        msgs_traced, stats.msgs_sent,
        "traced messages must match MachineStats"
    );
    assert_eq!(
        metrics.proto_stat(ProtoClass::RdmaPut).bytes,
        stats.put_bytes,
        "traced put bytes must match MachineStats"
    );
    assert_eq!(
        metrics.proto_stat(ProtoClass::Control).count,
        stats.proto.control.count,
        "traced control packets must match the stats breakdown"
    );
    let direct = m.direct_counters();
    assert_eq!(
        metrics.put_to_callback_ns.count(),
        direct.deliveries,
        "every delivered put closes one latency sample"
    );

    // --- emit both exports ----------------------------------------------
    let json = chrome_trace_json(m.tracer()).expect("enabled tracer exports");
    let summary = text_summary(m.tracer()).expect("enabled tracer exports");
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/jacobi3d.trace.json", &json).expect("write trace json");
    std::fs::write("target/jacobi3d.summary.txt", &summary).expect("write summary");

    println!("{summary}");
    println!(
        "jacobi3d {}x{}x{} on {} PEs: {} iters, {} / iter",
        cfg.domain[0], cfg.domain[1], cfg.domain[2], pes, res.iters, res.time_per_iter
    );
    println!(
        "wrote target/jacobi3d.trace.json ({} bytes) — load it in Perfetto",
        json.len()
    );
    println!(
        "wrote target/jacobi3d.summary.txt ({} bytes)",
        summary.len()
    );
}
