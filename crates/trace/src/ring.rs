//! Bounded per-PE event storage.
//!
//! Tracing a long run can produce far more records than memory should hold,
//! so each PE buffers into a fixed-capacity ring. When the ring is full the
//! *oldest* record is overwritten (the most recent window of activity is the
//! useful one for debugging) and a drop counter records how much history was
//! lost — saturation is always visible, never silent.

use std::collections::VecDeque;

use crate::event::Record;

/// Fixed-capacity ring of trace records with overwrite-oldest semantics.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: VecDeque<Record>,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `cap` records (`cap` ≥ 1 is enforced).
    pub fn new(cap: usize) -> EventRing {
        let cap = cap.max(1);
        EventRing {
            buf: VecDeque::with_capacity(cap),
            cap,
            dropped: 0,
        }
    }

    /// Append a record, evicting the oldest one if the ring is full.
    #[inline]
    pub fn push(&mut self, rec: Record) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use ckd_sim::Time;

    fn rec(i: u64) -> Record {
        Record {
            at: Time::from_ns(i),
            ev: TraceEvent::QueueDepth { depth: i as u32 },
        }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = EventRing::new(8);
        for i in 0..5 {
            r.push(rec(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let times: Vec<_> = r.iter().map(|x| x.at.as_ps()).collect();
        assert_eq!(times, vec![0, 1_000, 2_000, 3_000, 4_000]);
    }

    #[test]
    fn saturation_reports_drop_count_and_keeps_newest() {
        let mut r = EventRing::new(4);
        for i in 0..10 {
            r.push(rec(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6, "6 of 10 records must be counted as lost");
        let times: Vec<_> = r.iter().map(|x| x.at).collect();
        assert_eq!(
            times,
            (6..10).map(Time::from_ns).collect::<Vec<_>>(),
            "the newest window survives"
        );
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = EventRing::new(0);
        r.push(rec(1));
        r.push(rec(2));
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
