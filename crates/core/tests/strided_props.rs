//! Strided-layout extents checked against naive element enumeration: for
//! every randomized spec we list each absolute byte the layout should
//! touch, then require `span`/`payload_len`/`validate`/`gather`/`scatter`
//! to agree with that list exactly — no formula is trusted on its own.

use ckd_sim::DetRng;
use ckdirect::{DirectError, Region, StridedSpec};

const CASES: u64 = 128;

/// Every absolute byte index `(backing_idx, wire_idx)` the spec touches,
/// enumerated block by block with no arithmetic shortcuts.
fn enumerate(spec: &StridedSpec) -> Vec<(usize, usize)> {
    let mut touched = Vec::new();
    for b in 0..spec.count {
        for j in 0..spec.block_len {
            touched.push((spec.offset + b * spec.stride + j, b * spec.block_len + j));
        }
    }
    touched
}

fn random_spec(s: &mut DetRng) -> StridedSpec {
    let block_len = s.range(1, 16) as usize;
    StridedSpec {
        offset: s.range(0, 32) as usize,
        block_len,
        stride: block_len + s.range(0, 24) as usize,
        count: s.range(1, 12) as usize,
    }
}

#[test]
fn span_and_payload_match_naive_enumeration() {
    let mut s = DetRng::new(0x57A1).stream("extents");
    for case in 0..CASES {
        let spec = random_spec(&mut s);
        let touched = enumerate(&spec);
        // payload is the number of bytes moved; stride >= block_len means
        // blocks never overlap, so the enumeration has no duplicates
        assert_eq!(spec.payload_len(), touched.len(), "case {case}: {spec:?}");
        let mut seen: Vec<usize> = touched.iter().map(|&(src, _)| src).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), touched.len(), "case {case}: blocks overlap");
        // span is one past the last byte touched
        let last = touched.iter().map(|&(src, _)| src).max().unwrap();
        assert_eq!(spec.span(), last + 1, "case {case}: {spec:?}");
        // wire indices cover 0..payload_len exactly once, in order
        for (w, &(_, wire)) in touched.iter().enumerate() {
            assert_eq!(wire, w, "case {case}: wire image has a hole");
        }
    }
}

#[test]
fn validate_accepts_exactly_the_enumerated_footprint() {
    let mut s = DetRng::new(0x57A2).stream("validate");
    for case in 0..CASES {
        let spec = random_spec(&mut s);
        // a backing sized to the naive footprint is the tightest legal fit
        let exact = Region::alloc(spec.span());
        spec.validate(&exact).unwrap();
        if spec.span() > 0 {
            let short = Region::alloc(spec.span() - 1);
            assert_eq!(
                spec.validate(&short).unwrap_err(),
                DirectError::RegionOutOfBounds,
                "case {case}: one byte short must fail"
            );
        }
        // shrinking the stride below block_len makes blocks overlap
        let overlapping = StridedSpec {
            stride: spec.block_len.saturating_sub(1).max(1),
            block_len: spec.block_len.max(2),
            ..spec
        };
        assert_eq!(
            overlapping.validate(&Region::alloc(4096)).unwrap_err(),
            DirectError::RegionOutOfBounds,
            "case {case}"
        );
    }
    // degenerate shapes are rejected up front
    let backing = Region::alloc(64);
    for degenerate in [
        StridedSpec {
            offset: 0,
            block_len: 0,
            stride: 4,
            count: 2,
        },
        StridedSpec {
            offset: 0,
            block_len: 4,
            stride: 4,
            count: 0,
        },
    ] {
        assert_eq!(
            degenerate.validate(&backing).unwrap_err(),
            DirectError::BufferTooSmall
        );
    }
}

#[test]
fn gather_matches_per_byte_enumeration() {
    let mut s = DetRng::new(0x57A3).stream("gather");
    for case in 0..CASES {
        let spec = random_spec(&mut s);
        let backing = Region::alloc(spec.span() + s.range(0, 16) as usize);
        backing.with_mut(|b| {
            for (i, x) in b.iter_mut().enumerate() {
                *x = (i as u8).wrapping_mul(31).wrapping_add(case as u8);
            }
        });
        let wire = Region::alloc(spec.payload_len());
        spec.gather(&backing, &wire);

        let src = backing.to_vec();
        let got = wire.to_vec();
        for (src_idx, wire_idx) in enumerate(&spec) {
            assert_eq!(
                got[wire_idx], src[src_idx],
                "case {case}: wire[{wire_idx}] != backing[{src_idx}]"
            );
        }
    }
}

#[test]
fn scatter_matches_per_byte_enumeration_and_leaves_gaps_alone() {
    let mut s = DetRng::new(0x57A4).stream("scatter");
    for case in 0..CASES {
        let spec = random_spec(&mut s);
        let wire = Region::alloc(spec.payload_len());
        wire.with_mut(|b| {
            for (i, x) in b.iter_mut().enumerate() {
                *x = (i as u8).wrapping_mul(7).wrapping_add(1);
            }
        });
        let backing = Region::alloc(spec.span() + s.range(0, 16) as usize);
        let fill = 0xEE;
        backing.with_mut(|b| b.fill(fill));
        spec.scatter(&wire, &backing);

        let src = wire.to_vec();
        let got = backing.to_vec();
        let touched = enumerate(&spec);
        for &(dst_idx, wire_idx) in &touched {
            assert_eq!(
                got[dst_idx], src[wire_idx],
                "case {case}: backing[{dst_idx}] != wire[{wire_idx}]"
            );
        }
        // every byte outside the enumerated footprint is untouched
        let mut in_footprint = vec![false; got.len()];
        for &(dst_idx, _) in &touched {
            in_footprint[dst_idx] = true;
        }
        for (i, &byte) in got.iter().enumerate() {
            if !in_footprint[i] {
                assert_eq!(byte, fill, "case {case}: scatter leaked into byte {i}");
            }
        }
    }
}

#[test]
fn gather_then_scatter_roundtrips_through_the_wire_image() {
    let mut s = DetRng::new(0x57A5).stream("roundtrip");
    for case in 0..CASES / 2 {
        let spec = random_spec(&mut s);
        let src = Region::alloc(spec.span());
        src.with_mut(|b| {
            for (i, x) in b.iter_mut().enumerate() {
                *x = (i as u8).wrapping_mul(13);
            }
        });
        let wire = Region::alloc(spec.payload_len());
        spec.gather(&src, &wire);
        let dst = Region::alloc(spec.span());
        spec.scatter(&wire, &dst);
        let (sv, dv) = (src.to_vec(), dst.to_vec());
        for (idx, _) in enumerate(&spec) {
            assert_eq!(dv[idx], sv[idx], "case {case}: byte {idx}");
        }
    }
}
