//! The MPI pingpong benchmark of Tables 1–2, in two-sided and
//! `MPI_Put`+PSCW variants.

use ckd_net::NetModel;
use ckd_sim::Time;

use crate::flavor::MpiFlavor;
use crate::world::{MpiCtx, MpiProc, MpiWorld, Rank, ReqId};

/// Which primitive the pingpong exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PingMode {
    /// `isend`/`irecv` (what the tables call the plain MPI rows).
    TwoSided,
    /// `MPI_Put` under post–start–complete–wait epochs.
    OneSidedPscw,
}

const TAG: u32 = 3;

/// Two-sided pingpong endpoint.
struct TwoSidedProc {
    peer: Rank,
    bytes: usize,
    iters: u32,
    initiator: bool,
    recv_req: Option<ReqId>,
    done: u32,
}

impl TwoSidedProc {
    fn fire(&mut self, ctx: &mut MpiCtx<'_>) {
        ctx.isend(self.peer, TAG, self.bytes);
        self.recv_req = Some(ctx.irecv(self.peer, TAG, self.bytes));
    }
}

impl MpiProc for TwoSidedProc {
    fn start(&mut self, ctx: &mut MpiCtx<'_>) {
        if self.initiator {
            self.fire(ctx);
        } else {
            self.recv_req = Some(ctx.irecv(self.peer, TAG, self.bytes));
        }
    }

    fn completed(&mut self, ctx: &mut MpiCtx<'_>, req: ReqId) {
        if Some(req) != self.recv_req {
            return; // send completion — not the gate
        }
        self.done += 1;
        if self.initiator {
            if self.done < self.iters {
                self.fire(ctx);
            } else {
                ctx.finalize();
            }
        } else {
            ctx.isend(self.peer, TAG, self.bytes);
            if self.done < self.iters {
                self.recv_req = Some(ctx.irecv(self.peer, TAG, self.bytes));
            }
        }
    }
}

/// PSCW pingpong endpoint: alternates an access epoch (put to the peer)
/// with an exposure epoch (peer puts back).
struct PscwProc {
    peer: Rank,
    bytes: usize,
    iters: u32,
    initiator: bool,
    start_req: Option<ReqId>,
    wait_req: Option<ReqId>,
    done: u32,
}

impl PscwProc {
    fn begin_access(&mut self, ctx: &mut MpiCtx<'_>) {
        self.start_req = Some(ctx.win_start(self.peer));
    }

    fn begin_exposure(&mut self, ctx: &mut MpiCtx<'_>) {
        ctx.win_post(self.peer);
        self.wait_req = Some(ctx.win_wait(self.peer));
    }
}

impl MpiProc for PscwProc {
    fn start(&mut self, ctx: &mut MpiCtx<'_>) {
        if self.initiator {
            self.begin_access(ctx);
            // expose for the reply in parallel with our access epoch
            self.begin_exposure(ctx);
        } else {
            self.begin_exposure(ctx);
        }
    }

    fn completed(&mut self, ctx: &mut MpiCtx<'_>, req: ReqId) {
        if Some(req) == self.start_req {
            self.start_req = None;
            ctx.put(self.peer, self.bytes);
            ctx.win_complete(self.peer);
        } else if Some(req) == self.wait_req {
            self.wait_req = None;
            self.done += 1;
            if self.initiator {
                if self.done < self.iters {
                    self.begin_access(ctx);
                    self.begin_exposure(ctx);
                } else {
                    ctx.finalize();
                }
            } else {
                // reply with our own access epoch, then expose for the next
                self.begin_access(ctx);
                if self.done < self.iters {
                    self.begin_exposure(ctx);
                }
            }
        }
        // put/complete request completions are not gates
    }
}

/// Average round-trip time of `iters` pingpong exchanges of `bytes`
/// between PE 0 and PE 1 of `net`'s machine under `flavor`.
pub fn pingpong_rtt(
    net: &NetModel,
    flavor: MpiFlavor,
    bytes: usize,
    iters: u32,
    mode: PingMode,
) -> Time {
    assert!(iters > 0);
    let mut w = MpiWorld::new(net.clone(), flavor);
    assert!(w.nranks() >= 2, "pingpong needs two ranks");
    // Pick the partner on a different node when one exists: the tables
    // measure the network, not the intra-node shared-memory path.
    let mach = net.machine();
    let peer = (1..w.nranks())
        .find(|&r| !mach.same_node(ckd_topo::Pe(0), ckd_topo::Pe(r as u32)))
        .unwrap_or(1);
    match mode {
        PingMode::TwoSided => {
            w.set_proc(
                0,
                Box::new(TwoSidedProc {
                    peer,
                    bytes,
                    iters,
                    initiator: true,
                    recv_req: None,
                    done: 0,
                }),
            );
            w.set_proc(
                peer,
                Box::new(TwoSidedProc {
                    peer: 0,
                    bytes,
                    iters,
                    initiator: false,
                    recv_req: None,
                    done: 0,
                }),
            );
        }
        PingMode::OneSidedPscw => {
            w.set_proc(
                0,
                Box::new(PscwProc {
                    peer,
                    bytes,
                    iters,
                    initiator: true,
                    start_req: None,
                    wait_req: None,
                    done: 0,
                }),
            );
            w.set_proc(
                peer,
                Box::new(PscwProc {
                    peer: 0,
                    bytes,
                    iters,
                    initiator: false,
                    start_req: None,
                    wait_req: None,
                    done: 0,
                }),
            );
        }
    }
    let end = w.run();
    end / iters as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor;
    use ckd_net::presets;
    use ckd_topo::Machine as Topo;

    fn ib_net() -> NetModel {
        presets::ib_abe(Topo::ib_cluster(2, 1))
    }

    fn bgp_net() -> NetModel {
        presets::bgp_surveyor(Topo::bgp_partition(4))
    }

    #[test]
    fn two_sided_rtt_small_message_plausible() {
        let rtt = pingpong_rtt(&ib_net(), flavor::mvapich(), 100, 50, PingMode::TwoSided);
        let us = rtt.as_us_f64();
        // Table 1: MVAPICH 100 B RTT = 12.3 µs
        assert!((9.0..16.0).contains(&us), "got {us}");
    }

    #[test]
    fn two_sided_rtt_large_message_plausible() {
        let rtt = pingpong_rtt(&ib_net(), flavor::mvapich(), 500_000, 5, PingMode::TwoSided);
        let us = rtt.as_us_f64();
        // Table 1: MVAPICH 500 KB RTT = 1386 µs
        assert!((1250.0..1500.0).contains(&us), "got {us}");
    }

    #[test]
    fn pscw_slower_than_two_sided_for_small() {
        let two = pingpong_rtt(&ib_net(), flavor::mvapich(), 100, 50, PingMode::TwoSided);
        let one = pingpong_rtt(
            &ib_net(),
            flavor::mvapich(),
            100,
            50,
            PingMode::OneSidedPscw,
        );
        assert!(one > two, "PSCW {one} must exceed two-sided {two} at 100B");
    }

    #[test]
    fn pscw_wins_for_large_messages() {
        // Table 1: MVAPICH-Put beats two-sided from ~70 KB up
        let two = pingpong_rtt(&ib_net(), flavor::mvapich(), 200_000, 5, PingMode::TwoSided);
        let one = pingpong_rtt(
            &ib_net(),
            flavor::mvapich(),
            200_000,
            5,
            PingMode::OneSidedPscw,
        );
        assert!(one < two, "PSCW {one} must beat two-sided {two} at 200KB");
    }

    #[test]
    fn bgp_rtt_plausible() {
        let rtt = pingpong_rtt(&bgp_net(), flavor::ibm_bgp(), 100, 50, PingMode::TwoSided);
        let us = rtt.as_us_f64();
        // Table 2: MPI 100 B RTT = 7.6 µs
        assert!((5.0..11.0).contains(&us), "got {us}");
    }

    #[test]
    fn rtt_scales_with_iterations_consistently() {
        let a = pingpong_rtt(&ib_net(), flavor::mvapich(), 10_000, 10, PingMode::TwoSided);
        let b = pingpong_rtt(
            &ib_net(),
            flavor::mvapich(),
            10_000,
            100,
            PingMode::TwoSided,
        );
        let rel = (a.as_us_f64() - b.as_us_f64()).abs() / b.as_us_f64();
        assert!(rel < 0.05, "per-iteration RTT unstable: {a} vs {b}");
    }
}
