//! The §4.1 halo-exchange stencil, end to end with *real* data: runs the
//! message-based and CkDirect variants on a small 3-D heat-diffusion
//! problem, verifies both against a serial reference bit for bit, and
//! reports the iteration-time difference.
//!
//! ```text
//! cargo run --release --example jacobi_stencil
//! cargo run --release --example jacobi_stencil -- --shards 4
//! ```
//!
//! `--shards N` runs both variants on the parallel-in-virtual-time engine
//! (N OS threads, conservative lookahead; DESIGN §14). Every number
//! printed — residual, grid bits, iteration times — is identical either
//! way: sharding changes how the simulation executes, never what it
//! computes.

use ckd_apps::jacobi3d::{improvement_percent, run_jacobi_grid_on, serial_jacobi, JacobiCfg};
use ckd_apps::{Platform, Variant};

fn shards_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--shards" {
            let v = args.next().expect("--shards needs a value");
            let n: usize = v.parse().expect("--shards needs a number");
            assert!(n >= 1, "--shards must be >= 1");
            return n;
        }
    }
    1
}

fn main() {
    let shards = shards_from_args();
    let domain = [32, 32, 16];
    let iters = 25;
    let cfg = |variant| JacobiCfg {
        domain,
        chares: [4, 4, 2],
        iters,
        variant,
        real_compute: true,
    };
    let platform = Platform::IbAbe { cores_per_node: 8 };
    let pes = 8;

    println!(
        "Jacobi3D, {}x{}x{} domain, 32 chares on {pes} PEs ({}), {iters} iterations{}",
        domain[0],
        domain[1],
        domain[2],
        platform.label(),
        if shards > 1 {
            format!(", {shards} PDES shards")
        } else {
            String::new()
        }
    );

    let run = |variant| {
        let mut m = platform.builder(pes).with_shards(shards).build();
        let out = run_jacobi_grid_on(&mut m, cfg(variant));
        (out, m.pdes_stats())
    };
    let ((msg_result, msg_grid), _) = run(Variant::Msg);
    let ((ckd_result, ckd_grid), pdes) = run(Variant::Ckd);
    let reference = serial_jacobi(domain, iters);

    assert_eq!(msg_grid, reference, "MSG grid differs from serial");
    assert_eq!(ckd_grid, reference, "CKD grid differs from serial");
    println!("verification: both variants match the serial reference bit for bit");
    println!("final residual: {:.6e}", msg_result.residual);
    if let Some(s) = pdes {
        println!(
            "PDES engine: {} shards, {} rounds, {} cross-shard events, {} window spills",
            s.shards, s.rounds, s.cross_shard, s.window_spills
        );
    }
    println!();
    println!(
        "{:<22} {:>14} {:>14}",
        "", "MSG (messages)", "CKD (CkDirect)"
    );
    println!(
        "{:<22} {:>14.1} {:>14.1}",
        "us per iteration",
        msg_result.time_per_iter.as_us_f64(),
        ckd_result.time_per_iter.as_us_f64()
    );
    println!(
        "CkDirect improvement: {:.2}% (gains grow with processor count — see `cargo bench --bench fig2`)",
        improvement_percent(msg_result.time_per_iter, ckd_result.time_per_iter)
    );
}
