//! The reliable-delivery layer: what survives the fault plane.
//!
//! When faults are enabled ([`crate::Machine::enable_faults`]), every
//! remote message and every CkDirect put passes through this layer instead
//! of being scheduled directly:
//!
//! * the sender records a **pending entry** (the delivery event, its link,
//!   its sequence number) and submits the packet to the
//!   [`FaultPlan`](ckd_sim::FaultPlan), which may deliver, drop, corrupt,
//!   duplicate, or delay it;
//! * the receiver acks every intact arrival (acks traverse the fault plane
//!   too), dedups by sequence number — [`ckd_net::LinkSeqs`] for messages,
//!   [`DirectRegistry::accept_landing`](ckdirect::DirectRegistry::accept_landing)
//!   for puts — and detects corruption (link CRC for messages, the per-put
//!   CRC folded into the sentinel word for one-sided puts), discarding the
//!   damaged landing so the channel stays armed for the retransmission;
//! * an unacked packet's timer fires with exponential backoff
//!   ([`ckd_net::RetryPolicy`]) and the sender retransmits — *without*
//!   re-running the application-visible issue path, so a put is counted
//!   once in `MachineStats::puts` no matter how many times it crosses the
//!   wire, and the race sanitizer's lifecycle probe never sees a double
//!   `PutIssued`;
//! * a channel whose puts keep needing retransmission degrades to
//!   rendezvous-style timing (`PutOutcome::Degraded`), the reproduction's
//!   stand-in for tearing down a flaky RDMA path and falling back to the
//!   default two-sided protocol.
//!
//! With faults never enabled the machine holds `rel: None` and every hook
//! is one branch — runs are bit-identical to the pre-fault-plane runtime.

use std::collections::{BTreeMap, BTreeSet};

use ckd_net::{LinkSeqs, RetryPolicy};
use ckd_sim::{FaultOp, FaultPlan, Time};
use ckdirect::HandleId;

use crate::machine::Ev;

/// One unacked packet, owned by the (conceptual) sender NIC.
pub(crate) struct Pending {
    /// The delivery event to (re)schedule; replayed verbatim on retransmit.
    pub ev: Ev,
    /// Directed link `(from, to)` the packet travels.
    pub link: (u32, u32),
    /// Sequence number on the wire (per-link for messages, per-channel for
    /// puts).
    pub seq: u64,
    /// Transmission attempt counter (0 = original send).
    pub attempt: u32,
    /// Wire delay of one transmission (constant per packet; re-used by
    /// retransmissions).
    pub wire_delay: Time,
    /// What the fault plane sees this packet as (message or put).
    pub kind: FaultOp,
    /// The channel, when this packet is a one-sided put.
    pub handle: Option<HandleId>,
}

/// All reliability state of a machine with fault injection enabled.
pub(crate) struct ReliableLayer {
    /// The fault schedule packets are submitted to.
    pub plan: FaultPlan,
    /// Retransmission backoff policy.
    pub policy: RetryPolicy,
    /// Cumulative retransmits on one channel before it degrades to
    /// rendezvous timing. `u32::MAX` disables degradation.
    pub degrade_after: u32,
    /// Unacked packets by token.
    pub pending: BTreeMap<u64, Pending>,
    /// Next packet token.
    pub next_token: u64,
    /// Message-path sequence numbers + receiver dedup.
    pub seqs: LinkSeqs,
    /// Cumulative retransmits per channel handle.
    pub handle_retries: BTreeMap<u32, u32>,
    /// Channels degraded to rendezvous timing.
    pub degraded: BTreeSet<u32>,
}

impl ReliableLayer {
    pub(crate) fn new(plan: FaultPlan, policy: RetryPolicy, degrade_after: u32) -> ReliableLayer {
        ReliableLayer {
            plan,
            policy,
            degrade_after,
            pending: BTreeMap::new(),
            next_token: 0,
            seqs: LinkSeqs::new(),
            handle_retries: BTreeMap::new(),
            degraded: BTreeSet::new(),
        }
    }

    /// Cumulative retransmits charged to `handle` so far.
    pub(crate) fn retries_of(&self, handle: HandleId) -> u32 {
        self.handle_retries.get(&handle.0).copied().unwrap_or(0)
    }

    /// Whether `handle` has degraded to rendezvous timing.
    pub(crate) fn is_degraded(&self, handle: HandleId) -> bool {
        self.degraded.contains(&handle.0)
    }
}
