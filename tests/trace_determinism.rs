//! Determinism of the tracing pipeline: the simulator is a deterministic
//! discrete-event machine, so two identical traced runs must produce
//! byte-identical exports and identical metric values. The exporters only
//! iterate ordered structures (`Vec`s, `BTreeMap`s) and format timestamps
//! with integer arithmetic, so any divergence here is a real bug.

use ckd_apps::jacobi3d::{run_jacobi_on, JacobiCfg};
use ckd_apps::{Platform, Variant};
use ckd_charm::{
    chrome_trace_json, text_summary, validate_snapshot_jsonl, FaultPlan, Machine, ProfConfig,
    TraceConfig,
};
use ckd_trace::ProtoClass;

fn cfg() -> JacobiCfg {
    JacobiCfg {
        domain: [24, 24, 24],
        chares: [2, 2, 1],
        iters: 6,
        variant: Variant::Ckd,
        real_compute: false,
    }
}

fn traced_run() -> Machine {
    let mut m = Platform::IbAbe { cores_per_node: 4 }
        .builder(4)
        .with_tracing(TraceConfig::default())
        .build();
    run_jacobi_on(&mut m, cfg());
    m
}

fn faulty_traced_run(plan: FaultPlan) -> Machine {
    let mut m = Platform::IbAbe { cores_per_node: 4 }
        .builder(4)
        .with_tracing(TraceConfig::default())
        .with_faults(plan)
        .build();
    run_jacobi_on(&mut m, cfg());
    m
}

#[test]
fn identical_runs_export_identical_bytes() {
    let a = traced_run();
    let b = traced_run();

    let json_a = chrome_trace_json(a.tracer()).unwrap();
    let json_b = chrome_trace_json(b.tracer()).unwrap();
    assert_eq!(json_a, json_b, "chrome trace JSON must be byte-identical");

    let sum_a = text_summary(a.tracer()).unwrap();
    let sum_b = text_summary(b.tracer()).unwrap();
    assert_eq!(sum_a, sum_b, "text summary must be byte-identical");

    // metric-by-metric equality, not just formatting
    let (ma, mb) = (a.tracer().metrics().unwrap(), b.tracer().metrics().unwrap());
    for class in ProtoClass::ALL {
        let (sa, sb) = (ma.proto_stat(class), mb.proto_stat(class));
        assert_eq!(sa.count, sb.count, "{class:?} count");
        assert_eq!(sa.bytes, sb.bytes, "{class:?} bytes");
        assert_eq!(
            sa.latency_sum_ns, sb.latency_sum_ns,
            "{class:?} latency sum"
        );
    }
    assert_eq!(ma, mb, "full metrics registries must be identical");
    assert_eq!(a.tracer().dropped_total(), b.tracer().dropped_total());
    assert_eq!(a.stats(), b.stats());
}

/// The fault plane is seeded from the machine's deterministic RNG, so a
/// *faulty* run is exactly as reproducible as a clean one: same plan seed,
/// byte-identical exports — injections, backoffs and retransmits included.
#[test]
fn identical_faulty_runs_export_identical_bytes() {
    let plan = || FaultPlan::new(0x5EED).with_drop(0.12).with_corrupt(0.05);
    let a = faulty_traced_run(plan());
    let b = faulty_traced_run(plan());

    assert_eq!(
        chrome_trace_json(a.tracer()).unwrap(),
        chrome_trace_json(b.tracer()).unwrap(),
        "faulty chrome trace JSON must be byte-identical"
    );
    let sum = text_summary(a.tracer()).unwrap();
    assert_eq!(
        sum,
        text_summary(b.tracer()).unwrap(),
        "faulty text summary must be byte-identical"
    );
    assert_eq!(a.fault_counts(), b.fault_counts());
    assert_eq!(a.rel_stats(), b.rel_stats());
    assert_eq!(a.stats(), b.stats());
    // the run actually exercised the recovery machinery, and the summary
    // says so
    assert!(a.rel_stats().retries > 0, "plan never bit");
    assert!(
        sum.contains("-- reliability --"),
        "summary hides the faults"
    );
    let m = a.tracer().metrics().unwrap();
    assert_eq!(m.drops, a.rel_stats().drops_injected);
    assert_eq!(m.retries, a.rel_stats().retries);
}

/// Zero-cost-off, proven at the byte level: an *inert* plan (reliability
/// layer armed, nothing ever injected) produces exports byte-identical to
/// a machine that never heard of fault injection — same virtual
/// timestamps, same records, same metrics, no reliability section.
#[test]
fn inert_plan_exports_match_a_fault_free_machine() {
    let plain = traced_run();
    let inert = faulty_traced_run(FaultPlan::new(7));

    assert_eq!(
        chrome_trace_json(plain.tracer()).unwrap(),
        chrome_trace_json(inert.tracer()).unwrap(),
        "an inert plan must not perturb a single timestamp"
    );
    assert_eq!(
        text_summary(plain.tracer()).unwrap(),
        text_summary(inert.tracer()).unwrap()
    );
    assert_eq!(
        plain.tracer().metrics().unwrap(),
        inert.tracer().metrics().unwrap()
    );
    assert_eq!(inert.fault_counts().unwrap().total(), 0);
    // app-visible aggregates agree; only the ack bookkeeping differs
    assert_eq!(plain.stats().puts, inert.stats().puts);
    assert_eq!(plain.stats().msgs_sent, inert.stats().msgs_sent);
    assert_eq!(inert.rel_stats().retries, 0);
}

// ---- self-profiler determinism ----------------------------------------

fn profiled_run() -> Machine {
    let mut m = Platform::IbAbe { cores_per_node: 4 }
        .builder(4)
        .with_tracing(TraceConfig::default())
        .with_profiling(ProfConfig { snapshot_every: 64 })
        .build();
    run_jacobi_on(&mut m, cfg());
    m
}

/// Everything the profiler derives from *virtual* time is as deterministic
/// as the machine itself: two profiled runs emit byte-identical snapshot
/// JSONL and identical latency/batch/depth histograms. (Phase wall-clock
/// totals are host noise and deliberately excluded.)
#[test]
fn profiled_runs_emit_identical_snapshots() {
    let a = profiled_run();
    let b = profiled_run();

    let snaps_a = a.profiler().snapshots_jsonl().unwrap();
    let snaps_b = b.profiler().snapshots_jsonl().unwrap();
    assert_eq!(snaps_a, snaps_b, "snapshot JSONL must be byte-identical");
    let lines = validate_snapshot_jsonl(snaps_a).unwrap();
    assert!(lines > 0, "profiled jacobi emitted no snapshots");

    let (sa, sb) = (a.profiler().shard().unwrap(), b.profiler().shard().unwrap());
    assert_eq!(sa.put_lat_ns, sb.put_lat_ns, "put-latency histogram");
    assert_eq!(sa.poll_batch, sb.poll_batch, "poll-batch histogram");
    assert_eq!(sa.queue_depth, sb.queue_depth, "queue-depth histogram");
    assert_eq!(sa.events, sb.events);
    assert_eq!(sa.puts, sb.puts);
    assert_eq!(sa.events, a.stats().events, "profiler missed events");
    assert_eq!(sa.puts, a.stats().puts, "profiler missed puts");
}

/// The profiler is an observer: enabling it must not perturb a single
/// virtual timestamp, trace record, or counter relative to an unprofiled
/// machine. Byte-level proof over the same exports the golden corpus
/// protects.
#[test]
fn profiling_does_not_perturb_traced_exports() {
    let plain = traced_run();
    let profiled = profiled_run();

    assert_eq!(
        chrome_trace_json(plain.tracer()).unwrap(),
        chrome_trace_json(profiled.tracer()).unwrap(),
        "profiling changed the chrome trace"
    );
    assert_eq!(
        text_summary(plain.tracer()).unwrap(),
        text_summary(profiled.tracer()).unwrap(),
        "profiling changed the text summary"
    );
    assert_eq!(
        plain.tracer().metrics().unwrap(),
        profiled.tracer().metrics().unwrap()
    );
    assert_eq!(plain.stats(), profiled.stats(), "profiling changed stats");
    assert!(plain.profiler().shard().is_none(), "profiler on by default");
}

// ---- golden comparison across refactors --------------------------------
//
// The files under `tests/golden/` were exported by the runtime *before* the
// Machine decomposition (pluggable completion backends + the runtime-layer
// stack) and are committed to the repository. Matching them byte-for-byte
// proves the refactor preserved every virtual timestamp, every trace
// record, and every counter. Regenerate deliberately with
// `CKD_BLESS=1 cargo test --test trace_determinism golden` after a change
// that is *supposed* to alter the timeline.

fn golden_check(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("CKD_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name}: {e}; bless with CKD_BLESS=1"));
    assert_eq!(
        expected, actual,
        "{name} diverged from the pre-refactor runtime"
    );
}

fn bgp_traced_run() -> Machine {
    let mut m = Platform::Bgp
        .builder(4)
        .with_tracing(TraceConfig::default())
        .build();
    run_jacobi_on(&mut m, cfg());
    m
}

#[test]
fn golden_ib_run_matches_pre_refactor_runtime() {
    let m = traced_run();
    golden_check(
        "jacobi_ib.trace.json",
        &chrome_trace_json(m.tracer()).unwrap(),
    );
    golden_check("jacobi_ib.summary.txt", &text_summary(m.tracer()).unwrap());
    golden_check("jacobi_ib.stats.txt", &format!("{:#?}\n", m.stats()));
}

#[test]
fn golden_bgp_run_matches_pre_refactor_runtime() {
    let m = bgp_traced_run();
    golden_check(
        "jacobi_bgp.trace.json",
        &chrome_trace_json(m.tracer()).unwrap(),
    );
    golden_check("jacobi_bgp.summary.txt", &text_summary(m.tracer()).unwrap());
    golden_check("jacobi_bgp.stats.txt", &format!("{:#?}\n", m.stats()));
}

fn slingshot_traced_run() -> Machine {
    let mut m = Platform::Slingshot
        .builder(4)
        .with_tracing(TraceConfig::default())
        .build();
    run_jacobi_on(&mut m, cfg());
    m
}

/// The notified-put timeline: landing deposits a CQ record, a later drain
/// delivers it. These goldens pin the whole Slingshot schedule — CQ-drain
/// batching cadence included — so a regression in admission, drain order,
/// or drain costing shows up as a byte diff.
#[test]
fn golden_slingshot_run_matches_committed_corpus() {
    let m = slingshot_traced_run();
    assert_eq!(m.backend().name(), "notified-put");
    assert!(m.cq_drain_total() > 0, "run never drained a notification");
    golden_check(
        "jacobi_slingshot.trace.json",
        &chrome_trace_json(m.tracer()).unwrap(),
    );
    golden_check(
        "jacobi_slingshot.summary.txt",
        &text_summary(m.tracer()).unwrap(),
    );
    golden_check("jacobi_slingshot.stats.txt", &format!("{:#?}\n", m.stats()));
}

#[test]
fn golden_faulty_run_matches_pre_refactor_runtime() {
    let m = faulty_traced_run(FaultPlan::new(0x5EED).with_drop(0.12).with_corrupt(0.05));
    golden_check(
        "jacobi_ib_faulty.trace.json",
        &chrome_trace_json(m.tracer()).unwrap(),
    );
    golden_check(
        "jacobi_ib_faulty.summary.txt",
        &text_summary(m.tracer()).unwrap(),
    );
    golden_check("jacobi_ib_faulty.stats.txt", &format!("{:#?}\n", m.stats()));
    golden_check(
        "jacobi_ib_faulty.rel.txt",
        &format!("{:#?}\n", m.rel_stats()),
    );
}

#[test]
fn exports_are_wellformed() {
    let m = traced_run();
    let json = chrome_trace_json(m.tracer()).unwrap();
    // Structural sanity without a JSON parser: the export is a
    // `{"traceEvents": [...]}` object with balanced delimiters.
    assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
    assert!(json.trim_end().ends_with("]}"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.contains("\"thread_name\""), "one named track per PE");

    let summary = text_summary(m.tracer()).unwrap();
    assert!(summary.contains("transfers by protocol"));
    assert!(summary.contains("rdma-put"));
    assert!(summary.contains("issue→callback completions"));
}
