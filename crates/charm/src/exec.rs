//! Event execution: the dispatch table and the per-event-kind handlers.
//!
//! Each handler follows the same shape: fan the event through the
//! runtime-layer stack ([`crate::layer`]) at its interposition seam, then
//! do the scheduler's own work — busy-time accounting, queue management,
//! and driving the CkDirect registry through the machine's
//! [`CompletionBackend`](crate::backend::CompletionBackend). Reliable
//! delivery (`Ev::Rel*`) is handled in [`crate::rel`]; it sits below the
//! layer seams.

use ckd_sim::Time;
use ckd_topo::Pe;
use ckd_trace::{BusyKind, Phase, ProtoClass};
use ckdirect::{HandleId, LandOutcome};

use crate::array::ArrayId;
use crate::chare::ChareRef;
use crate::ctx::Ctx;
use crate::layer::{DeliverInfo, Delivery, EventInfo, EventKind, LandingInfo};
use crate::machine::{CbKind, DirectCb, Ev, Machine};
use crate::msg::{EntryId, Msg, Payload};
use crate::reduction::{tree_children, tree_parent, RedOp, RedTarget, RedVal};

impl Machine {
    pub(crate) fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::MsgArrive {
                pe,
                target,
                msg,
                recv_cpu,
                overlap_cpu,
                from,
                proto,
                edge,
            } => self.on_msg_arrive(pe, target, msg, recv_cpu, overlap_cpu, from, proto, edge),
            Ev::DirectLand { handle, recv_cpu } => self.on_direct_land(handle, recv_cpu),
            Ev::DirectGetLand { handle, recv_cpu } => self.on_direct_get_land(handle, recv_cpu),
            Ev::PeLoop { pe } => self.on_pe_loop(pe),
            Ev::ProgressTick { pe } => self.on_progress_tick(pe),
            Ev::ReduceUp {
                array,
                to,
                value,
                count,
                op,
                target,
                recv_cpu,
                edge,
            } => self.on_reduce_up(array, to, value, count, op, target, recv_cpu, edge),
            Ev::BcastDown {
                array,
                to,
                ep,
                payload,
                size,
                recv_cpu,
                edge,
            } => self.on_bcast_down(array, to, ep, payload, size, recv_cpu, edge),
            Ev::RelDeliver {
                token,
                link,
                seq,
                kind,
                corrupted,
                inner,
            } => self.rel_deliver(token, link, seq, kind, corrupted, *inner),
            Ev::RelAck { token, .. } => self.rel_ack(token),
            Ev::RelTimer { token, attempt, .. } => self.rel_timer(token, attempt),
        }
    }

    /// Fan a scheduler-visible event through the layer stack (no-op when
    /// nothing observes).
    fn observe_event(&mut self, pe: usize, kind: EventKind) {
        if self.stack.observing() {
            let t0 = self.prof.begin();
            self.stack.on_event(&EventInfo {
                pe,
                at: self.now,
                kind,
            });
            self.prof.end(Phase::Layers, t0);
        }
    }

    /// Fan a put/get landing through the layer stack: the tracer records
    /// the landing, the sanitizer points its virtual clock at the
    /// receiving PE so the registry's lifecycle transitions are
    /// attributed correctly.
    fn observe_landing(&mut self, handle: HandleId, get: bool) {
        if self.stack.observing() {
            if let (Ok(pe), Ok(bytes)) =
                (self.direct.recv_pe(handle), self.direct.wire_bytes(handle))
            {
                let t0 = self.prof.begin();
                self.stack.on_landing(&LandingInfo {
                    pe: pe.idx(),
                    at: self.now,
                    handle,
                    bytes: bytes as u64,
                    get,
                });
                self.prof.end(Phase::Layers, t0);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_msg_arrive(
        &mut self,
        pe: Pe,
        target: ChareRef,
        msg: Msg,
        recv_cpu: Time,
        overlap_cpu: Time,
        from: Pe,
        proto: ProtoClass,
        edge: u64,
    ) {
        self.observe_event(
            pe.idx(),
            EventKind::MsgArrive {
                from: from.0,
                proto,
                edge,
            },
        );
        let st = &mut self.pes[pe.idx()];
        // protocol-time CPU: steals capacity from a busy PE but cannot
        // push this message past its own arrival on an idle one (it was
        // spent while waiting for the wire)
        st.busy_until = if st.busy_until >= self.now {
            st.busy_until + overlap_cpu
        } else {
            (st.busy_until + overlap_cpu).min(self.now)
        };
        st.busy_until = st.busy_until.max(self.now) + recv_cpu;
        st.stats.busy += recv_cpu + overlap_cpu;
        st.queue.push_back((target, msg));
        self.ensure_loop(pe, Time::ZERO);
    }

    fn on_direct_land(&mut self, handle: HandleId, recv_cpu: Time) {
        self.observe_landing(handle, false);
        match self.direct.land(handle) {
            Ok(LandOutcome::AwaitPoll) => {
                // Polling backend: the receiving scheduler will notice at
                // its next sweep; wake it if idle.
                let pe = self.direct.recv_pe(handle).expect("live channel");
                self.ensure_loop(pe, self.cfg.idle_poll_gap);
            }
            Ok(LandOutcome::Deliver(cb)) => {
                // Callback backend (BG/P): charge the DCMF receive handler
                // and run the user callback immediately.
                let pe = self.direct.recv_pe(handle).expect("live channel");
                self.deliver_landing(pe, recv_cpu, cb, handle);
            }
            Ok(LandOutcome::Notified) => {
                // Notified backend: the NIC deposited a completion-queue
                // record; whoever drains first — the async progress tick
                // or the receiving scheduler — delivers the callback.
                let pe = self.direct.recv_pe(handle).expect("live channel");
                if !self.arm_progress_tick(pe) {
                    self.ensure_loop(pe, self.cfg.idle_poll_gap);
                }
            }
            Err(ckdirect::DirectError::CqOverflow) => {
                // The receiver's bounded CQ is full, so the NIC holds the
                // put back at the initiator (backpressure, not data loss).
                // Re-attempt the landing strictly after the next drain
                // opportunity on the receiver.
                let pe = self.direct.recv_pe(handle).expect("live channel");
                let retry_at = if self.arm_progress_tick(pe) {
                    self.after_next_progress_tick()
                } else {
                    self.ensure_loop(pe, self.cfg.idle_poll_gap);
                    self.pes[pe.idx()].busy_until.max(self.now)
                        + self.cfg.idle_poll_gap
                        + self.cfg.idle_poll_gap
                };
                self.push_ev(retry_at, Ev::DirectLand { handle, recv_cpu });
            }
            Err(e) => panic!("land on live channel: {e}"),
        }
    }

    /// The first instant strictly after the next progress-tick boundary
    /// (where a CQ-overflow retry is guaranteed to find drained space).
    fn after_next_progress_tick(&self) -> Time {
        let tick = self
            .progress
            .as_ref()
            .expect("caller checked progress")
            .tick;
        let period = tick.as_ps().max(1);
        Time::from_ps((self.now.as_ps() / period + 1) * period + 1)
    }

    /// Async progress tick: drain one CQ batch on `pe` at the modeled
    /// drain cost, then re-arm while records remain (see `progress.rs`).
    fn on_progress_tick(&mut self, pe: Pe) {
        if let Some(prog) = self.progress.as_mut() {
            prog.armed[pe.idx()] = false;
        }
        self.stats.progress_ticks += 1;
        if self.direct.cq_len(pe) > 0 {
            let start = self.pes[pe.idx()].busy_until.max(self.now);
            let elapsed = self.drain_cq_batch(pe, start, Time::ZERO);
            let st = &mut self.pes[pe.idx()];
            st.busy_until = start + elapsed;
            st.stats.busy += elapsed;
        }
        if self.direct.cq_len(pe) > 0 {
            self.arm_progress_tick(pe);
        }
    }

    /// Drain one bounded batch of completion-queue records on `pe`:
    /// charge the fabric's modeled drain cost and run the completion
    /// callbacks of every drained record. Returns the updated elapsed
    /// time. Caller has checked that the CQ is non-empty.
    fn drain_cq_batch(&mut self, pe: Pe, start: Time, mut elapsed: Time) -> Time {
        let cq = self.net.fabric().cq();
        let pt0 = self.prof.begin();
        self.stack.san.set_ctx(pe.idx(), start);
        let mut deliveries = self.take_sweep_buf();
        let drained = self
            .direct
            .cq_drain_into(pe, cq.drain_batch.max(1), &mut deliveries);
        elapsed += cq.drain_base + cq.drain_per_notification * drained as u64;
        self.pes[pe.idx()].stats.cq_drains += drained as u64;
        self.stats.cq_drains += drained as u64;
        self.prof.poll_batch(drained as u64);
        self.stack.tracer.poll_sweep(
            pe.idx(),
            start,
            start + elapsed,
            drained as u32,
            deliveries.len() as u32,
        );
        self.prof.end(Phase::Poll, pt0);
        if !deliveries.is_empty() {
            let mut cbs = self.take_cb_buf();
            cbs.extend(deliveries.drain(..).map(|(h, cb)| (cb, h)));
            elapsed = self.run_callbacks(pe, start, elapsed, cbs);
        }
        self.recycle_sweep_buf(deliveries);
        elapsed
    }

    fn on_direct_get_land(&mut self, handle: HandleId, recv_cpu: Time) {
        self.observe_landing(handle, true);
        let cb = self.direct.land_get(handle).expect("get on live channel");
        let pe = self.direct.recv_pe(handle).expect("live channel");
        self.deliver_landing(pe, recv_cpu, cb, handle);
    }

    /// Charge the receive handler on `pe` and run the completion callback
    /// immediately (callback backends and get completions).
    fn deliver_landing(&mut self, pe: Pe, recv_cpu: Time, cb: DirectCb, handle: HandleId) {
        let start = {
            let st = &mut self.pes[pe.idx()];
            st.busy_until = st.busy_until.max(self.now) + recv_cpu;
            st.stats.busy += recv_cpu;
            st.busy_until
        };
        let mut first = self.take_cb_buf();
        first.push((cb, handle));
        let elapsed = self.run_callbacks(pe, start, Time::ZERO, first);
        let st = &mut self.pes[pe.idx()];
        st.busy_until = start + elapsed;
        st.stats.busy += elapsed;
    }

    /// One scheduler iteration: poll sweep (polling backends), then at
    /// most one message.
    fn on_pe_loop(&mut self, pe: Pe) {
        self.pes[pe.idx()].loop_scheduled = false;
        let start = self.pes[pe.idx()].busy_until.max(self.now);
        let mut elapsed = Time::ZERO;
        let depth = self.pes[pe.idx()].queue.len() as u32;
        self.observe_event(pe.idx(), EventKind::PeLoop { depth });

        // CkDirect poll sweep (sentinel-polling backends): charge every
        // armed handle, visit only the landed ones. An empty polling queue
        // is skipped outright — nothing to charge, nothing to deliver.
        if self.backend.polls() && self.direct.pollq_len(pe) > 0 {
            let pt0 = self.prof.begin();
            self.stack.san.set_ctx(pe.idx(), start);
            let mut deliveries = self.take_sweep_buf();
            let checked = self.direct.poll_sweep_into(pe, &mut deliveries);
            elapsed += self.cfg.poll_per_handle * checked as u64;
            self.pes[pe.idx()].stats.poll_checks += checked as u64;
            self.prof.poll_batch(checked as u64);
            self.stack.tracer.poll_sweep(
                pe.idx(),
                start,
                start + elapsed,
                checked as u32,
                deliveries.len() as u32,
            );
            self.prof.end(Phase::Poll, pt0);
            if !deliveries.is_empty() {
                let mut cbs = self.take_cb_buf();
                cbs.extend(deliveries.drain(..).map(|(h, cb)| (cb, h)));
                elapsed = self.run_callbacks(pe, start, elapsed, cbs);
            }
            self.recycle_sweep_buf(deliveries);
        }

        // Notified-put CQ drain (CQ-draining backends): pay the drain base
        // plus a per-record cost, deliver everything drained. Bounded by
        // the fabric's drain batch — leftovers re-arm the loop below.
        if self.backend.drains_cq() && self.direct.cq_len(pe) > 0 {
            elapsed = self.drain_cq_batch(pe, start, elapsed);
        }

        // One message through the scheduler.
        if let Some((target, msg)) = self.pes[pe.idx()].queue.pop_front() {
            elapsed += self.cfg.sched;
            self.pes[pe.idx()].stats.msgs_delivered += 1;
            if self.stack.observing() {
                let t0 = self.prof.begin();
                self.stack.on_deliver(&DeliverInfo {
                    pe: pe.idx(),
                    at: start + elapsed,
                    what: Delivery::Message {
                        ep: msg.ep.0,
                        bytes: msg.size as u64,
                    },
                });
                self.prof.end(Phase::Layers, t0);
            }
            elapsed = self.run_entry(pe, target, start, elapsed, msg);
        }

        // Records past this iteration's drain batch keep the loop alive.
        let cq_backlog = self.backend.drains_cq() && self.direct.cq_len(pe) > 0;
        let st = &mut self.pes[pe.idx()];
        st.busy_until = start + elapsed;
        st.stats.busy += elapsed;
        // A handler may already have re-armed the loop (e.g. a broadcast
        // delivered to this very PE); don't double-schedule.
        if (!st.queue.is_empty() || cq_backlog) && !st.loop_scheduled {
            st.loop_scheduled = true;
            let at = st.busy_until;
            self.push_ev(at, Ev::PeLoop { pe });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_reduce_up(
        &mut self,
        array: ArrayId,
        to: Pe,
        value: RedVal,
        count: usize,
        op: RedOp,
        target: RedTarget,
        recv_cpu: Time,
        edge: u64,
    ) {
        self.observe_event(
            to.idx(),
            EventKind::ReduceUp {
                array: array.0,
                edge,
            },
        );
        let st = &mut self.pes[to.idx()];
        st.busy_until = st.busy_until.max(self.now) + recv_cpu;
        st.stats.busy += recv_cpu;
        let red = &mut self.red[array.idx()][to.idx()];
        red.absorb(value, count, op, target);
        red.got_children += 1;
        self.maybe_complete_reduction(array, to);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_bcast_down(
        &mut self,
        array: ArrayId,
        to: Pe,
        ep: EntryId,
        payload: Payload,
        size: usize,
        recv_cpu: Time,
        edge: u64,
    ) {
        self.observe_event(
            to.idx(),
            EventKind::BcastDown {
                array: array.0,
                edge,
            },
        );
        let st = &mut self.pes[to.idx()];
        st.busy_until = st.busy_until.max(self.now) + recv_cpu;
        st.stats.busy += recv_cpu;
        self.bcast_at(array, to, ep, payload, size);
    }

    /// Run one entry method with the chare checked out of the machine;
    /// returns the updated elapsed time.
    fn run_entry(
        &mut self,
        pe: Pe,
        target: ChareRef,
        start: Time,
        elapsed: Time,
        msg: Msg,
    ) -> Time {
        let mut chare = self.chares[target.array.idx()][target.lin as usize]
            .take()
            .unwrap_or_else(|| panic!("{target:?} missing (reentrant delivery?)"));
        let entry_begin = start + elapsed;
        let mut ctx = Ctx::new(self, pe, target, start, elapsed);
        chare.entry(&mut ctx, msg);
        let (elapsed, pending) = ctx.finish();
        self.stack
            .tracer
            .busy(pe.idx(), entry_begin, start + elapsed, BusyKind::Entry);
        self.chares[target.array.idx()][target.lin as usize] = Some(chare);
        self.run_callbacks(pe, start, elapsed, pending)
    }

    /// Deliver CkDirect callbacks as plain function calls; each may enqueue
    /// more (e.g. `ready_poll_q` discovering already-landed data).
    pub(crate) fn run_callbacks(
        &mut self,
        pe: Pe,
        start: Time,
        mut elapsed: Time,
        mut pending: Vec<(DirectCb, HandleId)>,
    ) -> Time {
        while let Some((cb, handle)) = pending.pop() {
            let cb_begin = start + elapsed;
            elapsed += self.cfg.callback_cost;
            // strided destinations pay the scatter copy at delivery
            if let Ok(Some(bytes)) = self.direct.strided_recv_bytes(handle) {
                elapsed += self.cfg.compute.bytes(2 * bytes as u64);
            }
            self.pes[pe.idx()].stats.callbacks += 1;
            self.prof.callback_fired(handle.0, start + elapsed);
            if self.stack.observing() {
                let t0 = self.prof.begin();
                self.stack.on_deliver(&DeliverInfo {
                    pe: pe.idx(),
                    at: start + elapsed,
                    what: Delivery::Callback { handle },
                });
                self.prof.end(Phase::Layers, t0);
            }
            let target = cb.target;
            let mut chare = self.chares[target.array.idx()][target.lin as usize]
                .take()
                .unwrap_or_else(|| panic!("{target:?} missing for callback"));
            // synthesize the learned-channel message before Ctx borrows self
            let learned_msg = if let CbKind::Learned(ep) = cb.kind {
                // hand the landed bytes to the ordinary entry method — the
                // application cannot tell the transport changed
                let region = self.direct.recv_region(handle).expect("live channel");
                let size = self.direct.wire_bytes(handle).expect("live channel");
                Some(Msg {
                    ep,
                    payload: crate::msg::Payload::Bytes(bytes::Bytes::from(region.to_vec())),
                    size,
                })
            } else {
                None
            };
            let mut ctx = Ctx::new(self, pe, target, start, elapsed);
            match (cb.kind, learned_msg) {
                (CbKind::User(tag), _) => chare.direct_callback(&mut ctx, tag, handle),
                (CbKind::Learned(_), Some(msg)) => chare.entry(&mut ctx, msg),
                (CbKind::Learned(_), None) => unreachable!(),
            }
            let (e, mut more) = ctx.finish();
            elapsed = e;
            self.stack
                .tracer
                .busy(pe.idx(), cb_begin, start + elapsed, BusyKind::Callback);
            self.chares[target.array.idx()][target.lin as usize] = Some(chare);
            if let CbKind::Learned(_) = cb.kind {
                // the runtime owns learned channels: re-arm immediately so
                // the sender's next iteration can put again
                self.stack.san.set_ctx(pe.idx(), start + elapsed);
                if let Ok(Some(cb2)) = self.direct.ready(handle) {
                    pending.push((cb2, handle));
                }
            }
            pending.append(&mut more);
            self.recycle_cb_buf(more);
        }
        self.recycle_cb_buf(pending);
        elapsed
    }

    // ---- reductions and broadcasts ----------------------------------------

    /// A chare on `pe` contributed to its array's current reduction.
    pub(crate) fn contribute_local(
        &mut self,
        array: ArrayId,
        pe: Pe,
        v: RedVal,
        op: RedOp,
        target: RedTarget,
    ) {
        self.stack
            .tracer
            .reduce_contribute(pe.idx(), self.now, array.0);
        self.stack.san.red_contribute(array.0, pe.idx());
        let red = &mut self.red[array.idx()][pe.idx()];
        red.absorb(v, 1, op, target);
        red.got_local += 1;
        debug_assert!(
            red.got_local <= self.arrays[array.idx()].local_counts[pe.idx()],
            "element contributed twice in one generation"
        );
        self.maybe_complete_reduction(array, pe);
    }

    fn maybe_complete_reduction(&mut self, array: ArrayId, pe: Pe) {
        let info = &self.arrays[array.idx()];
        let need_local = info.local_counts[pe.idx()];
        let need_children = tree_children(&info.participants, pe).len();
        let red = &self.red[array.idx()][pe.idx()];
        if red.got_local < need_local || red.got_children < need_children {
            return;
        }
        let value = red.partial;
        let count = red.count;
        let op = red.op.expect("completed reduction has an op");
        let target = red.target.expect("completed reduction has a target");
        self.red[array.idx()][pe.idx()].advance();

        match tree_parent(&self.arrays[array.idx()].participants, pe) {
            Some(parent) => {
                let t = self.net.control(pe, parent);
                self.record_control(pe, t.delay);
                // the send costs a sliver of CPU on this PE
                let st = &mut self.pes[pe.idx()];
                st.busy_until = st.busy_until.max(self.now) + t.send_cpu;
                st.stats.busy += t.send_cpu;
                let edge = self.stack.san.red_up(array.0, pe.idx());
                self.push_ev(
                    self.now + t.delay,
                    Ev::ReduceUp {
                        array,
                        to: parent,
                        value,
                        count,
                        op,
                        target,
                        recv_cpu: t.recv_cpu,
                        edge,
                    },
                );
            }
            None => {
                // Root: the reduction is complete.
                debug_assert_eq!(
                    count,
                    self.arrays[array.idx()].dims.len(),
                    "reduction lost contributions"
                );
                self.stats.reductions += 1;
                self.stack
                    .tracer
                    .reduce_complete(pe.idx(), self.now, array.0);
                // every contribution happens-before whatever the root does
                // next (the release broadcast / client delivery)
                self.stack.san.red_complete(array.0, pe.idx());
                match target {
                    RedTarget::Broadcast(ep) => {
                        let payload = Payload::value(value);
                        self.bcast_at(array, pe, ep, payload, 8);
                    }
                    RedTarget::Single(aref, ep) => {
                        let dst = self.home_pe(aref);
                        let t = self.net.control(pe, dst);
                        self.record_control(pe, t.delay);
                        let edge = self.stack.san.edge_out(pe.idx());
                        self.push_ev(
                            self.now + t.delay,
                            Ev::MsgArrive {
                                pe: dst,
                                target: aref,
                                msg: Msg::value(ep, value, 8),
                                recv_cpu: t.recv_cpu,
                                overlap_cpu: Time::ZERO,
                                from: pe,
                                proto: ProtoClass::Control,
                                edge,
                            },
                        );
                    }
                }
            }
        }
    }

    /// User-initiated broadcast: route a message from `from` to the root of
    /// `array`'s participant tree, then distribute down it.
    pub(crate) fn broadcast_from(&mut self, from: Pe, array: ArrayId, msg: Msg) {
        let root = self.arrays[array.idx()].participants[0];
        if root == from {
            self.bcast_at(array, root, msg.ep, msg.payload, msg.size);
        } else {
            let t = self.net.control(from, root);
            self.record_control(from, t.delay);
            let st = &mut self.pes[from.idx()];
            st.busy_until = st.busy_until.max(self.now) + t.send_cpu;
            st.stats.busy += t.send_cpu;
            let edge = self.stack.san.edge_out(from.idx());
            self.push_ev(
                self.now + t.delay,
                Ev::BcastDown {
                    array,
                    to: root,
                    ep: msg.ep,
                    payload: msg.payload,
                    size: msg.size,
                    recv_cpu: t.recv_cpu,
                    edge,
                },
            );
        }
    }

    /// Broadcast arriving at `pe`: forward down the tree, then enqueue a
    /// message for every local element.
    fn bcast_at(&mut self, array: ArrayId, pe: Pe, ep: EntryId, payload: Payload, size: usize) {
        let children = tree_children(&self.arrays[array.idx()].participants, pe);
        for child in children {
            let t = self.net.control(pe, child);
            self.record_control(pe, t.delay);
            let st = &mut self.pes[pe.idx()];
            st.busy_until = st.busy_until.max(self.now) + t.send_cpu;
            st.stats.busy += t.send_cpu;
            let edge = self.stack.san.edge_out(pe.idx());
            self.push_ev(
                self.now + t.delay,
                Ev::BcastDown {
                    array,
                    to: child,
                    ep,
                    payload: payload.clone(),
                    size,
                    recv_cpu: t.recv_cpu,
                    edge,
                },
            );
        }
        let lins = std::mem::take(&mut self.locals[array.idx()][pe.idx()]);
        for &lin in &lins {
            self.pes[pe.idx()].queue.push_back((
                ChareRef { array, lin },
                Msg {
                    ep,
                    payload: payload.clone(),
                    size,
                },
            ));
        }
        self.locals[array.idx()][pe.idx()] = lins;
        self.ensure_loop(pe, Time::ZERO);
    }
}
