//! `ckd-sweep` — drive the deterministic parameter-sweep engine from the
//! command line and regenerate the repo's `BENCH_*.json` trajectory files.
//!
//! ```text
//! ckd-sweep sweep64  [--workers N] [--out FILE]   # acceptance sweep → BENCH_sweep.json
//! ckd-sweep table1   [--workers N] [--out FILE]   # Table 1 charm rows → BENCH_table1.json
//! ckd-sweep jacobi   [--workers N] [--out FILE]   # Fig 2(a) → BENCH_jacobi.json
//! ckd-sweep matmul   [--workers N] [--out FILE]   # Fig 3(b) → BENCH_matmul.json
//! ckd-sweep backends [--workers N] [--out FILE]   # completion-backend grid → BENCH_backends.json
//! ckd-sweep smoke    [--workers N]                # tiny grid, asserts N-worker == 1-worker bytes
//! ckd-sweep pdes                                  # sharded-vs-serial byte-compare of a traced run
//! ckd-sweep channels [--out FILE]                 # channel-storm herd scaling → BENCH_channels.json
//! ckd-sweep validate FILE...                      # schema-check BENCH_*.json files
//! ckd-sweep profile  [--workers N] [--out FILE]   # profiled smoke grid: phase table,
//!                                                 # histograms, snapshot validation
//! ```
//!
//! `--shards N` forces every run of a grid onto the sharded PDES engine
//! (`MachineBuilder::with_shards`); results are byte-identical either way,
//! so the emitted file differs only in the `shards`/`pdes_rounds` fields.
//!
//! `sweep64` also times a one-worker serial pass over the same grid and
//! records the wall-clock speedup in the emitted file; every command
//! verifies that the parallel merge is byte-identical to the serial one
//! before writing anything.

use std::process::ExitCode;
use std::time::Instant;

use ckd_bench::{
    backends_grid, channels_json, fig2a_grid, fig3b_grid, run_storm_point, run_sweep,
    run_sweep_with, smoke_grid, sweep64_grid, sweep_json, table1_grid, validate_channels_json,
    validate_sweep_json, HostReport, RunSpec, CHANNELS_SCHEMA, STORM_REGISTERED,
};
use ckd_charm::{validate_snapshot_jsonl, ProfConfig, ProfShard};

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

struct Opts {
    workers: usize,
    out: Option<String>,
    shards: Option<usize>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        workers: cores().min(4),
        out: None,
        shards: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                opts.workers = v.parse().map_err(|_| format!("bad worker count {v:?}"))?;
                if opts.workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--out" => {
                opts.out = Some(it.next().ok_or("--out needs a path")?.clone());
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad shard count {v:?}"))?;
                if n == 0 {
                    return Err("--shards must be >= 1".into());
                }
                opts.shards = Some(n);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

/// Apply a `--shards` override to every grid point.
fn with_shards(grid: Vec<RunSpec>, shards: Option<usize>) -> Vec<RunSpec> {
    match shards {
        None => grid,
        Some(n) => grid
            .into_iter()
            .map(|s| RunSpec { shards: n, ..s })
            .collect(),
    }
}

/// Run `grid` with the requested workers, prove the merge matches a
/// serial pass byte-for-byte, and write the JSON (with host wall-clock)
/// to `out`. `time_serial` additionally times the serial pass for the
/// speedup record; otherwise the serial pass is verification-only.
fn emit(name: &str, grid: &[RunSpec], opts: &Opts, time_serial: bool) -> Result<(), String> {
    eprintln!(
        "ckd-sweep {name}: {} runs on {} workers ({} cores)",
        grid.len(),
        opts.workers,
        cores()
    );
    let t0 = Instant::now();
    let parallel = run_sweep(grid, opts.workers);
    let wall_ns = t0.elapsed().as_nanos();

    let serial_wall_ns = if time_serial || opts.workers > 1 {
        let t1 = Instant::now();
        let serial = run_sweep(grid, 1);
        let ns = t1.elapsed().as_nanos();
        if sweep_json(name, &serial, None) != sweep_json(name, &parallel, None) {
            return Err(format!(
                "{name}: {}-worker merge diverged from the serial pass",
                opts.workers
            ));
        }
        time_serial.then_some(ns)
    } else {
        None
    };

    let host = HostReport {
        workers: opts.workers,
        wall_ns,
        serial_wall_ns,
        cores: cores(),
    };
    let json = sweep_json(name, &parallel, Some(&host));
    validate_sweep_json(&json)?;
    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{name}.json"));
    std::fs::write(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!(
        "ckd-sweep {name}: wall {:.1} ms{} -> {path}",
        wall_ns as f64 / 1e6,
        match serial_wall_ns {
            Some(s) => format!(
                ", serial {:.1} ms, speedup {:.2}x",
                s as f64 / 1e6,
                s as f64 / wall_ns.max(1) as f64
            ),
            None => String::new(),
        }
    );
    Ok(())
}

fn smoke(opts: &Opts) -> Result<(), String> {
    let grid = smoke_grid();
    let one = sweep_json("smoke", &run_sweep(&grid, 1), None);
    let many = sweep_json("smoke", &run_sweep(&grid, opts.workers.max(2)), None);
    if one != many {
        return Err(format!(
            "smoke: {}-worker sweep diverged from 1-worker sweep",
            opts.workers.max(2)
        ));
    }
    validate_sweep_json(&one)?;
    eprintln!(
        "ckd-sweep smoke: {} runs byte-identical across 1 and {} workers",
        grid.len(),
        opts.workers.max(2)
    );
    Ok(())
}

/// Profiled smoke grid: prove the snapshot streams are byte-identical
/// across worker counts, validate every stream's JSONL structure, then
/// merge the per-run shards and print the machine-wide profile report.
fn profile(opts: &Opts) -> Result<(), String> {
    let grid = smoke_grid();
    // The smallest smoke point finishes in under 50 scheduler events, so a
    // cadence of 16 guarantees every run emits at least one snapshot.
    let cfg = ProfConfig { snapshot_every: 16 };
    let workers = opts.workers.max(2);
    let one = run_sweep_with(&grid, 1, Some(cfg));
    let many = run_sweep_with(&grid, workers, Some(cfg));
    let mut snapshot_lines = 0usize;
    for (i, (a, b)) in one.iter().zip(&many).enumerate() {
        if a.snapshots != b.snapshots {
            return Err(format!(
                "profile: run {i} snapshot stream diverged between 1 and {workers} workers"
            ));
        }
        let jsonl = a
            .snapshots
            .as_deref()
            .ok_or_else(|| format!("profile: run {i} carries no snapshot stream"))?;
        snapshot_lines += validate_snapshot_jsonl(jsonl).map_err(|e| format!("run {i}: {e}"))?;
    }
    let mut merged = ProfShard::default();
    for r in &one {
        merged.merge(r.prof.as_ref().expect("profiled run carries a shard"));
    }
    let report = merged.render();
    if let Some(path) = &opts.out {
        std::fs::write(path, &report).map_err(|e| format!("writing {path}: {e}"))?;
    } else {
        print!("{report}");
    }
    eprintln!(
        "ckd-sweep profile: {} runs, {snapshot_lines} snapshots byte-identical \
         across 1 and {workers} workers",
        grid.len()
    );
    Ok(())
}

/// The PDES smoke: run a small traced Jacobi once on the serial engine
/// and once on 2 shards, and require every export byte — trace JSON, text
/// summary, `{:#?}` stats — to be identical. This is the one-command
/// version of `tests/pdes_determinism.rs`, cheap enough for every
/// `scripts/check.sh` run.
fn pdes() -> Result<(), String> {
    use ckd_apps::jacobi3d::{run_jacobi_on, JacobiCfg};
    use ckd_apps::{Platform, Variant};
    use ckd_charm::{chrome_trace_json, text_summary, TraceConfig};

    let cfg = JacobiCfg {
        domain: [16, 16, 16],
        chares: [2, 2, 2],
        iters: 3,
        variant: Variant::Ckd,
        real_compute: false,
    };
    let platform = Platform::IbAbe { cores_per_node: 2 };
    let run = |shards: usize| {
        let mut m = platform
            .builder(8)
            .with_tracing(TraceConfig::default())
            .with_shards(shards)
            .build();
        run_jacobi_on(&mut m, cfg);
        let exports = (
            chrome_trace_json(m.tracer()).ok_or("pdes: run was not traced")?,
            text_summary(m.tracer()).ok_or("pdes: run was not traced")?,
            format!("{:#?}\n", m.stats()),
        );
        Ok::<_, String>((exports, m.pdes_stats()))
    };
    let (serial, none) = run(1)?;
    if none.is_some() {
        return Err("pdes: shards=1 must run the serial engine".into());
    }
    let (sharded, stats) = run(2)?;
    if serial != sharded {
        return Err("pdes: sharded exports diverged from serial".into());
    }
    let stats = stats.ok_or("pdes: sharded run reported no engine stats")?;
    if stats.rounds == 0 {
        return Err("pdes: engine never started a round".into());
    }
    if stats.window_spills > 0 {
        return Err(format!(
            "pdes: {} events violated the safe window",
            stats.window_spills
        ));
    }
    eprintln!(
        "ckd-sweep pdes: 2-shard run byte-identical to serial \
         ({} rounds, {} cross-shard events)",
        stats.rounds, stats.cross_shard
    );
    Ok(())
}

/// The channel-storm trajectory: a fixed active window over a herd of
/// 1k→100k registered channels on one PE. Proves (a) the deterministic
/// section is byte-identical across repeats and across the serial/PDES
/// engines, and (b) host cost per sweep stays roughly flat as the herd
/// grows 100× — the O(active) claim of the sharded poll rings. The
/// linear-scan plane this replaced would fail (b) by ~two orders of
/// magnitude.
fn channels(opts: &Opts) -> Result<(), String> {
    // (a) determinism: repeat the smallest point serially, then run it on
    // the 2-shard PDES engine; all deterministic bytes must agree.
    let probe = STORM_REGISTERED[0];
    let first = run_storm_point(probe, 1);
    let again = run_storm_point(probe, 1);
    if ckd_bench::chanstorm::det_line(&first.result)
        != ckd_bench::chanstorm::det_line(&again.result)
        || first.stats_debug != again.stats_debug
    {
        return Err("channels: serial re-run diverged".into());
    }
    let sharded = run_storm_point(probe, 2);
    if ckd_bench::chanstorm::det_line(&first.result)
        != ckd_bench::chanstorm::det_line(&sharded.result)
        || first.stats_debug != sharded.stats_debug
    {
        return Err("channels: PDES engine diverged from serial".into());
    }

    let mut points = vec![first];
    for &registered in &STORM_REGISTERED[1..] {
        points.push(run_storm_point(registered, 1));
    }
    for p in &points {
        eprintln!(
            "ckd-sweep channels: registered {:>6}  sweeps {:>5}  ns/sweep {:>8.0}",
            p.result.registered,
            p.sweeps,
            p.ns_per_sweep()
        );
    }

    // (b) flatness: growing the herd 100x must not grow per-sweep host
    // cost by more than 3x (plus a fixed 5us of timer slack for tiny
    // absolute costs). O(registered) behavior would show ~100x here.
    let (small, large) = (
        points[0].ns_per_sweep(),
        points[points.len() - 1].ns_per_sweep(),
    );
    if points.iter().any(|p| p.sweeps == 0) {
        return Err("channels: a point ran no sweeps".into());
    }
    if large > 3.0 * small + 5_000.0 {
        return Err(format!(
            "channels: per-sweep host cost scales with the herd \
             ({large:.0} ns at {} vs {small:.0} ns at {} registered)",
            points[points.len() - 1].result.registered,
            points[0].result.registered,
        ));
    }

    let json = channels_json(&points, cores());
    validate_channels_json(&json)?;
    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_channels.json".to_string());
    std::fs::write(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!(
        "ckd-sweep channels: host cost flat across a 100x herd \
         ({small:.0} -> {large:.0} ns/sweep) -> {path}"
    );
    Ok(())
}

fn validate(paths: &[String]) -> Result<(), String> {
    if paths.is_empty() {
        return Err("validate: no files given".into());
    }
    for p in paths {
        let s = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        // dispatch on the schema tag: channel-storm files have their own
        // shape; everything else is a sweep trajectory
        if s.contains(CHANNELS_SCHEMA) {
            validate_channels_json(&s).map_err(|e| format!("{p}: {e}"))?;
        } else {
            validate_sweep_json(&s).map_err(|e| format!("{p}: {e}"))?;
        }
        eprintln!("ckd-sweep validate: {p} ok");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(
            "usage: ckd-sweep <sweep64|table1|jacobi|matmul|backends|smoke|pdes|channels|profile\
             |validate> [--workers N] [--out FILE] [--shards N]"
                .into(),
        );
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "sweep64" => {
            let opts = parse_opts(rest)?;
            emit(
                "sweep",
                &with_shards(sweep64_grid(), opts.shards),
                &opts,
                true,
            )
        }
        "table1" => {
            let opts = parse_opts(rest)?;
            emit(
                "table1",
                &with_shards(table1_grid(), opts.shards),
                &opts,
                false,
            )
        }
        "jacobi" => {
            let opts = parse_opts(rest)?;
            emit(
                "jacobi",
                &with_shards(fig2a_grid(), opts.shards),
                &opts,
                false,
            )
        }
        "matmul" => {
            let opts = parse_opts(rest)?;
            emit(
                "matmul",
                &with_shards(fig3b_grid(), opts.shards),
                &opts,
                false,
            )
        }
        "backends" => {
            let opts = parse_opts(rest)?;
            emit(
                "backends",
                &with_shards(backends_grid(), opts.shards),
                &opts,
                false,
            )
        }
        "smoke" => smoke(&parse_opts(rest)?),
        "pdes" => pdes(),
        "channels" => channels(&parse_opts(rest)?),
        // both spellings: `profile` as a subcommand, `--profile` as a flag
        "profile" | "--profile" => profile(&parse_opts(rest)?),
        "validate" => validate(rest),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ckd-sweep: {e}");
            ExitCode::FAILURE
        }
    }
}
