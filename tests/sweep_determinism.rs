//! Determinism of the parallel sweep engine: the merged output of
//! [`run_sweep`] must be a pure function of the grid — byte-identical
//! JSON and identical per-run [`MachineStats`] for every worker count,
//! and identical to a hand-rolled serial loop that never touches the
//! engine at all. Workers race for grid indices, so any divergence here
//! means host scheduling leaked into virtual-time results.

use ckd_bench::{
    backends_grid, run_sweep, run_sweep_with, smoke_grid, sweep_json, validate_sweep_json,
    RunRecord,
};
use ckd_charm::{validate_snapshot_jsonl, ProfConfig};

/// The engine's own 1-worker pass, used as the comparison baseline.
fn baseline() -> Vec<RunRecord> {
    run_sweep(&smoke_grid(), 1)
}

#[test]
fn merged_output_is_byte_identical_across_worker_counts() {
    let grid = smoke_grid();
    let base = baseline();
    let base_json = sweep_json("smoke", &base, None);
    validate_sweep_json(&base_json).unwrap();

    for workers in [2usize, 4, 8] {
        let records = run_sweep(&grid, workers);
        assert_eq!(
            sweep_json("smoke", &records, None),
            base_json,
            "{workers}-worker sweep JSON diverged from 1 worker"
        );
        // deeper than the JSON: every machine counter, including the
        // per-protocol breakdowns the JSON doesn't serialize
        for (i, (a, b)) in base.iter().zip(&records).enumerate() {
            assert_eq!(a.spec, b.spec, "run {i}: grid order not preserved");
            assert_eq!(
                a.stats, b.stats,
                "run {i}: MachineStats diverged at {workers} workers"
            );
        }
        assert_eq!(base, records, "{workers}-worker records diverged");
    }
}

#[test]
fn engine_matches_a_hand_rolled_serial_loop() {
    let grid = smoke_grid();
    // no engine: just execute each spec in order on this thread
    let by_hand: Vec<RunRecord> = grid.iter().map(|spec| spec.execute()).collect();
    for workers in [1usize, 4] {
        let engine = run_sweep(&grid, workers);
        assert_eq!(
            by_hand, engine,
            "{workers}-worker engine output != hand-rolled serial loop"
        );
    }
    assert_eq!(
        sweep_json("smoke", &by_hand, None),
        sweep_json("smoke", &run_sweep(&grid, 2), None)
    );
}

/// The backend-comparison grid behind `BENCH_backends.json` is as
/// deterministic as the smoke grid: byte-identical JSON (per-run
/// `backend`/`cq_drains` fields included) for every worker count, with
/// the notified-put points genuinely draining CQs and the forced
/// shared-memory points genuinely overridden.
#[test]
fn backend_grid_is_byte_identical_across_worker_counts() {
    let grid = backends_grid();
    let base = run_sweep(&grid, 1);
    let base_json = sweep_json("backends", &base, None);
    validate_sweep_json(&base_json).unwrap();
    for workers in [2usize, 4] {
        let records = run_sweep(&grid, workers);
        assert_eq!(
            sweep_json("backends", &records, None),
            base_json,
            "{workers}-worker backend grid diverged"
        );
        assert_eq!(base, records, "{workers}-worker records diverged");
    }
    assert!(
        base.iter()
            .any(|r| r.backend == "notified-put" && r.cq_drains > 0),
        "no notified-put point ever drained"
    );
    assert!(
        base.iter().any(|r| r.backend == "shared-mem"),
        "the shared-mem override never applied"
    );
}

#[test]
fn oversubscribed_workers_are_harmless() {
    // more workers than grid points: the extras find the counter already
    // exhausted and exit without contributing
    let grid = &smoke_grid()[..3];
    let few = run_sweep(grid, 1);
    let many = run_sweep(grid, 16);
    assert_eq!(few, many);
}

#[test]
fn profiled_sweep_is_deterministic_across_worker_counts() {
    // The profiler mixes host wall-clock into its shards, but everything
    // derived from *virtual* time — snapshot streams and the deterministic
    // histograms — must be byte-identical for every worker count.
    let grid = smoke_grid();
    let cfg = ProfConfig { snapshot_every: 16 };
    let base = run_sweep_with(&grid, 1, Some(cfg));
    for r in &base {
        let jsonl = r.snapshots.as_deref().expect("profiled run has snapshots");
        validate_snapshot_jsonl(jsonl).unwrap();
    }

    for workers in [2usize, 4, 8] {
        let records = run_sweep_with(&grid, workers, Some(cfg));
        // RunRecord equality covers the deterministic fields, snapshot
        // streams included (host_ns and the wall-clock shard are excluded
        // by its PartialEq).
        assert_eq!(base, records, "{workers}-worker profiled sweep diverged");
        for (i, (a, b)) in base.iter().zip(&records).enumerate() {
            let (pa, pb) = (a.prof.as_ref().unwrap(), b.prof.as_ref().unwrap());
            assert_eq!(
                pa.put_lat_ns, pb.put_lat_ns,
                "run {i}: put-latency histogram diverged at {workers} workers"
            );
            assert_eq!(
                pa.poll_batch, pb.poll_batch,
                "run {i}: poll-batch histogram diverged at {workers} workers"
            );
            assert_eq!(
                pa.queue_depth, pb.queue_depth,
                "run {i}: queue-depth histogram diverged at {workers} workers"
            );
            assert_eq!(pa.events, pb.events, "run {i}: profiled event count");
            assert_eq!(pa.puts, pb.puts, "run {i}: profiled put count");
        }
    }
}

#[test]
fn profiling_does_not_change_sweep_results() {
    // Zero-observable-cost: a profiled sweep must report exactly the
    // virtual-time results of a plain one — the profiler only watches.
    let grid = smoke_grid();
    let plain = run_sweep(&grid, 2);
    let profiled = run_sweep_with(&grid, 2, Some(ProfConfig { snapshot_every: 16 }));
    for (i, (a, b)) in plain.iter().zip(&profiled).enumerate() {
        assert_eq!(a.stats, b.stats, "run {i}: stats changed under profiling");
        assert_eq!(a.metric_ps, b.metric_ps, "run {i}: metric changed");
        assert_eq!(a.total_ps, b.total_ps, "run {i}: total time changed");
        assert_eq!(a.callbacks, b.callbacks, "run {i}: callbacks changed");
        assert_eq!(a.poll_checks, b.poll_checks, "run {i}: poll checks changed");
        assert!(a.snapshots.is_none(), "plain run grew a snapshot stream");
        assert!(b.snapshots.is_some(), "profiled run lost its snapshots");
    }
    // and the v2 JSON they serialize to is identical (snapshot streams and
    // shards ride outside the sweep JSON)
    assert_eq!(
        sweep_json("smoke", &plain, None),
        sweep_json("smoke", &profiled, None)
    );
}

#[test]
fn faulty_grid_points_are_as_deterministic_as_clean_ones() {
    // the smoke grid interleaves clean and faulty points; re-running the
    // whole sweep must reproduce the fault histories exactly
    let grid = smoke_grid();
    let a = run_sweep(&grid, 4);
    let b = run_sweep(&grid, 4);
    assert_eq!(a, b, "same grid, same workers, different results");
    assert!(
        a.iter().any(|r| r.stats.rel.retries > 0),
        "no faulty point ever retried — the fault axis is inert"
    );
    assert!(
        a.iter().any(|r| r.spec.drop_permille == 0),
        "smoke grid lost its clean points"
    );
}
