//! The runtime-layer stack: a uniform interposition interface over the
//! scheduler's hot path.
//!
//! Everything that used to be bolted onto [`crate::Machine`] as an ad-hoc
//! field with its own `enable_*` method — tracing, race checking, the
//! learning framework, reliable delivery — implements [`RuntimeLayer`] and
//! observes the run through the same five hooks:
//!
//! ```text
//!            dispatch ──► on_event    (scheduler-visible event popped)
//!        Ctx put/get  ──► on_put_issue (one-sided transfer leaves a PE)
//!   DirectLand/GetLand ──► on_landing  (bytes hit the receive window)
//!   scheduler/callback ──► on_deliver  (handler about to run)
//!            run ends ──► epilogue    (final stats available)
//! ```
//!
//! Layers are *observers*: they may keep arbitrary state of their own but
//! cannot perturb virtual time, which is how the stack preserves the
//! machine's byte-identical determinism — a run with any combination of
//! layers enabled produces the same timestamps as a run with none (the
//! built-in layers' exports prove it in `tests/trace_determinism.rs`).
//! Subsystems that *do* shape the timeline (reliable delivery's
//! retransmissions, the learner's channel installation) keep their inline
//! fast paths and use the trait only for identity and lifecycle.
//!
//! Reliability-protocol traffic (acks, retransmission timers) is NIC-level
//! and deliberately below this interface: it charges no PE time and no
//! layer observes it.
//!
//! User layers are added with [`crate::MachineBuilder::with_layer`]; see
//! `examples/custom_layer.rs` for a complete one.

use ckd_sim::Time;
use ckd_trace::{ProtoClass, Tracer};
use ckdirect::HandleId;

use crate::learn::Learner;
use crate::rel::ReliableLayer;
use crate::stats::MachineStats;
use ckd_race::Sanitizer;

/// What kind of scheduler-visible event [`RuntimeLayer::on_event`] is
/// reporting, with the attribution its observers need.
#[derive(Clone, Copy, Debug)]
pub enum EventKind {
    /// A two-sided message finished arriving at the PE.
    MsgArrive {
        /// Sending PE.
        from: u32,
        /// Protocol family the transfer used.
        proto: ProtoClass,
        /// Happens-before edge token (0 when no sanitizer is attached).
        edge: u64,
    },
    /// A scheduler iteration is about to run on the PE.
    PeLoop {
        /// Messages queued at iteration start.
        depth: u32,
    },
    /// A reduction partial arrived from a child subtree.
    ReduceUp {
        /// The reducing array.
        array: u32,
        /// Happens-before edge token carrying the subtree's contributions.
        edge: u64,
    },
    /// A broadcast leg arrived at a spanning-tree node.
    BcastDown {
        /// The broadcasting array.
        array: u32,
        /// Happens-before edge token.
        edge: u64,
    },
}

/// A scheduler-visible event, handed to [`RuntimeLayer::on_event`] before
/// its handler runs.
#[derive(Clone, Copy, Debug)]
pub struct EventInfo {
    /// PE the event executes on.
    pub pe: usize,
    /// Virtual time the event was popped.
    pub at: Time,
    /// What happened.
    pub kind: EventKind,
}

/// A one-sided transfer (put, learned put, or get) leaving its initiator.
#[derive(Clone, Copy, Debug)]
pub struct PutIssueInfo {
    /// Initiating PE.
    pub pe: usize,
    /// Issue instant.
    pub at: Time,
    /// Destination PE.
    pub dst: u32,
    /// The channel.
    pub handle: HandleId,
    /// Payload bytes on the wire.
    pub bytes: u64,
    /// Protocol family charged (rendezvous for a degraded put).
    pub proto: ProtoClass,
    /// One-way wire latency the model predicted.
    pub wire_delay: Time,
}

/// One-sided bytes hitting a receive window (put landing at the receiver,
/// or a get returning to its initiator).
#[derive(Clone, Copy, Debug)]
pub struct LandingInfo {
    /// PE owning the window.
    pub pe: usize,
    /// Landing instant.
    pub at: Time,
    /// The channel.
    pub handle: HandleId,
    /// Payload bytes that landed.
    pub bytes: u64,
    /// True when this is a get completing back at its initiator.
    pub get: bool,
}

/// What [`RuntimeLayer::on_deliver`] is reporting: a handler invocation.
#[derive(Clone, Copy, Debug)]
pub enum Delivery {
    /// The scheduler dequeued a message for an entry method.
    Message {
        /// Destination entry point.
        ep: u32,
        /// Message payload size.
        bytes: u64,
    },
    /// A CkDirect completion callback is firing.
    Callback {
        /// The completed channel.
        handle: HandleId,
    },
}

/// A handler invocation on a PE.
#[derive(Clone, Copy, Debug)]
pub struct DeliverInfo {
    /// Executing PE.
    pub pe: usize,
    /// Invocation instant.
    pub at: Time,
    /// What is being delivered.
    pub what: Delivery,
}

/// One layer of the runtime stack: a passive observer of the scheduler's
/// hot path. All hooks default to no-ops; implement only what the layer
/// watches. See the [module docs](self) for when each hook fires.
pub trait RuntimeLayer {
    /// Stable identifier for reports and debugging.
    fn name(&self) -> &'static str;

    /// A scheduler-visible event was popped, before its handler runs.
    fn on_event(&mut self, ev: &EventInfo) {
        let _ = ev;
    }

    /// A one-sided transfer left its initiating PE.
    fn on_put_issue(&mut self, put: &PutIssueInfo) {
        let _ = put;
    }

    /// One-sided bytes hit a receive window.
    fn on_landing(&mut self, landing: &LandingInfo) {
        let _ = landing;
    }

    /// A handler (entry method or completion callback) is about to run.
    fn on_deliver(&mut self, deliver: &DeliverInfo) {
        let _ = deliver;
    }

    /// The run reached quiescence, exit, or its time limit.
    fn epilogue(&mut self, stats: &MachineStats) {
        let _ = stats;
    }
}

impl RuntimeLayer for Tracer {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn on_event(&mut self, ev: &EventInfo) {
        match ev.kind {
            EventKind::MsgArrive { from, proto, .. } => {
                if proto == ProtoClass::Rendezvous {
                    // reconstructed handshake leg: the receiver cleared the
                    // sender to write (see `Ev::MsgArrive::proto`)
                    self.cts(ev.pe, ev.at, from);
                }
            }
            EventKind::PeLoop { depth } => {
                if self.is_enabled() {
                    self.queue_depth(ev.pe, ev.at, depth);
                }
            }
            EventKind::ReduceUp { .. } | EventKind::BcastDown { .. } => {}
        }
    }

    fn on_put_issue(&mut self, put: &PutIssueInfo) {
        self.put_issue(
            put.pe,
            put.at,
            put.dst,
            put.handle.0,
            put.bytes,
            put.proto,
            put.wire_delay,
        );
    }

    fn on_landing(&mut self, landing: &LandingInfo) {
        self.put_land(landing.pe, landing.at, landing.handle.0, landing.bytes);
    }

    fn on_deliver(&mut self, deliver: &DeliverInfo) {
        match deliver.what {
            Delivery::Message { ep, bytes } => self.msg_deliver(deliver.pe, deliver.at, ep, bytes),
            Delivery::Callback { handle } => self.callback_fire(deliver.pe, deliver.at, handle.0),
        }
    }
}

impl RuntimeLayer for Sanitizer {
    fn name(&self) -> &'static str {
        "race"
    }

    fn on_event(&mut self, ev: &EventInfo) {
        match ev.kind {
            EventKind::MsgArrive { edge, .. } | EventKind::BcastDown { edge, .. } => {
                self.edge_in(ev.pe, edge);
            }
            EventKind::ReduceUp { array, edge } => self.red_absorb(array, ev.pe, edge),
            // the poll sweep sets the sanitizer context itself, at the
            // PE's busy horizon rather than the event timestamp
            EventKind::PeLoop { .. } => {}
        }
    }

    fn on_landing(&mut self, landing: &LandingInfo) {
        // point the virtual clock at the receiving PE so the registry's
        // lifecycle transitions are attributed correctly
        self.set_ctx(landing.pe, landing.at);
    }
}

impl RuntimeLayer for Learner {
    // The learner shapes traffic inline (in `Ctx::send_learned`), where it
    // can rewrite a send into a put; the hooks observe nothing.
    fn name(&self) -> &'static str {
        "learn"
    }
}

impl RuntimeLayer for ReliableLayer {
    // Reliable delivery lives on the wire path (`Machine::rel_push`),
    // below the scheduler events these hooks report.
    fn name(&self) -> &'static str {
        "rel"
    }
}

/// The machine's composed stack: the built-in layers in fixed positions
/// (tracer first, so its records carry timestamps unperturbed by any other
/// observer, then the sanitizer), followed by user layers in installation
/// order.
pub(crate) struct LayerStack {
    pub tracer: Tracer,
    pub san: Sanitizer,
    pub learner: Learner,
    /// Fault injection + reliable delivery; `None` (the default) costs one
    /// branch per send/put and leaves event flow bit-identical to a build
    /// without the fault plane.
    pub rel: Option<Box<ReliableLayer>>,
    pub user: Vec<Box<dyn RuntimeLayer>>,
}

impl LayerStack {
    pub(crate) fn new() -> LayerStack {
        LayerStack {
            tracer: Tracer::disabled(),
            san: Sanitizer::disabled(),
            learner: Learner::default(),
            rel: None,
            user: Vec::new(),
        }
    }

    /// Whether any layer is watching the hook seams. False for a bare
    /// machine, which keeps every seam at one branch — the zero-cost-off
    /// guarantee the `enable_*` era made, preserved by the stack.
    #[inline]
    pub(crate) fn observing(&self) -> bool {
        self.tracer.is_enabled() || self.san.is_enabled() || !self.user.is_empty()
    }

    pub(crate) fn on_event(&mut self, ev: &EventInfo) {
        self.tracer.on_event(ev);
        self.san.on_event(ev);
        for l in &mut self.user {
            l.on_event(ev);
        }
    }

    pub(crate) fn on_put_issue(&mut self, put: &PutIssueInfo) {
        self.tracer.on_put_issue(put);
        self.san.on_put_issue(put);
        for l in &mut self.user {
            l.on_put_issue(put);
        }
    }

    pub(crate) fn on_landing(&mut self, landing: &LandingInfo) {
        self.tracer.on_landing(landing);
        self.san.on_landing(landing);
        for l in &mut self.user {
            l.on_landing(landing);
        }
    }

    pub(crate) fn on_deliver(&mut self, deliver: &DeliverInfo) {
        self.tracer.on_deliver(deliver);
        self.san.on_deliver(deliver);
        for l in &mut self.user {
            l.on_deliver(deliver);
        }
    }

    pub(crate) fn epilogue(&mut self, stats: &MachineStats) {
        self.tracer.epilogue(stats);
        self.san.epilogue(stats);
        self.learner.epilogue(stats);
        if let Some(r) = self.rel.as_deref_mut() {
            r.epilogue(stats);
        }
        for l in &mut self.user {
            l.epilogue(stats);
        }
    }
}
