//! Per-implementation parameter sets for the MPI baselines.

use ckd_sim::Time;

/// Software costs of one MPI implementation.
#[derive(Clone, Copy, Debug)]
pub struct MpiFlavor {
    /// Implementation name as printed in the tables.
    pub name: &'static str,
    /// Sender software overhead per send.
    pub o_send: Time,
    /// Receiver software overhead per delivered message.
    pub o_recv: Time,
    /// Tag-matching cost per message (queue walk + descriptor handling).
    pub match_cost: Time,
    /// MPI header bytes accompanying each message.
    pub header_bytes: usize,
    /// Eager→rendezvous switch point.
    pub eager_max: usize,
    /// Receive-side copy out of eager buffers, ps/B.
    pub eager_copy_ps_per_byte: u64,
    /// Whether memory registrations are cached (skipping the per-transfer
    /// registration cost on the rendezvous path).
    pub reg_cached: bool,
    /// Extra fixed cost of the rendezvous protocol beyond the wire
    /// round-trip (descriptor bookkeeping).
    pub rndv_extra: Time,
    /// CPU cost per PSCW synchronization call (post/start/complete/wait).
    pub win_cpu: Time,
    /// Multiplier on the put data path (one-sided pipelines are often a
    /// little less tuned than the two-sided path).
    pub put_beta_factor: f64,
    /// Multiplier on the rendezvous data path.
    pub rndv_beta_factor: f64,
    /// One-sided mid-size pipeline stall: extra one-way delay applied to
    /// puts whose size falls in `[lo, hi)` — Table 1 shows MVAPICH2 0.9.8's
    /// `MPI_Put` paying a ~11 µs plateau between 5 KB and 100 KB that
    /// vanishes again at 500 KB.
    pub put_bump: Option<(usize, usize, Time)>,
    /// IBM-MPI quirk: an extra fixed cost applied to messages whose size
    /// falls in `[lo, hi)` — the paper surmises "some kind of buffering
    /// threshold" behind the 5–20 KB bump in Table 2.
    pub buffer_bump: Option<(usize, usize, Time)>,
}

/// MPICH-VMI 2.2.0 on Abe (Table 1). The VMI stack carries noticeably more
/// per-message software than MVAPICH, and its large-message path was not
/// registration-cached.
pub fn mpich_vmi() -> MpiFlavor {
    MpiFlavor {
        name: "MPICH-VMI",
        o_send: Time::from_ns(200),
        o_recv: Time::from_ns(250),
        match_cost: Time::from_ns(250),
        header_bytes: 16,
        eager_max: 16 * 1024,
        eager_copy_ps_per_byte: 1050,
        reg_cached: false,
        rndv_extra: Time::from_ns(500),
        win_cpu: Time::from_ns(900),
        put_beta_factor: 1.05,
        rndv_beta_factor: 1.0,
        put_bump: None,
        buffer_bump: None,
    }
}

/// MVAPICH2 0.9.8 on Abe (Table 1): the tuned verbs MPI — small constants,
/// registration cache on, eager threshold near 16 KB.
pub fn mvapich() -> MpiFlavor {
    MpiFlavor {
        name: "MVAPICH",
        o_send: Time::from_ns(120),
        o_recv: Time::from_ns(150),
        match_cost: Time::from_ns(200),
        header_bytes: 16,
        eager_max: 16 * 1024,
        eager_copy_ps_per_byte: 950,
        reg_cached: true,
        rndv_extra: Time::from_ns(2500),
        win_cpu: Time::from_ns(800),
        put_beta_factor: 1.055,
        rndv_beta_factor: 1.05,
        put_bump: Some((2 * 1024, 120 * 1024, Time::from_us(10))),
        buffer_bump: None,
    }
}

/// IBM MPI on Blue Gene/P (Table 2), built on the same DCMF layer as
/// Charm++ — only tag matching and MPI bookkeeping separate it from the
/// CkDirect BG/P path, plus the mid-size buffering bump the paper observed.
pub fn ibm_bgp() -> MpiFlavor {
    MpiFlavor {
        name: "MPI",
        o_send: Time::from_ns(800),
        o_recv: Time::from_ns(800),
        match_cost: Time::from_ns(500),
        header_bytes: 16,
        // no RDMA rendezvous existed on Surveyor: always the send path
        eager_max: usize::MAX,
        // DCMF delivers normal messages straight into the posted buffer;
        // only a small bookkeeping cost grows with size
        eager_copy_ps_per_byte: 8,
        reg_cached: true,
        rndv_extra: Time::ZERO,
        win_cpu: Time::from_ns(1300),
        put_beta_factor: 1.0,
        rndv_beta_factor: 1.0,
        put_bump: None,
        buffer_bump: Some((4 * 1024, 24 * 1024, Time::from_us(3))),
    }
}

impl MpiFlavor {
    /// The buffering-bump surcharge for a message of `bytes`.
    pub fn bump_for(&self, bytes: usize) -> Time {
        match self.buffer_bump {
            Some((lo, hi, t)) if bytes >= lo && bytes < hi => t,
            _ => Time::ZERO,
        }
    }

    /// The one-sided mid-size stall for a put of `bytes`.
    pub fn put_bump_for(&self, bytes: usize) -> Time {
        match self.put_bump {
            Some((lo, hi, t)) if bytes >= lo && bytes < hi => t,
            _ => Time::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_applies_only_in_range() {
        let f = ibm_bgp();
        assert_eq!(f.bump_for(100), Time::ZERO);
        assert_eq!(f.bump_for(5000), Time::from_us(3));
        assert_eq!(f.bump_for(30_000), Time::ZERO);
        assert_eq!(mvapich().bump_for(5000), Time::ZERO);
    }

    #[test]
    fn flavors_have_distinct_names() {
        let names = [mpich_vmi().name, mvapich().name, ibm_bgp().name];
        assert_eq!(
            names.len(),
            names.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }
}
