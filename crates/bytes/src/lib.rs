//! Minimal vendored stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this tiny drop-in providing exactly the surface the
//! repository uses: [`Bytes`], a cheaply cloneable, immutable, contiguous
//! byte buffer. Cloning copies one `Arc`, never the payload — the property
//! message payloads rely on when a broadcast fans a buffer out to many
//! chares.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wrap a static slice (copied once; this shim has no borrow mode).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(s) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes { data: Arc::from(s) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A new buffer holding `self[begin..end]` (copies the range).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: Arc::from(&self.data[range]),
        }
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copy the contents out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes { data: Arc::from(s) }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes { data: Arc::from(b) }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for &Bytes {
    type Item = u8;
    type IntoIter = std::iter::Copied<std::slice::Iter<'static, u8>>;

    fn into_iter(self) -> Self::IntoIter {
        // not expressible without a lifetime on the impl; keep it simple
        unimplemented!("iterate via the Deref slice instead")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_len() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn clone_shares_storage() {
        let b = Bytes::from(vec![9u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(std::ptr::eq(b.as_slice().as_ptr(), c.as_slice().as_ptr()));
    }

    #[test]
    fn slice_copies_range() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        assert_eq!(b.slice(1..4).to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn deref_enables_slice_apis() {
        let b = Bytes::from(vec![5u8; 16]);
        let first = f64::from_le_bytes(b[0..8].try_into().unwrap());
        assert_eq!(first.to_bits(), u64::from_le_bytes([5; 8]));
    }

    #[test]
    fn empty() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::default().is_empty());
    }
}
