//! Machine shapes, interconnect topologies and chare→PE mappers.
//!
//! The paper's two testbeds differ structurally, not just in constants:
//!
//! * **NCSA Abe** — multicore Infiniband cluster (8 cores/node in the paper's
//!   stencil runs, 2 cores/node in the OpenAtom runs): message cost depends
//!   mostly on whether the peer is on the same node; the fat-tree adds a
//!   small per-stage cost.
//! * **ANL Surveyor (Blue Gene/P)** — 4 cores/node on a 3-D torus with
//!   deterministic XYZ routing: latency grows with hop count.
//!
//! [`Machine`] couples a [`Topology`] with a cores-per-node count and exposes
//! the PE-level queries (`same_node`, `hops_between_pes`) the network models
//! need.

pub mod machine;
pub mod mapping;
pub mod topology;

pub use machine::{Machine, NodeId, Pe};
pub use mapping::{Dims, Idx, Mapper};
pub use topology::{Crossbar, FatTree, Topology, Torus3D};
