//! Parallel-in-virtual-time execution: conservative-lookahead PDES.
//!
//! `ckd-sweep` parallelizes *across* runs; this module parallelizes *within*
//! one. PEs are partitioned into shards ([`ShardMap`]), each shard owns its
//! own slab-backed [`EventQueue`] hosted on a dedicated OS thread, and the
//! coordinator advances virtual time in rounds bounded by a safe window
//! ([`Lookahead`]) derived from the network model's minimum cross-node link
//! latency — the classic null-message/safe-window design, with the progress
//! engines (the shard heaps) running concurrently with the coordinator the
//! way a PGAS asynchronous-progress thread runs beside the application.
//!
//! # Why pop order is byte-identical to the serial queue
//!
//! The serial scheduler's total order is the packed `(time, seq)` key, where
//! `seq` is assigned at push time by one monotone counter. The sharded
//! engine keeps **that same single counter** in the coordinator: every push
//! is stamped before it is routed, and shard heaps store the caller-supplied
//! key via [`EventQueue::push_at_seq`]. Serving then always returns the
//! globally minimal `(time, seq)` key among all pending events:
//!
//! * Each round anchors at `h`, the minimum pending timestamp, and drains
//!   every shard's events with `time < h + W` (the cutoff) back to the
//!   coordinator, which merges the sorted per-shard batches with a spill
//!   heap of late arrivals.
//! * A push behind the drain horizon (inside the already-drained window)
//!   cannot reach a shard heap without violating its horizon, so it lands in
//!   the coordinator's spill heap — keyed identically — and participates in
//!   the same merge. Routing therefore never affects order, only locality;
//!   the lookahead only determines how *often* that spill path is taken
//!   ([`PdesStats::window_spills`] counts cross-shard spills, and stays 0
//!   when cross-shard events genuinely respect the safe window).
//!
//! Identical pop order plus one shared seq counter means every push happens
//! in the same order as serially, gets the same seq, and every pop returns
//! the same event at the same time: the whole simulation — trace bytes
//! included — is reproduced exactly.

use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use crate::events::{key_time, pack, EventQueue};
use crate::time::Time;

/// Static PE → shard assignment. Shards must be node-aligned for the safe
/// window to be the *cross-node* minimum latency (intra-node messages can be
/// arbitrarily fast, but they never cross a shard boundary).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    shard_of_pe: Vec<u32>,
    shards: usize,
}

impl ShardMap {
    /// Partition PEs into `shards` contiguous node blocks. `node_of_pe[p]`
    /// is the (dense, 0-based) node id hosting PE `p`; all PEs of a node
    /// land in the same shard, and nodes are spread evenly. With more
    /// shards than nodes the excess shards are simply left empty.
    pub fn node_aligned(node_of_pe: &[u32], shards: usize) -> ShardMap {
        assert!(shards >= 1, "shard count must be at least 1");
        let nodes = node_of_pe
            .iter()
            .map(|&n| n as usize + 1)
            .max()
            .unwrap_or(1);
        let shard_of_pe = node_of_pe
            .iter()
            .map(|&n| ((n as usize * shards) / nodes) as u32)
            .collect();
        ShardMap {
            shard_of_pe,
            shards,
        }
    }

    /// Build from an explicit per-PE assignment (tests and proptests).
    pub fn from_assignment(shard_of_pe: Vec<u32>, shards: usize) -> ShardMap {
        assert!(shards >= 1, "shard count must be at least 1");
        assert!(
            shard_of_pe.iter().all(|&s| (s as usize) < shards),
            "shard assignment out of range"
        );
        ShardMap {
            shard_of_pe,
            shards,
        }
    }

    /// The degenerate single-shard map.
    pub fn single(npes: usize) -> ShardMap {
        ShardMap {
            shard_of_pe: vec![0; npes],
            shards: 1,
        }
    }

    /// Number of shards (≥ 1; some may own no PEs).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of mapped PEs.
    pub fn npes(&self) -> usize {
        self.shard_of_pe.len()
    }

    /// The shard owning PE `pe`.
    #[inline]
    pub fn shard_of(&self, pe: usize) -> u32 {
        self.shard_of_pe[pe]
    }
}

/// The conservative lookahead: events less than `safe_window()` apart on
/// different shards cannot causally influence each other, because any
/// cross-shard (hence cross-node) message pays at least that much link
/// latency. Derived from `ckd_net::FabricParams::lookahead()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lookahead {
    window: Time,
}

impl Lookahead {
    /// Build from the minimum cross-shard link latency. Panics on a zero
    /// window: with no lookahead every cross-shard event is a window
    /// violation and the engine would degrade to a serial merge.
    pub fn new(min_cross_shard_latency: Time) -> Lookahead {
        assert!(
            min_cross_shard_latency > Time::ZERO,
            "conservative lookahead requires a positive minimum link latency"
        );
        Lookahead {
            window: min_cross_shard_latency,
        }
    }

    /// Width of the safe window: shards may be drained `safe_window()`
    /// past the round anchor without reordering risk.
    #[inline]
    pub fn safe_window(&self) -> Time {
        self.window
    }
}

/// Engine counters, separate from `MachineStats` so serial and sharded runs
/// keep byte-identical stats output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PdesStats {
    /// Number of shards the engine was built with.
    pub shards: usize,
    /// Safe-window rounds started.
    pub rounds: u64,
    /// Events routed over a shard channel to a different shard than the one
    /// being dispatched.
    pub cross_shard: u64,
    /// Cross-shard events that landed *inside* the current round's drained
    /// window and had to be merged coordinator-side. Stays 0 whenever the
    /// traffic honors the advertised lookahead.
    pub window_spills: u64,
}

const CMD_DEPTH: usize = 512;

enum Cmd<E> {
    Push { at: Time, seq: u64, ev: E },
    Drain { limit: Time },
    Head,
    Stop,
}

enum Reply<E> {
    Batch(Vec<(Time, u64, E)>),
    Head(Option<Time>),
}

struct Worker<E> {
    tx: SyncSender<Cmd<E>>,
    rx: Receiver<Reply<E>>,
    handle: Option<JoinHandle<()>>,
}

fn worker_loop<E>(rx: Receiver<Cmd<E>>, tx: SyncSender<Reply<E>>) {
    let mut q: EventQueue<E> = EventQueue::new();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Push { at, seq, ev } => q.push_at_seq(at, seq, ev),
            Cmd::Drain { limit } => {
                let mut batch = Vec::new();
                while let Some(item) = q.pop_keyed_before(limit) {
                    batch.push(item);
                }
                if tx.send(Reply::Batch(batch)).is_err() {
                    break;
                }
            }
            Cmd::Head => {
                if tx.send(Reply::Head(q.peek_time())).is_err() {
                    break;
                }
            }
            Cmd::Stop => break,
        }
    }
}

fn spawn_worker<E: Send + 'static>(i: usize) -> Worker<E> {
    let (cmd_tx, cmd_rx) = sync_channel::<Cmd<E>>(CMD_DEPTH);
    let (rep_tx, rep_rx) = sync_channel::<Reply<E>>(1);
    let handle = std::thread::Builder::new()
        .name(format!("ckd-shard-{i}"))
        .spawn(move || worker_loop(cmd_rx, rep_tx))
        .expect("spawn shard worker thread");
    Worker {
        tx: cmd_tx,
        rx: rep_rx,
        handle: Some(handle),
    }
}

enum Shards<E> {
    /// One OS thread per shard, commands over bounded channels.
    Threads(Vec<Worker<E>>),
    /// Same round algorithm, shard heaps owned directly (tests, and the
    /// reference the threaded mode must match).
    Inline(Vec<EventQueue<E>>),
}

/// The sharded event engine: a drop-in replacement for one serial
/// [`EventQueue`] whose pop order is identical by construction.
///
/// Contract (same as the serial queue): pushes never precede the timestamp
/// of the most recently popped event.
pub struct ShardedEngine<E> {
    map: ShardMap,
    window: Time,
    shards: Shards<E>,
    /// Per-shard drained batches for the active round, each sorted by key.
    batches: Vec<VecDeque<(Time, u64, E)>>,
    /// Late arrivals (behind the drain horizon), merged coordinator-side.
    /// Payload carries the event's home shard for stats attribution.
    spill: EventQueue<(u32, E)>,
    /// Exclusive upper bound of the active round, `None` between rounds.
    cutoff: Option<Time>,
    /// High-water mark of every past cutoff: shard heaps only hold events
    /// at or after this, so later pushes route by comparing against it.
    drained_to: Time,
    /// Home shard of the most recently served event (stats attribution).
    current_shard: u32,
    /// The single global sequence counter — the serial total order.
    seq: u64,
    pending: usize,
    stats: PdesStats,
}

impl<E: Send + 'static> ShardedEngine<E> {
    /// Build a threaded engine: one worker thread per shard.
    pub fn new(map: ShardMap, lookahead: Lookahead) -> ShardedEngine<E> {
        let n = map.shards();
        Self::build(
            map,
            lookahead,
            Shards::Threads((0..n).map(spawn_worker).collect()),
        )
    }
}

impl<E> ShardedEngine<E> {
    /// Build the single-threaded variant: identical semantics, shard heaps
    /// owned inline. Useful for property tests and debugging.
    pub fn new_inline(map: ShardMap, lookahead: Lookahead) -> ShardedEngine<E> {
        let n = map.shards();
        Self::build(
            map,
            lookahead,
            Shards::Inline((0..n).map(|_| EventQueue::new()).collect()),
        )
    }

    fn build(map: ShardMap, lookahead: Lookahead, shards: Shards<E>) -> ShardedEngine<E> {
        let n = map.shards();
        ShardedEngine {
            stats: PdesStats {
                shards: n,
                ..PdesStats::default()
            },
            map,
            window: lookahead.safe_window(),
            shards,
            batches: (0..n).map(|_| VecDeque::new()).collect(),
            spill: EventQueue::new(),
            cutoff: None,
            drained_to: Time::ZERO,
            current_shard: 0,
            seq: 0,
            pending: 0,
        }
    }

    /// Schedule `ev` at `at` on `shard`'s heap (or the spill heap when `at`
    /// is behind the drain horizon). Stamps the global sequence number, so
    /// call order must match the serial schedule — which it does, because
    /// the dispatcher itself replays the serial order.
    pub fn push(&mut self, at: Time, shard: u32, ev: E) {
        debug_assert!((shard as usize) < self.map.shards(), "shard out of range");
        let seq = self.seq;
        self.seq += 1;
        self.pending += 1;
        let cross = self.cutoff.is_some() && shard != self.current_shard;
        if at < self.drained_to {
            if cross {
                self.stats.window_spills += 1;
            }
            self.spill.push_at_seq(at, seq, (shard, ev));
        } else {
            if cross {
                self.stats.cross_shard += 1;
            }
            match &mut self.shards {
                Shards::Inline(qs) => qs[shard as usize].push_at_seq(at, seq, ev),
                Shards::Threads(ws) => ws[shard as usize]
                    .tx
                    .send(Cmd::Push { at, seq, ev })
                    .expect("shard worker alive"),
            }
        }
    }

    /// Remove and return the globally earliest `(time, seq)` event.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_before(Time::MAX)
    }

    /// [`ShardedEngine::pop`], but only if the earliest event fires at or
    /// before `limit` — mirrors [`EventQueue::pop_before`] exactly.
    pub fn pop_before(&mut self, limit: Time) -> Option<(Time, E)> {
        loop {
            let Some(cutoff) = self.cutoff else {
                if self.pending == 0 {
                    return None;
                }
                let h = self.next_horizon()?;
                if h > limit {
                    return None;
                }
                let cutoff = Time::from_ps(h.as_ps().saturating_add(self.window.as_ps()));
                if cutoff > self.drained_to {
                    self.drain_shards(cutoff);
                    self.drained_to = cutoff;
                }
                self.cutoff = Some(cutoff);
                self.stats.rounds += 1;
                continue;
            };
            // Serve the minimal (time, seq) key among the sorted per-shard
            // batches and the spill heap (gated below the cutoff: residue
            // spilled for a *later* window must wait its round).
            let spill_src = self.batches.len();
            let mut best: Option<(u128, usize)> = None;
            for (i, b) in self.batches.iter().enumerate() {
                if let Some(&(t, s, _)) = b.front() {
                    let key = pack(t, s);
                    if best.is_none_or(|(k, _)| key < k) {
                        best = Some((key, i));
                    }
                }
            }
            if let Some((t, s)) = self.spill.peek_key() {
                if t < cutoff {
                    let key = pack(t, s);
                    if best.is_none_or(|(k, _)| key < k) {
                        best = Some((key, spill_src));
                    }
                }
            }
            let Some((key, src)) = best else {
                self.cutoff = None;
                continue;
            };
            let at = key_time(key);
            if at > limit {
                return None;
            }
            let (shard, ev) = if src == spill_src {
                let (_, _, (shard, ev)) = self
                    .spill
                    .pop_keyed_before(Time::MAX)
                    .expect("spill head just peeked");
                (shard, ev)
            } else {
                let (_, _, ev) = self.batches[src]
                    .pop_front()
                    .expect("batch front just peeked");
                (src as u32, ev)
            };
            self.current_shard = shard;
            self.pending -= 1;
            return Some((at, ev));
        }
    }

    /// Number of pending events across all shards.
    #[inline]
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True when no events are pending anywhere.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// The PE → shard assignment this engine runs under.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The safe window bounding each round.
    pub fn window(&self) -> Time {
        self.window
    }

    /// Engine counters (kept out of `MachineStats` on purpose).
    pub fn stats(&self) -> PdesStats {
        self.stats
    }

    /// Minimum pending timestamp across shard heaps and spill. Between
    /// rounds the batches are empty, so heads + spill cover everything.
    fn next_horizon(&mut self) -> Option<Time> {
        debug_assert!(self.batches.iter().all(VecDeque::is_empty));
        let mut h = self.spill.peek_time();
        match &mut self.shards {
            Shards::Inline(qs) => {
                for q in qs {
                    h = min_time(h, q.peek_time());
                }
            }
            Shards::Threads(ws) => {
                for w in ws.iter() {
                    w.tx.send(Cmd::Head).expect("shard worker alive");
                }
                for w in ws.iter() {
                    match w.rx.recv().expect("shard worker alive") {
                        Reply::Head(t) => h = min_time(h, t),
                        Reply::Batch(_) => unreachable!("head query answered with a batch"),
                    }
                }
            }
        }
        h
    }

    /// Pull every event strictly below `cutoff` out of all shard heaps into
    /// the coordinator's sorted batches.
    fn drain_shards(&mut self, cutoff: Time) {
        let limit = Time::from_ps(cutoff.as_ps() - 1);
        match &mut self.shards {
            Shards::Inline(qs) => {
                for (i, q) in qs.iter_mut().enumerate() {
                    while let Some(item) = q.pop_keyed_before(limit) {
                        self.batches[i].push_back(item);
                    }
                }
            }
            Shards::Threads(ws) => {
                for w in ws.iter() {
                    w.tx.send(Cmd::Drain { limit }).expect("shard worker alive");
                }
                for (i, w) in ws.iter().enumerate() {
                    match w.rx.recv().expect("shard worker alive") {
                        Reply::Batch(v) => self.batches[i] = v.into(),
                        Reply::Head(_) => unreachable!("drain answered with a head"),
                    }
                }
            }
        }
    }
}

impl<E> Drop for ShardedEngine<E> {
    fn drop(&mut self) {
        if let Shards::Threads(ws) = &mut self.shards {
            for w in ws.iter() {
                let _ = w.tx.send(Cmd::Stop);
            }
            for w in ws.iter_mut() {
                if let Some(h) = w.handle.take() {
                    let _ = h.join();
                }
            }
        }
    }
}

#[inline]
fn min_time(a: Option<Time>, b: Option<Time>) -> Option<Time> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn la(ns: u64) -> Lookahead {
        Lookahead::new(Time::from_ns(ns))
    }

    #[test]
    fn node_aligned_maps_nodes_to_whole_shards() {
        // 8 PEs, 4 per node -> 2 nodes
        let nodes = [0, 0, 0, 0, 1, 1, 1, 1];
        let map = ShardMap::node_aligned(&nodes, 2);
        assert_eq!(map.shards(), 2);
        assert_eq!(map.npes(), 8);
        for (pe, &node) in nodes.iter().enumerate() {
            assert_eq!(map.shard_of(pe), node);
        }
        // more shards than nodes: nodes stay whole, excess shards are empty
        let map = ShardMap::node_aligned(&nodes, 8);
        assert_eq!(map.shard_of(0), 0);
        assert_eq!(map.shard_of(4), 4);
        // one shard: everything collapses
        let map = ShardMap::node_aligned(&nodes, 1);
        assert!((0..8).all(|pe| map.shard_of(pe) == 0));
    }

    #[test]
    #[should_panic(expected = "positive minimum link latency")]
    fn zero_lookahead_is_rejected() {
        let _ = Lookahead::new(Time::ZERO);
    }

    #[test]
    fn single_shard_engine_matches_the_serial_queue() {
        let mut engine: ShardedEngine<u64> = ShardedEngine::new(ShardMap::single(4), la(5));
        let mut serial = EventQueue::new();
        for (i, ns) in [30u64, 10, 10, 20, 25, 10].iter().enumerate() {
            engine.push(Time::from_ns(*ns), 0, i as u64);
            serial.push(Time::from_ns(*ns), i as u64);
        }
        loop {
            let (a, b) = (engine.pop(), serial.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(engine.stats().window_spills, 0);
        assert_eq!(engine.stats().cross_shard, 0);
    }

    #[test]
    fn in_window_cross_shard_pushes_spill_but_keep_order() {
        // Window 10 ns; serving the t=0 event schedules a cross-shard event
        // at t=5 ns -- inside the drained window. It must spill, be counted,
        // and still pop in exact (time, seq) order.
        let map = ShardMap::from_assignment(vec![0, 1], 2);
        let mut engine: ShardedEngine<&str> = ShardedEngine::new(map, la(10));
        let mut serial = EventQueue::new();
        engine.push(Time::ZERO, 0, "a");
        serial.push(Time::ZERO, "a");
        engine.push(Time::from_ns(20), 1, "far");
        serial.push(Time::from_ns(20), "far");
        assert_eq!(engine.pop(), serial.pop()); // round 1 anchors at 0
        engine.push(Time::from_ns(5), 1, "late");
        serial.push(Time::from_ns(5), "late");
        assert_eq!(engine.pop(), Some((Time::from_ns(5), "late")));
        assert_eq!(serial.pop(), Some((Time::from_ns(5), "late")));
        assert_eq!(engine.pop(), serial.pop());
        assert_eq!(engine.pop(), None);
        let s = engine.stats();
        assert_eq!(s.window_spills, 1);
        assert!(s.rounds >= 2, "rounds = {}", s.rounds);
    }

    #[test]
    fn pop_before_limits_match_the_serial_queue() {
        let map = ShardMap::from_assignment(vec![0, 1], 2);
        let mut engine: ShardedEngine<u32> = ShardedEngine::new(map, la(3));
        let mut serial = EventQueue::new();
        for (shard, ns, id) in [(0u32, 10u64, 1u32), (1, 30, 2), (0, 30, 3)] {
            engine.push(Time::from_ns(ns), shard, id);
            serial.push(Time::from_ns(ns), id);
        }
        for limit in [5u64, 10, 12, 29, 30, 30, 31] {
            let limit = Time::from_ns(limit);
            assert_eq!(engine.pop_before(limit), serial.pop_before(limit));
        }
        assert!(engine.is_empty() && serial.is_empty());
    }

    /// The load-bearing property: arbitrary event soups, interleaved pushes
    /// and pops, threaded and inline engines vs. the serial reference.
    #[test]
    fn random_soups_pop_in_serial_order() {
        for seed in 0..24u64 {
            let mut rng = DetRng::new(0xD0E5 ^ seed);
            let shards = rng.range(1, 5) as usize;
            let npes = shards * rng.range(1, 4) as usize;
            let assign: Vec<u32> = (0..npes)
                .map(|_| rng.range(0, shards as u64) as u32)
                .collect();
            let map = ShardMap::from_assignment(assign, shards);
            let window = la(rng.range(1, 40));
            let mut threaded: ShardedEngine<u64> = ShardedEngine::new(map.clone(), window);
            let mut inline: ShardedEngine<u64> = ShardedEngine::new_inline(map.clone(), window);
            let mut serial = EventQueue::new();
            let mut now = 0u64; // ps; pushes never go behind the last pop
            let mut id = 0u64;
            for _ in 0..400 {
                if rng.chance(0.6) {
                    let at = Time::from_ps(now + rng.range(0, 60_000));
                    let shard = map.shard_of(rng.range(0, npes as u64) as usize);
                    threaded.push(at, shard, id);
                    inline.push(at, shard, id);
                    serial.push(at, id);
                    id += 1;
                } else {
                    let a = serial.pop();
                    assert_eq!(threaded.pop(), a, "threaded diverged (seed {seed})");
                    assert_eq!(inline.pop(), a, "inline diverged (seed {seed})");
                    if let Some((t, _)) = a {
                        now = t.as_ps();
                    }
                }
            }
            loop {
                let a = serial.pop();
                assert_eq!(threaded.pop(), a, "threaded drain diverged (seed {seed})");
                assert_eq!(inline.pop(), a, "inline drain diverged (seed {seed})");
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(
                threaded.stats(),
                inline.stats(),
                "stats diverged (seed {seed})"
            );
        }
    }
}
