//! Streaming metric snapshots: periodic JSONL keyed by virtual time.
//!
//! A profiled machine emits one [`Snapshot`] every N scheduler events,
//! turning the epilogue-only counters into a time series — puts and bytes
//! over virtual time, event-queue depth, registry poll occupancy, and
//! trace-ring drops, so saturation is visible *while* it develops rather
//! than only in the final totals. Every field is an integer derived from
//! virtual time or deterministic counters, so the JSONL stream is a pure
//! function of the run: byte-identical across repeats and across sweep
//! worker counts. This stream is the precursor to `ckd-serve`'s
//! incremental metrics endpoint.

/// One periodic metric sample, keyed by virtual time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Virtual time of the sample, picoseconds.
    pub t_ps: u64,
    /// Scheduler events dispatched so far.
    pub events: u64,
    /// Two-sided messages sent so far.
    pub msgs_sent: u64,
    /// One-sided puts issued so far.
    pub puts: u64,
    /// One-sided payload bytes so far.
    pub put_bytes: u64,
    /// Event-queue depth after the triggering event was popped.
    pub queue_depth: u64,
    /// Handles currently enqueued for polling across every PE.
    pub pollq: u64,
    /// Armed handles whose data has landed and awaits the next sweep —
    /// the deliverable backlog (registry ready-ring occupancy).
    pub ready: u64,
    /// Undelivered notification records across every PE's completion
    /// queue (notified-put backend; 0 elsewhere). Sustained growth toward
    /// the modeled CQ depth is the early-warning sign of backpressure.
    pub cq_backlog: u64,
    /// Trace-ring records evicted so far (0 with tracing off).
    pub ring_drops: u64,
    /// Reliability-layer retransmissions so far.
    pub retries: u64,
}

impl Snapshot {
    /// Render the sample as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"t_ps\": {}, \"events\": {}, \"msgs_sent\": {}, \"puts\": {}, \
             \"put_bytes\": {}, \"queue_depth\": {}, \"pollq\": {}, \
             \"ready\": {}, \"cq_backlog\": {}, \"ring_drops\": {}, \"retries\": {}}}",
            self.t_ps,
            self.events,
            self.msgs_sent,
            self.puts,
            self.put_bytes,
            self.queue_depth,
            self.pollq,
            self.ready,
            self.cq_backlog,
            self.ring_drops,
            self.retries,
        )
    }
}

/// An append-only JSONL stream of [`Snapshot`]s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStream {
    out: String,
    count: usize,
}

impl SnapshotStream {
    /// Empty stream.
    pub fn new() -> SnapshotStream {
        SnapshotStream::default()
    }

    /// Append one sample.
    pub fn push(&mut self, snap: &Snapshot) {
        self.out.push_str(&snap.to_json_line());
        self.out.push('\n');
        self.count += 1;
    }

    /// Samples recorded so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The JSONL text, one snapshot per line.
    pub fn as_jsonl(&self) -> &str {
        &self.out
    }
}

/// Keys every snapshot line must carry, in emission order.
const KEYS: [&str; 11] = [
    "\"t_ps\"",
    "\"events\"",
    "\"msgs_sent\"",
    "\"puts\"",
    "\"put_bytes\"",
    "\"queue_depth\"",
    "\"pollq\"",
    "\"ready\"",
    "\"cq_backlog\"",
    "\"ring_drops\"",
    "\"retries\"",
];

/// Structural check of a snapshot JSONL stream (parser-free, like the
/// sweep and trace validators): every line is a balanced one-object JSON
/// record carrying exactly the expected keys, and both `t_ps` and
/// `events` are monotonically non-decreasing. Returns the line count.
pub fn validate_snapshot_jsonl(s: &str) -> Result<usize, String> {
    let mut lines = 0usize;
    let (mut last_t, mut last_ev) = (0u64, 0u64);
    for (i, line) in s.lines().enumerate() {
        let n = i + 1;
        if !line.starts_with("{\"t_ps\": ") || !line.ends_with('}') {
            return Err(format!("line {n}: not a snapshot object"));
        }
        if line.matches('{').count() != 1 || line.matches('}').count() != 1 {
            return Err(format!("line {n}: unbalanced delimiters"));
        }
        for key in KEYS {
            if line.matches(key).count() != 1 {
                return Err(format!("line {n}: missing field {key}"));
            }
        }
        if line.matches('"').count() != 2 * KEYS.len() {
            return Err(format!(
                "line {n}: extra field beyond the {} known",
                KEYS.len()
            ));
        }
        let field = |key: &str| -> Result<u64, String> {
            let rest = &line[line.find(key).unwrap() + key.len()..];
            rest.trim_start_matches(": ")
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .map_err(|_| format!("line {n}: non-integer {key}"))
        };
        let (t, ev) = (field("\"t_ps\"")?, field("\"events\"")?);
        if t < last_t {
            return Err(format!("line {n}: t_ps went backwards ({t} < {last_t})"));
        }
        if ev <= last_ev && n > 1 {
            return Err(format!(
                "line {n}: events not increasing ({ev} <= {last_ev})"
            ));
        }
        (last_t, last_ev) = (t, ev);
        lines += 1;
    }
    if lines == 0 {
        return Err("empty snapshot stream".into());
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_ps: u64, events: u64) -> Snapshot {
        Snapshot {
            t_ps,
            events,
            msgs_sent: 3,
            puts: 2,
            put_bytes: 4096,
            queue_depth: 5,
            pollq: 1,
            ready: 0,
            cq_backlog: 0,
            ring_drops: 0,
            retries: 0,
        }
    }

    #[test]
    fn stream_roundtrips_through_the_validator() {
        let mut s = SnapshotStream::new();
        s.push(&sample(100, 10));
        s.push(&sample(200, 20));
        s.push(&sample(200, 30));
        assert_eq!(s.len(), 3);
        assert_eq!(validate_snapshot_jsonl(s.as_jsonl()), Ok(3));
    }

    #[test]
    fn validator_rejects_mangled_streams() {
        let mut s = SnapshotStream::new();
        s.push(&sample(100, 10));
        s.push(&sample(200, 20));
        let good = s.as_jsonl().to_string();
        assert!(validate_snapshot_jsonl("").is_err());
        assert!(validate_snapshot_jsonl("{}\n").is_err());
        let e = validate_snapshot_jsonl(&good.replace("\"pollq\"", "\"q\"")).unwrap_err();
        assert!(e.contains("\"pollq\""), "error must name the field: {e}");
        // non-monotone time or non-increasing event count
        let back = good.lines().rev().collect::<Vec<_>>().join("\n");
        assert!(validate_snapshot_jsonl(&back).is_err());
        let dup = format!("{good}{}\n", sample(300, 20).to_json_line());
        assert!(validate_snapshot_jsonl(&dup)
            .unwrap_err()
            .contains("events"));
    }
}
