//! **CkDirect** — unsynchronized one-sided communication for a
//! message-driven runtime (reproduction of Bohm et al., ICPP 2009).
//!
//! CkDirect gives iterative applications with stable communication patterns
//! a *persistent, one-way, one-sided put channel* between two chares:
//!
//! 1. The **receiver** calls [`DirectRegistry::create_handle`] with the
//!    destination buffer, an out-of-band 8-byte pattern that can never occur
//!    in real data, and a completion callback.
//! 2. The handle is shipped to the **sender** (by ordinary message), which
//!    binds a local source buffer with [`DirectRegistry::assoc_local`].
//! 3. Each iteration the sender calls [`DirectRegistry::put`]: the payload
//!    lands directly in the receiver's buffer — no envelope, no scheduler
//!    trip, no rendezvous. The runtime detects completion (sentinel poll on
//!    Infiniband, delivery callback on Blue Gene/P) and invokes the
//!    registered callback as a plain function call.
//! 4. After consuming the data the receiver re-arms with
//!    [`DirectRegistry::ready`], or the split
//!    [`DirectRegistry::ready_mark`] / [`DirectRegistry::ready_poll_q`] pair
//!    that bounds the polling window (§5.2 of the paper).
//!
//! The crate has two halves:
//!
//! * [`registry`] + [`region`] + [`channel`] — the simulated-runtime
//!   implementation used by `ckd-charm` to regenerate every table and figure
//!   of the paper on the discrete-event machine.
//! * [`direct`] — a real multi-thread rendering of the same idea: a one-slot
//!   channel where `put` writes the payload into the receiver's buffer and
//!   publishes by overwriting the final word, detected by an acquire-load
//!   poll. This is the Rust-sound version of the paper's out-of-band trick
//!   and is benchmarked against a conventional queue+dispatch message path.

pub mod channel;
pub mod direct;
pub mod error;
pub mod region;
pub mod registry;
pub mod strided;

pub use channel::{DataPhase, DirectBackend, HandleId};
pub use direct::{crc32, CheckedRecv, CheckedStats};
pub use error::DirectError;
pub use region::Region;
pub use registry::{
    ChannelCounters, DirectConfig, DirectRegistry, LandOutcome, LifecycleProbe, PutRequest,
    RegistryCounters, SweepOutcome, Transition,
};
pub use strided::StridedSpec;
