//! Channel storm: the §5.2 polling-window pathology at modern scale.
//!
//! OpenAtom's problem was a few thousand persistent channels per PE; the
//! modern incarnation (memory channels over Slingshot, notifiable RMA) is
//! hundreds of thousands of *registered* channels of which only a handful
//! are *active* in any phase. This workload makes that shape explicit:
//!
//! * a receiver PE registers `registered` persistent channels once,
//!   ships all the handles to the sender in one setup message, and keeps
//!   every channel armed in the polling queue for the whole run;
//! * each iteration, the sender puts into a rotating window of `active`
//!   channels; the receiver re-arms each delivery in its completion
//!   callback and acks the wave, which releases the next one (the ack is
//!   the application-level synchronization CkDirect requires);
//! * at the end the receiver tears every channel down with
//!   `destroy_handle`, exercising the registry's slab recycling at scale.
//!
//! The *virtual-time* polling cost still scales with `registered` — each
//! sweep charges `poll_per_handle` per armed handle, faithfully modeling
//! the paper — but the simulator's *host* cost per sweep is O(`active`):
//! only the ready rings are walked. `ckd-sweep channels` runs this
//! workload across 1k→100k registered channels with a fixed active count
//! and gates on that flatness (`BENCH_channels.json`).

use ckd_charm::{ArrayId, Chare, Ctx, EntryId, Machine, Msg, PutOutcome};
use ckd_sim::Time;
use ckd_topo::{Dims, Idx, Mapper};
use ckdirect::{HandleId, Region};

use crate::common::{Platform, OOB_PATTERN};

const EP_SETUP: EntryId = EntryId(0);
const EP_HANDLES: EntryId = EntryId(1);
const EP_ACK: EntryId = EntryId(2);
const EP_TEARDOWN: EntryId = EntryId(3);

/// Bytes of each channel's (real) receive window; the interesting scale
/// here is channel *count*, not payload size.
const WINDOW_BYTES: usize = 32;

/// Configuration of one channel-storm run.
#[derive(Clone, Copy, Debug)]
pub struct ChanstormCfg {
    /// Persistent channels registered on the receiver PE.
    pub registered: usize,
    /// Channels actually put into per iteration (the rotating window).
    pub active: usize,
    /// Iterations (waves of `active` puts).
    pub iters: u32,
}

/// Result of one channel-storm run.
#[derive(Clone, Copy, Debug)]
pub struct ChanstormResult {
    /// Channels registered.
    pub registered: usize,
    /// Active window size.
    pub active: usize,
    /// Iterations completed.
    pub iters: u32,
    /// Virtual time at completion.
    pub total: Time,
    /// Puts issued (== `active × iters`).
    pub puts: u64,
    /// Completion callbacks delivered.
    pub deliveries: u64,
    /// Sentinel checks charged by poll sweeps (scales with `registered`).
    pub poll_checks: u64,
    /// Scheduler events dispatched.
    pub events: u64,
    /// Channels destroyed at teardown (== `registered`).
    pub destroyed: u64,
}

/// The receiver (array element 0, PE 0) and sender (element 1, PE 1).
struct Storm {
    cfg: ChanstormCfg,
    /// This element's role: 0 = receiver, 1 = sender.
    lin: usize,
    array: Option<ArrayId>,
    // receiver state
    in_handles: Vec<HandleId>,
    in_regions: Vec<Region>,
    arrived: usize,
    destroyed: u64,
    // sender state
    out_handles: Vec<HandleId>,
    send_region: Option<Region>,
    iter: u32,
    window_start: usize,
}

impl Storm {
    fn peer(&self, ctx: &mut Ctx<'_>) -> ckd_charm::ChareRef {
        let other = 1 - self.lin;
        ctx.element(self.array.expect("wired"), Idx::i1(other))
    }

    /// Sender: put one wave into the current rotating window.
    fn put_wave(&mut self, ctx: &mut Ctx<'_>) {
        let region = self.send_region.as_ref().expect("associated");
        region.write_f64s(0, &[self.iter as f64 + 1.0]);
        for k in 0..self.cfg.active {
            let h = self.out_handles[(self.window_start + k) % self.cfg.registered];
            match ctx.direct_put(h).expect("storm put") {
                PutOutcome::Sent | PutOutcome::Retried { .. } | PutOutcome::Degraded => {}
            }
        }
        self.window_start = (self.window_start + self.cfg.active) % self.cfg.registered;
    }
}

impl Chare for Storm {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_SETUP => {
                if self.lin != 0 {
                    return; // the sender waits for the handle shipment
                }
                // Receiver: register the whole herd once and ship every
                // handle in a single batched setup message.
                for tag in 0..self.cfg.registered {
                    let region = Region::alloc(WINDOW_BYTES);
                    let h = ctx
                        .direct_create_handle_wire(
                            region.clone(),
                            OOB_PATTERN,
                            tag as u32,
                            WINDOW_BYTES,
                        )
                        .expect("create storm channel");
                    self.in_regions.push(region);
                    self.in_handles.push(h);
                }
                let peer = self.peer(ctx);
                let bytes = self.in_handles.len() * 4;
                ctx.send(peer, Msg::value(EP_HANDLES, self.in_handles.clone(), bytes));
            }
            EP_HANDLES => {
                // Sender: one send region multicast-associated with every
                // channel (the paper's shared-source idiom), then wave 0.
                let handles = msg
                    .payload
                    .downcast::<Vec<HandleId>>()
                    .expect("handle shipment")
                    .clone();
                let region = Region::alloc(WINDOW_BYTES);
                region.set_last_word(!OOB_PATTERN);
                for &h in &handles {
                    ctx.direct_assoc_local(h, region.clone()).expect("assoc");
                }
                self.send_region = Some(region);
                self.out_handles = handles;
                self.put_wave(ctx);
            }
            EP_ACK => {
                // Sender: the wave was fully consumed and re-armed; the
                // ack is the happens-before edge that legalizes reusing
                // those channels a lap later.
                self.iter += 1;
                if self.iter < self.cfg.iters {
                    self.put_wave(ctx);
                } else {
                    let peer = self.peer(ctx);
                    ctx.send(peer, Msg::signal(EP_TEARDOWN));
                }
            }
            EP_TEARDOWN => {
                // Receiver: the storm is over — tear down all `registered`
                // channels, recycling every slab slot.
                for i in 0..self.in_handles.len() {
                    ctx.direct_destroy(self.in_handles[i]).expect("destroy");
                    self.destroyed += 1;
                }
                ctx.exit();
            }
            other => panic!("storm: unexpected {other:?}"),
        }
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, handle: HandleId) {
        // Receiver: consume and immediately re-arm, so the channel goes
        // straight back into the polling queue and the armed population
        // stays at `registered` for the whole run.
        ctx.direct_ready(handle).expect("re-arm");
        self.arrived += 1;
        if self.arrived == self.cfg.active {
            self.arrived = 0;
            let peer = self.peer(ctx);
            ctx.send(peer, Msg::signal(EP_ACK));
        }
    }
}

/// Run the channel storm on a caller-built machine (2+ PEs).
pub fn run_chanstorm_on(m: &mut Machine, cfg: ChanstormCfg) -> ChanstormResult {
    assert!(m.npes() >= 2, "storm needs a sender PE and a receiver PE");
    assert!(cfg.registered >= cfg.active && cfg.active > 0);
    let array = m.create_array("storm", Dims::d1(2), Mapper::Block, |idx| {
        Box::new(Storm {
            cfg,
            lin: idx.at(0),
            array: None,
            in_handles: Vec::new(),
            in_regions: Vec::new(),
            arrived: 0,
            destroyed: 0,
            out_handles: Vec::new(),
            send_region: None,
            iter: 0,
            window_start: 0,
        })
    });
    for lin in 0..2u32 {
        m.with_chare_mut::<Storm>(ckd_charm::ChareRef { array, lin }, |c| {
            c.array = Some(array);
        });
    }
    m.seed_broadcast(array, Msg::signal(EP_SETUP));
    let total = m.run();

    let recv = m
        .chare::<Storm>(ckd_charm::ChareRef { array, lin: 0 })
        .unwrap();
    let destroyed = recv.destroyed;
    assert_eq!(destroyed as usize, cfg.registered, "incomplete teardown");
    let send = m
        .chare::<Storm>(ckd_charm::ChareRef { array, lin: 1 })
        .unwrap();
    assert_eq!(send.iter, cfg.iters, "incomplete run");
    let counters = m.direct_counters();
    assert_eq!(counters.puts, cfg.active as u64 * cfg.iters as u64);
    assert_eq!(counters.deliveries, counters.puts, "every put delivered");
    ChanstormResult {
        registered: cfg.registered,
        active: cfg.active,
        iters: cfg.iters,
        total,
        puts: counters.puts,
        deliveries: counters.deliveries,
        poll_checks: counters.poll_checks,
        events: m.stats().events,
        destroyed,
    }
}

/// Run the channel storm on the Infiniband testbed (the polling backend is
/// the whole point).
pub fn run_chanstorm(pes: usize, cfg: ChanstormCfg) -> ChanstormResult {
    let mut m = Platform::IbAbe { cores_per_node: 2 }.machine(pes);
    run_chanstorm_on(&mut m, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckd_charm::{chrome_trace_json, TraceConfig};

    fn cfg(registered: usize, active: usize, iters: u32) -> ChanstormCfg {
        ChanstormCfg {
            registered,
            active,
            iters,
        }
    }

    #[test]
    fn storm_completes_and_tears_down() {
        let r = run_chanstorm(2, cfg(500, 4, 6));
        assert_eq!(r.puts, 24);
        assert_eq!(r.deliveries, 24);
        assert_eq!(r.destroyed, 500);
        assert!(r.total > Time::ZERO);
        // every sweep while the storm runs charges the whole herd
        assert!(
            r.poll_checks >= 500,
            "herd-scale polling cost missing: {}",
            r.poll_checks
        );
    }

    #[test]
    fn poll_checks_scale_with_registered_not_active() {
        // Fixed activity, 8× the registered herd → the modeled polling
        // cost must grow while puts/deliveries stay identical.
        let small = run_chanstorm(2, cfg(100, 4, 5));
        let large = run_chanstorm(2, cfg(800, 4, 5));
        assert_eq!(small.puts, large.puts);
        assert_eq!(small.deliveries, large.deliveries);
        assert!(
            large.poll_checks > 4 * small.poll_checks,
            "large {} !> 4× small {}",
            large.poll_checks,
            small.poll_checks
        );
    }

    #[test]
    fn storm_is_deterministic_and_shard_invariant() {
        // The PR 4/8 discipline: stats debug bytes and the chrome trace
        // must be byte-identical across repeats and across PDES shard
        // counts (serial vs sharded engine).
        let run = |shards: usize| {
            let mut m = Platform::IbAbe { cores_per_node: 2 }
                .builder(2)
                .with_tracing(TraceConfig::default())
                .with_shards(shards)
                .build();
            let r = run_chanstorm_on(&mut m, cfg(300, 4, 5));
            (
                format!("{:#?}", m.stats()),
                chrome_trace_json(m.tracer()).expect("traced run"),
                r.poll_checks,
            )
        };
        let (stats1, trace1, checks1) = run(1);
        let (stats1b, trace1b, _) = run(1);
        let (stats2, trace2, checks2) = run(2);
        assert_eq!(stats1, stats1b, "serial re-run diverged");
        assert_eq!(trace1, trace1b, "serial trace diverged");
        assert_eq!(stats1, stats2, "stats diverged across shard counts");
        assert_eq!(trace1, trace2, "trace diverged across shard counts");
        assert_eq!(checks1, checks2);
    }
}
