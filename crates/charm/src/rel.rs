//! The reliable-delivery layer: what survives the fault plane.
//!
//! When faults are enabled ([`crate::MachineBuilder::with_faults`]), every
//! remote message and every CkDirect put passes through this layer instead
//! of being scheduled directly:
//!
//! * the sender records a **pending entry** (the delivery event, its link,
//!   its sequence number) and submits the packet to the
//!   [`FaultPlan`](ckd_sim::FaultPlan), which may deliver, drop, corrupt,
//!   duplicate, or delay it;
//! * the receiver acks every intact arrival (acks traverse the fault plane
//!   too), dedups by sequence number — [`ckd_net::LinkSeqs`] for messages,
//!   [`DirectRegistry::accept_landing`](ckdirect::DirectRegistry::accept_landing)
//!   for puts — and detects corruption (link CRC for messages, the per-put
//!   CRC folded into the sentinel word for one-sided puts), discarding the
//!   damaged landing so the channel stays armed for the retransmission;
//! * an unacked packet's timer fires with exponential backoff
//!   ([`ckd_net::RetryPolicy`]) and the sender retransmits — *without*
//!   re-running the application-visible issue path, so a put is counted
//!   once in `MachineStats::puts` no matter how many times it crosses the
//!   wire, and the race sanitizer's lifecycle probe never sees a double
//!   `PutIssued`;
//! * a channel whose puts keep needing retransmission degrades to
//!   rendezvous-style timing (`PutOutcome::Degraded`), the reproduction's
//!   stand-in for tearing down a flaky RDMA path and falling back to the
//!   default two-sided protocol.
//!
//! With faults never enabled the machine holds `rel: None` and every hook
//! is one branch — runs are bit-identical to the pre-fault-plane runtime.

use std::collections::{BTreeMap, BTreeSet};

use ckd_net::{LinkSeqs, RetryPolicy};
use ckd_sim::{FaultAction, FaultOp, FaultPlan, Time};
use ckd_topo::Pe;
use ckdirect::HandleId;

use crate::machine::{Ev, Machine};

/// One unacked packet, owned by the (conceptual) sender NIC.
pub(crate) struct Pending {
    /// The delivery event to (re)schedule; replayed verbatim on retransmit.
    pub ev: Ev,
    /// Directed link `(from, to)` the packet travels.
    pub link: (u32, u32),
    /// Sequence number on the wire (per-link for messages, per-channel for
    /// puts).
    pub seq: u64,
    /// Transmission attempt counter (0 = original send).
    pub attempt: u32,
    /// Wire delay of one transmission (constant per packet; re-used by
    /// retransmissions).
    pub wire_delay: Time,
    /// What the fault plane sees this packet as (message or put).
    pub kind: FaultOp,
    /// The channel, when this packet is a one-sided put.
    pub handle: Option<HandleId>,
}

/// All reliability state of a machine with fault injection enabled.
pub(crate) struct ReliableLayer {
    /// The fault schedule packets are submitted to.
    pub plan: FaultPlan,
    /// Retransmission backoff policy.
    pub policy: RetryPolicy,
    /// Cumulative retransmits on one channel before it degrades to
    /// rendezvous timing. `u32::MAX` disables degradation.
    pub degrade_after: u32,
    /// Unacked packets by token.
    pub pending: BTreeMap<u64, Pending>,
    /// Next packet token.
    pub next_token: u64,
    /// Message-path sequence numbers + receiver dedup.
    pub seqs: LinkSeqs,
    /// Cumulative retransmits per channel handle.
    pub handle_retries: BTreeMap<u32, u32>,
    /// Channels degraded to rendezvous timing.
    pub degraded: BTreeSet<u32>,
}

impl ReliableLayer {
    pub(crate) fn new(plan: FaultPlan, policy: RetryPolicy, degrade_after: u32) -> ReliableLayer {
        ReliableLayer {
            plan,
            policy,
            degrade_after,
            pending: BTreeMap::new(),
            next_token: 0,
            seqs: LinkSeqs::new(),
            handle_retries: BTreeMap::new(),
            degraded: BTreeSet::new(),
        }
    }

    /// Cumulative retransmits charged to `handle` so far.
    pub(crate) fn retries_of(&self, handle: HandleId) -> u32 {
        self.handle_retries.get(&handle.0).copied().unwrap_or(0)
    }

    /// Whether `handle` has degraded to rendezvous timing.
    pub(crate) fn is_degraded(&self, handle: HandleId) -> bool {
        self.degraded.contains(&handle.0)
    }
}

// ---- the machine's wire path through the fault plane -----------------------
//
// These run *below* the runtime-layer seams: acks and timers charge no PE
// time and no layer observes them (the tracer's drop/retry records are NIC
// telemetry, emitted here directly).

impl Machine {
    /// Schedule a remote delivery event, routing it through the fault plane
    /// when faults are enabled. `begin` is the issue instant on the sender
    /// and `delay` the one-way wire latency: an unfaulted packet delivers at
    /// `begin + delay`, bit-identically to a direct `events.push` — which is
    /// exactly what happens when faults are off or the traffic never crosses
    /// the fabric (same-PE links). `put` carries `(handle, put_seq)` so
    /// duplicated one-sided puts can be replayed idempotently.
    pub(crate) fn rel_push(
        &mut self,
        begin: Time,
        delay: Time,
        link: (u32, u32),
        kind: FaultOp,
        put: Option<(HandleId, u64)>,
        ev: Ev,
    ) {
        if self.stack.rel.is_none() || link.0 == link.1 {
            self.push_ev(begin + delay, ev);
            return;
        }
        let rel = self.stack.rel.as_mut().expect("checked above");
        let token = rel.next_token;
        rel.next_token += 1;
        let seq = match put {
            Some((_, s)) => s,
            None => rel.seqs.alloc(link),
        };
        rel.pending.insert(
            token,
            Pending {
                ev,
                link,
                seq,
                attempt: 0,
                wire_delay: delay,
                kind,
                handle: put.map(|(h, _)| h),
            },
        );
        self.rel_transmit(token, begin);
    }

    /// Submit pending packet `token` to the fault plane at `at`, schedule
    /// the consequences, and arm its retransmission timer.
    fn rel_transmit(&mut self, token: u64, at: Time) {
        let rel = self.stack.rel.as_mut().expect("rel enabled");
        let Some(p) = rel.pending.get(&token) else {
            return; // acked in the meantime
        };
        let (link, kind, seq, wire_delay, attempt) =
            (p.link, p.kind, p.seq, p.wire_delay, p.attempt);
        let ev = p.ev.clone();
        let action = rel.plan.decide(at, link, kind);
        let timeout = rel.policy.timeout(attempt);
        let mk = |inner: Ev, corrupted: bool| Ev::RelDeliver {
            token,
            link,
            seq,
            kind,
            corrupted,
            inner: Box::new(inner),
        };
        match action {
            FaultAction::Deliver => self.push_ev(at + wire_delay, mk(ev, false)),
            FaultAction::Drop => {
                self.stats.rel.drops_injected += 1;
                self.stack.tracer.rel_drop(link.0 as usize, at, link.1);
            }
            FaultAction::Corrupt => {
                self.stats.rel.corrupts_injected += 1;
                self.push_ev(at + wire_delay, mk(ev, true));
            }
            FaultAction::Duplicate { extra } => {
                self.stats.rel.dups_injected += 1;
                self.push_ev(at + wire_delay, mk(ev.clone(), false));
                self.push_ev(at + wire_delay + extra, mk(ev, false));
            }
            FaultAction::Delay { extra } => {
                self.stats.rel.delays_injected += 1;
                self.push_ev(at + wire_delay + extra, mk(ev, false));
            }
        }
        self.push_ev(
            at + timeout,
            Ev::RelTimer {
                token,
                attempt,
                to: link.0,
            },
        );
    }

    /// A reliable packet arrived: verify, dedup, ack, and (when fresh and
    /// intact) dispatch the real delivery event at this very instant.
    pub(crate) fn rel_deliver(
        &mut self,
        token: u64,
        link: (u32, u32),
        seq: u64,
        kind: FaultOp,
        corrupted: bool,
        inner: Ev,
    ) {
        if corrupted {
            // Receiver-side detection — the NIC's link CRC for messages,
            // the per-put CRC folded into the sentinel word for one-sided
            // puts. The damaged landing is discarded (for a put, the
            // sentinel stays armed), no ack is sent, and the sender's
            // timer will retransmit.
            self.stats.rel.corrupt_detected += 1;
            if kind == FaultOp::Put {
                if let Ev::DirectLand { handle, .. } = &inner {
                    self.direct
                        .corrupt_landing(*handle, seq)
                        .expect("live channel");
                }
            }
            return;
        }
        let fresh = match kind {
            FaultOp::Put => {
                if let Ev::DirectLand { handle, .. } = &inner {
                    self.direct
                        .accept_landing(*handle, seq)
                        .expect("live channel")
                } else {
                    true
                }
            }
            _ => self
                .stack
                .rel
                .as_mut()
                .expect("rel enabled")
                .seqs
                .accept(link, seq),
        };
        // Ack every intact arrival — a duplicate re-acks, in case the
        // original ack was the packet that died.
        self.rel_send_ack(token, link);
        if fresh {
            self.dispatch(inner);
        } else {
            self.stats.rel.dups_suppressed += 1;
        }
    }

    /// Emit the reliability ack for `token` back across the fault plane.
    /// Acks are NIC-level protocol: they charge no PE time, carry no trace
    /// record, and are invisible to the scheduler — only their loss has a
    /// consequence (a spurious retransmission, suppressed by seqno dedup).
    fn rel_send_ack(&mut self, token: u64, link: (u32, u32)) {
        let t = self.net.control(Pe(link.1), Pe(link.0));
        let rel = self.stack.rel.as_mut().expect("rel enabled");
        let to = link.0;
        match rel.plan.decide(self.now, (link.1, link.0), FaultOp::Ack) {
            FaultAction::Deliver => self.push_ev(self.now + t.delay, Ev::RelAck { token, to }),
            FaultAction::Drop | FaultAction::Corrupt => {
                // a corrupted ack fails its CRC at the sender NIC — lost
                // either way
                self.stats.rel.acks_lost += 1;
            }
            FaultAction::Duplicate { extra } => {
                self.push_ev(self.now + t.delay, Ev::RelAck { token, to });
                self.push_ev(self.now + t.delay + extra, Ev::RelAck { token, to });
            }
            FaultAction::Delay { extra } => {
                self.push_ev(self.now + t.delay + extra, Ev::RelAck { token, to });
            }
        }
    }

    /// An ack reached the sender: retire the pending packet. A stale ack
    /// (duplicate, or late after retransmission already re-acked) is a
    /// no-op.
    pub(crate) fn rel_ack(&mut self, token: u64) {
        let rel = self.stack.rel.as_mut().expect("rel enabled");
        if rel.pending.remove(&token).is_some() {
            self.stats.rel.acks += 1;
        }
    }

    /// Retransmission timer fired: if the packet is still pending at this
    /// exact attempt, resend it with exponentially backed-off timeout.
    /// Retries are unbounded — a probabilistic plan delivers eventually
    /// (with probability 1), explicit triggers are one-shot, and stall
    /// windows end.
    pub(crate) fn rel_timer(&mut self, token: u64, attempt: u32) {
        let rel = self.stack.rel.as_mut().expect("rel enabled");
        let Some(p) = rel.pending.get_mut(&token) else {
            return; // acked: the common case for every timer of a clean run
        };
        if p.attempt != attempt {
            return; // a newer transmission owns the live timer
        }
        p.attempt += 1;
        let next_attempt = p.attempt;
        let handle = p.handle;
        let sender = p.link.0;
        self.stats.rel.timeouts += 1;
        self.stats.rel.retries += 1;
        if let Some(h) = handle {
            // degradation bookkeeping: after `degrade_after` cumulative
            // retransmits, this channel's future puts pay rendezvous timing
            let r = rel.handle_retries.entry(h.0).or_insert(0);
            *r += 1;
            if *r >= rel.degrade_after && rel.degraded.insert(h.0) {
                self.stats.rel.degraded_channels += 1;
            }
        }
        let backoff = rel.policy.timeout(next_attempt);
        self.stack
            .tracer
            .rel_retry(sender as usize, self.now, next_attempt, backoff);
        self.rel_transmit(token, self.now);
    }
}
