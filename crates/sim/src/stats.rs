//! Online statistics used by the benchmark harnesses.
//!
//! Three flavors:
//! * [`OnlineStats`] — Welford mean/variance plus min/max, O(1) memory.
//! * [`Sampler`] — stores samples for exact percentiles (bounded runs only).
//! * [`Histogram`] — power-of-two bucketed counts for distribution shape.

use crate::time::Time;

/// Welford-style streaming mean / variance / extrema accumulator.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add a virtual-time observation in microseconds.
    pub fn push_time_us(&mut self, t: Time) {
        self.push(t.as_us_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for the empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator); 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN-free inputs assumed); 0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction of stats).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact-percentile sampler: keeps every observation.
#[derive(Clone, Debug, Default)]
pub struct Sampler {
    xs: Vec<f64>,
    sorted: bool,
}

impl Sampler {
    /// Empty sampler.
    pub fn new() -> Sampler {
        Sampler {
            xs: Vec::new(),
            sorted: true,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.xs.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.xs.len()
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.xs.is_empty() {
            0.0
        } else {
            self.xs.iter().sum::<f64>() / self.xs.len() as f64
        }
    }

    /// The `q`-quantile (q in `[0,1]`) by nearest-rank; 0 when empty.
    pub fn percentile(&mut self, q: f64) -> f64 {
        if self.xs.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.xs
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.xs.len() - 1) as f64 * q).round() as usize;
        self.xs[idx]
    }

    /// Median shorthand.
    pub fn median(&mut self) -> f64 {
        self.percentile(0.5)
    }
}

/// Power-of-two bucketed histogram over `u64` magnitudes (bytes, ns, counts).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; 65],
            total: 0,
        }
    }

    /// Record a value; bucket `k` holds values whose bit-length is `k`
    /// (bucket 0 holds zeros).
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b] += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Count in the bucket covering `v`.
    pub fn bucket_for(&self, v: u64) -> u64 {
        self.buckets[(64 - v.leading_zeros()) as usize]
    }

    /// Iterate `(bucket_lower_bound, count)` over non-empty buckets.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (if k == 0 { 0 } else { 1u64 << (k - 1) }, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_mean_stddev() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let b = OnlineStats::new();
        let mut a2 = a.clone();
        a2.merge(&b);
        assert_eq!(a2.mean(), 1.0);
        let mut b2 = OnlineStats::new();
        b2.merge(&a);
        assert_eq!(b2.mean(), 1.0);
    }

    #[test]
    fn percentiles() {
        let mut s = Sampler::new();
        for i in (1..=100).rev() {
            s.push(i as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(1.0), 100.0);
        assert!((s.median() - 50.0).abs() <= 1.0);
        assert_eq!(s.count(), 100);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_for(0), 1);
        assert_eq!(h.bucket_for(1), 1);
        assert_eq!(h.bucket_for(2), 2); // 2 and 3 share the [2,4) bucket
        assert_eq!(h.bucket_for(1024), 1);
        let nonempty: Vec<_> = h.iter_nonempty().collect();
        assert_eq!(nonempty.len(), 4);
        assert_eq!(nonempty[0], (0, 1));
    }
}
