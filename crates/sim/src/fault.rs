//! Deterministic, seed-driven fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] sits between the protocol layer and the event queue:
//! every packet the executor is about to schedule is first submitted to
//! [`FaultPlan::decide`], which returns what the fabric does to it —
//! deliver it, drop it, corrupt it in flight, duplicate it, or delay it.
//! Two trigger mechanisms coexist:
//!
//! * **probabilistic** — per-kind probabilities (optionally overridden per
//!   link) sampled from a [`DetRng`] stream derived from the plan's seed.
//!   Because `decide` is called in deterministic event order, the whole
//!   fault schedule is a pure function of the seed;
//! * **explicit** — one-shot `(time, link, op)` triggers and NIC-stall
//!   windows, for tests that need a named packet to fail.
//!
//! The plan never touches payloads or events itself — it only renders
//! verdicts. The executor owns the consequences (retransmission, CRC
//! verification, dedup), which keeps this crate free of protocol types.

use crate::rng::DetRng;
use crate::time::Time;

/// A directed link between two endpoints (the executor uses PE indices).
pub type Link = (u32, u32);

/// What kind of packet is being submitted to the fault plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// Two-sided message traffic (eager or rendezvous payload).
    Msg,
    /// A one-sided RDMA put.
    Put,
    /// A protocol acknowledgement.
    Ack,
}

/// Fault class, used to name what an explicit trigger injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The packet vanishes.
    Drop,
    /// The packet arrives with flipped bits (the receiver's CRC catches it).
    Corrupt,
    /// The packet arrives twice.
    Duplicate,
    /// The packet arrives late (a delayed packet overtaken by later ones is
    /// how this plane expresses *reordering* — the sequence-number layer
    /// must cope with both).
    Delay,
}

/// The fabric's verdict on one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Delivered intact, on time.
    Deliver,
    /// Never arrives.
    Drop,
    /// Arrives on time, payload damaged.
    Corrupt,
    /// Arrives on time and then again `extra` later.
    Duplicate {
        /// Gap between the original and the duplicate arrival.
        extra: Time,
    },
    /// Arrives `extra` late (possibly reordered behind later packets).
    Delay {
        /// Additional latency.
        extra: Time,
    },
}

/// Per-kind fault probabilities (each an independent Bernoulli draw; the
/// first hit in `drop → corrupt → duplicate → delay` order wins).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultProbs {
    /// Probability a packet is dropped.
    pub drop: f64,
    /// Probability a packet is corrupted in flight.
    pub corrupt: f64,
    /// Probability a packet is duplicated.
    pub duplicate: f64,
    /// Probability a packet is delayed/reordered.
    pub delay: f64,
}

impl FaultProbs {
    fn is_zero(&self) -> bool {
        self.drop == 0.0 && self.corrupt == 0.0 && self.duplicate == 0.0 && self.delay == 0.0
    }
}

#[derive(Clone, Copy, Debug)]
struct Trigger {
    at: Time,
    link: Option<Link>,
    op: Option<FaultOp>,
    kind: FaultKind,
    fired: bool,
}

#[derive(Clone, Copy, Debug)]
struct Stall {
    link: Option<Link>,
    from: Time,
    until: Time,
}

/// What the plan has injected so far (observability; the executor keeps its
/// own recovery-side counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Packets submitted to the plane.
    pub decisions: u64,
    /// Drops injected.
    pub drops: u64,
    /// Corruptions injected.
    pub corrupts: u64,
    /// Duplicates injected.
    pub duplicates: u64,
    /// Delays injected (probabilistic and trigger-driven).
    pub delays: u64,
    /// Packets held back by a NIC-stall window.
    pub stalls: u64,
}

impl FaultCounts {
    /// Total faults injected (everything except clean deliveries).
    pub fn total(&self) -> u64 {
        self.drops + self.corrupts + self.duplicates + self.delays + self.stalls
    }
}

/// A deterministic fault schedule for one run.
#[derive(Clone)]
pub struct FaultPlan {
    seed: u64,
    rng: DetRng,
    default_probs: FaultProbs,
    link_probs: Vec<(Link, FaultProbs)>,
    triggers: Vec<Trigger>,
    stalls: Vec<Stall>,
    delay_extra: Time,
    dup_extra: Time,
    counts: FaultCounts,
}

impl FaultPlan {
    /// An all-clear plan seeded for later configuration.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rng: DetRng::new(seed).stream("fault-plan"),
            default_probs: FaultProbs::default(),
            link_probs: Vec::new(),
            triggers: Vec::new(),
            stalls: Vec::new(),
            delay_extra: Time::from_us(20),
            dup_extra: Time::from_us(5),
            counts: FaultCounts::default(),
        }
    }

    /// Convenience: drop every packet on every link with probability `p`.
    pub fn drop_all(seed: u64, p: f64) -> FaultPlan {
        FaultPlan::new(seed).with_drop(p)
    }

    /// Set the default drop probability.
    pub fn with_drop(mut self, p: f64) -> FaultPlan {
        self.default_probs.drop = p;
        self
    }

    /// Set the default corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> FaultPlan {
        self.default_probs.corrupt = p;
        self
    }

    /// Set the default duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> FaultPlan {
        self.default_probs.duplicate = p;
        self
    }

    /// Set the default delay/reorder probability and the extra latency a
    /// delayed packet suffers.
    pub fn with_delay(mut self, p: f64, extra: Time) -> FaultPlan {
        self.default_probs.delay = p;
        self.delay_extra = extra;
        self
    }

    /// Set all default probabilities at once.
    pub fn with_probs(mut self, probs: FaultProbs) -> FaultPlan {
        self.default_probs = probs;
        self
    }

    /// Override the probabilities for one directed link.
    pub fn with_link(mut self, link: Link, probs: FaultProbs) -> FaultPlan {
        self.link_probs.push((link, probs));
        self
    }

    /// Gap between a duplicated packet's two arrivals.
    pub fn with_dup_extra(mut self, extra: Time) -> FaultPlan {
        self.dup_extra = extra;
        self
    }

    /// One-shot trigger: the first matching packet submitted at or after
    /// `at` suffers `kind`. `link`/`op` of `None` match anything.
    pub fn with_trigger(
        mut self,
        at: Time,
        link: Option<Link>,
        op: Option<FaultOp>,
        kind: FaultKind,
    ) -> FaultPlan {
        self.triggers.push(Trigger {
            at,
            link,
            op,
            kind,
            fired: false,
        });
        self
    }

    /// NIC-stall window: packets on `link` (or everywhere, with `None`)
    /// submitted within `[from, until)` are held until the window closes —
    /// a progress stall, not a loss.
    pub fn with_stall(mut self, link: Option<Link>, from: Time, until: Time) -> FaultPlan {
        assert!(from < until, "empty stall window");
        self.stalls.push(Stall { link, from, until });
        self
    }

    /// The seed this plan's probabilistic schedule derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// True when this plan can never inject anything (no probabilities, no
    /// triggers, no stalls) — every packet simply delivers.
    pub fn is_inert(&self) -> bool {
        self.default_probs.is_zero()
            && self.link_probs.iter().all(|(_, p)| p.is_zero())
            && self.triggers.is_empty()
            && self.stalls.is_empty()
    }

    /// Submit one packet: what does the fabric do to it?
    ///
    /// Must be called in deterministic event order (the executor calls it
    /// while dispatching events and issuing transfers), which makes the
    /// answer a pure function of `(seed, call sequence)`.
    pub fn decide(&mut self, now: Time, link: Link, op: FaultOp) -> FaultAction {
        self.counts.decisions += 1;

        // Explicit one-shot triggers fire before anything probabilistic.
        for t in &mut self.triggers {
            if t.fired || now < t.at {
                continue;
            }
            if t.link.is_some_and(|l| l != link) || t.op.is_some_and(|o| o != op) {
                continue;
            }
            t.fired = true;
            return match t.kind {
                FaultKind::Drop => {
                    self.counts.drops += 1;
                    FaultAction::Drop
                }
                FaultKind::Corrupt => {
                    self.counts.corrupts += 1;
                    FaultAction::Corrupt
                }
                FaultKind::Duplicate => {
                    self.counts.duplicates += 1;
                    FaultAction::Duplicate {
                        extra: self.dup_extra,
                    }
                }
                FaultKind::Delay => {
                    self.counts.delays += 1;
                    FaultAction::Delay {
                        extra: self.delay_extra,
                    }
                }
            };
        }

        // NIC-stall windows: the packet sits in the NIC until the window
        // closes.
        for s in &self.stalls {
            if s.link.is_some_and(|l| l != link) {
                continue;
            }
            if now >= s.from && now < s.until {
                self.counts.stalls += 1;
                return FaultAction::Delay {
                    extra: s.until - now,
                };
            }
        }

        // Probabilistic faults. One Bernoulli draw per kind, fixed order,
        // so the rng stream advances identically for identical call
        // sequences.
        let probs = self
            .link_probs
            .iter()
            .find(|(l, _)| *l == link)
            .map_or(self.default_probs, |(_, p)| *p);
        if probs.is_zero() {
            return FaultAction::Deliver;
        }
        if self.rng.chance(probs.drop) {
            self.counts.drops += 1;
            return FaultAction::Drop;
        }
        if self.rng.chance(probs.corrupt) {
            self.counts.corrupts += 1;
            return FaultAction::Corrupt;
        }
        if self.rng.chance(probs.duplicate) {
            self.counts.duplicates += 1;
            return FaultAction::Duplicate {
                extra: self.dup_extra,
            };
        }
        if self.rng.chance(probs.delay) {
            self.counts.delays += 1;
            return FaultAction::Delay {
                extra: self.delay_extra,
            };
        }
        FaultAction::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L01: Link = (0, 1);
    const L23: Link = (2, 3);

    #[test]
    fn inert_plan_always_delivers() {
        let mut p = FaultPlan::new(7);
        assert!(p.is_inert());
        for i in 0..100u64 {
            let a = p.decide(Time::from_us(i), L01, FaultOp::Msg);
            assert_eq!(a, FaultAction::Deliver);
        }
        assert_eq!(p.counts().total(), 0);
        assert_eq!(p.counts().decisions, 100);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut p = FaultPlan::new(seed)
                .with_drop(0.2)
                .with_corrupt(0.1)
                .with_duplicate(0.1)
                .with_delay(0.1, Time::from_us(30));
            (0..200u64)
                .map(|i| p.decide(Time::from_us(i), L01, FaultOp::Msg))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds, different schedules");
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let mut p = FaultPlan::drop_all(11, 0.25);
        let n = 4000u64;
        let drops = (0..n)
            .filter(|&i| p.decide(Time::from_us(i), L01, FaultOp::Put) == FaultAction::Drop)
            .count() as f64;
        let rate = drops / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed drop rate {rate}");
        assert_eq!(p.counts().drops as f64, drops);
    }

    #[test]
    fn link_override_beats_default() {
        let mut p = FaultPlan::new(5).with_link(
            L23,
            FaultProbs {
                drop: 1.0,
                ..FaultProbs::default()
            },
        );
        assert_eq!(
            p.decide(Time::ZERO, L01, FaultOp::Msg),
            FaultAction::Deliver
        );
        assert_eq!(p.decide(Time::ZERO, L23, FaultOp::Msg), FaultAction::Drop);
    }

    #[test]
    fn trigger_fires_exactly_once_and_respects_filters() {
        let mut p = FaultPlan::new(3).with_trigger(
            Time::from_us(10),
            Some(L01),
            Some(FaultOp::Put),
            FaultKind::Drop,
        );
        // too early, wrong link, wrong op: all deliver
        assert_eq!(
            p.decide(Time::from_us(5), L01, FaultOp::Put),
            FaultAction::Deliver
        );
        assert_eq!(
            p.decide(Time::from_us(11), L23, FaultOp::Put),
            FaultAction::Deliver
        );
        assert_eq!(
            p.decide(Time::from_us(11), L01, FaultOp::Msg),
            FaultAction::Deliver
        );
        // the first match fires it …
        assert_eq!(
            p.decide(Time::from_us(11), L01, FaultOp::Put),
            FaultAction::Drop
        );
        // … and it never fires again
        assert_eq!(
            p.decide(Time::from_us(12), L01, FaultOp::Put),
            FaultAction::Deliver
        );
    }

    #[test]
    fn stall_window_holds_packets_until_it_closes() {
        let mut p = FaultPlan::new(9).with_stall(None, Time::from_us(100), Time::from_us(200));
        assert_eq!(
            p.decide(Time::from_us(50), L01, FaultOp::Msg),
            FaultAction::Deliver
        );
        assert_eq!(
            p.decide(Time::from_us(150), L01, FaultOp::Msg),
            FaultAction::Delay {
                extra: Time::from_us(50)
            }
        );
        assert_eq!(
            p.decide(Time::from_us(200), L01, FaultOp::Msg),
            FaultAction::Deliver,
            "window is half-open"
        );
        assert_eq!(p.counts().stalls, 1);
    }

    #[test]
    fn duplicate_and_delay_carry_their_extras() {
        let mut p = FaultPlan::new(1)
            .with_duplicate(1.0)
            .with_dup_extra(Time::from_us(7));
        assert_eq!(
            p.decide(Time::ZERO, L01, FaultOp::Msg),
            FaultAction::Duplicate {
                extra: Time::from_us(7)
            }
        );
        let mut p = FaultPlan::new(1).with_delay(1.0, Time::from_us(33));
        assert_eq!(
            p.decide(Time::ZERO, L01, FaultOp::Ack),
            FaultAction::Delay {
                extra: Time::from_us(33)
            }
        );
    }

    #[test]
    fn clone_snapshots_the_schedule() {
        // A cloned plan replays the same future — how a test can predict
        // what the executor will see.
        let mut a = FaultPlan::drop_all(77, 0.5);
        let mut b = a.clone();
        for i in 0..100u64 {
            assert_eq!(
                a.decide(Time::from_us(i), L01, FaultOp::Msg),
                b.decide(Time::from_us(i), L01, FaultOp::Msg)
            );
        }
    }
}
