//! End-to-end integration tests exercising the whole stack through the
//! public API: the paper's qualitative claims must hold on the assembled
//! system, not just in per-crate units.

use ckd_apps::jacobi3d::{run_jacobi_grid, serial_jacobi, JacobiCfg};
use ckd_apps::matmul3d::{run_matmul_verify, serial_product, MatmulCfg};
use ckd_apps::openatom::{run_openatom, OpenAtomCfg};
use ckd_apps::pingpong::charm_pingpong;
use ckd_apps::{Platform, Variant};
use ckd_mpi::{flavor, pingpong_rtt, PingMode};
use ckd_net::presets;
use ckd_topo::Machine as Topo;

const ABE2: Platform = Platform::IbAbe { cores_per_node: 2 };
const ABE8: Platform = Platform::IbAbe { cores_per_node: 8 };

/// Section 3's headline: CkDirect beats default messaging *and* every MPI
/// flavor at every size on the Infiniband model.
#[test]
fn ckdirect_wins_table1_at_every_size() {
    let net = presets::ib_abe(Topo::ib_cluster(8, 2));
    for bytes in [100usize, 5_000, 40_000, 100_000, 500_000] {
        let ckd = charm_pingpong(ABE2, Variant::Ckd, bytes, 25).rtt;
        let msg = charm_pingpong(ABE2, Variant::Msg, bytes, 25).rtt;
        let vmi = pingpong_rtt(&net, flavor::mpich_vmi(), bytes, 25, PingMode::TwoSided);
        let mvapich = pingpong_rtt(&net, flavor::mvapich(), bytes, 25, PingMode::TwoSided);
        let put = pingpong_rtt(&net, flavor::mvapich(), bytes, 25, PingMode::OneSidedPscw);
        for (name, rtt) in [
            ("default", msg),
            ("MPICH-VMI", vmi),
            ("MVAPICH", mvapich),
            ("MVAPICH-Put", put),
        ] {
            assert!(ckd < rtt, "{bytes}B: CkDirect {ckd} !< {name} {rtt}");
        }
    }
}

/// Table 2's analogue on the BG/P model: CkDirect < MPI < default Charm++
/// at small sizes; CkDirect < both at all sizes.
#[test]
fn ckdirect_wins_table2_and_mpi_sits_between() {
    let net = presets::bgp_surveyor(Topo::bgp_partition(8));
    for bytes in [100usize, 10_000, 100_000] {
        let ckd = charm_pingpong(Platform::Bgp, Variant::Ckd, bytes, 25).rtt;
        let msg = charm_pingpong(Platform::Bgp, Variant::Msg, bytes, 25).rtt;
        let mpi = pingpong_rtt(&net, flavor::ibm_bgp(), bytes, 25, PingMode::TwoSided);
        assert!(ckd < mpi, "{bytes}B: ckd {ckd} !< mpi {mpi}");
        assert!(ckd < msg, "{bytes}B: ckd {ckd} !< msg {msg}");
    }
    // at 100 B the ordering CkDirect < MPI < Default holds (Table 2)
    let ckd = charm_pingpong(Platform::Bgp, Variant::Ckd, 100, 25).rtt;
    let msg = charm_pingpong(Platform::Bgp, Variant::Msg, 100, 25).rtt;
    let mpi = pingpong_rtt(&net, flavor::ibm_bgp(), 100, 25, PingMode::TwoSided);
    assert!(ckd < mpi && mpi < msg, "{ckd} < {mpi} < {msg} violated");
}

/// Both stencil transports, both platforms, one serial truth.
#[test]
fn stencil_correct_on_all_transport_platform_combinations() {
    let reference = serial_jacobi([16, 8, 8], 12);
    for platform in [ABE8, Platform::Bgp] {
        for variant in [Variant::Msg, Variant::Ckd] {
            let (_, grid) = run_jacobi_grid(
                platform,
                8,
                JacobiCfg {
                    domain: [16, 8, 8],
                    chares: [2, 2, 2],
                    iters: 12,
                    variant,
                    real_compute: true,
                },
            );
            assert_eq!(grid, reference, "{} / {:?}", platform.label(), variant);
        }
    }
}

/// Matmul correctness with an uneven machine (chares ≫ PEs and chares that
/// straddle node boundaries).
#[test]
fn matmul_correct_under_heavy_virtualization() {
    let want = serial_product(64);
    for pes in [4usize, 12] {
        let (_, c) = run_matmul_verify(
            ABE2,
            pes,
            MatmulCfg {
                n: 64,
                grid: 4, // 64 chares on 4 or 12 PEs
                iters: 3,
                variant: Variant::Ckd,
                real_compute: true,
            },
        );
        assert!(c.dist(&want) < 1e-9, "pes={pes}: {}", c.dist(&want));
    }
}

/// The simulation is fully deterministic end to end.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let j = run_jacobi_grid(
            ABE8,
            8,
            JacobiCfg {
                domain: [16, 16, 8],
                chares: [2, 2, 2],
                iters: 8,
                variant: Variant::Ckd,
                real_compute: true,
            },
        );
        let o = run_openatom(
            ABE2,
            8,
            OpenAtomCfg {
                nstates: 16,
                nplanes: 4,
                grain: 4,
                pts: 32,
                steps: 2,
                variant: Variant::Ckd,
                pc_only: false,
                ready_split: true,
            },
        );
        (j.0.total, j.0.residual, j.1, o.time_per_step, o.poll_checks)
    };
    assert_eq!(run(), run());
}

/// The BG/P backend (callback completion) and the IB backend (sentinel
/// polling) implement the same semantics: identical application results,
/// different mechanisms (poll counters differ).
#[test]
fn backends_agree_on_semantics_not_mechanism() {
    let mk = |platform| {
        run_openatom(
            platform,
            8,
            OpenAtomCfg {
                nstates: 16,
                nplanes: 4,
                grain: 4,
                pts: 32,
                steps: 3,
                variant: Variant::Ckd,
                pc_only: false,
                ready_split: false,
            },
        )
    };
    let ib = mk(ABE2);
    let bgp = mk(Platform::Bgp);
    assert_eq!(ib.steps, bgp.steps);
    assert!(ib.poll_checks > 0, "IB detects by polling");
    assert_eq!(bgp.poll_checks, 0, "BG/P delivers by callback");
}

/// Fig 2's claim at integration level: the CkDirect advantage on the
/// stencil grows from "negligible" to "substantial" as the same problem is
/// spread over more PEs.
#[test]
fn stencil_advantage_grows_with_scale() {
    let imp = |pes: usize, chares: [usize; 3]| {
        let mk = |variant| JacobiCfg {
            domain: [256, 256, 128],
            chares,
            iters: 4,
            variant,
            real_compute: false,
        };
        let msg = ckd_apps::jacobi3d::run_jacobi(ABE8, pes, mk(Variant::Msg)).time_per_iter;
        let ckd = ckd_apps::jacobi3d::run_jacobi(ABE8, pes, mk(Variant::Ckd)).time_per_iter;
        (msg.as_secs_f64() - ckd.as_secs_f64()) / msg.as_secs_f64()
    };
    let coarse = imp(8, [4, 4, 4]);
    let fine = imp(64, [8, 8, 8]);
    assert!(
        fine > coarse,
        "improvement must grow with PEs: {coarse} -> {fine}"
    );
}

// ---- builder combination rules ------------------------------------------

/// Illegal knob combinations are named [`BuildError`]s from `try_build`,
/// not late panics from inside the construction path — and every legal
/// combination still builds. (These rules used to be scattered asserts;
/// the checker+shards one fired only after the machine was half-built.)
#[test]
fn illegal_builder_combinations_are_named_errors() {
    use ckd_charm::{BuildError, ProgressConfig};
    use ckd_sim::{IdentityPolicy, Time};

    let checker = || Box::new(IdentityPolicy::default());
    const SLING: Platform = Platform::Slingshot;
    // `Machine` is deliberately not `Debug`, so no `unwrap_err` here
    fn build_err(r: Result<ckd_charm::Machine, BuildError>) -> BuildError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("illegal combination built a machine"),
        }
    }

    // schedule exploration needs the single serial event heap
    let e = build_err(
        ABE2.builder(4)
            .with_checker(checker())
            .with_shards(2)
            .try_build(),
    );
    assert_eq!(e, BuildError::CheckerWithShards);

    // no reorder policy models progress-tick commutation
    let e = build_err(
        SLING
            .builder(4)
            .with_checker(checker())
            .with_progress(ProgressConfig::default())
            .try_build(),
    );
    assert_eq!(e, BuildError::CheckerWithProgress);

    // a polling backend has no CQ for the progress engine to drain
    let e = build_err(
        ABE2.builder(4)
            .with_progress(ProgressConfig::default())
            .try_build(),
    );
    assert_eq!(e, BuildError::ProgressWithoutCq);

    // a zero-period tick would never advance virtual time
    let e = build_err(
        SLING
            .builder(4)
            .with_progress(ProgressConfig { tick: Time::ZERO })
            .try_build(),
    );
    assert_eq!(e, BuildError::ZeroProgressTick);

    // each error Displays a human-readable rule, not a Debug dump
    for err in [
        BuildError::CheckerWithShards,
        BuildError::CheckerWithProgress,
        BuildError::ProgressWithoutCq,
        BuildError::ZeroProgressTick,
    ] {
        assert!(err.to_string().len() > 20, "{err:?} has no real message");
    }

    // the legal neighbors of every rejected combination still build
    assert_eq!(
        ABE2.builder(4)
            .with_checker(checker())
            .try_build()
            .unwrap()
            .npes(),
        4
    );
    assert_eq!(
        ABE2.builder(4).with_shards(2).try_build().unwrap().npes(),
        4
    );
    assert_eq!(
        SLING
            .builder(4)
            .with_progress(ProgressConfig::default())
            .try_build()
            .unwrap()
            .npes(),
        4
    );
    assert_eq!(
        SLING.builder(4).with_shards(2).try_build().unwrap().npes(),
        4
    );
}
