//! Table 2 — pingpong round-trip times on the Blue Gene/P (Surveyor) model:
//! Default Charm++, CkDirect, IBM MPI two-sided, IBM `MPI_Put`.

use ckd_apps::pingpong::charm_pingpong;
use ckd_apps::{Platform, Variant};
use ckd_bench::{banner, print_size_header, print_time_row, scale, Scale, TABLE_SIZES};
use ckd_mpi::{flavor, pingpong_rtt, PingMode};
use ckd_net::presets;
use ckd_topo::Machine as Topo;

fn main() {
    let iters = match scale() {
        Scale::Quick => 5,
        Scale::Standard => 100,
        Scale::Full => 1000,
    };
    let net = presets::bgp_surveyor(Topo::bgp_partition(8));

    banner("Table 2: pingpong RTT (us) on Blue Gene/P (Surveyor model)");
    print_size_header();
    let run_charm = |v: Variant| -> Vec<_> {
        TABLE_SIZES
            .iter()
            .map(|&b| charm_pingpong(Platform::Bgp, v, b, iters).rtt)
            .collect()
    };
    print_time_row("Default CHARM++", &run_charm(Variant::Msg));
    print_time_row("CkDirect CHARM++", &run_charm(Variant::Ckd));
    let run_mpi = |mode: PingMode| -> Vec<_> {
        TABLE_SIZES
            .iter()
            .map(|&b| pingpong_rtt(&net, flavor::ibm_bgp(), b, iters, mode))
            .collect()
    };
    print_time_row("MPI", &run_mpi(PingMode::TwoSided));
    print_time_row("MPI-Put", &run_mpi(PingMode::OneSidedPscw));

    println!();
    println!("paper values:");
    ckd_bench::print_row(
        "Default CHARM++",
        &[
            14.467, 20.822, 44.822, 72.976, 128.166, 186.771, 240.306, 400.226, 560.634, 2693.601,
        ],
    );
    ckd_bench::print_row(
        "CkDirect CHARM++",
        &[
            5.133, 11.379, 33.112, 60.675, 115.103, 169.552, 223.599, 383.732, 543.491, 2677.072,
        ],
    );
    ckd_bench::print_row(
        "MPI",
        &[
            7.606, 13.936, 39.903, 66.661, 120.548, 173.041, 226.739, 386.712, 546.740, 2680.459,
        ],
    );
    ckd_bench::print_row(
        "MPI-Put",
        &[
            14.049, 17.836, 39.963, 67.972, 122.693, 178.571, 232.629, 392.388, 552.708, 2685.972,
        ],
    );
}
