//! Property coverage for the thin topology crate: index-space round-trips,
//! mapper partitioning, and metric symmetry of every interconnect shape.
//! Randomized cases use `ckd-sim`'s deterministic RNG, so a failure
//! reproduces from the fixed seed alone.

use ckd_sim::DetRng;
use ckd_topo::{Crossbar, Dims, FatTree, Idx, Machine, Mapper, NodeId, Pe, Topology, Torus3D};

const CASES: u64 = 64;

fn random_dims(rng: &mut impl FnMut(u64, u64) -> u64) -> Dims {
    match rng(1, 5) {
        1 => Dims::d1(rng(1, 40) as usize),
        2 => Dims::d2(rng(1, 12) as usize, rng(1, 12) as usize),
        3 => Dims::d3(rng(1, 8) as usize, rng(1, 8) as usize, rng(1, 8) as usize),
        _ => Dims::d4(
            rng(1, 5) as usize,
            rng(1, 5) as usize,
            rng(1, 5) as usize,
            rng(1, 5) as usize,
        ),
    }
}

#[test]
fn linear_unlinear_roundtrip_for_random_extents() {
    let mut s = DetRng::new(0x70B0).stream("dims-roundtrip");
    let mut rng = move |lo, hi| s.range(lo, hi);
    for case in 0..CASES {
        let dims = random_dims(&mut rng);
        for lin in 0..dims.len() {
            let idx = dims.unlinear(lin);
            assert!(dims.contains(idx), "case {case}: {idx:?} outside {dims:?}");
            assert_eq!(dims.linear(idx), lin, "case {case}: {dims:?}");
        }
        // iter() is exactly linearization order
        for (lin, idx) in dims.iter().enumerate() {
            assert_eq!(dims.linear(idx), lin, "case {case}");
        }
        // components survive the constructor round-trip
        let idx = dims.unlinear(dims.len() - 1);
        let a = idx.as_array();
        let back = Idx::i4(a[0], a[1], a[2], a[3]);
        assert_eq!(back, idx);
        for (k, &c) in a.iter().enumerate() {
            assert_eq!(idx.at(k), c);
        }
    }
}

#[test]
fn mappers_partition_every_index_space() {
    let mut s = DetRng::new(0x70B1).stream("mapper-partition");
    for case in 0..CASES {
        let total = s.range(1, 300) as usize;
        let npes = s.range(1, 40) as usize;
        for mapper in [Mapper::Block, Mapper::RoundRobin] {
            let mut counts = vec![0usize; npes];
            for lin in 0..total {
                let pe = mapper.pe_for(lin, total, npes);
                assert!(pe.idx() < npes, "case {case}: {mapper:?} out of range");
                counts[pe.idx()] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), total);
            // both strategies are balanced to within one element
            let mx = counts.iter().max().unwrap();
            let mn = counts.iter().filter(|&&c| c > 0).min().unwrap();
            assert!(mx - mn <= 1, "case {case}: {mapper:?} imbalance {counts:?}");
        }
        // block keeps the linearization contiguous per PE
        let mut last = 0;
        for lin in 0..total {
            let pe = Mapper::Block.pe_for(lin, total, npes).idx();
            assert!(pe >= last, "case {case}: block map not monotone");
            last = pe;
        }
    }
}

fn check_metric(topo: &dyn Topology, label: &str) {
    let n = topo.nodes();
    let mut max_seen = 0;
    for a in 0..n {
        let (na, diam) = (NodeId(a as u32), topo.diameter());
        assert_eq!(topo.hops(na, na), 0, "{label}: hops(a,a) != 0");
        for b in 0..n {
            let nb = NodeId(b as u32);
            let ab = topo.hops(na, nb);
            assert_eq!(ab, topo.hops(nb, na), "{label}: asymmetric {a}<->{b}");
            assert!(ab <= diam, "{label}: {a}->{b} exceeds diameter");
            max_seen = max_seen.max(ab);
            if a != b {
                assert!(ab > 0, "{label}: distinct nodes at distance 0");
            }
        }
    }
    assert_eq!(
        max_seen,
        topo.diameter(),
        "{label}: diameter not attained by any pair"
    );
}

#[test]
fn every_topology_is_a_symmetric_metric() {
    let mut s = DetRng::new(0x70B2).stream("topo-metric");
    for _ in 0..CASES / 4 {
        let nodes = s.range(1, 30) as usize;
        check_metric(&Crossbar::new(nodes), "crossbar");
        let radix = s.range(2, 12) as usize;
        check_metric(&FatTree::new(nodes, radix), "fat-tree");
        let dims = [
            s.range(1, 6) as usize,
            s.range(1, 6) as usize,
            s.range(1, 6) as usize,
        ];
        check_metric(&Torus3D::new(dims), "torus");
    }
}

#[test]
fn torus_coords_roundtrip_and_unit_neighbors() {
    let mut s = DetRng::new(0x70B3).stream("torus-neighbors");
    for _ in 0..CASES / 4 {
        let dims = [
            s.range(2, 7) as usize,
            s.range(2, 7) as usize,
            s.range(2, 7) as usize,
        ];
        let t = Torus3D::new(dims);
        for n in 0..t.nodes() {
            let id = NodeId(n as u32);
            let c = t.coords(id);
            assert_eq!(t.node_at(c), id, "coords/node_at round-trip");
            // each wrap-around unit step along one axis is one hop, both ways
            for k in 0..3 {
                let mut fwd = c;
                fwd[k] = (c[k] + 1) % dims[k];
                let step = t.hops(id, t.node_at(fwd));
                let expect = u32::from(dims[k] > 1);
                assert_eq!(step, expect, "axis {k} neighbor of {c:?} in {dims:?}");
            }
        }
    }
}

#[test]
fn torus_fitting_holds_the_requested_nodes() {
    let mut s = DetRng::new(0x70B4).stream("torus-fitting");
    for _ in 0..CASES {
        let want = s.range(1, 5000) as usize;
        let t = Torus3D::fitting(want);
        assert!(t.nodes() >= want, "fitting({want}) -> {:?}", t.dims());
    }
}

#[test]
fn machine_pe_to_node_structure_is_consistent() {
    let mut s = DetRng::new(0x70B5).stream("machine-structure");
    for _ in 0..CASES / 2 {
        let cores = s.range(1, 8) as usize;
        let nodes = s.range(1, 16) as usize;
        let m = Machine::ib_cluster(nodes * cores, cores);
        assert_eq!(m.npes(), nodes * cores);
        assert_eq!(m.nodes(), nodes);
        for pe in m.pes() {
            let (node, core) = (m.node_of(pe), m.core_of(pe));
            assert_eq!(node.0 as usize * cores + core, pe.idx());
            assert!(core < cores);
            assert!(m.same_node(pe, pe));
            assert_eq!(m.hops_between_pes(pe, pe), 0);
        }
        for a in m.pes() {
            for b in m.pes() {
                assert_eq!(m.same_node(a, b), m.same_node(b, a));
                assert_eq!(m.hops_between_pes(a, b), m.hops_between_pes(b, a));
                if m.same_node(a, b) {
                    assert_eq!(m.hops_between_pes(a, b), 0, "intra-node is hop-free");
                }
            }
        }
    }
    // spot-check the public Pe wrapper
    assert_eq!(Pe(3).idx(), 3);
}
