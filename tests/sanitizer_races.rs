//! End-to-end validation of the happens-before sanitizer:
//!
//! 1. every deliberately-racy mutant produces at least one diagnostic that
//!    names *two* racing events with PEs and virtual times plus the
//!    synchronization edge that would have prevented it;
//! 2. every correct application runs diagnostic-clean with the sanitizer
//!    on — the checker over-approximates happens-before, so a clean run is
//!    proof it does not invent races on the paper's own protocols;
//! 3. enabling the sanitizer is observationally free: stats, trace exports
//!    and final virtual time are byte-identical to a sanitizer-off run.

use ckd_apps::jacobi3d::{run_jacobi_on, JacobiCfg};
use ckd_apps::matmul3d::{run_matmul_on, MatmulCfg};
use ckd_apps::mutants::{run_mutant, MutantKind};
use ckd_apps::openatom::{run_openatom_on, OpenAtomCfg};
use ckd_apps::pingpong::charm_pingpong_on;
use ckd_apps::{Platform, Variant};
use ckd_charm::{chrome_trace_json, text_summary, Machine, TraceConfig};
use ckd_race::{RaceKind, SanitizerConfig};
use ckd_sim::Time;

const ABE2: Platform = Platform::IbAbe { cores_per_node: 2 };
const ABE4: Platform = Platform::IbAbe { cores_per_node: 4 };

fn sanitized(platform: Platform, pes: usize) -> Machine {
    platform
        .builder(pes)
        .with_sanitizer(SanitizerConfig::default())
        .build()
}

fn jacobi_cfg(variant: Variant) -> JacobiCfg {
    JacobiCfg {
        domain: [24, 24, 24],
        chares: [2, 2, 1],
        iters: 6,
        variant,
        real_compute: false,
    }
}

// ---- 1. the mutants are caught, with provenance -------------------------

#[test]
fn every_mutant_is_caught_with_full_provenance() {
    let expected = [
        (MutantKind::SkipReadyJacobi, RaceKind::OverwriteUnconsumed),
        (
            MutantKind::EarlyReadPingpong,
            RaceKind::ReadBeforeCompletion,
        ),
        (MutantKind::DoublePutMatmul, RaceKind::PutWhileInFlight),
    ];
    for (mutant, kind) in expected {
        let m = run_mutant(mutant);
        let diags = m.sanitizer().diagnostics();
        assert!(
            !diags.is_empty(),
            "{}: no diagnostics at all",
            mutant.label()
        );
        let d = diags
            .iter()
            .find(|d| d.kind == kind)
            .unwrap_or_else(|| panic!("{}: no {kind:?} in {diags:?}", mutant.label()));
        // provenance: both racing events, with PE and virtual time
        let first = d
            .first
            .as_ref()
            .unwrap_or_else(|| panic!("{}: diagnostic lacks the first event", mutant.label()));
        assert!(
            first.at > Time::ZERO,
            "{}: first event untimed",
            mutant.label()
        );
        assert!(
            d.second.at >= first.at,
            "{}: events out of order",
            mutant.label()
        );
        assert!(
            !d.missing_edge.is_empty(),
            "{}: no missing-edge explanation",
            mutant.label()
        );
        let text = d.to_string();
        assert!(text.contains("@pe"), "no PE in: {text}");
        assert!(text.contains("missing edge"), "no edge in: {text}");
    }
}

#[test]
fn mutant_report_is_human_readable() {
    let m = run_mutant(MutantKind::SkipReadyJacobi);
    let report = m.sanitizer().report();
    assert!(report.contains("overwrite-unconsumed"), "report: {report}");
    assert!(
        report.contains("t="),
        "report lacks virtual times: {report}"
    );
}

// ---- 2. correct apps are clean ------------------------------------------

#[test]
fn correct_jacobi_is_clean_on_both_platforms() {
    for platform in [ABE4, Platform::Bgp] {
        let mut m = sanitized(platform, 4);
        run_jacobi_on(&mut m, jacobi_cfg(Variant::Ckd));
        assert!(
            m.sanitizer().is_clean(),
            "{}:\n{}",
            platform.label(),
            m.sanitizer().report()
        );
    }
}

#[test]
fn correct_pingpong_is_clean() {
    for variant in [Variant::Msg, Variant::Ckd] {
        let mut m = sanitized(ABE2, 8);
        let r = charm_pingpong_on(&mut m, variant, 10_000, 20);
        assert_eq!(r.iters, 20);
        assert!(
            m.sanitizer().is_clean(),
            "{variant:?}:\n{}",
            m.sanitizer().report()
        );
    }
}

#[test]
fn correct_msg_jacobi_is_clean() {
    // the msg variant issues no direct ops at all: vacuously clean, but it
    // exercises the pure message/reduction edge plumbing
    let mut m = sanitized(ABE4, 4);
    run_jacobi_on(&mut m, jacobi_cfg(Variant::Msg));
    assert!(m.sanitizer().is_clean(), "{}", m.sanitizer().report());
}

#[test]
fn correct_matmul_is_clean() {
    let mut m = sanitized(ABE4, 8);
    run_matmul_on(
        &mut m,
        MatmulCfg {
            n: 64,
            grid: 2,
            iters: 3,
            variant: Variant::Ckd,
            real_compute: false,
        },
    );
    assert!(m.sanitizer().is_clean(), "{}", m.sanitizer().report());
}

#[test]
fn correct_openatom_is_clean_including_ready_split() {
    for ready_split in [false, true] {
        let mut m = sanitized(ABE2, 4);
        run_openatom_on(
            &mut m,
            OpenAtomCfg {
                nstates: 16,
                nplanes: 4,
                grain: 4,
                pts: 32,
                steps: 3,
                variant: Variant::Ckd,
                pc_only: false,
                ready_split,
            },
        );
        assert!(
            m.sanitizer().is_clean(),
            "ready_split={ready_split}:\n{}",
            m.sanitizer().report()
        );
    }
}

// ---- 3. the sanitizer is observationally free ---------------------------

#[test]
fn sanitizer_does_not_perturb_the_simulation() {
    let run = |sanitize: bool| -> (Machine, Time) {
        let mut b = ABE4.builder(4).with_tracing(TraceConfig::default());
        if sanitize {
            b = b.with_sanitizer(SanitizerConfig::default());
        }
        let mut m = b.build();
        let r = run_jacobi_on(&mut m, jacobi_cfg(Variant::Ckd));
        (m, r.total)
    };
    let (off, t_off) = run(false);
    let (on, t_on) = run(true);
    assert!(on.sanitizer().is_clean(), "{}", on.sanitizer().report());

    assert_eq!(t_off, t_on, "final virtual time must not move");
    assert_eq!(off.stats(), on.stats(), "aggregate stats must not move");
    assert_eq!(
        chrome_trace_json(off.tracer()).unwrap(),
        chrome_trace_json(on.tracer()).unwrap(),
        "trace export must be byte-identical"
    );
    assert_eq!(
        text_summary(off.tracer()).unwrap(),
        text_summary(on.tracer()).unwrap(),
        "summary export must be byte-identical"
    );
}
