//! Per-channel state: the lifecycle that makes "at most one message in
//! flight, re-armed by `ready`" checkable.

use ckd_topo::Pe;

use crate::region::Region;
use crate::strided::StridedSpec;

/// Identifies a CkDirect channel. The receiver creates it and ships it to
/// the sender inside an ordinary message during setup.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandleId(pub u32);

impl HandleId {
    /// Dense index for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for HandleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ckh{}", self.0)
    }
}

/// How completion is detected on this machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectBackend {
    /// Infiniband-style: the RDMA write overwrites the out-of-band pattern
    /// in the last 8 bytes; a per-PE polling queue detects it between
    /// scheduler iterations. `ready_mark` / `ready_poll_q` are meaningful.
    IbPoll,
    /// Blue Gene/P-style: delivery is a DCMF completion callback; the
    /// `ready` family are no-ops (the paper's BG/P implementation).
    DcmfCallback,
}

/// Where the channel's current message is in its life.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataPhase {
    /// No outstanding put; the buffer is the receiver's to reuse.
    Empty,
    /// A put has been issued; bytes are on the wire.
    InFlight,
    /// Bytes have landed in the receive buffer but no callback has fired
    /// yet (awaiting a poll sweep on the IbPoll backend).
    Landed,
    /// The callback fired; the receiver owns the data until `ready_mark`.
    Delivered,
}

/// One CkDirect channel.
pub(crate) struct Channel<C> {
    /// PE hosting the receive buffer.
    pub recv_pe: Pe,
    /// Receive window (registered at `create_handle`).
    pub recv: Region,
    /// PE hosting the send buffer, once `assoc_local` ran.
    pub send_pe: Option<Pe>,
    /// Send window, once `assoc_local` ran.
    pub send: Option<Region>,
    /// The out-of-band pattern for this channel.
    pub oob: u64,
    /// Bytes charged on the wire per put. Defaults to the region length;
    /// figure-scale (modeled) runs keep small real regions but charge the
    /// full application buffer size here.
    pub wire_bytes: usize,
    /// Completion callback token (interpreted by the runtime layer).
    pub callback: C,
    /// Data lifecycle.
    pub phase: DataPhase,
    /// Sentinel currently armed (last word == oob as far as the receiver
    /// side knows).
    pub marked: bool,
    /// Present in the owning PE's polling queue.
    pub in_pollq: bool,
    /// Strided receive side: scatter the wire image into this backing
    /// layout at delivery.
    pub recv_scatter: Option<(Region, StridedSpec)>,
    /// Strided send side: gather this backing layout into the wire image
    /// at put.
    pub send_gather: Option<(Region, StridedSpec)>,
    /// Put whose payload's final word equals the pattern: undetectable by
    /// polling (diagnostic, see `DirectError::OobCollision`).
    pub collided: bool,
    /// Total puts issued on this channel.
    pub puts: u64,
    /// Total callbacks delivered on this channel.
    pub deliveries: u64,
    /// Times this channel's sentinel was examined by a poll sweep.
    pub checks: u64,
    /// Highest put sequence number that has landed (0 = none yet). Lets the
    /// reliability layer replay a duplicated RDMA put idempotently.
    pub landed_seq: u64,
    /// Duplicate landings suppressed before delivery.
    pub dup_landings: u64,
    /// Corrupted landings detected by the per-put CRC and re-armed.
    pub corrupt_landings: u64,
}

impl<C> Channel<C> {
    pub(crate) fn new(recv_pe: Pe, recv: Region, oob: u64, callback: C) -> Channel<C> {
        let wire_bytes = recv.len();
        Channel {
            recv_pe,
            recv,
            send_pe: None,
            send: None,
            oob,
            wire_bytes,
            callback,
            recv_scatter: None,
            send_gather: None,
            phase: DataPhase::Empty,
            marked: true,
            in_pollq: false,
            collided: false,
            puts: 0,
            deliveries: 0,
            checks: 0,
            landed_seq: 0,
            dup_landings: 0,
            corrupt_landings: 0,
        }
    }
}
