//! Integration tests of the message-driven runtime: scheduling, arrays,
//! reductions, broadcasts, and the CkDirect wiring.

use ckd_charm::{
    Chare, Ctx, EntryId, Machine, Msg, Payload, PutOutcome, RedOp, RedTarget, RedVal, RtsConfig,
};
use ckd_net::presets;
use ckd_sim::Time;
use ckd_topo::{Dims, Idx, Machine as Topo, Mapper};
use ckdirect::{DirectConfig, HandleId, Region};

const EP_START: EntryId = EntryId(0);
const EP_PING: EntryId = EntryId(1);
const EP_DONE: EntryId = EntryId(2);

fn ib_machine(pes: usize, cores: usize) -> Machine {
    let net = presets::ib_abe(Topo::ib_cluster(pes, cores));
    Machine::new(net, RtsConfig::ib_abe(), DirectConfig::ib())
}

fn bgp_machine(pes: usize) -> Machine {
    let net = presets::bgp_surveyor(Topo::bgp_partition(pes));
    Machine::new(net, RtsConfig::bgp(), DirectConfig::bgp())
}

// ---------------------------------------------------------------- messaging

/// Two chares bouncing a counter back and forth a fixed number of times.
struct Bouncer {
    peer_lin: usize,
    bounces_seen: u32,
    limit: u32,
    last_time_us: f64,
}

impl Chare for Bouncer {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        self.last_time_us = ctx.now().as_us_f64();
        let peer = ctx.element(ctx.me().array, Idx::i1(self.peer_lin));
        match msg.ep {
            EP_START => ctx.send(peer, Msg::value(EP_PING, 1u32, 8)),
            EP_PING => {
                let hop = *msg.payload.downcast::<u32>().unwrap();
                self.bounces_seen += 1;
                if hop < self.limit {
                    ctx.send(peer, Msg::value(EP_PING, hop + 1, 8));
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn messages_bounce_and_time_advances() {
    // one core per node so the two chares are on different nodes
    let mut m = ib_machine(4, 1);
    let arr = m.create_array("bounce", Dims::d1(2), Mapper::RoundRobin, |idx| {
        Box::new(Bouncer {
            peer_lin: 1 - idx.at(0),
            bounces_seen: 0,
            limit: 10,
            last_time_us: 0.0,
        })
    });
    let first = m.element(arr, Idx::i1(0));
    m.seed(first, Msg::signal(EP_START));
    let end = m.run();
    assert!(end > Time::ZERO);
    let a = m.chare::<Bouncer>(m.element(arr, Idx::i1(0))).unwrap();
    let b = m.chare::<Bouncer>(m.element(arr, Idx::i1(1))).unwrap();
    assert_eq!(a.bounces_seen + b.bounces_seen, 10); // ten one-way hops
    assert_eq!(m.stats().msgs_sent, 10);
    // PEs on different nodes: each hop is several microseconds
    assert!(end.as_us_f64() > 50.0, "end = {end}");
}

#[test]
fn runtime_is_deterministic() {
    let run = || {
        let mut m = ib_machine(8, 2);
        let arr = m.create_array("bounce", Dims::d1(2), Mapper::RoundRobin, |idx| {
            Box::new(Bouncer {
                peer_lin: 1 - idx.at(0),
                bounces_seen: 0,
                limit: 25,
                last_time_us: 0.0,
            })
        });
        let first = m.element(arr, Idx::i1(0));
        m.seed(first, Msg::signal(EP_START));
        (m.run(), m.stats().events)
    };
    assert_eq!(run(), run());
}

// ---------------------------------------------------------------- reductions

/// Contributes its own value, counts completed generations.
struct Summer {
    value: f64,
    generations: u32,
    last_total: f64,
    rounds: u32,
}

impl Chare for Summer {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                ctx.contribute(
                    RedVal::F64(self.value),
                    RedOp::SumF64,
                    RedTarget::Broadcast(EP_DONE),
                );
            }
            EP_DONE => {
                self.generations += 1;
                self.last_total = msg.payload.downcast::<RedVal>().unwrap().f64().unwrap();
                if self.generations < self.rounds {
                    ctx.contribute(
                        RedVal::F64(self.value),
                        RedOp::SumF64,
                        RedTarget::Broadcast(EP_DONE),
                    );
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn sum_reduction_broadcasts_to_all() {
    let mut m = ib_machine(8, 2);
    let n = 37usize; // deliberately not a multiple of the PE count
    let arr = m.create_array("sum", Dims::d1(n), Mapper::Block, |idx| {
        Box::new(Summer {
            value: idx.at(0) as f64,
            generations: 0,
            last_total: 0.0,
            rounds: 3,
        })
    });
    m.seed_broadcast(arr, Msg::signal(EP_START));
    m.run();
    let expected: f64 = (0..n).map(|i| i as f64).sum();
    for lin in 0..n {
        let c = m.chare::<Summer>(m.element(arr, Idx::i1(lin))).unwrap();
        assert_eq!(c.generations, 3, "element {lin}");
        assert_eq!(c.last_total, expected, "element {lin}");
    }
    assert_eq!(m.stats().reductions, 3);
}

#[test]
fn reduction_works_on_bgp_machine_too() {
    let mut m = bgp_machine(16);
    let arr = m.create_array("sum", Dims::d2(4, 4), Mapper::RoundRobin, |_| {
        Box::new(Summer {
            value: 1.0,
            generations: 0,
            last_total: 0.0,
            rounds: 1,
        })
    });
    m.seed_broadcast(arr, Msg::signal(EP_START));
    m.run();
    let c = m.chare::<Summer>(m.element(arr, Idx::i2(3, 3))).unwrap();
    assert_eq!(c.last_total, 16.0);
}

/// Min/max reductions delivered to a single chare.
struct Extremist {
    value: f64,
    got: Option<f64>,
    op: RedOp,
}

impl Chare for Extremist {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                let root = ctx.element(ctx.me().array, Idx::i1(0));
                ctx.contribute(
                    RedVal::F64(self.value),
                    self.op,
                    RedTarget::Single(root, EP_DONE),
                );
            }
            EP_DONE => {
                self.got = msg.payload.downcast::<RedVal>().unwrap().f64();
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn min_reduction_to_single_target() {
    let mut m = ib_machine(4, 2);
    let arr = m.create_array("min", Dims::d1(9), Mapper::Block, |idx| {
        Box::new(Extremist {
            value: (idx.at(0) as f64 - 4.0).abs() + 0.5,
            got: None,
            op: RedOp::MinF64,
        })
    });
    m.seed_broadcast(arr, Msg::signal(EP_START));
    m.run();
    let root = m.chare::<Extremist>(m.element(arr, Idx::i1(0))).unwrap();
    assert_eq!(root.got, Some(0.5));
    // non-root elements never saw the result
    let other = m.chare::<Extremist>(m.element(arr, Idx::i1(5))).unwrap();
    assert_eq!(other.got, None);
}

// ---------------------------------------------------------------- ckdirect

const OOB: u64 = u64::MAX;
const TAG_DATA: u32 = 1;

/// Receiver side of a CkDirect channel: creates the handle, ships it to the
/// sender, counts deliveries, re-arms each time.
struct DirectRecv {
    sender: Option<ckd_charm::ChareRef>,
    handle: Option<HandleId>,
    region: Region,
    deliveries: u32,
    sums: Vec<f64>,
    rounds: u32,
}

/// Sender side: receives the handle, associates a local buffer, puts a
/// fresh payload each round when poked.
struct DirectSend {
    handle: Option<HandleId>,
    region: Region,
    round: u32,
}

#[derive(Clone, Copy)]
struct HandleMsg(HandleId);

const EP_HANDLE: EntryId = EntryId(10);
const EP_POKE: EntryId = EntryId(11);

impl Chare for DirectRecv {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                let h = ctx
                    .direct_create_handle(self.region.clone(), OOB, TAG_DATA)
                    .unwrap();
                self.handle = Some(h);
                let sender = self.sender.unwrap();
                ctx.send(sender, Msg::value(EP_HANDLE, HandleMsg(h), 16));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, tag: u32, handle: HandleId) {
        assert_eq!(tag, TAG_DATA);
        self.deliveries += 1;
        // read the landed doubles straight out of the registered buffer
        let vals = self.region.read_f64s(0, 4);
        self.sums.push(vals.iter().sum());
        if self.deliveries < self.rounds {
            ctx.direct_ready(handle).unwrap();
            let sender = self.sender.unwrap();
            ctx.send(sender, Msg::signal(EP_POKE));
        }
    }
}

impl Chare for DirectSend {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_HANDLE => {
                let h = msg.payload.downcast::<HandleMsg>().unwrap().0;
                self.handle = Some(h);
                ctx.direct_assoc_local(h, self.region.clone()).unwrap();
                self.fire(ctx);
            }
            EP_POKE => self.fire(ctx),
            other => panic!("unexpected {other:?}"),
        }
    }
}

impl DirectSend {
    fn fire(&mut self, ctx: &mut Ctx<'_>) {
        self.round += 1;
        let base = self.round as f64;
        self.region
            .write_f64s(0, &[base, base * 2.0, base * 3.0, base * 4.0]);
        assert_eq!(
            ctx.direct_put(self.handle.unwrap()).unwrap(),
            PutOutcome::Sent,
            "no faults enabled, so every put is clean"
        );
    }
}

// Wiring: the receiver learns its sender from the start message.
struct Wired {
    inner: DirectRecv,
}

impl Chare for Wired {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if msg.ep == EP_START {
            self.inner.sender = Some(*msg.payload.downcast::<ckd_charm::ChareRef>().unwrap());
        }
        self.inner.entry(ctx, msg);
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, tag: u32, handle: HandleId) {
        self.inner.direct_callback(ctx, tag, handle);
    }
}

fn run_direct_cycle_n(mut m: Machine, rounds: u32) -> (u32, Vec<f64>, Time) {
    let recv_arr = m.create_array("recv", Dims::d1(1), Mapper::Block, |_| {
        Box::new(Wired {
            inner: DirectRecv {
                sender: None,
                handle: None,
                region: Region::alloc(4 * 8),
                deliveries: 0,
                sums: Vec::new(),
                rounds,
            },
        })
    });
    // home the sender on the last PE so the channel crosses the network
    let npes = m.npes();
    let send_arr = m.create_array("send", Dims::d1(npes), Mapper::Block, |_| {
        Box::new(DirectSend {
            handle: None,
            region: Region::alloc(4 * 8),
            round: 0,
        })
    });
    let sender_ref = m.element(send_arr, Idx::i1(npes - 1));
    let recv_ref = m.element(recv_arr, Idx::i1(0));
    m.seed(recv_ref, Msg::value(EP_START, sender_ref, 8));
    let end = m.run();
    let w = m.chare::<Wired>(recv_ref).unwrap();
    (w.inner.deliveries, w.inner.sums.clone(), end)
}

fn run_direct_cycle(m: Machine) -> (u32, Vec<f64>, Time) {
    run_direct_cycle_n(m, 5)
}

#[test]
fn ckdirect_cycle_on_ib() {
    let (deliveries, sums, end) = run_direct_cycle(ib_machine(4, 2));

    assert_eq!(deliveries, 5);
    assert_eq!(sums, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
    assert!(end > Time::ZERO);
}

#[test]
fn ckdirect_cycle_on_bgp() {
    let (deliveries, sums, _) = run_direct_cycle(bgp_machine(8));
    assert_eq!(deliveries, 5);
    assert_eq!(sums, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
}

#[test]
fn ckdirect_beats_messages_on_latency() {
    // one-way data delivery: put+poll+callback must be cheaper than
    // alloc+envelope+wire+sched for the same payload on the IB machine.
    let (_, _, end_direct) = run_direct_cycle_n(ib_machine(4, 1), 40);

    // message-based equivalent: 80 one-way small sends, matching the 40
    // direct rounds of put+poke (2 one-way hops each).
    let mut m = ib_machine(4, 1);
    let arr = m.create_array("bounce", Dims::d1(2), Mapper::RoundRobin, |idx| {
        Box::new(Bouncer {
            peer_lin: 1 - idx.at(0),
            bounces_seen: 0,
            limit: 80,
            last_time_us: 0.0,
        })
    });
    let first = m.element(arr, Idx::i1(0));
    m.seed(first, Msg::signal(EP_START));
    let end_msg = m.run();
    // Both run 80 one-way hops of small payloads (40 puts + 40 pokes vs 80
    // sends); the direct version also pays one-time setup (registration +
    // handle shipping), yet must still win.
    assert!(
        end_direct < end_msg,
        "direct {end_direct} !< messages {end_msg}"
    );
}

#[test]
fn poll_checks_are_counted() {
    let (_, _, _) = run_direct_cycle(ib_machine(4, 2));
    // counters live on the machine consumed by the helper; re-run inline:
    let mut m = ib_machine(4, 2);
    let recv_arr = m.create_array("recv", Dims::d1(1), Mapper::Block, |_| {
        Box::new(Wired {
            inner: DirectRecv {
                sender: None,
                handle: None,
                region: Region::alloc(4 * 8),
                deliveries: 0,
                sums: Vec::new(),
                rounds: 3,
            },
        })
    });
    let npes = m.npes();
    let send_arr = m.create_array("send", Dims::d1(npes), Mapper::Block, |_| {
        Box::new(DirectSend {
            handle: None,
            region: Region::alloc(4 * 8),
            round: 0,
        })
    });
    let sender_ref = m.element(send_arr, Idx::i1(npes - 1));
    let recv_ref = m.element(recv_arr, Idx::i1(0));
    m.seed(recv_ref, Msg::value(EP_START, sender_ref, 8));
    m.run();
    let c = m.direct_counters();
    assert_eq!(c.puts, 3);
    assert_eq!(c.deliveries, 3);
    assert!(
        c.poll_checks >= c.deliveries,
        "every delivery needs at least one check"
    );
}

// ------------------------------------------------------- broadcast payloads

struct Echo {
    seen: u32,
}

impl Chare for Echo {
    fn entry(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        assert!(matches!(msg.payload, Payload::Empty));
        self.seen += 1;
    }
}

#[test]
fn seed_broadcast_reaches_every_element() {
    let mut m = bgp_machine(8);
    let arr = m.create_array("echo", Dims::d3(2, 3, 2), Mapper::RoundRobin, |_| {
        Box::new(Echo { seen: 0 })
    });
    m.seed_broadcast(arr, Msg::signal(EP_START));
    m.run();
    for idx in [Idx::i3(0, 0, 0), Idx::i3(1, 2, 1), Idx::i3(0, 1, 1)] {
        assert_eq!(m.chare::<Echo>(m.element(arr, idx)).unwrap().seen, 1);
    }
}

#[test]
fn run_until_limits_time() {
    let mut m = ib_machine(4, 2);
    let arr = m.create_array("bounce", Dims::d1(2), Mapper::RoundRobin, |idx| {
        Box::new(Bouncer {
            peer_lin: 1 - idx.at(0),
            bounces_seen: 0,
            limit: 1_000_000,
            last_time_us: 0.0,
        })
    });
    let first = m.element(arr, Idx::i1(0));
    m.seed(first, Msg::signal(EP_START));
    let end = m.run_until(Time::from_us(200));
    assert!(end <= Time::from_us(200));
    let a = m.chare::<Bouncer>(m.element(arr, Idx::i1(0))).unwrap();
    assert!(a.bounces_seen > 2, "some progress happened");
    assert!(a.bounces_seen < 1000, "but not the whole run");
}

// ------------------------------------------------------------- strided API

/// Exchange a matrix column one-sided: the put gathers column `1` of the
/// sender's 4x4 matrix and scatters into column `2` of the receiver's —
/// no application pack/unpack on either side.
struct StridedRecv {
    sender: Option<ckd_charm::ChareRef>,
    matrix: Region,
    deliveries: u32,
}

struct StridedSend {
    matrix: Region,
    handle: Option<HandleId>,
}

const EP_SHANDLE: EntryId = EntryId(20);

fn col_spec(c: usize) -> ckdirect::StridedSpec {
    ckdirect::StridedSpec {
        offset: c * 8,
        block_len: 8,
        stride: 4 * 8,
        count: 4,
    }
}

impl Chare for StridedRecv {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        assert_eq!(msg.ep, EP_START);
        self.sender = Some(*msg.payload.downcast::<ckd_charm::ChareRef>().unwrap());
        let h = ctx
            .direct_create_handle_strided(self.matrix.clone(), col_spec(2), OOB, 1)
            .unwrap();
        ctx.send(self.sender.unwrap(), Msg::value(EP_SHANDLE, h, 16));
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, handle: HandleId) {
        self.deliveries += 1;
        if self.deliveries < 3 {
            ctx.direct_ready(handle).unwrap();
            let sender = self.sender.unwrap();
            ctx.send(sender, Msg::signal(EP_POKE));
        }
    }
}

impl Chare for StridedSend {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_SHANDLE => {
                let h = *msg.payload.downcast::<HandleId>().unwrap();
                ctx.direct_assoc_local_strided(h, self.matrix.clone(), col_spec(1))
                    .unwrap();
                self.handle = Some(h);
                self.fire(ctx, 1.0);
            }
            EP_POKE => {
                // later rounds send updated column values
                let round = 2.0;
                self.fire(ctx, round);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

impl StridedSend {
    fn fire(&mut self, ctx: &mut Ctx<'_>, scale: f64) {
        for r in 0..4 {
            self.matrix
                .write_f64s(r * 4 * 8 + 8, &[scale * (r as f64 + 1.0)]);
        }
        assert_eq!(
            ctx.direct_put(self.handle.unwrap()).unwrap(),
            PutOutcome::Sent,
            "no faults enabled, so every put is clean"
        );
    }
}

#[test]
fn strided_column_exchange_through_the_runtime() {
    let mut m = ib_machine(4, 1);
    let recv_arr = m.create_array("srecv", Dims::d1(1), Mapper::Block, |_| {
        Box::new(StridedRecv {
            sender: None,
            matrix: Region::alloc(4 * 4 * 8),
            deliveries: 0,
        })
    });
    let send_arr = m.create_array("ssend", Dims::d1(4), Mapper::Block, |_| {
        Box::new(StridedSend {
            matrix: Region::alloc(4 * 4 * 8),
            handle: None,
        })
    });
    let r = m.element(recv_arr, Idx::i1(0));
    let s = m.element(send_arr, Idx::i1(3));
    m.seed(r, Msg::value(EP_START, s, 8));
    m.run();
    let recv = m.chare::<StridedRecv>(r).unwrap();
    assert_eq!(recv.deliveries, 3);
    // column 2 of the receiver holds the last round's column 1 values;
    // every other cell is untouched
    for row in 0..4 {
        let vals = recv.matrix.read_f64s(row * 4 * 8, 4);
        assert_eq!(vals[2], 2.0 * (row as f64 + 1.0), "row {row}");
        assert_eq!(vals[0], 0.0);
        assert_eq!(vals[1], 0.0);
        assert_eq!(vals[3], 0.0);
    }
}

// -------------------------------------------------------------- get API

#[test]
fn get_pulls_through_the_runtime() {
    // reuse the Wired pair but drive a get from the receiver side
    struct Puller {
        source: Option<ckd_charm::ChareRef>,
        region: Region,
        got: Vec<f64>,
    }
    struct Holder {
        region: Region,
    }
    const EP_GHANDLE: EntryId = EntryId(30);

    impl Chare for Puller {
        fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            match msg.ep {
                EP_START => {
                    self.source = Some(*msg.payload.downcast::<ckd_charm::ChareRef>().unwrap());
                    let h = ctx
                        .direct_create_handle(self.region.clone(), OOB, 2)
                        .unwrap();
                    let source = self.source.unwrap();
                    ctx.send(source, Msg::value(EP_GHANDLE, h, 16));
                }
                EP_POKE => {
                    // the source says its data is ready: pull it
                    let h = *msg.payload.downcast::<HandleId>().unwrap();
                    ctx.direct_get(h).unwrap();
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        fn direct_callback(&mut self, _ctx: &mut Ctx<'_>, tag: u32, _handle: HandleId) {
            assert_eq!(tag, 2);
            self.got = self.region.read_f64s(0, 2);
        }
    }

    impl Chare for Holder {
        fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            assert_eq!(msg.ep, EP_GHANDLE);
            let h = *msg.payload.downcast::<HandleId>().unwrap();
            ctx.direct_assoc_local(h, self.region.clone()).unwrap();
            self.region.write_f64s(0, &[2.5, 7.5]);
            // notify the puller that the data is ready (the extra
            // synchronization §2 says gets cannot avoid)
            let from = *msg.payload.downcast::<HandleId>().unwrap();
            let puller = ckd_charm::ChareRef {
                array: ckd_charm::ArrayId(2),
                lin: 0,
            };
            let _ = from;
            ctx.send(puller, Msg::value(EP_POKE, h, 16));
        }
    }

    let mut m = ib_machine(4, 1);
    // array ids are assigned in creation order: holder=0? create puller
    // third so its ArrayId(2) reference above resolves
    let _pad = m.create_array("pad", Dims::d1(1), Mapper::Block, |_| {
        Box::new(Echo { seen: 0 }) as Box<dyn Chare>
    });
    let holder_arr = m.create_array("holder", Dims::d1(4), Mapper::Block, |_| {
        Box::new(Holder {
            region: Region::alloc(16),
        })
    });
    let puller_arr = m.create_array("puller", Dims::d1(1), Mapper::Block, |_| {
        Box::new(Puller {
            source: None,
            region: Region::alloc(16),
            got: Vec::new(),
        })
    });
    assert_eq!(puller_arr, ckd_charm::ArrayId(2));
    let h = m.element(holder_arr, Idx::i1(3));
    let p = m.element(puller_arr, Idx::i1(0));
    m.seed(p, Msg::value(EP_START, h, 8));
    m.run();
    assert_eq!(m.chare::<Puller>(p).unwrap().got, vec![2.5, 7.5]);
}

// -------------------------------------------------------- runtime services

/// `Ctx::broadcast` reaches every element of another array, through the
/// participant tree, exactly once per call.
struct BcastDriver {
    target_array: Option<ckd_charm::ArrayId>,
}

impl Chare for BcastDriver {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        assert_eq!(msg.ep, EP_START);
        let arr = self.target_array.unwrap();
        ctx.broadcast(arr, Msg::signal(EP_PING));
        ctx.broadcast(arr, Msg::signal(EP_PING));
    }
}

struct BcastSink {
    hits: u32,
}

impl Chare for BcastSink {
    fn entry(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        assert_eq!(msg.ep, EP_PING);
        self.hits += 1;
    }
}

#[test]
fn user_broadcast_reaches_every_element_per_call() {
    let mut m = ib_machine(8, 2);
    let sink = m.create_array("sink", Dims::d2(3, 5), Mapper::RoundRobin, |_| {
        Box::new(BcastSink { hits: 0 })
    });
    let driver = m.create_array("driver", Dims::d1(1), Mapper::Block, |_| {
        Box::new(BcastDriver { target_array: None })
    });
    let d = m.element(driver, Idx::i1(0));
    m.with_chare_mut::<BcastDriver>(d, |c| c.target_array = Some(sink));
    m.seed(d, Msg::signal(EP_START));
    m.run();
    for lin in 0..15 {
        let c = m
            .chare::<BcastSink>(ckd_charm::ChareRef { array: sink, lin })
            .unwrap();
        assert_eq!(c.hits, 2, "element {lin}");
    }
}

/// `send_local` delivers on the same PE with no wire cost: cheaper than a
/// remote send and still scheduler-ordered.
struct SelfSender {
    steps: u32,
    t_start: Time,
    t_end: Time,
}

const EP_SELF: EntryId = EntryId(40);

impl Chare for SelfSender {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                self.t_start = ctx.now();
                let me = ctx.me();
                ctx.send_local(me, Msg::signal(EP_SELF));
            }
            EP_SELF => {
                self.steps += 1;
                if self.steps < 10 {
                    let me = ctx.me();
                    ctx.send_local(me, Msg::signal(EP_SELF));
                } else {
                    self.t_end = ctx.now();
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn send_local_is_cheap_and_ordered() {
    let mut m = ib_machine(4, 1);
    let arr = m.create_array("selfish", Dims::d1(1), Mapper::Block, |_| {
        Box::new(SelfSender {
            steps: 0,
            t_start: Time::ZERO,
            t_end: Time::ZERO,
        })
    });
    let a = m.element(arr, Idx::i1(0));
    m.seed(a, Msg::signal(EP_START));
    m.run();
    let c = m.chare::<SelfSender>(a).unwrap();
    assert_eq!(c.steps, 10);
    let per_hop = (c.t_end - c.t_start).as_us_f64() / 10.0;
    // alloc (0.7us) + sched (2.5us), and crucially no wire latency (~5.9us)
    assert!(per_hop < 4.0, "local enqueue costs {per_hop}us per hop");
    assert!(
        per_hop > 2.0,
        "scheduler cost must still be paid: {per_hop}us"
    );
}
