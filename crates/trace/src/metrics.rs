//! Aggregated metrics fed from the same instrumentation points as the event
//! rings.
//!
//! Everything here is deterministic: per-protocol tables are fixed-size
//! arrays indexed by [`ProtoClass::index`], and per-channel stats live in a
//! `BTreeMap` so iteration order never depends on hashing.

use std::collections::BTreeMap;

use ckd_sim::{Histogram, Time};

use crate::event::ProtoClass;

/// Count / byte / latency triple for one protocol class.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProtoStat {
    /// Transfers using this protocol.
    pub count: u64,
    /// Payload bytes moved by this protocol.
    pub bytes: u64,
    /// Modeled end-to-end delay per transfer, in nanoseconds.
    pub latency_ns: Histogram,
    /// Sum of modeled delays in nanoseconds (for mean computation).
    pub latency_sum_ns: u64,
}

impl ProtoStat {
    /// Mean modeled delay in nanoseconds; 0 when no transfers were seen.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.latency_sum_ns as f64 / self.count as f64
        }
    }
}

/// Per-channel (per-handle) CkDirect statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChannelStat {
    /// Puts issued on this channel.
    pub puts: u64,
    /// Payloads landed and delivered on this channel.
    pub deliveries: u64,
    /// Payload bytes put through this channel.
    pub bytes: u64,
    /// Put-issue → callback-fire latency, in nanoseconds.
    pub put_to_callback_ns: Histogram,
    /// Sum of issue→callback latencies in nanoseconds.
    pub put_lat_sum_ns: u64,
}

impl ChannelStat {
    /// Mean issue→callback latency in nanoseconds; 0 without completions.
    pub fn mean_put_latency_ns(&self) -> f64 {
        let n = self.put_to_callback_ns.count();
        if n == 0 {
            0.0
        } else {
            self.put_lat_sum_ns as f64 / n as f64
        }
    }
}

/// The metrics registry attached to an enabled tracer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Per-protocol transfer stats, indexed by [`ProtoClass::index`].
    pub proto: [ProtoStat; ProtoClass::COUNT],
    /// Put-issue → callback-fire latency across all channels (ns).
    pub put_to_callback_ns: Histogram,
    /// Sum of issue→callback latencies across all channels (ns).
    pub put_lat_sum_ns: u64,
    /// Handles examined per polling sweep.
    pub poll_checked: Histogram,
    /// Handles delivered per polling sweep (poll-window occupancy).
    pub poll_delivered: Histogram,
    /// Scheduler queue depth sampled at event boundaries.
    pub queue_depth: Histogram,
    /// Per-channel stats keyed by handle id (sorted, deterministic).
    pub channels: BTreeMap<u32, ChannelStat>,
    /// Rendezvous RTS packets observed.
    pub rts: u64,
    /// Rendezvous CTS packets observed.
    pub cts: u64,
    /// Reduction contributions observed.
    pub reduce_contribs: u64,
    /// Reductions completed at a root.
    pub reduce_completes: u64,
    /// Packets the fault plane dropped on the wire.
    pub drops: u64,
    /// Reliability-layer retransmissions.
    pub retries: u64,
    /// Backoff armed per retransmission, in nanoseconds (exponential
    /// schedule shows up as a geometric ladder across buckets).
    pub backoff_ns: Histogram,
}

impl Metrics {
    /// Fresh, empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one transfer under its protocol class.
    #[inline]
    pub fn record_transfer(&mut self, proto: ProtoClass, bytes: u64, delay: Time) {
        let s = &mut self.proto[proto.index()];
        s.count += 1;
        s.bytes += bytes;
        let ns = delay.as_ps() / 1_000;
        s.latency_ns.record(ns);
        s.latency_sum_ns += ns;
    }

    /// Record a put-issue → callback latency for `handle`.
    #[inline]
    pub fn record_put_latency(&mut self, handle: u32, delay: Time) {
        let ns = delay.as_ps() / 1_000;
        self.put_to_callback_ns.record(ns);
        self.put_lat_sum_ns += ns;
        let ch = self.channels.entry(handle).or_default();
        ch.put_to_callback_ns.record(ns);
        ch.put_lat_sum_ns += ns;
    }

    /// Stats row for one protocol class.
    pub fn proto_stat(&self, p: ProtoClass) -> &ProtoStat {
        &self.proto[p.index()]
    }

    /// Total transfers across all protocol classes.
    pub fn total_count(&self) -> u64 {
        self.proto.iter().map(|s| s.count).sum()
    }

    /// Total payload bytes across all protocol classes.
    pub fn total_bytes(&self) -> u64 {
        self.proto.iter().map(|s| s.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_accounting_by_class() {
        let mut m = Metrics::new();
        m.record_transfer(ProtoClass::Eager, 512, Time::from_us(3));
        m.record_transfer(ProtoClass::Eager, 256, Time::from_us(2));
        m.record_transfer(ProtoClass::RdmaPut, 4096, Time::from_us(9));
        assert_eq!(m.proto_stat(ProtoClass::Eager).count, 2);
        assert_eq!(m.proto_stat(ProtoClass::Eager).bytes, 768);
        assert_eq!(m.proto_stat(ProtoClass::RdmaPut).count, 1);
        assert_eq!(m.total_count(), 3);
        assert_eq!(m.total_bytes(), 768 + 4096);
        assert_eq!(m.proto_stat(ProtoClass::Eager).latency_ns.count(), 2);
    }

    #[test]
    fn put_latency_feeds_global_and_channel() {
        let mut m = Metrics::new();
        m.record_put_latency(7, Time::from_us(12));
        m.record_put_latency(7, Time::from_us(14));
        m.record_put_latency(9, Time::from_us(5));
        assert_eq!(m.put_to_callback_ns.count(), 3);
        assert_eq!(m.channels[&7].put_to_callback_ns.count(), 2);
        assert_eq!(m.channels[&9].put_to_callback_ns.count(), 1);
        let handles: Vec<_> = m.channels.keys().copied().collect();
        assert_eq!(handles, vec![7, 9], "BTreeMap keeps deterministic order");
    }
}
