//! Shared harness utilities for the table/figure reproduction benches.
//!
//! Every table and figure of the paper has a `[[bench]]` target (with
//! `harness = false`) that runs the corresponding experiment on the
//! discrete-event machine and prints the same rows/series the paper
//! reports, side by side with the paper's numbers where useful.
//!
//! Environment knobs:
//!
//! * `CKD_QUICK=1` — shrink sweeps for smoke runs (CI);
//! * `CKD_FULL=1` — extend sweeps to the paper's largest configurations
//!   (4096 simulated PEs; several minutes of wall time);
//! * `CKD_TRACE=1` — enable `ckd-trace` on machines the bench opts in via
//!   [`maybe_trace`]; each opted-in run then dumps a text summary through
//!   [`trace_epilogue`]. Off by default so timing loops stay untouched.

use ckd_charm::{text_summary, Machine, MachineBuilder, TraceConfig};
use ckd_sim::Time;

pub mod chanstorm;
pub mod sweep;

pub use chanstorm::{
    channels_json, run_storm_point, validate_channels_json, StormPoint, CHANNELS_SCHEMA,
    STORM_ACTIVE, STORM_ITERS, STORM_REGISTERED,
};
pub use sweep::{
    backends_grid, fig2a_grid, fig3b_grid, run_sweep, run_sweep_with, smoke_grid, sweep64_grid,
    sweep_json, table1_grid, validate_sweep_json, AppCase, BackendSel, HostReport, RunRecord,
    RunSpec, SCHEMA, SCHEMA_V1,
};

/// True when `CKD_TRACE=1` asks benches to collect traces.
pub fn tracing_requested() -> bool {
    std::env::var_os("CKD_TRACE").is_some_and(|v| v == "1")
}

/// Add the tracing layer to a machine under construction when
/// `CKD_TRACE=1`; pass-through (and no overhead beyond this check)
/// otherwise. Thread the builder through before `.build()`.
pub fn maybe_trace(b: MachineBuilder) -> MachineBuilder {
    if tracing_requested() {
        b.with_tracing(TraceConfig::default())
    } else {
        b
    }
}

/// Print the trace summary for a labeled run if tracing was enabled.
pub fn trace_epilogue(label: &str, m: &Machine) {
    if let Some(summary) = text_summary(m.tracer()) {
        println!();
        println!("--- trace summary: {label} ---");
        print!("{summary}");
    }
}

/// Sweep scale selected by environment variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test sweeps.
    Quick,
    /// Default sweeps (minutes of wall time in total).
    Standard,
    /// The paper's largest configurations.
    Full,
}

/// Read the sweep scale from the environment.
pub fn scale() -> Scale {
    if std::env::var_os("CKD_QUICK").is_some() {
        Scale::Quick
    } else if std::env::var_os("CKD_FULL").is_some() {
        Scale::Full
    } else {
        Scale::Standard
    }
}

/// Pick a sweep by scale.
pub fn pick<T: Clone>(s: Scale, quick: &[T], standard: &[T], full: &[T]) -> Vec<T> {
    match s {
        Scale::Quick => quick.to_vec(),
        Scale::Standard => standard.to_vec(),
        Scale::Full => full.to_vec(),
    }
}

/// The message sizes of Tables 1–2 (bytes).
pub const TABLE_SIZES: [usize; 10] = [
    100, 1_000, 5_000, 10_000, 20_000, 30_000, 40_000, 70_000, 100_000, 500_000,
];

/// Render one row of a table: a label and µs values.
pub fn print_row(label: &str, values: &[f64]) {
    print!("{label:<18}");
    for v in values {
        print!(" {v:>9.3}");
    }
    println!();
}

/// Render a row of [`Time`]s in µs.
pub fn print_time_row(label: &str, values: &[Time]) {
    let us: Vec<f64> = values.iter().map(|t| t.as_us_f64()).collect();
    print_row(label, &us);
}

/// Header row with sizes in KB, as the paper prints them.
pub fn print_size_header() {
    print!("{:<18}", "Message Size(KB)");
    for s in TABLE_SIZES {
        print!(" {:>9.1}", s as f64 / 1000.0);
    }
    println!();
}

/// Simple section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Percentage improvement (Fig 2's y-axis).
pub fn improvement(base: Time, better: Time) -> f64 {
    100.0 * (base.as_secs_f64() - better.as_secs_f64()) / base.as_secs_f64()
}
