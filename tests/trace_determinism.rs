//! Determinism of the tracing pipeline: the simulator is a deterministic
//! discrete-event machine, so two identical traced runs must produce
//! byte-identical exports and identical metric values. The exporters only
//! iterate ordered structures (`Vec`s, `BTreeMap`s) and format timestamps
//! with integer arithmetic, so any divergence here is a real bug.

use ckd_apps::jacobi3d::{run_jacobi_on, JacobiCfg};
use ckd_apps::{Platform, Variant};
use ckd_charm::{chrome_trace_json, text_summary, Machine, TraceConfig};
use ckd_trace::ProtoClass;

fn traced_run() -> Machine {
    let mut m = Platform::IbAbe { cores_per_node: 4 }.machine(4);
    m.enable_tracing(TraceConfig::default());
    run_jacobi_on(
        &mut m,
        JacobiCfg {
            domain: [24, 24, 24],
            chares: [2, 2, 1],
            iters: 6,
            variant: Variant::Ckd,
            real_compute: false,
        },
    );
    m
}

#[test]
fn identical_runs_export_identical_bytes() {
    let a = traced_run();
    let b = traced_run();

    let json_a = chrome_trace_json(a.tracer()).unwrap();
    let json_b = chrome_trace_json(b.tracer()).unwrap();
    assert_eq!(json_a, json_b, "chrome trace JSON must be byte-identical");

    let sum_a = text_summary(a.tracer()).unwrap();
    let sum_b = text_summary(b.tracer()).unwrap();
    assert_eq!(sum_a, sum_b, "text summary must be byte-identical");

    // metric-by-metric equality, not just formatting
    let (ma, mb) = (a.tracer().metrics().unwrap(), b.tracer().metrics().unwrap());
    for class in ProtoClass::ALL {
        let (sa, sb) = (ma.proto_stat(class), mb.proto_stat(class));
        assert_eq!(sa.count, sb.count, "{class:?} count");
        assert_eq!(sa.bytes, sb.bytes, "{class:?} bytes");
        assert_eq!(
            sa.latency_sum_ns, sb.latency_sum_ns,
            "{class:?} latency sum"
        );
    }
    assert_eq!(ma, mb, "full metrics registries must be identical");
    assert_eq!(a.tracer().dropped_total(), b.tracer().dropped_total());
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn exports_are_wellformed() {
    let m = traced_run();
    let json = chrome_trace_json(m.tracer()).unwrap();
    // Structural sanity without a JSON parser: the export is a
    // `{"traceEvents": [...]}` object with balanced delimiters.
    assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
    assert!(json.trim_end().ends_with("]}"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.contains("\"thread_name\""), "one named track per PE");

    let summary = text_summary(m.tracer()).unwrap();
    assert!(summary.contains("transfers by protocol"));
    assert!(summary.contains("rdma-put"));
    assert!(summary.contains("issue→callback completions"));
}
