//! The PDES proof obligation: sharding a run over OS threads with
//! conservative lookahead (`MachineBuilder::with_shards`) must not change a
//! single byte of any export. The sharded engine keeps the serial queue's
//! `(time, seq)` total order — one global sequence counter, per-shard heaps
//! drained in safe-window rounds, late arrivals merged through a spill heap
//! — so trace JSON, text summaries, and `{:#?}` stats are required to be
//! *identical*, not merely equivalent, across shards ∈ {1, 2, 4, 8}, for
//! all four apps on both fabrics, against the committed golden corpus, and
//! at a 512-PE scale the serial engine can still cross-check.

use ckd_apps::jacobi3d::{run_jacobi_on, JacobiCfg};
use ckd_apps::matmul3d::{run_matmul_on, MatmulCfg};
use ckd_apps::openatom::{run_openatom_on, OpenAtomCfg};
use ckd_apps::pingpong::charm_pingpong_on;
use ckd_apps::{Platform, Variant};
use ckd_charm::{chrome_trace_json, text_summary, FaultPlan, Machine, TraceConfig};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// 8 PEs: 4 nodes on the IB cluster (2 cores each), 2 nodes on the BG/P
/// and Slingshot machines (4 cores each) — every fabric genuinely
/// multi-node, so shard maps are non-trivial and events really cross
/// shard boundaries.
const PES: usize = 8;

/// All three completion disciplines the machine models: sentinel polling
/// (IB), callbacks (BG/P), and bounded-CQ notified puts (Slingshot) —
/// the last one routes `ProgressTick`-free CQ drains through the PDES
/// engine's `Footprint::local` path.
fn fabrics() -> [Platform; 3] {
    [
        Platform::IbAbe { cores_per_node: 2 },
        Platform::Bgp,
        Platform::Slingshot,
    ]
}

type Runner = fn(&mut Machine);

/// All four paper apps, scaled to smoke size (CkDirect variants: the
/// one-sided path exercises sentinel polling, callbacks, and handle
/// shipping on top of the plain message path).
fn apps() -> [(&'static str, Runner); 4] {
    [
        ("pingpong", |m: &mut Machine| {
            charm_pingpong_on(m, Variant::Ckd, 4096, 10);
        }),
        ("jacobi3d", |m: &mut Machine| {
            run_jacobi_on(
                m,
                JacobiCfg {
                    domain: [16, 16, 16],
                    chares: [2, 2, 2],
                    iters: 3,
                    variant: Variant::Ckd,
                    real_compute: false,
                },
            );
        }),
        ("matmul3d", |m: &mut Machine| {
            run_matmul_on(
                m,
                MatmulCfg {
                    n: 32,
                    grid: 2,
                    iters: 2,
                    variant: Variant::Ckd,
                    real_compute: false,
                },
            );
        }),
        ("openatom", |m: &mut Machine| {
            run_openatom_on(
                m,
                OpenAtomCfg {
                    nstates: 4,
                    nplanes: 2,
                    grain: 2,
                    pts: 64,
                    steps: 2,
                    variant: Variant::Ckd,
                    pc_only: false,
                    ready_split: true,
                },
            );
        }),
    ]
}

fn traced(platform: Platform, shards: usize, run: Runner) -> Machine {
    let mut m = platform
        .builder(PES)
        .with_tracing(TraceConfig::default())
        .with_shards(shards)
        .build();
    run(&mut m);
    m
}

/// Everything a run exports, as bytes.
fn exports(m: &Machine) -> (String, String, String) {
    (
        chrome_trace_json(m.tracer()).unwrap(),
        text_summary(m.tracer()).unwrap(),
        format!("{:#?}\n", m.stats()),
    )
}

#[test]
fn all_apps_shard_byte_identically_on_both_fabrics() {
    for platform in fabrics() {
        for (name, run) in apps() {
            let serial = traced(platform, 1, run);
            assert!(
                serial.pdes_stats().is_none(),
                "shards=1 must compile down to the serial loop"
            );
            let want = exports(&serial);
            for shards in SHARD_COUNTS {
                if shards == 1 {
                    continue;
                }
                let m = traced(platform, shards, run);
                let got = exports(&m);
                let tag = format!("{name} on {platform:?} at shards={shards}");
                assert_eq!(want.0, got.0, "{tag}: trace JSON diverged");
                assert_eq!(want.1, got.1, "{tag}: text summary diverged");
                assert_eq!(want.2, got.2, "{tag}: stats diverged");
                assert_eq!(serial.now(), m.now(), "{tag}: final time diverged");
                assert_eq!(
                    serial.direct_counters(),
                    m.direct_counters(),
                    "{tag}: CkDirect counters diverged"
                );
                let s = m.pdes_stats().expect("sharded run has engine stats");
                assert_eq!(s.shards, shards, "{tag}");
                assert!(s.rounds > 0, "{tag}: engine never started a round");
                assert_eq!(
                    s.window_spills, 0,
                    "{tag}: traffic violated the safe window"
                );
            }
        }
    }
}

// ---- the committed golden corpus ---------------------------------------
//
// `tests/golden/` is the byte-level contract of the serial scheduler,
// committed before the Machine decomposition. A sharded run must reproduce
// those files too — through the fault plane included. (This config runs 4
// PEs on one node, so all PEs share a shard: the degenerate-but-legal end
// of the shard spectrum, with every other shard idle.)

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {name}: {e}"))
}

fn golden_cfg() -> JacobiCfg {
    JacobiCfg {
        domain: [24, 24, 24],
        chares: [2, 2, 1],
        iters: 6,
        variant: Variant::Ckd,
        real_compute: false,
    }
}

#[test]
fn sharded_runs_reproduce_the_committed_golden_corpus() {
    for shards in [2, 4, 8] {
        let mut ib = Platform::IbAbe { cores_per_node: 4 }
            .builder(4)
            .with_tracing(TraceConfig::default())
            .with_shards(shards)
            .build();
        run_jacobi_on(&mut ib, golden_cfg());
        assert_eq!(
            golden("jacobi_ib.trace.json"),
            chrome_trace_json(ib.tracer()).unwrap(),
            "IB golden trace, shards={shards}"
        );
        assert_eq!(
            golden("jacobi_ib.summary.txt"),
            text_summary(ib.tracer()).unwrap(),
            "IB golden summary, shards={shards}"
        );
        assert_eq!(
            golden("jacobi_ib.stats.txt"),
            format!("{:#?}\n", ib.stats()),
            "IB golden stats, shards={shards}"
        );

        let mut bgp = Platform::Bgp
            .builder(4)
            .with_tracing(TraceConfig::default())
            .with_shards(shards)
            .build();
        run_jacobi_on(&mut bgp, golden_cfg());
        assert_eq!(
            golden("jacobi_bgp.trace.json"),
            chrome_trace_json(bgp.tracer()).unwrap(),
            "BG/P golden trace, shards={shards}"
        );
        assert_eq!(
            golden("jacobi_bgp.summary.txt"),
            text_summary(bgp.tracer()).unwrap(),
            "BG/P golden summary, shards={shards}"
        );
        assert_eq!(
            golden("jacobi_bgp.stats.txt"),
            format!("{:#?}\n", bgp.stats()),
            "BG/P golden stats, shards={shards}"
        );

        let mut ss = Platform::Slingshot
            .builder(4)
            .with_tracing(TraceConfig::default())
            .with_shards(shards)
            .build();
        run_jacobi_on(&mut ss, golden_cfg());
        assert_eq!(
            golden("jacobi_slingshot.trace.json"),
            chrome_trace_json(ss.tracer()).unwrap(),
            "Slingshot golden trace, shards={shards}"
        );
        assert_eq!(
            golden("jacobi_slingshot.summary.txt"),
            text_summary(ss.tracer()).unwrap(),
            "Slingshot golden summary, shards={shards}"
        );
        assert_eq!(
            golden("jacobi_slingshot.stats.txt"),
            format!("{:#?}\n", ss.stats()),
            "Slingshot golden stats, shards={shards}"
        );
    }
}

#[test]
fn sharded_faulty_run_reproduces_the_committed_golden_corpus() {
    let mut m = Platform::IbAbe { cores_per_node: 4 }
        .builder(4)
        .with_tracing(TraceConfig::default())
        .with_faults(FaultPlan::new(0x5EED).with_drop(0.12).with_corrupt(0.05))
        .with_shards(4)
        .build();
    run_jacobi_on(&mut m, golden_cfg());
    assert_eq!(
        golden("jacobi_ib_faulty.trace.json"),
        chrome_trace_json(m.tracer()).unwrap()
    );
    assert_eq!(
        golden("jacobi_ib_faulty.summary.txt"),
        text_summary(m.tracer()).unwrap()
    );
    assert_eq!(
        golden("jacobi_ib_faulty.stats.txt"),
        format!("{:#?}\n", m.stats())
    );
    assert_eq!(
        golden("jacobi_ib_faulty.rel.txt"),
        format!("{:#?}\n", m.rel_stats())
    );
}

// ---- scale: past the serial engine's comfort zone ----------------------

/// 512 PEs over 64 IB nodes — the scale the paper's Abe runs need and the
/// single-threaded loop was capping. The serial engine can still run it,
/// so the sharded run is cross-checked event-for-event via stats, result,
/// and final virtual time.
#[test]
fn jacobi_at_512_pes_matches_serial() {
    let cfg = JacobiCfg {
        domain: [32, 32, 32],
        chares: [8, 8, 8],
        iters: 2,
        variant: Variant::Ckd,
        real_compute: false,
    };
    let platform = Platform::IbAbe { cores_per_node: 8 };

    let mut serial = platform.builder(512).build();
    let r1 = run_jacobi_on(&mut serial, cfg);

    let mut sharded = platform.builder(512).with_shards(8).build();
    let r8 = run_jacobi_on(&mut sharded, cfg);

    assert_eq!(format!("{r1:?}"), format!("{r8:?}"), "results diverged");
    assert_eq!(serial.now(), sharded.now(), "final virtual time diverged");
    assert_eq!(
        format!("{:#?}", serial.stats()),
        format!("{:#?}", sharded.stats()),
        "stats diverged"
    );
    assert_eq!(serial.direct_counters(), sharded.direct_counters());

    let s = sharded.pdes_stats().unwrap();
    assert_eq!(s.shards, 8);
    assert!(s.rounds > 0, "no rounds at 512 PEs");
    assert!(s.cross_shard > 0, "halo exchange never crossed a shard");
    assert_eq!(s.window_spills, 0, "IB traffic violated the safe window");
}
