//! Messages and entry-method identifiers.

use std::any::Any;
use std::sync::Arc;

use bytes::Bytes;

/// Identifies an entry method of a chare. Applications define their own
/// constants (`const EP_GHOST: EntryId = EntryId(2);`) and dispatch on them
/// in [`crate::Chare::entry`] — the moral equivalent of the generated
/// dispatch tables of Charm++'s translator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryId(pub u32);

impl std::fmt::Debug for EntryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// Message contents. The runtime charges wire time for the *declared* size
/// of the message, so control payloads can ride as cheap shared values
/// without serialization while bulk data uses real byte buffers.
#[derive(Clone)]
pub enum Payload {
    /// No payload (signals, barriers).
    Empty,
    /// Bulk bytes — really transferred, really received.
    Bytes(Bytes),
    /// A typed control value (broadcast-cloneable, zero serialization).
    /// `Send + Sync` so in-flight messages can sit on another shard's event
    /// heap when a run is sharded over threads.
    Value(Arc<dyn Any + Send + Sync>),
}

impl Payload {
    /// Wrap a typed value.
    pub fn value<T: Any + Send + Sync>(v: T) -> Payload {
        Payload::Value(Arc::new(v))
    }

    /// Borrow a typed value back out; `None` on kind or type mismatch.
    pub fn downcast<T: Any>(&self) -> Option<&T> {
        match self {
            Payload::Value(rc) => rc.downcast_ref::<T>(),
            _ => None,
        }
    }

    /// The bulk bytes, if this is a bytes payload.
    pub fn bytes(&self) -> Option<&Bytes> {
        match self {
            Payload::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Empty => write!(f, "Empty"),
            Payload::Bytes(b) => write!(f, "Bytes({})", b.len()),
            Payload::Value(_) => write!(f, "Value(..)"),
        }
    }
}

/// A message: entry point, payload, and the payload size the wire model
/// charges for (the envelope is added by the runtime).
#[derive(Clone, Debug)]
pub struct Msg {
    /// Which entry method handles this message.
    pub ep: EntryId,
    /// The contents.
    pub payload: Payload,
    /// Modeled payload bytes. For [`Payload::Bytes`] this should equal the
    /// buffer length; for values it is the size the data *would* serialize
    /// to.
    pub size: usize,
}

impl Msg {
    /// An empty signal message.
    pub fn signal(ep: EntryId) -> Msg {
        Msg {
            ep,
            payload: Payload::Empty,
            size: 0,
        }
    }

    /// A bulk-bytes message (size taken from the buffer).
    pub fn bytes(ep: EntryId, b: Bytes) -> Msg {
        let size = b.len();
        Msg {
            ep,
            payload: Payload::Bytes(b),
            size,
        }
    }

    /// A typed control message with an explicitly modeled size.
    pub fn value<T: Any + Send + Sync>(ep: EntryId, v: T, modeled_size: usize) -> Msg {
        Msg {
            ep,
            payload: Payload::value(v),
            size: modeled_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_is_empty() {
        let m = Msg::signal(EntryId(3));
        assert_eq!(m.ep, EntryId(3));
        assert_eq!(m.size, 0);
        assert!(matches!(m.payload, Payload::Empty));
    }

    #[test]
    fn bytes_size_tracks_buffer() {
        let m = Msg::bytes(EntryId(0), Bytes::from(vec![0u8; 123]));
        assert_eq!(m.size, 123);
        assert_eq!(m.payload.bytes().unwrap().len(), 123);
    }

    #[test]
    fn value_roundtrip() {
        #[derive(Debug, PartialEq)]
        struct Setup {
            handle: u32,
        }
        let m = Msg::value(EntryId(1), Setup { handle: 9 }, 16);
        assert_eq!(m.size, 16);
        assert_eq!(m.payload.downcast::<Setup>().unwrap().handle, 9);
        assert!(m.payload.downcast::<u64>().is_none());
        assert!(m.payload.bytes().is_none());
    }

    #[test]
    fn payload_clone_shares_value() {
        let p = Payload::value(41u32);
        let q = p.clone();
        assert_eq!(q.downcast::<u32>(), Some(&41));
    }
}
