//! Sanitizer diagnostics: what raced, where, and which edge was missing.
//!
//! Every diagnostic names *two* events — the earlier one that established
//! the state being violated and the later one that violated it — each with
//! its PE and virtual time, plus the happens-before edge whose absence made
//! the pair a race. This is the provenance the paper's users never had: on
//! real hardware an unsynchronized put silently corrupts the receive buffer;
//! here the deterministic virtual-time schedule lets us say exactly which
//! `ready` was skipped.

use std::fmt;

use ckd_sim::Time;

/// The category of protocol violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RaceKind {
    /// A put targeted a window whose previous payload the receiver has been
    /// handed but has not released with `ready_mark` — the put would
    /// overwrite data the receiver may still be reading.
    OverwriteUnconsumed,
    /// A second put was issued while one was still on the wire.
    PutWhileInFlight,
    /// A put on a handle whose sender never called `assoc_local`.
    PutUnassociated,
    /// `assoc_local` called twice on the same handle.
    DoubleAssoc,
    /// The payload's final word equals the out-of-band pattern: arrival
    /// would be undetectable to the polling receiver.
    OobCollision,
    /// `ready` / `ready_mark` on a handle whose current payload never
    /// completed delivery (no data to release).
    ReadyNeverCompleted,
    /// `ready_poll_q` without a preceding `ready_mark`.
    PollWithoutMark,
    /// The receiver read the landing window before the completion callback
    /// delivered the payload.
    ReadBeforeCompletion,
    /// A put that the registry accepted but whose issue was causally
    /// concurrent with the receiver's re-arm: nothing ordered the receiver's
    /// `ready` before this put, so a different (legal) schedule overwrites
    /// live data. This is the paper's core hazard caught by vector clocks
    /// even when the timing happened to work out.
    UnsynchronizedPut,
    /// Operation issued from a PE the channel is not bound to.
    WrongPe,
    /// Any other rejected channel operation (bad handle, size mismatch …).
    ProtocolError,
}

impl RaceKind {
    /// Stable kebab-case name used in reports and tests.
    pub fn name(self) -> &'static str {
        match self {
            RaceKind::OverwriteUnconsumed => "overwrite-unconsumed",
            RaceKind::PutWhileInFlight => "put-while-in-flight",
            RaceKind::PutUnassociated => "put-unassociated",
            RaceKind::DoubleAssoc => "double-assoc",
            RaceKind::OobCollision => "oob-collision",
            RaceKind::ReadyNeverCompleted => "ready-never-completed",
            RaceKind::PollWithoutMark => "poll-without-mark",
            RaceKind::ReadBeforeCompletion => "read-before-completion",
            RaceKind::UnsynchronizedPut => "unsynchronized-put",
            RaceKind::WrongPe => "wrong-pe",
            RaceKind::ProtocolError => "protocol-error",
        }
    }
}

/// One of the two events a diagnostic names: what happened, where, when.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRef {
    /// PE whose scheduler executed the event.
    pub pe: usize,
    /// Virtual time of the event.
    pub at: Time,
    /// Short human label ("put", "delivery", "ready_mark" …).
    pub what: &'static str,
}

impl fmt::Display for EventRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @pe{} t={:.3}us",
            self.what,
            self.pe,
            self.at.as_us_f64()
        )
    }
}

/// One detected violation with full virtual-time provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Violation category.
    pub kind: RaceKind,
    /// The channel involved.
    pub handle: u32,
    /// The earlier event this violation races against (None when the
    /// violating call is wrong in isolation, e.g. a bad handle).
    pub first: Option<EventRef>,
    /// The violating event.
    pub second: EventRef,
    /// The happens-before edge whose absence made this a race — phrased as
    /// the fix ("receiver's ready_mark must happen-before sender's put").
    pub missing_edge: &'static str,
    /// When vector clocks were consulted: whether `first` actually
    /// happened-before `second` (true means the *state* was wrong even
    /// though the timing was ordered; false means genuinely concurrent).
    pub hb_ordered: Option<bool>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ckh{}: ", self.kind.name(), self.handle)?;
        match &self.first {
            Some(first) => write!(f, "{first} vs {}", self.second)?,
            None => write!(f, "{}", self.second)?,
        }
        write!(f, " — missing edge: {}", self.missing_edge)?;
        if let Some(ordered) = self.hb_ordered {
            let rel = if ordered { "ordered" } else { "concurrent" };
            write!(f, " [clocks: {rel}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_both_events_and_times() {
        let d = Diagnostic {
            kind: RaceKind::OverwriteUnconsumed,
            handle: 3,
            first: Some(EventRef {
                pe: 1,
                at: Time::from_us(120),
                what: "delivery",
            }),
            second: EventRef {
                pe: 0,
                at: Time::from_us(150),
                what: "put",
            },
            missing_edge: "receiver ready_mark must happen-before sender put",
            hb_ordered: Some(false),
        };
        let s = d.to_string();
        assert!(s.contains("overwrite-unconsumed"));
        assert!(s.contains("ckh3"));
        assert!(s.contains("delivery @pe1 t=120.000us"));
        assert!(s.contains("put @pe0 t=150.000us"));
        assert!(s.contains("missing edge"));
        assert!(s.contains("concurrent"));
    }

    #[test]
    fn kinds_have_stable_names() {
        assert_eq!(RaceKind::UnsynchronizedPut.name(), "unsynchronized-put");
        assert_eq!(
            RaceKind::ReadBeforeCompletion.name(),
            "read-before-completion"
        );
    }
}
