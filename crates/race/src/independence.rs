//! The independence oracle: per-event footprints and the commutation
//! predicate the model checker (`ckd-check`) prunes with.
//!
//! Two pending events *commute* when dispatching them in either order
//! reaches the same machine state: no happens-before edge can form between
//! them and they touch no common scheduler or channel resource. The
//! runtime cannot see HB edges at push time (they materialize during
//! dispatch), so the footprint encodes the static over-approximation the
//! sanitizer's dynamic clocks refine: the destination PE (every dispatch
//! mutates per-PE state: the scheduler queue, busy-time accounting, the
//! PE's vector clock) and, for CkDirect completions, the channel handle.
//!
//! Footprints travel through `ckd-sim`'s event queue as opaque `u64` tags
//! so the queue never depends on this crate; tag 0 is reserved for
//! "unknown" and conservatively conflicts with everything (plain
//! `EventQueue::push` emits it for free).

/// Encoded footprint of one pending event.
///
/// Layout: bit 63 = arrival-class (a remote delivery the PDES engine may
/// legally reorder), bits 24..=55 = channel resource + 1 (0 = none),
/// bits 0..=23 = destination PE + 1 (0 only in the reserved unknown tag).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Footprint(u64);

const ARRIVAL_BIT: u64 = 1 << 63;
const PE_MASK: u64 = (1 << 24) - 1;
const RES_SHIFT: u32 = 24;
const RES_MASK: u64 = (1 << 32) - 1;

impl Footprint {
    /// The reserved unknown footprint: conflicts with everything.
    pub const UNKNOWN: Footprint = Footprint(0);

    /// A remote delivery landing on `pe` with no channel resource
    /// (two-sided message, reduction hop, broadcast hop).
    pub fn arrival(pe: usize) -> Footprint {
        Footprint(ARRIVAL_BIT | (pe as u64 + 1) & PE_MASK)
    }

    /// A remote delivery landing on `pe` through channel `handle`
    /// (CkDirect put/get completion).
    pub fn arrival_on(pe: usize, handle: u32) -> Footprint {
        Footprint(ARRIVAL_BIT | ((handle as u64 + 1) << RES_SHIFT) | (pe as u64 + 1) & PE_MASK)
    }

    /// Local scheduler work pinned to `pe` (a `PeLoop` iteration): never a
    /// reorder alternative, but jumpable by arrivals bound elsewhere.
    pub fn local(pe: usize) -> Footprint {
        Footprint((pe as u64 + 1) & PE_MASK)
    }

    /// Decode a tag carried through the event queue.
    pub fn from_tag(tag: u64) -> Footprint {
        Footprint(tag)
    }

    /// The tag to carry through the event queue.
    pub fn tag(self) -> u64 {
        self.0
    }

    /// True for remote deliveries the commutation window may reorder.
    pub fn is_arrival(self) -> bool {
        self.0 & ARRIVAL_BIT != 0
    }

    /// Destination PE, if known.
    pub fn pe(self) -> Option<usize> {
        match self.0 & PE_MASK {
            0 => None,
            p => Some(p as usize - 1),
        }
    }

    /// Channel resource (handle id), if any.
    pub fn resource(self) -> Option<u32> {
        match (self.0 >> RES_SHIFT) & RES_MASK {
            0 => None,
            r => Some(r as u32 - 1),
        }
    }
}

/// Do two pending events commute? Conservative: unknown footprints
/// commute with nothing, same destination PE never commutes (both orders
/// mutate the same scheduler queue, busy accounting, and vector clock),
/// and a shared channel resource never commutes regardless of PE.
pub fn commutes(a: Footprint, b: Footprint) -> bool {
    if a.0 == 0 || b.0 == 0 {
        return false;
    }
    if a.pe() == b.pe() {
        return false;
    }
    match (a.resource(), b.resource()) {
        (Some(x), Some(y)) => x != y,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_tags() {
        for f in [
            Footprint::arrival(0),
            Footprint::arrival(7),
            Footprint::arrival_on(3, 0),
            Footprint::arrival_on(3, 41),
            Footprint::local(2),
        ] {
            assert_eq!(Footprint::from_tag(f.tag()), f);
        }
        assert_eq!(Footprint::arrival(5).pe(), Some(5));
        assert!(Footprint::arrival(5).is_arrival());
        assert_eq!(Footprint::arrival(5).resource(), None);
        assert_eq!(Footprint::arrival_on(5, 9).resource(), Some(9));
        assert!(!Footprint::local(5).is_arrival());
        assert_eq!(Footprint::local(5).pe(), Some(5));
    }

    #[test]
    fn unknown_conflicts_with_everything() {
        assert!(!commutes(Footprint::UNKNOWN, Footprint::arrival(1)));
        assert!(!commutes(Footprint::arrival(1), Footprint::UNKNOWN));
        assert!(!commutes(Footprint::UNKNOWN, Footprint::UNKNOWN));
    }

    #[test]
    fn same_pe_never_commutes() {
        assert!(!commutes(Footprint::arrival(2), Footprint::arrival(2)));
        assert!(!commutes(Footprint::arrival(2), Footprint::local(2)));
        assert!(!commutes(
            Footprint::arrival_on(2, 1),
            Footprint::arrival(2)
        ));
    }

    #[test]
    fn distinct_pes_commute_unless_a_channel_is_shared() {
        assert!(commutes(Footprint::arrival(1), Footprint::arrival(2)));
        assert!(commutes(Footprint::arrival(1), Footprint::local(2)));
        assert!(commutes(
            Footprint::arrival_on(1, 7),
            Footprint::arrival_on(2, 8)
        ));
        assert!(!commutes(
            Footprint::arrival_on(1, 7),
            Footprint::arrival_on(2, 7)
        ));
    }
}
