//! The deprecated `enable_*` shims must keep delegating to the same
//! machinery [`Machine::builder`] installs: for every shim, a machine
//! configured through it is indistinguishable — stats, layer outputs,
//! final virtual time — from its builder-built twin running the same
//! program.

#![allow(deprecated)]

use bytes::Bytes;
use ckd_charm::{
    text_summary, Chare, ChareRef, Ctx, EntryId, FaultPlan, LearnConfig, Machine, Msg, RetryPolicy,
    RtsConfig, TraceConfig,
};
use ckd_net::presets;
use ckd_race::SanitizerConfig;
use ckd_sim::Time;
use ckd_topo::{Dims, Idx, Machine as Topo, Mapper};

const EP_START: EntryId = EntryId(0);
const EP_PING: EntryId = EntryId(1);
const EP_DATA: EntryId = EntryId(2);
const EP_ACK: EntryId = EntryId(3);

fn ib_net() -> ckd_net::NetModel {
    presets::ib_abe(Topo::ib_cluster(4, 1))
}

// ---- a small cross-node workload every test reuses ----------------------

struct Bouncer {
    peer_lin: usize,
    limit: u32,
}

impl Chare for Bouncer {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let peer = ctx.element(ctx.me().array, Idx::i1(self.peer_lin));
        match msg.ep {
            EP_START => ctx.send(peer, Msg::value(EP_PING, 1u32, 256)),
            EP_PING => {
                let hop = *msg.payload.downcast::<u32>().unwrap();
                if hop < self.limit {
                    ctx.send(peer, Msg::value(EP_PING, hop + 1, 256));
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

fn run_bounce(m: &mut Machine) -> Time {
    let arr = m.create_array("bounce", Dims::d1(2), Mapper::RoundRobin, |idx| {
        Box::new(Bouncer {
            peer_lin: 1 - idx.at(0),
            limit: 24,
        }) as Box<dyn Chare>
    });
    m.seed(m.element(arr, Idx::i1(0)), Msg::signal(EP_START));
    m.run()
}

// ---- enable_tracing ------------------------------------------------------

#[test]
fn enable_tracing_matches_builder_tracing() {
    let mut shim = Machine::with_matching_backend(ib_net(), RtsConfig::ib_abe());
    shim.enable_tracing(TraceConfig::default());
    let t_shim = run_bounce(&mut shim);

    let mut built = Machine::builder(ib_net())
        .with_tracing(TraceConfig::default())
        .build();
    let t_built = run_bounce(&mut built);

    assert_eq!(t_shim, t_built);
    assert_eq!(shim.stats(), built.stats());
    let (s, b) = (
        text_summary(shim.tracer()).expect("shim tracing on"),
        text_summary(built.tracer()).expect("builder tracing on"),
    );
    assert_eq!(s, b, "trace exports must be byte-identical");
}

// ---- enable_sanitizer ----------------------------------------------------

#[test]
fn enable_sanitizer_matches_builder_sanitizer() {
    let mut shim = Machine::with_matching_backend(ib_net(), RtsConfig::ib_abe());
    shim.enable_sanitizer(SanitizerConfig::default());
    let t_shim = run_bounce(&mut shim);

    let mut built = Machine::builder(ib_net())
        .with_sanitizer(SanitizerConfig::default())
        .build();
    let t_built = run_bounce(&mut built);

    assert_eq!(t_shim, t_built);
    assert_eq!(shim.stats(), built.stats());
    assert!(shim.sanitizer().is_enabled());
    assert_eq!(
        shim.sanitizer().report(),
        built.sanitizer().report(),
        "sanitizer diagnostics must match"
    );
}

// ---- enable_faults / enable_faults_with ---------------------------------

#[test]
fn enable_faults_matches_builder_faults() {
    let plan = || FaultPlan::new(0xBEEF).with_drop(0.25);

    let mut shim = Machine::with_matching_backend(ib_net(), RtsConfig::ib_abe());
    shim.enable_faults(plan());
    let t_shim = run_bounce(&mut shim);

    let mut built = Machine::builder(ib_net()).with_faults(plan()).build();
    let t_built = run_bounce(&mut built);

    assert_eq!(t_shim, t_built);
    assert_eq!(shim.stats(), built.stats());
    assert_eq!(shim.rel_stats(), built.rel_stats());
    assert!(shim.rel_stats().retries > 0, "plan never bit");
}

#[test]
fn enable_faults_with_matches_builder_faults_policy() {
    let plan = || FaultPlan::new(7).with_drop(0.2);
    let policy = || RetryPolicy::default();

    let mut shim = Machine::with_matching_backend(ib_net(), RtsConfig::ib_abe());
    shim.enable_faults_with(plan(), policy(), 2);
    let t_shim = run_bounce(&mut shim);

    let mut built = Machine::builder(ib_net())
        .with_faults_policy(plan(), policy(), 2)
        .build();
    let t_built = run_bounce(&mut built);

    assert_eq!(t_shim, t_built);
    assert_eq!(shim.rel_stats(), built.rel_stats());
}

// ---- enable_learning -----------------------------------------------------

struct Producer {
    consumer: Option<ChareRef>,
    round: u32,
}

impl Chare for Producer {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                self.consumer = Some(*msg.payload.downcast::<ChareRef>().unwrap());
                self.fire(ctx);
            }
            EP_ACK => {
                if self.round < 12 {
                    self.fire(ctx);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

impl Producer {
    fn fire(&mut self, ctx: &mut Ctx<'_>) {
        self.round += 1;
        let mut payload = vec![0u8; 1024];
        payload[..8].copy_from_slice(&(self.round as u64).to_le_bytes());
        let consumer = self.consumer.unwrap();
        ctx.send_learned(consumer, Msg::bytes(EP_DATA, Bytes::from(payload)));
    }
}

struct Consumer {
    producer: Option<ChareRef>,
}

impl Chare for Consumer {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => self.producer = Some(*msg.payload.downcast::<ChareRef>().unwrap()),
            EP_DATA => {
                let producer = self.producer.unwrap();
                ctx.send(producer, Msg::signal(EP_ACK));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

fn run_learned(m: &mut Machine) -> Time {
    let prod = m.create_array("prod", Dims::d1(1), Mapper::Block, |_| {
        Box::new(Producer {
            consumer: None,
            round: 0,
        }) as Box<dyn Chare>
    });
    let npes = m.npes();
    let cons = m.create_array("cons", Dims::d1(npes), Mapper::Block, |_| {
        Box::new(Consumer { producer: None }) as Box<dyn Chare>
    });
    let p = m.element(prod, Idx::i1(0));
    let c = m.element(cons, Idx::i1(npes - 1));
    m.seed(p, Msg::value(EP_START, c, 8));
    m.seed(c, Msg::value(EP_START, p, 8));
    m.run()
}

#[test]
fn enable_learning_matches_builder_learning() {
    let mut shim = Machine::with_matching_backend(ib_net(), RtsConfig::ib_abe());
    shim.enable_learning(LearnConfig { threshold: 3 });
    let t_shim = run_learned(&mut shim);

    let mut built = Machine::builder(ib_net())
        .with_learning(LearnConfig { threshold: 3 })
        .build();
    let t_built = run_learned(&mut built);

    assert_eq!(t_shim, t_built);
    assert_eq!(shim.stats(), built.stats());
    assert_eq!(shim.learning_totals(), built.learning_totals());
    assert!(shim.learning_totals().installed > 0, "never learned");
    assert!(shim.learning_totals().hits > 0, "channel never used");
}
