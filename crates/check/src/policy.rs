//! The scripted reorder policy the explorer drives.
//!
//! A [`ScriptedPolicy`] is installed on a machine's event queue via
//! [`ckd_charm::MachineBuilder::with_checker`]. Every time the queue pops
//! with more than one event inside the commutation window, the policy
//! records the candidate set as a [`Decision`] and answers with whatever
//! the **prescription** dictates for that decision index (default: `0`,
//! the canonical min-heap head). The simulation is deterministic, so two
//! runs with the same prescription replay the same decision sequence —
//! which is what lets the explorer branch one decision at a time and lets
//! a counterexample be replayed exactly.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use ckd_sim::{EventMeta, ReorderPolicy, Time};

/// One scheduling choice point: the in-window candidates the queue offered,
/// sorted by canonical order (`cands[0]` is the min-heap head).
#[derive(Clone, Debug)]
pub struct Decision {
    /// The candidate events (timestamp, sequence number, independence
    /// footprint tag) in canonical order.
    pub cands: Vec<EventMeta>,
}

/// Decision index → candidate index to pick instead of the canonical `0`.
pub type Prescription = BTreeMap<usize, usize>;

/// The shared record of a run's choice points, plus the prescription that
/// steered it.
#[derive(Clone, Debug, Default)]
pub struct ScheduleTrace {
    /// Every choice point the run hit, in order.
    pub decisions: Vec<Decision>,
    /// Overrides applied at specific decision indices.
    pub prescription: Prescription,
}

impl ScheduleTrace {
    /// A trace that will steer the run by `prescription`.
    pub fn scripted(prescription: Prescription) -> Rc<RefCell<ScheduleTrace>> {
        Rc::new(RefCell::new(ScheduleTrace {
            decisions: Vec::new(),
            prescription,
        }))
    }
}

/// A [`ReorderPolicy`] that records every choice point into a shared
/// [`ScheduleTrace`] and follows the trace's prescription.
pub struct ScriptedPolicy {
    window: Time,
    trace: Rc<RefCell<ScheduleTrace>>,
}

impl ScriptedPolicy {
    /// A policy reordering within `window` and steered by `trace`.
    pub fn new(window: Time, trace: Rc<RefCell<ScheduleTrace>>) -> ScriptedPolicy {
        ScriptedPolicy { window, trace }
    }
}

impl ReorderPolicy for ScriptedPolicy {
    fn window(&self) -> Time {
        self.window
    }

    fn choose(&mut self, cands: &[EventMeta]) -> usize {
        let mut t = self.trace.borrow_mut();
        let idx = t.decisions.len();
        t.decisions.push(Decision {
            cands: cands.to_vec(),
        });
        t.prescription.get(&idx).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(seq: u64, tag: u64) -> EventMeta {
        EventMeta {
            seq,
            at: Time::ZERO,
            tag,
        }
    }

    #[test]
    fn scripted_policy_records_and_follows_the_prescription() {
        let trace = ScheduleTrace::scripted(Prescription::from([(1, 2)]));
        let mut p = ScriptedPolicy::new(Time::from_ns(1), Rc::clone(&trace));
        assert_eq!(p.choose(&[meta(0, 1), meta(1, 2)]), 0);
        assert_eq!(p.choose(&[meta(2, 1), meta(3, 2), meta(4, 3)]), 2);
        assert_eq!(p.choose(&[meta(5, 1), meta(6, 2)]), 0);
        let t = trace.borrow();
        assert_eq!(t.decisions.len(), 3);
        assert_eq!(t.decisions[1].cands.len(), 3);
        assert_eq!(t.decisions[2].cands[1].seq, 6);
    }
}
