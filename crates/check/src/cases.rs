//! The concrete check cases: the four paper applications (expected to
//! certify) and the schedule-dependent mutant (expected to yield a
//! counterexample).
//!
//! Each case builds a small machine with the sanitizer *and* a
//! [`ScriptedPolicy`] installed, runs the application once under a given
//! prescription, and reduces the run to an [`Outcome`]:
//!
//! * the machine's deterministic counters (`msgs_sent`, `puts`, byte
//!   totals, reductions, protocol breakdown — **not** `events`, which
//!   counts scheduler self-ticks and legitimately varies with poll
//!   interleaving, and not virtual times, which a lookahead window
//!   legitimately shifts);
//! * the application's own integral results (iterations completed,
//!   residual bits, lossy-put count, protocol counters);
//! * sanitizer cleanliness.
//!
//! Matmul runs with `real_compute: false`: its block accumulation order
//! is arrival-driven, so reordered-but-equivalent schedules may change
//! floating-point summation order. The count digest still certifies the
//! communication protocol; Jacobi keeps `real_compute: true` because its
//! residual is computed from fully-landed halos and a max-reduction, both
//! order-independent.

use std::rc::Rc;

use ckd_apps::common::{Platform, Variant};
use ckd_apps::jacobi3d::{run_jacobi_on, JacobiCfg};
use ckd_apps::matmul3d::{run_matmul_on, MatmulCfg};
use ckd_apps::mutants::{mutant_digest, mutant_platform, run_mutant_on, MutantKind};
use ckd_apps::openatom::{run_openatom_on, OpenAtomCfg};
use ckd_apps::pingpong::charm_pingpong_on;
use ckd_charm::Machine;
use ckd_race::SanitizerConfig;
use ckd_sim::Time;

use crate::explore::{explore, Exploration, Outcome};
use crate::policy::{Decision, Prescription, ScheduleTrace, ScriptedPolicy};

/// One checkable workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckCase {
    /// CkDirect pingpong, 1 KiB × 3 exchanges.
    Pingpong,
    /// 8³ Jacobi over a 2×2×1 chare grid, 2 iterations, real arithmetic.
    Jacobi,
    /// 16×16 matmul over a 2³ chare grid, 1 iteration, modeled compute.
    Matmul,
    /// 4-state / 2-plane OpenAtom step.
    OpenAtom,
    /// The `schedule_dependent_pingpong` mutant — the case the checker
    /// must *fail*.
    SchedMutant,
}

impl CheckCase {
    /// The four applications the certificate covers.
    pub const APPS: [CheckCase; 4] = [
        CheckCase::Pingpong,
        CheckCase::Jacobi,
        CheckCase::Matmul,
        CheckCase::OpenAtom,
    ];

    /// Stable name used in reports and the certificate.
    pub fn name(self) -> &'static str {
        match self {
            CheckCase::Pingpong => "pingpong",
            CheckCase::Jacobi => "jacobi3d",
            CheckCase::Matmul => "matmul3d",
            CheckCase::OpenAtom => "openatom",
            CheckCase::SchedMutant => "schedule_dependent_pingpong",
        }
    }

    /// PEs the case runs on.
    pub fn pes(self) -> usize {
        match self {
            CheckCase::SchedMutant => 4,
            _ => 8,
        }
    }

    /// Execute the case once under `prescription`, reordering within
    /// `window`.
    pub fn run_once(self, window: Time, prescription: &Prescription) -> (Outcome, Vec<Decision>) {
        let trace = ScheduleTrace::scripted(prescription.clone());
        let policy = ScriptedPolicy::new(window, Rc::clone(&trace));
        let platform = match self {
            CheckCase::SchedMutant => mutant_platform(),
            _ => Platform::IbAbe { cores_per_node: 2 },
        };
        let mut m = platform
            .builder(self.pes())
            .with_sanitizer(SanitizerConfig::default())
            .with_checker(Box::new(policy))
            .build();
        let app = self.drive(&mut m);
        let out = outcome_of(&m, app);
        let decisions = trace.borrow().decisions.clone();
        (out, decisions)
    }

    /// Run the workload on a prepared machine, returning the app-level
    /// digest fragment.
    fn drive(self, m: &mut Machine) -> String {
        match self {
            CheckCase::Pingpong => {
                let r = charm_pingpong_on(m, Variant::Ckd, 1024, 3);
                format!("iters={} lossy={}", r.iters, r.lossy_puts)
            }
            CheckCase::Jacobi => {
                let r = run_jacobi_on(
                    m,
                    JacobiCfg {
                        domain: [8, 8, 8],
                        chares: [2, 2, 1],
                        iters: 2,
                        variant: Variant::Ckd,
                        real_compute: true,
                    },
                );
                format!(
                    "iters={} residual={:#018x} lossy={}",
                    r.iters,
                    r.residual.to_bits(),
                    r.lossy_puts
                )
            }
            CheckCase::Matmul => {
                let r = run_matmul_on(
                    m,
                    MatmulCfg {
                        n: 16,
                        grid: 2,
                        iters: 1,
                        variant: Variant::Ckd,
                        real_compute: false,
                    },
                );
                format!("iters={} lossy={}", r.iters, r.lossy_puts)
            }
            CheckCase::OpenAtom => {
                let r = run_openatom_on(
                    m,
                    OpenAtomCfg {
                        nstates: 4,
                        nplanes: 2,
                        grain: 2,
                        pts: 16,
                        steps: 1,
                        variant: Variant::Ckd,
                        pc_only: false,
                        ready_split: false,
                    },
                );
                format!("steps={} lossy={}", r.steps, r.lossy_puts)
            }
            CheckCase::SchedMutant => {
                run_mutant_on(m, MutantKind::SchedDependentPingpong);
                mutant_digest(m, MutantKind::SchedDependentPingpong)
            }
        }
    }

    /// Explore this case's schedule space.
    pub fn explore(self, window: Time, budget: u64) -> Exploration {
        explore(
            &mut |presc: &Prescription| self.run_once(window, presc),
            budget,
        )
    }
}

/// Reduce a finished machine (plus the app digest fragment) to the
/// schedule-independence observation.
fn outcome_of(m: &Machine, app: String) -> Outcome {
    let s = m.stats();
    let digest = format!(
        "msgs={} msgb={} puts={} putb={} red={} proto={:?} | {}",
        s.msgs_sent, s.msg_bytes, s.puts, s.put_bytes, s.reductions, s.proto, app
    );
    Outcome {
        clean: m.sanitizer().is_clean(),
        report: m.sanitizer().report(),
        digest,
    }
}
