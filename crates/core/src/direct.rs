//! A real multi-thread CkDirect channel: unsynchronized one-sided puts with
//! out-of-band sentinel detection, expressed soundly in Rust atomics.
//!
//! This is the wall-clock counterpart of the simulated registry. The
//! mechanism is the paper's Infiniband implementation translated to shared
//! memory:
//!
//! * the receiver owns a fixed-size buffer and **arms** it by writing the
//!   out-of-band pattern into its final word;
//! * a put writes the payload directly into the receiver's buffer — the
//!   final payload word, which overwrites the pattern, is stored **last**
//!   with `Release` ordering, exactly as an in-order RDMA write delivers its
//!   last byte last;
//! * the receiver polls the final word with `Acquire` loads; the moment it
//!   differs from the pattern, every earlier payload word is visible.
//!
//! There is no lock, no queue, and no scheduler hand-off on the data path —
//! the only synchronization is the release/acquire pair on the sentinel
//! word, mirroring "the application's own synchronization is sufficient".
//!
//! The buffer is a `[AtomicU64]`, so the sentinel genuinely *overlaps the
//! data* like the paper's trick (no separate flag word), while every access
//! remains a data-race-free atomic operation. Non-sentinel words use
//! `Relaxed` ordering: they are ordered by the final `Release`/`Acquire`
//! pair, not by their own accesses.
//!
//! Misuse the paper leaves to the user is *checked* here: a second put
//! before the receiver re-arms returns [`PutError::WouldOverwrite`] (via a
//! generation counter), and a payload ending in the pattern returns
//! [`PutError::OobCollision`] instead of vanishing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors a [`DirectSender::put`] can report instead of corrupting data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PutError {
    /// Payload length differs from the channel's fixed size.
    SizeMismatch,
    /// The receiver has not re-armed since the previous put; writing now
    /// would overwrite data it may still be reading.
    WouldOverwrite,
    /// The payload's final word equals the out-of-band pattern; the
    /// receiver could never detect its arrival.
    OobCollision,
}

impl std::fmt::Display for PutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PutError::SizeMismatch => "payload size differs from channel size",
            PutError::WouldOverwrite => "receiver has not re-armed the channel",
            PutError::OobCollision => "payload ends with the out-of-band pattern",
        };
        f.write_str(s)
    }
}

impl std::error::Error for PutError {}

struct Shared {
    /// The receive buffer, including the sentinel in its final word.
    words: Box<[AtomicU64]>,
    /// The out-of-band pattern.
    oob: u64,
    /// Number of `arm` calls the receiver has performed (monotone).
    /// Published with `Release` by the receiver; the sender `Acquire`-reads
    /// it to know the buffer is writable again.
    armed_gen: AtomicU64,
}

/// Lifetime counters of one side of a real-thread channel (observability;
/// counted locally, never shared between threads).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SideStats {
    /// Successful puts (sender) or detected arrivals (receiver).
    pub completed: u64,
    /// Rejected puts (sender) or empty polls (receiver) — the per-operation
    /// overhead a trace wants to see.
    pub attempts: u64,
}

/// The sender half: issues one-sided puts into the receiver's buffer.
pub struct DirectSender {
    shared: Arc<Shared>,
    /// Generation of the last put this sender issued.
    put_gen: u64,
    stats: SideStats,
}

/// The receiver half: owns the buffer, arms it, and polls for arrivals.
pub struct DirectReceiver {
    shared: Arc<Shared>,
    /// Generations this receiver has armed.
    armed: u64,
    /// True between a detected arrival and the next `arm`.
    holding_data: bool,
    stats: SideStats,
}

/// Create a channel moving fixed-size messages of `size` bytes (must be a
/// positive multiple of 8), using `oob` as the never-in-data pattern.
///
/// The receiver starts **armed**: the first put may be issued immediately —
/// there is no handshake, matching `CkDirect_createHandle`'s behaviour of
/// arming at creation.
pub fn channel(size: usize, oob: u64) -> (DirectSender, DirectReceiver) {
    assert!(size >= 8, "channel needs at least the 8-byte sentinel");
    assert_eq!(size % 8, 0, "channel size must be a multiple of 8");
    let nwords = size / 8;
    let words: Box<[AtomicU64]> = (0..nwords).map(|_| AtomicU64::new(0)).collect();
    // arm generation 1 up front
    words[nwords - 1].store(oob, Ordering::Relaxed);
    let shared = Arc::new(Shared {
        words,
        oob,
        armed_gen: AtomicU64::new(1),
    });
    (
        DirectSender {
            shared: shared.clone(),
            put_gen: 0,
            stats: SideStats::default(),
        },
        DirectReceiver {
            shared,
            armed: 1,
            holding_data: false,
            stats: SideStats::default(),
        },
    )
}

impl DirectSender {
    /// Message size in bytes.
    pub fn size(&self) -> usize {
        self.shared.words.len() * 8
    }

    /// One-sided put: write `payload` into the receiver's buffer and
    /// publish it by overwriting the sentinel word last.
    ///
    /// Returns without blocking; the receiver discovers the data by
    /// polling. No allocation, no locks, one `Release` store.
    pub fn put(&mut self, payload: &[u8]) -> Result<(), PutError> {
        self.stats.attempts += 1;
        let words = &self.shared.words;
        if payload.len() != words.len() * 8 {
            return Err(PutError::SizeMismatch);
        }
        let last = u64::from_le_bytes(payload[payload.len() - 8..].try_into().unwrap());
        if last == self.shared.oob {
            return Err(PutError::OobCollision);
        }
        // The receiver publishes `armed_gen = n` after re-arming; seeing it
        // (Acquire) guarantees the receiver is done reading generation n-1.
        let armed = self.shared.armed_gen.load(Ordering::Acquire);
        if armed <= self.put_gen {
            return Err(PutError::WouldOverwrite);
        }
        self.put_gen = armed;
        let n = words.len();
        for (i, chunk) in payload[..payload.len() - 8].chunks_exact(8).enumerate() {
            let w = u64::from_le_bytes(chunk.try_into().unwrap());
            words[i].store(w, Ordering::Relaxed);
        }
        // Publish: the final payload word replaces the sentinel. Release
        // makes every earlier Relaxed store visible to the Acquire poller.
        words[n - 1].store(last, Ordering::Release);
        self.stats.completed += 1;
        Ok(())
    }

    /// Put attempts and successes so far (observability).
    pub fn stats(&self) -> SideStats {
        self.stats
    }

    /// Whether the receiver has re-armed since this sender's last put —
    /// i.e. whether `put` would currently succeed. (Peeking, not reserving.)
    pub fn receiver_ready(&self) -> bool {
        self.shared.armed_gen.load(Ordering::Acquire) > self.put_gen
    }
}

impl DirectReceiver {
    /// Message size in bytes.
    pub fn size(&self) -> usize {
        self.shared.words.len() * 8
    }

    /// Poll once: if a put has landed since the last `arm`, copy the
    /// message out and return it.
    ///
    /// One `Acquire` load on the empty path — this is the per-handle cost
    /// the paper's polling queue pays every scheduler iteration.
    pub fn try_recv(&mut self) -> Option<Vec<u8>> {
        if self.holding_data {
            return None; // already delivered; must arm before the next one
        }
        self.stats.attempts += 1;
        let words = &self.shared.words;
        let n = words.len();
        let last = words[n - 1].load(Ordering::Acquire);
        if last == self.shared.oob {
            return None;
        }
        self.holding_data = true;
        self.stats.completed += 1;
        let mut out = vec![0u8; n * 8];
        for i in 0..n - 1 {
            let w = words[i].load(Ordering::Relaxed);
            out[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        out[(n - 1) * 8..].copy_from_slice(&last.to_le_bytes());
        Some(out)
    }

    /// Poll without copying: returns `true` when data has landed, after
    /// which [`DirectReceiver::with_data`] grants in-place access.
    pub fn poll(&mut self) -> bool {
        if self.holding_data {
            return true;
        }
        self.stats.attempts += 1;
        let n = self.shared.words.len();
        if self.shared.words[n - 1].load(Ordering::Acquire) != self.shared.oob {
            self.holding_data = true;
            self.stats.completed += 1;
            true
        } else {
            false
        }
    }

    /// Sentinel checks and detected arrivals so far (observability).
    pub fn stats(&self) -> SideStats {
        self.stats
    }

    /// Read the landed message in place (zero copy). Panics unless
    /// [`DirectReceiver::poll`] (or `try_recv`) has signalled arrival — the
    /// release/acquire pair plus the generation protocol guarantee the
    /// sender is not writing concurrently.
    pub fn with_data<R>(&mut self, f: impl FnOnce(WordView<'_>) -> R) -> R {
        assert!(
            self.holding_data,
            "with_data before poll() observed an arrival"
        );
        f(WordView {
            words: &self.shared.words,
        })
    }

    /// Spin until a message lands, then return it (micro-benchmarks and
    /// tests; production code polls from its scheduler loop instead).
    pub fn recv_spin(&mut self) -> Vec<u8> {
        loop {
            if let Some(m) = self.try_recv() {
                return m;
            }
            std::hint::spin_loop();
        }
    }

    /// Re-arm the channel: write the pattern back into the sentinel word
    /// and publish readiness to the sender. The receiver must be done with
    /// the data; the equivalent of `CkDirect_ready`.
    pub fn arm(&mut self) {
        let n = self.shared.words.len();
        // Relaxed is fine for the sentinel itself: the Release below on
        // armed_gen orders it before the sender's next Acquire.
        self.shared.words[n - 1].store(self.shared.oob, Ordering::Relaxed);
        self.armed += 1;
        self.holding_data = false;
        self.shared.armed_gen.store(self.armed, Ordering::Release);
    }

    /// Number of times this channel has been armed.
    pub fn generation(&self) -> u64 {
        self.armed
    }
}

/// CRC32 (IEEE 802.3, reflected) over `data` — the checksum folded into a
/// checked channel's protocol word. Table-free bitwise form: this runs once
/// per put on buffers that are small by RDMA standards, and keeping it
/// dependency-free matters more than throughput here.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// What one checked poll observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckedRecv {
    /// Nothing has landed; the channel is still armed.
    Empty,
    /// A fresh, intact message (the receiver must [`CheckedReceiver::arm`]
    /// before the next put, exactly like the unchecked channel).
    Data(Vec<u8>),
    /// The landing failed its CRC (bit-flip or torn write): the payload was
    /// discarded and the channel **re-armed itself** so the sender's
    /// retransmission can land. Counted once per damaged landing.
    Corrupt,
    /// A replay of an already-consumed sequence number: suppressed and the
    /// channel re-armed itself. Counted once per duplicate landing.
    Duplicate,
}

/// Receiver-side counters of the checked channel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckedStats {
    /// Fresh messages delivered.
    pub delivered: u64,
    /// Landings rejected by the CRC (corrupted or torn).
    pub corrupt_detected: u64,
    /// Landings suppressed as duplicate sequence numbers.
    pub dups_suppressed: u64,
}

/// Sender half of a checked channel: like [`DirectSender`] but every put
/// carries `(seq, crc)` in a protocol word published last, and the fault
/// hooks let tests damage a put the way a faulty fabric would.
pub struct CheckedSender {
    shared: Arc<Shared>,
    put_gen: u64,
    /// Sequence number of the last logical put (replays keep it).
    seq: u32,
    /// Last payload, kept so [`CheckedSender::put_duplicate`] can replay it.
    last_payload: Vec<u8>,
}

/// Receiver half of a checked channel.
pub struct CheckedReceiver {
    shared: Arc<Shared>,
    armed: u64,
    holding_data: bool,
    /// Highest sequence number consumed.
    last_seq: u32,
    stats: CheckedStats,
}

/// Create a *checked* channel moving fixed-size messages of `size` payload
/// bytes. The wire image is one word longer than the payload: the final
/// word is the protocol word `(seq << 32) | crc32(payload)`, doing double
/// duty as the out-of-band sentinel (armed == it holds `oob`). This is the
/// "CRC folded into the sentinel" layout: arrival detection, integrity and
/// replay filtering all ride on the one word that is written last.
pub fn channel_checked(size: usize, oob: u64) -> (CheckedSender, CheckedReceiver) {
    assert!(size >= 8, "channel needs at least one payload word");
    assert_eq!(size % 8, 0, "channel size must be a multiple of 8");
    let nwords = size / 8 + 1; // payload + protocol word
    let words: Box<[AtomicU64]> = (0..nwords).map(|_| AtomicU64::new(0)).collect();
    words[nwords - 1].store(oob, Ordering::Relaxed);
    let shared = Arc::new(Shared {
        words,
        oob,
        armed_gen: AtomicU64::new(1),
    });
    (
        CheckedSender {
            shared: shared.clone(),
            put_gen: 0,
            seq: 0,
            last_payload: Vec::new(),
        },
        CheckedReceiver {
            shared,
            armed: 1,
            holding_data: false,
            last_seq: 0,
            stats: CheckedStats::default(),
        },
    )
}

impl CheckedSender {
    /// Payload size in bytes (the wire image adds one protocol word).
    pub fn size(&self) -> usize {
        (self.shared.words.len() - 1) * 8
    }

    fn claim_arming(&mut self) -> Result<(), PutError> {
        let armed = self.shared.armed_gen.load(Ordering::Acquire);
        if armed <= self.put_gen {
            return Err(PutError::WouldOverwrite);
        }
        self.put_gen = armed;
        Ok(())
    }

    /// Store payload words (optionally skipping `skip` to model a torn
    /// write), then publish `proto` as the protocol word.
    fn store(&self, payload: &[u8], skip: Option<usize>, proto: u64) {
        let words = &self.shared.words;
        for (i, chunk) in payload.chunks_exact(8).enumerate() {
            if skip == Some(i) {
                continue;
            }
            let w = u64::from_le_bytes(chunk.try_into().unwrap());
            words[i].store(w, Ordering::Relaxed);
        }
        words[words.len() - 1].store(proto, Ordering::Release);
    }

    fn proto_word(&self, seq: u32, payload: &[u8]) -> Result<u64, PutError> {
        let proto = (u64::from(seq) << 32) | u64::from(crc32(payload));
        // The protocol word is the sentinel; a put whose (seq, crc) happens
        // to equal the pattern would be undetectable, same pathology as the
        // unchecked channel's OobCollision.
        if proto == self.shared.oob {
            return Err(PutError::OobCollision);
        }
        Ok(proto)
    }

    /// A clean put: next sequence number, correct CRC.
    pub fn put(&mut self, payload: &[u8]) -> Result<(), PutError> {
        if payload.len() != self.size() {
            return Err(PutError::SizeMismatch);
        }
        let proto = self.proto_word(self.seq + 1, payload)?;
        self.claim_arming()?;
        self.seq += 1;
        self.last_payload = payload.to_vec();
        self.store(payload, None, proto);
        Ok(())
    }

    /// Fault hook: the fabric flips bits in payload word `damage_word`
    /// in flight. The CRC was computed over the intended payload, so the
    /// receiver's check fails and the landing is discarded. Pass the index
    /// one past the payload (`size()/8`) to damage the protocol word
    /// itself — the "corrupted last 8 bytes" case.
    pub fn put_corrupted(&mut self, payload: &[u8], damage_word: usize) -> Result<(), PutError> {
        if payload.len() != self.size() {
            return Err(PutError::SizeMismatch);
        }
        let npayload = payload.len() / 8;
        assert!(damage_word <= npayload, "damage_word out of range");
        let mut proto = self.proto_word(self.seq + 1, payload)?;
        self.claim_arming()?;
        self.seq += 1;
        self.last_payload = payload.to_vec();
        if damage_word == npayload {
            proto ^= 1; // damaged CRC field; still != oob in practice
            self.store(payload, None, proto);
        } else {
            let mut damaged = payload.to_vec();
            damaged[damage_word * 8] ^= 0x01;
            self.store(&damaged, None, proto);
        }
        Ok(())
    }

    /// Fault hook: a torn write — the protocol word lands but payload word
    /// `missing_word` never does (stale contents remain). Real RDMA
    /// completes in order; a faulty or replayed transfer may not.
    pub fn put_torn(&mut self, payload: &[u8], missing_word: usize) -> Result<(), PutError> {
        if payload.len() != self.size() {
            return Err(PutError::SizeMismatch);
        }
        assert!(
            missing_word < payload.len() / 8,
            "missing_word out of range"
        );
        let proto = self.proto_word(self.seq + 1, payload)?;
        self.claim_arming()?;
        self.seq += 1;
        self.last_payload = payload.to_vec();
        self.store(payload, Some(missing_word), proto);
        Ok(())
    }

    /// Fault hook: the fabric replays the last put (same payload, same
    /// sequence number) after the receiver re-armed. The receiver's seqno
    /// filter must suppress it.
    pub fn put_duplicate(&mut self) -> Result<(), PutError> {
        assert!(self.seq > 0, "nothing to replay yet");
        // no early return may consume the payload: a rejected replay must
        // leave the sender able to try again
        let proto = self.proto_word(self.seq, &self.last_payload)?;
        self.claim_arming()?;
        let payload = std::mem::take(&mut self.last_payload);
        self.store(&payload, None, proto);
        self.last_payload = payload;
        Ok(())
    }

    /// Retransmit the last put unchanged (same seq, correct CRC) — what a
    /// sender does after a corrupt/torn landing re-armed the channel. The
    /// receiver accepts it iff the original never made it through.
    pub fn retransmit(&mut self) -> Result<(), PutError> {
        self.put_duplicate()
    }

    /// Whether the receiver has (re-)armed since this sender's last put.
    pub fn receiver_ready(&self) -> bool {
        self.shared.armed_gen.load(Ordering::Acquire) > self.put_gen
    }
}

impl CheckedReceiver {
    /// Payload size in bytes.
    pub fn size(&self) -> usize {
        (self.shared.words.len() - 1) * 8
    }

    /// Re-arm after consuming a delivered message (corrupt and duplicate
    /// landings re-arm themselves).
    pub fn arm(&mut self) {
        let n = self.shared.words.len();
        self.shared.words[n - 1].store(self.shared.oob, Ordering::Relaxed);
        self.armed += 1;
        self.holding_data = false;
        self.shared.armed_gen.store(self.armed, Ordering::Release);
    }

    /// Receiver-side counters.
    pub fn stats(&self) -> CheckedStats {
        self.stats
    }

    /// Poll once. Integrity and replay checks happen here, at the receiver,
    /// from the landed bytes alone — the sender gets no say.
    pub fn try_recv(&mut self) -> CheckedRecv {
        if self.holding_data {
            return CheckedRecv::Empty;
        }
        let words = &self.shared.words;
        let n = words.len();
        let proto = words[n - 1].load(Ordering::Acquire);
        if proto == self.shared.oob {
            return CheckedRecv::Empty;
        }
        let seq = (proto >> 32) as u32;
        let crc = proto as u32;
        let mut payload = vec![0u8; (n - 1) * 8];
        for i in 0..n - 1 {
            let w = words[i].load(Ordering::Relaxed);
            payload[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        if crc32(&payload) != crc {
            self.stats.corrupt_detected += 1;
            self.arm(); // discard + re-arm: the retransmission can land
            return CheckedRecv::Corrupt;
        }
        if seq <= self.last_seq {
            self.stats.dups_suppressed += 1;
            self.arm();
            return CheckedRecv::Duplicate;
        }
        self.last_seq = seq;
        self.holding_data = true;
        self.stats.delivered += 1;
        CheckedRecv::Data(payload)
    }

    /// Spin until a *fresh intact* message lands, suppressing corrupt and
    /// duplicate landings along the way (tests and micro-benchmarks).
    pub fn recv_spin(&mut self) -> Vec<u8> {
        loop {
            if let CheckedRecv::Data(m) = self.try_recv() {
                return m;
            }
            std::hint::spin_loop();
        }
    }
}

/// Zero-copy view of a landed message as little-endian words.
pub struct WordView<'a> {
    words: &'a [AtomicU64],
}

impl WordView<'_> {
    /// Message length in bytes.
    pub fn len(&self) -> usize {
        self.words.len() * 8
    }

    /// True only for the impossible empty channel (kept for completeness).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Word `i` of the message.
    pub fn word(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::Relaxed)
    }

    /// The message's `f64` at word index `i` (payloads are commonly arrays
    /// of doubles in the paper's applications).
    pub fn f64_at(&self, i: usize) -> f64 {
        f64::from_bits(self.word(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    const OOB: u64 = u64::MAX;

    #[test]
    fn single_thread_roundtrip() {
        let (mut tx, mut rx) = channel(64, OOB);
        assert!(rx.try_recv().is_none(), "armed but empty");
        let msg: Vec<u8> = (0..64).map(|i| i as u8).collect();
        tx.put(&msg).unwrap();
        assert_eq!(rx.try_recv().unwrap(), msg);
        assert!(rx.try_recv().is_none(), "no double delivery");
        rx.arm();
        let msg2 = vec![9u8; 64];
        tx.put(&msg2).unwrap();
        assert_eq!(rx.recv_spin(), msg2);
    }

    #[test]
    fn put_before_rearm_is_rejected() {
        let (mut tx, mut rx) = channel(16, OOB);
        tx.put(&[1u8; 16]).unwrap();
        assert_eq!(tx.put(&[2u8; 16]).unwrap_err(), PutError::WouldOverwrite);
        rx.recv_spin();
        assert_eq!(
            tx.put(&[2u8; 16]).unwrap_err(),
            PutError::WouldOverwrite,
            "receiving is not enough; receiver must arm()"
        );
        rx.arm();
        assert!(tx.receiver_ready());
        tx.put(&[2u8; 16]).unwrap();
    }

    #[test]
    fn size_and_collision_checks() {
        let (mut tx, _rx) = channel(16, OOB);
        assert_eq!(tx.put(&[0u8; 8]).unwrap_err(), PutError::SizeMismatch);
        assert_eq!(tx.put(&[0xFFu8; 16]).unwrap_err(), PutError::OobCollision);
        assert_eq!(tx.size(), 16);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn unaligned_size_rejected() {
        let _ = channel(12, OOB);
    }

    #[test]
    fn zero_copy_view() {
        let (mut tx, mut rx) = channel(24, OOB);
        let mut msg = Vec::new();
        for v in [1.5f64, -2.5, 3.25] {
            msg.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        tx.put(&msg).unwrap();
        assert!(rx.poll());
        rx.with_data(|v| {
            assert_eq!(v.len(), 24);
            assert_eq!(v.f64_at(0), 1.5);
            assert_eq!(v.f64_at(1), -2.5);
            assert_eq!(v.f64_at(2), 3.25);
        });
    }

    #[test]
    fn cross_thread_iterations_deliver_in_order() {
        // The paper's iterative pattern: put → poll → consume → ready,
        // for many iterations, across real threads.
        const ITERS: u64 = 300;
        const SIZE: usize = 256;
        let (mut tx, mut rx) = channel(SIZE, OOB);
        let sender = thread::spawn(move || {
            for it in 0..ITERS {
                while !tx.receiver_ready() {
                    // yield rather than spin: CI machines may have one core
                    thread::yield_now();
                }
                let mut msg = vec![0u8; SIZE];
                // stamp every word with the iteration number
                for chunk in msg.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&it.to_le_bytes());
                }
                tx.put(&msg).unwrap();
            }
        });
        for it in 0..ITERS {
            let msg = loop {
                if let Some(m) = rx.try_recv() {
                    break m;
                }
                thread::yield_now();
            };
            for chunk in msg.chunks_exact(8) {
                assert_eq!(
                    u64::from_le_bytes(chunk.try_into().unwrap()),
                    it,
                    "torn or reordered message at iteration {it}"
                );
            }
            rx.arm();
        }
        sender.join().unwrap();
    }

    #[test]
    fn side_stats_count_operations() {
        let (mut tx, mut rx) = channel(16, OOB);
        assert!(!rx.poll()); // empty check
        tx.put(&[1u8; 16]).unwrap();
        assert_eq!(tx.put(&[2u8; 16]).unwrap_err(), PutError::WouldOverwrite);
        assert!(rx.poll());
        assert_eq!(
            tx.stats(),
            SideStats {
                completed: 1,
                attempts: 2
            }
        );
        assert_eq!(
            rx.stats(),
            SideStats {
                completed: 1,
                attempts: 2
            }
        );
    }

    #[test]
    fn generation_counts_arms() {
        let (mut tx, mut rx) = channel(8, OOB);
        assert_eq!(rx.generation(), 1);
        tx.put(&7u64.to_le_bytes()).unwrap();
        rx.recv_spin();
        rx.arm();
        assert_eq!(rx.generation(), 2);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check values
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn checked_clean_roundtrip() {
        let (mut tx, mut rx) = channel_checked(32, OOB);
        assert_eq!(rx.try_recv(), CheckedRecv::Empty);
        let msg: Vec<u8> = (0..32).map(|i| i as u8).collect();
        tx.put(&msg).unwrap();
        assert_eq!(rx.try_recv(), CheckedRecv::Data(msg));
        rx.arm();
        assert_eq!(
            rx.stats(),
            CheckedStats {
                delivered: 1,
                ..CheckedStats::default()
            }
        );
    }

    #[test]
    fn checked_corrupt_payload_detected_exactly_once_then_retransmit_lands() {
        let (mut tx, mut rx) = channel_checked(32, OOB);
        let msg = vec![5u8; 32];
        tx.put_corrupted(&msg, 1).unwrap();
        assert_eq!(rx.try_recv(), CheckedRecv::Corrupt, "CRC catches the flip");
        assert_eq!(
            rx.try_recv(),
            CheckedRecv::Empty,
            "detected once, then re-armed"
        );
        assert!(tx.receiver_ready(), "corrupt landing re-armed the channel");
        tx.retransmit().unwrap();
        assert_eq!(rx.try_recv(), CheckedRecv::Data(msg));
        assert_eq!(
            rx.stats(),
            CheckedStats {
                delivered: 1,
                corrupt_detected: 1,
                dups_suppressed: 0,
            }
        );
    }

    #[test]
    fn checked_corrupt_last_8_bytes_detected() {
        // The damaged word is the sentinel/protocol word itself.
        let (mut tx, mut rx) = channel_checked(16, OOB);
        tx.put_corrupted(&[3u8; 16], 2).unwrap();
        assert_eq!(rx.try_recv(), CheckedRecv::Corrupt);
        assert_eq!(rx.stats().corrupt_detected, 1);
        tx.retransmit().unwrap();
        assert_eq!(rx.recv_spin(), vec![3u8; 16]);
    }

    #[test]
    fn checked_torn_write_detected_exactly_once() {
        let (mut tx, mut rx) = channel_checked(24, OOB);
        // Leave stale bytes behind so the missing word is visibly wrong.
        tx.put(&[0xAAu8; 24]).unwrap();
        rx.recv_spin();
        rx.arm();
        tx.put_torn(&[0xBBu8; 24], 1).unwrap();
        assert_eq!(
            rx.try_recv(),
            CheckedRecv::Corrupt,
            "torn write caught by CRC"
        );
        assert_eq!(rx.try_recv(), CheckedRecv::Empty);
        tx.retransmit().unwrap();
        assert_eq!(rx.recv_spin(), vec![0xBBu8; 24]);
        assert_eq!(
            rx.stats(),
            CheckedStats {
                delivered: 2,
                corrupt_detected: 1,
                dups_suppressed: 0,
            }
        );
    }

    #[test]
    fn checked_duplicate_landing_suppressed_exactly_once() {
        let (mut tx, mut rx) = channel_checked(16, OOB);
        let msg = vec![7u8; 16];
        tx.put(&msg).unwrap();
        assert_eq!(rx.try_recv(), CheckedRecv::Data(msg.clone()));
        rx.arm();
        // The fabric replays the same put after the re-arm.
        tx.put_duplicate().unwrap();
        assert_eq!(
            rx.try_recv(),
            CheckedRecv::Duplicate,
            "seqno filter suppresses it"
        );
        assert_eq!(
            rx.try_recv(),
            CheckedRecv::Empty,
            "suppressed once, re-armed"
        );
        // A genuinely new put still gets through.
        let msg2 = vec![8u8; 16];
        tx.put(&msg2).unwrap();
        assert_eq!(rx.try_recv(), CheckedRecv::Data(msg2));
        assert_eq!(
            rx.stats(),
            CheckedStats {
                delivered: 2,
                corrupt_detected: 0,
                dups_suppressed: 1,
            }
        );
    }

    #[test]
    fn checked_size_checks_match_unchecked() {
        let (mut tx, _rx) = channel_checked(16, OOB);
        assert_eq!(tx.size(), 16);
        assert_eq!(tx.put(&[0u8; 8]).unwrap_err(), PutError::SizeMismatch);
        tx.put(&[1u8; 16]).unwrap();
        assert_eq!(tx.put(&[2u8; 16]).unwrap_err(), PutError::WouldOverwrite);
    }
}
