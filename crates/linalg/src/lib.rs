//! Small dense linear-algebra kernels for the paper's applications.
//!
//! The matrix-multiplication benchmark (Fig 3) and OpenAtom's
//! PairCalculator (Figs 4–5) both bottom out in DGEMM on contiguous
//! buffers — the reason CkDirect's "land the data exactly where it is
//! needed" matters: the multiply requires contiguous operands, so the
//! message-based version must copy received blocks into place first.
//!
//! Kernels return the *flop count* they performed so callers can charge
//! virtual time in the simulator (or skip execution entirely and charge the
//! same count, via [`gemm_flops`], when running at figure scale).

pub mod gemm;
pub mod vec;

pub use gemm::{dgemm, dgemm_block, gemm_flops, Mat};
pub use vec::{axpy, dot, norm2, norm2_diff};
