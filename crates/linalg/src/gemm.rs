//! Row-major dense matrices and a cache-blocked DGEMM.

/// A row-major dense matrix view over owned storage.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Mat {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Wrap existing row-major storage.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Mat {
        assert_eq!(data.len(), rows * cols);
        Mat { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The backing storage (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Frobenius-norm distance to another matrix.
    pub fn dist(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// Flops performed by `C += A·B` for the given shapes (2·m·n·k).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// `C += A·B` — naive triple loop in i-k-j order (stride-1 inner loop).
/// Returns the flop count. Used as the reference for the blocked kernel.
pub fn dgemm(c: &mut Mat, a: &Mat, b: &Mat) -> f64 {
    assert_eq!(a.cols, b.rows, "inner dimensions");
    assert_eq!(c.rows, a.rows);
    assert_eq!(c.cols, b.cols);
    let (m, k, n) = (a.rows, a.cols, b.cols);
    for i in 0..m {
        for p in 0..k {
            let aip = a.at(i, p);
            if aip == 0.0 {
                continue;
            }
            let brow = b.row(p);
            let crow = &mut c.data[i * n..(i + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow) {
                *cj += aip * bj;
            }
        }
    }
    gemm_flops(m, n, k)
}

/// Cache-blocked `C += A·B` with `bs × bs` tiles. Returns the flop count.
pub fn dgemm_block(c: &mut Mat, a: &Mat, b: &Mat, bs: usize) -> f64 {
    assert!(bs > 0);
    assert_eq!(a.cols, b.rows, "inner dimensions");
    assert_eq!(c.rows, a.rows);
    assert_eq!(c.cols, b.cols);
    let (m, k, n) = (a.rows, a.cols, b.cols);
    for i0 in (0..m).step_by(bs) {
        let i1 = (i0 + bs).min(m);
        for p0 in (0..k).step_by(bs) {
            let p1 = (p0 + bs).min(k);
            for j0 in (0..n).step_by(bs) {
                let j1 = (j0 + bs).min(n);
                for i in i0..i1 {
                    for p in p0..p1 {
                        let aip = a.at(i, p);
                        let brow = &b.data[p * n + j0..p * n + j1];
                        let crow = &mut c.data[i * n + j0..i * n + j1];
                        for (cj, bj) in crow.iter_mut().zip(brow) {
                            *cj += aip * bj;
                        }
                    }
                }
            }
        }
    }
    gemm_flops(m, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_mat(rows: usize, cols: usize, salt: f64) -> Mat {
        Mat::from_fn(rows, cols, |r, c| {
            ((r * 31 + c * 17) as f64 * 0.01 + salt).sin()
        })
    }

    #[test]
    fn identity_multiplication() {
        let a = seq_mat(5, 5, 0.3);
        let eye = Mat::from_fn(5, 5, |r, c| if r == c { 1.0 } else { 0.0 });
        let mut c = Mat::zeros(5, 5);
        dgemm(&mut c, &a, &eye);
        assert!(c.dist(&a) < 1e-12);
    }

    #[test]
    fn known_product() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut c = Mat::zeros(2, 2);
        let flops = dgemm(&mut c, &a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
        assert_eq!(flops, 24.0);
    }

    #[test]
    fn blocked_matches_naive() {
        for (m, k, n) in [(7, 9, 5), (16, 16, 16), (33, 17, 21)] {
            let a = seq_mat(m, k, 0.1);
            let b = seq_mat(k, n, 0.7);
            let mut c1 = Mat::zeros(m, n);
            let mut c2 = Mat::zeros(m, n);
            dgemm(&mut c1, &a, &b);
            for bs in [1, 4, 8, 64] {
                c2.as_mut_slice().fill(0.0);
                let flops = dgemm_block(&mut c2, &a, &b, bs);
                assert!(c1.dist(&c2) < 1e-9, "bs={bs} m={m} k={k} n={n}");
                assert_eq!(flops, gemm_flops(m, n, k));
            }
        }
    }

    #[test]
    fn gemm_accumulates() {
        let a = Mat::from_vec(1, 1, vec![2.0]);
        let b = Mat::from_vec(1, 1, vec![3.0]);
        let mut c = Mat::from_vec(1, 1, vec![10.0]);
        dgemm(&mut c, &a, &b);
        assert_eq!(c.at(0, 0), 16.0);
    }

    #[test]
    fn accessors() {
        let mut m = Mat::zeros(2, 3);
        *m.at_mut(1, 2) = 5.0;
        assert_eq!(m.at(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 2);
        let mut c = Mat::zeros(2, 2);
        dgemm(&mut c, &a, &b);
    }
}
