//! Per-channel state: the lifecycle that makes "at most one message in
//! flight, re-armed by `ready`" checkable.

use ckd_topo::Pe;

use crate::region::Region;
use crate::strided::StridedSpec;

/// Identifies a CkDirect channel. The receiver creates it and ships it to
/// the sender inside an ordinary message during setup.
///
/// The 32 bits pack a slab **slot** (low [`HandleId::SLOT_BITS`] bits) and
/// a **generation** tag (high 8 bits). The registry bumps a slot's
/// generation every time [`DirectRegistry::destroy_handle`] recycles it, so
/// a handle held across a destroy goes stale — every registry operation on
/// it fails with `BadHandle` instead of silently touching the slot's new
/// tenant. Channels that are never destroyed carry generation 0, making the
/// packed value identical to the dense index the registry historically
/// handed out.
///
/// The tag wraps after 256 reuses of one slot, so it is a probabilistic
/// (but in practice decisive) stale-handle detector, not a cryptographic
/// one — the same trade every slab-allocated handle scheme makes.
///
/// [`DirectRegistry::destroy_handle`]: crate::DirectRegistry::destroy_handle
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandleId(pub u32);

/// Sentinel slot-link value: "no neighbor" in an intrusive ready ring and
/// "end of the freelist" in the slab.
pub(crate) const NO_SLOT: u32 = u32::MAX;

impl HandleId {
    /// Bits of the packed value that address the slab slot.
    pub const SLOT_BITS: u32 = 24;
    /// Maximum live channels a registry can hold (one per slot).
    pub const MAX_SLOTS: usize = 1 << Self::SLOT_BITS;
    const SLOT_MASK: u32 = (1 << Self::SLOT_BITS) - 1;

    /// Pack a slab slot and generation tag into a handle.
    #[inline]
    pub fn new(slot: u32, generation: u8) -> HandleId {
        debug_assert!(slot <= Self::SLOT_MASK);
        HandleId((u32::from(generation) << Self::SLOT_BITS) | slot)
    }

    /// The slab slot this handle addresses.
    #[inline]
    pub fn slot(self) -> u32 {
        self.0 & Self::SLOT_MASK
    }

    /// The generation tag this handle was minted with.
    #[inline]
    pub fn generation(self) -> u8 {
        (self.0 >> Self::SLOT_BITS) as u8
    }

    /// Dense index for table lookups (the slot).
    #[inline]
    pub fn idx(self) -> usize {
        self.slot() as usize
    }
}

impl std::fmt::Debug for HandleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ckh{}", self.0)
    }
}

/// How completion is detected on this machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectBackend {
    /// Infiniband-style: the RDMA write overwrites the out-of-band pattern
    /// in the last 8 bytes; a per-PE polling queue detects it between
    /// scheduler iterations. `ready_mark` / `ready_poll_q` are meaningful.
    IbPoll,
    /// Blue Gene/P-style: delivery is a DCMF completion callback; the
    /// `ready` family are no-ops (the paper's BG/P implementation).
    DcmfCallback,
    /// Notified-RMA style (Slingshot-class fabrics): each put deposits a
    /// notification record in a bounded per-PE completion queue; the
    /// receiver *drains* the queue (`cq_drain_into`) instead of polling
    /// per-handle sentinels. A put that would overflow the CQ is held back
    /// at the NIC (`DirectError::CqOverflow` → executor backpressure). The
    /// `ready` family release data like the callback backend.
    NotifiedPut,
}

/// Where the channel's current message is in its life.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataPhase {
    /// No outstanding put; the buffer is the receiver's to reuse.
    Empty,
    /// A put has been issued; bytes are on the wire.
    InFlight,
    /// Bytes have landed in the receive buffer but no callback has fired
    /// yet (awaiting a poll sweep on the IbPoll backend).
    Landed,
    /// The callback fired; the receiver owns the data until `ready_mark`.
    Delivered,
}

/// One CkDirect channel.
pub(crate) struct Channel<C> {
    /// PE hosting the receive buffer.
    pub recv_pe: Pe,
    /// Receive window (registered at `create_handle`).
    pub recv: Region,
    /// PE hosting the send buffer, once `assoc_local` ran.
    pub send_pe: Option<Pe>,
    /// Send window, once `assoc_local` ran.
    pub send: Option<Region>,
    /// The out-of-band pattern for this channel.
    pub oob: u64,
    /// Bytes charged on the wire per put. Defaults to the region length;
    /// figure-scale (modeled) runs keep small real regions but charge the
    /// full application buffer size here.
    pub wire_bytes: usize,
    /// Completion callback token (interpreted by the runtime layer).
    pub callback: C,
    /// Data lifecycle.
    pub phase: DataPhase,
    /// Sentinel currently armed (last word == oob as far as the receiver
    /// side knows).
    pub marked: bool,
    /// Present in the owning PE's polling queue.
    pub in_pollq: bool,
    /// Linked into the owning PE's ready ring (landed, detectable, armed —
    /// the next sweep will deliver it).
    pub ready_linked: bool,
    /// Next slot in the intrusive ready ring ([`NO_SLOT`] when unlinked or
    /// at the tail).
    pub ready_next: u32,
    /// Previous slot in the intrusive ready ring ([`NO_SLOT`] when unlinked
    /// or at the head).
    pub ready_prev: u32,
    /// Poll-queue insertion sequence on the owning PE. Sweeps deliver in
    /// ascending order of this value — exactly the historical per-PE
    /// `Vec<HandleId>` insertion order.
    pub pollq_seq: u64,
    /// The owning PE's sweep count when this channel last entered the poll
    /// queue; `checks` accrues `sweeps - enqueue_sweeps` lazily while the
    /// channel stays armed.
    pub enqueue_sweeps: u64,
    /// Strided receive side: scatter the wire image into this backing
    /// layout at delivery.
    pub recv_scatter: Option<(Region, StridedSpec)>,
    /// Strided send side: gather this backing layout into the wire image
    /// at put.
    pub send_gather: Option<(Region, StridedSpec)>,
    /// Put whose payload's final word equals the pattern: undetectable by
    /// polling (diagnostic, see `DirectError::OobCollision`).
    pub collided: bool,
    /// Total puts issued on this channel.
    pub puts: u64,
    /// Total callbacks delivered on this channel.
    pub deliveries: u64,
    /// Times this channel's sentinel was examined by a poll sweep.
    pub checks: u64,
    /// Highest put sequence number that has landed (0 = none yet). Lets the
    /// reliability layer replay a duplicated RDMA put idempotently.
    pub landed_seq: u64,
    /// Duplicate landings suppressed before delivery.
    pub dup_landings: u64,
    /// Corrupted landings detected by the per-put CRC and re-armed.
    pub corrupt_landings: u64,
}

impl<C> Channel<C> {
    pub(crate) fn new(recv_pe: Pe, recv: Region, oob: u64, callback: C) -> Channel<C> {
        let wire_bytes = recv.len();
        Channel {
            recv_pe,
            recv,
            send_pe: None,
            send: None,
            oob,
            wire_bytes,
            callback,
            recv_scatter: None,
            send_gather: None,
            phase: DataPhase::Empty,
            marked: true,
            in_pollq: false,
            ready_linked: false,
            ready_next: NO_SLOT,
            ready_prev: NO_SLOT,
            pollq_seq: 0,
            enqueue_sweeps: 0,
            collided: false,
            puts: 0,
            deliveries: 0,
            checks: 0,
            landed_seq: 0,
            dup_landings: 0,
            corrupt_landings: 0,
        }
    }
}
