//! Execution statistics gathered by the machine.

use ckd_net::{Protocol, RelStats};
use ckd_sim::Time;

/// Transfer count and payload bytes for one protocol family.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtoCounters {
    /// Transfers issued.
    pub count: u64,
    /// Payload bytes moved (envelopes excluded, like `msg_bytes`).
    pub bytes: u64,
}

/// Per-protocol transfer breakdown, fed from the same instrumentation
/// points as the aggregate counters: `eager + rendezvous + dcmf`
/// reconciles with `msgs_sent`/`msg_bytes`, `rdma_put` (plus `dcmf` puts on
/// non-RDMA fabrics) with `puts`/`put_bytes`, and `control` counts the
/// reduction/broadcast/handle-shipping control packets that the aggregates
/// deliberately exclude.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProtoBreakdown {
    /// Two-sided sends below the eager threshold.
    pub eager: ProtoCounters,
    /// Two-sided sends that paid the RTS/CTS rendezvous handshake.
    pub rendezvous: ProtoCounters,
    /// One-sided RDMA puts (the CkDirect data path on Infiniband).
    pub rdma_put: ProtoCounters,
    /// DCMF active messages (every transfer on Blue Gene/P).
    pub dcmf: ProtoCounters,
    /// Small fixed-size control traffic (reduction hops, broadcast
    /// forwarding, learned-channel handle shipping).
    pub control: ProtoCounters,
}

impl ProtoBreakdown {
    /// Account one transfer of `bytes` payload bytes under `proto`.
    pub(crate) fn record(&mut self, proto: Protocol, bytes: u64) {
        let slot = match proto {
            Protocol::Eager => &mut self.eager,
            Protocol::Rendezvous { .. } => &mut self.rendezvous,
            Protocol::RdmaPut => &mut self.rdma_put,
            Protocol::Dcmf => &mut self.dcmf,
            Protocol::Control => &mut self.control,
        };
        slot.count += 1;
        slot.bytes += bytes;
    }

    /// Sum over every protocol family.
    pub fn total(&self) -> ProtoCounters {
        let mut t = ProtoCounters::default();
        for c in [
            self.eager,
            self.rendezvous,
            self.rdma_put,
            self.dcmf,
            self.control,
        ] {
            t.count += c.count;
            t.bytes += c.bytes;
        }
        t
    }

    /// The two-sided message families (what `msgs_sent` counts).
    pub fn two_sided(&self) -> ProtoCounters {
        ProtoCounters {
            count: self.eager.count + self.rendezvous.count + self.dcmf.count,
            bytes: self.eager.bytes + self.rendezvous.bytes + self.dcmf.bytes,
        }
    }
}

/// Per-PE counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeStats {
    /// Total CPU time this PE spent busy (handlers, overheads, polling).
    pub busy: Time,
    /// Messages delivered through the scheduler.
    pub msgs_delivered: u64,
    /// CkDirect callbacks delivered.
    pub callbacks: u64,
    /// Individual handle checks performed by poll sweeps.
    pub poll_checks: u64,
    /// Notification records drained from this PE's completion queue
    /// (notified-put backend only; zero elsewhere).
    pub cq_drains: u64,
    /// Protocol breakdown of transfers *issued from* this PE.
    pub proto_sent: ProtoBreakdown,
}

/// Machine-wide counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Messages sent (scheduler path).
    pub msgs_sent: u64,
    /// Payload bytes sent on the scheduler path (envelopes excluded).
    pub msg_bytes: u64,
    /// CkDirect puts issued.
    pub puts: u64,
    /// Bytes moved by CkDirect puts.
    pub put_bytes: u64,
    /// Reductions completed (generations across all arrays).
    pub reductions: u64,
    /// Events processed by the simulation core.
    pub events: u64,
    /// Notification records drained from completion queues, summed over
    /// every PE (notified-put backend only; zero elsewhere).
    pub cq_drains: u64,
    /// Async software-progress ticks that fired (zero unless the
    /// progress engine was enabled with `with_progress`).
    pub progress_ticks: u64,
    /// Per-protocol breakdown of every modeled transfer.
    pub proto: ProtoBreakdown,
    /// Reliability-layer counters (all zero when faults are disabled).
    /// Retransmits live here and *only* here: `puts`/`msgs_sent` count each
    /// application-level transfer exactly once however many times the fault
    /// plane forced it back onto the wire.
    pub rel: RelStats,
}
